// Tiny validator CLI for the observability output formats, so
// scripts/check_obs.sh needs no Python or jq:
//
//   obs_validate trace FILE     validate a Chrome trace-event JSON file
//   obs_validate records FILE   validate a JSONL run-record stream
//
// Prints one line per file and exits nonzero on the first failure.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "obs/validate.h"
#include "support/mmap_file.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s {trace|records} FILE...\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const bool is_trace = std::strcmp(argv[1], "trace") == 0;
  if (!is_trace && std::strcmp(argv[1], "records") != 0) return Usage(argv[0]);

  for (int i = 2; i < argc; ++i) {
    rpmis::MmapFile file;
    try {
      file = rpmis::MmapFile::Open(argv[i]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "obs_validate: %s: %s\n", argv[i], e.what());
      return 1;
    }
    const rpmis::obs::ValidationResult r =
        is_trace ? rpmis::obs::ValidateTraceJson(file.view())
                 : rpmis::obs::ValidateRunRecords(file.view());
    if (!r.ok) {
      std::fprintf(stderr, "obs_validate: %s: FAIL: %s\n", argv[i],
                   r.error.c_str());
      return 1;
    }
    std::printf("obs_validate: %s: OK (%zu %s)\n", argv[i], r.num_events,
                is_trace ? "events" : "records");
  }
  return 0;
}
