file(REMOVE_RECURSE
  "CMakeFiles/per_component_test.dir/per_component_test.cc.o"
  "CMakeFiles/per_component_test.dir/per_component_test.cc.o.d"
  "per_component_test"
  "per_component_test.pdb"
  "per_component_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/per_component_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
