# Empty dependencies file for per_component_test.
# This may be replaced when dependencies are built.
