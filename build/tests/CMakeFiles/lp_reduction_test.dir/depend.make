# Empty dependencies file for lp_reduction_test.
# This may be replaced when dependencies are built.
