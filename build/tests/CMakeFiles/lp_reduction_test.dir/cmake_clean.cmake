file(REMOVE_RECURSE
  "CMakeFiles/lp_reduction_test.dir/lp_reduction_test.cc.o"
  "CMakeFiles/lp_reduction_test.dir/lp_reduction_test.cc.o.d"
  "lp_reduction_test"
  "lp_reduction_test.pdb"
  "lp_reduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
