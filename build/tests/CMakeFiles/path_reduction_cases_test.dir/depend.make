# Empty dependencies file for path_reduction_cases_test.
# This may be replaced when dependencies are built.
