file(REMOVE_RECURSE
  "CMakeFiles/path_reduction_cases_test.dir/path_reduction_cases_test.cc.o"
  "CMakeFiles/path_reduction_cases_test.dir/path_reduction_cases_test.cc.o.d"
  "path_reduction_cases_test"
  "path_reduction_cases_test.pdb"
  "path_reduction_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_reduction_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
