# Empty compiler generated dependencies file for upper_bounds_test.
# This may be replaced when dependencies are built.
