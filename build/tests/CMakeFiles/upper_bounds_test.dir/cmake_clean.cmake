file(REMOVE_RECURSE
  "CMakeFiles/upper_bounds_test.dir/upper_bounds_test.cc.o"
  "CMakeFiles/upper_bounds_test.dir/upper_bounds_test.cc.o.d"
  "upper_bounds_test"
  "upper_bounds_test.pdb"
  "upper_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upper_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
