file(REMOVE_RECURSE
  "CMakeFiles/vc_solver_test.dir/vc_solver_test.cc.o"
  "CMakeFiles/vc_solver_test.dir/vc_solver_test.cc.o.d"
  "vc_solver_test"
  "vc_solver_test.pdb"
  "vc_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
