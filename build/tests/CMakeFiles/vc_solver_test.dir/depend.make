# Empty dependencies file for vc_solver_test.
# This may be replaced when dependencies are built.
