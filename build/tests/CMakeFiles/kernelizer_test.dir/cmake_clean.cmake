file(REMOVE_RECURSE
  "CMakeFiles/kernelizer_test.dir/kernelizer_test.cc.o"
  "CMakeFiles/kernelizer_test.dir/kernelizer_test.cc.o.d"
  "kernelizer_test"
  "kernelizer_test.pdb"
  "kernelizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernelizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
