# Empty dependencies file for kernelizer_test.
# This may be replaced when dependencies are built.
