# Empty dependencies file for adjacency_graph_test.
# This may be replaced when dependencies are built.
