file(REMOVE_RECURSE
  "CMakeFiles/adjacency_graph_test.dir/adjacency_graph_test.cc.o"
  "CMakeFiles/adjacency_graph_test.dir/adjacency_graph_test.cc.o.d"
  "adjacency_graph_test"
  "adjacency_graph_test.pdb"
  "adjacency_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adjacency_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
