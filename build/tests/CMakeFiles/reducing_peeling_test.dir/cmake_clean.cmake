file(REMOVE_RECURSE
  "CMakeFiles/reducing_peeling_test.dir/reducing_peeling_test.cc.o"
  "CMakeFiles/reducing_peeling_test.dir/reducing_peeling_test.cc.o.d"
  "reducing_peeling_test"
  "reducing_peeling_test.pdb"
  "reducing_peeling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reducing_peeling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
