# Empty dependencies file for reducing_peeling_test.
# This may be replaced when dependencies are built.
