file(REMOVE_RECURSE
  "CMakeFiles/bucket_queue_test.dir/bucket_queue_test.cc.o"
  "CMakeFiles/bucket_queue_test.dir/bucket_queue_test.cc.o.d"
  "bucket_queue_test"
  "bucket_queue_test.pdb"
  "bucket_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucket_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
