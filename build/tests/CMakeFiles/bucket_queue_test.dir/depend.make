# Empty dependencies file for bucket_queue_test.
# This may be replaced when dependencies are built.
