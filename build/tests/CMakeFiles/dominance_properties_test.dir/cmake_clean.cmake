file(REMOVE_RECURSE
  "CMakeFiles/dominance_properties_test.dir/dominance_properties_test.cc.o"
  "CMakeFiles/dominance_properties_test.dir/dominance_properties_test.cc.o.d"
  "dominance_properties_test"
  "dominance_properties_test.pdb"
  "dominance_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dominance_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
