# Empty dependencies file for dominance_properties_test.
# This may be replaced when dependencies are built.
