file(REMOVE_RECURSE
  "CMakeFiles/benchkit_test.dir/benchkit_test.cc.o"
  "CMakeFiles/benchkit_test.dir/benchkit_test.cc.o.d"
  "benchkit_test"
  "benchkit_test.pdb"
  "benchkit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchkit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
