# Empty compiler generated dependencies file for benchkit_test.
# This may be replaced when dependencies are built.
