# Empty compiler generated dependencies file for io_efficient_test.
# This may be replaced when dependencies are built.
