file(REMOVE_RECURSE
  "CMakeFiles/io_efficient_test.dir/io_efficient_test.cc.o"
  "CMakeFiles/io_efficient_test.dir/io_efficient_test.cc.o.d"
  "io_efficient_test"
  "io_efficient_test.pdb"
  "io_efficient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_efficient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
