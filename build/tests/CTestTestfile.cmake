# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/adjacency_graph_test[1]_include.cmake")
include("/root/repo/build/tests/bucket_queue_test[1]_include.cmake")
include("/root/repo/build/tests/algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/brute_force_test[1]_include.cmake")
include("/root/repo/build/tests/lp_reduction_test[1]_include.cmake")
include("/root/repo/build/tests/reducing_peeling_test[1]_include.cmake")
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/kernelizer_test[1]_include.cmake")
include("/root/repo/build/tests/local_search_test[1]_include.cmake")
include("/root/repo/build/tests/upper_bounds_test[1]_include.cmake")
include("/root/repo/build/tests/vc_solver_test[1]_include.cmake")
include("/root/repo/build/tests/benchkit_test[1]_include.cmake")
include("/root/repo/build/tests/dominance_properties_test[1]_include.cmake")
include("/root/repo/build/tests/path_reduction_cases_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/per_component_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/io_efficient_test[1]_include.cmake")
