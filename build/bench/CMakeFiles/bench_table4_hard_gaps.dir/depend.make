# Empty dependencies file for bench_table4_hard_gaps.
# This may be replaced when dependencies are built.
