file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_hard_gaps.dir/bench_table4_hard_gaps.cc.o"
  "CMakeFiles/bench_table4_hard_gaps.dir/bench_table4_hard_gaps.cc.o.d"
  "bench_table4_hard_gaps"
  "bench_table4_hard_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hard_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
