file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nearlinear.dir/bench_ablation_nearlinear.cc.o"
  "CMakeFiles/bench_ablation_nearlinear.dir/bench_ablation_nearlinear.cc.o.d"
  "bench_ablation_nearlinear"
  "bench_ablation_nearlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nearlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
