# Empty compiler generated dependencies file for bench_ablation_nearlinear.
# This may be replaced when dependencies are built.
