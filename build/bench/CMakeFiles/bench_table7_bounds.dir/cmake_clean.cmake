file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_bounds.dir/bench_table7_bounds.cc.o"
  "CMakeFiles/bench_table7_bounds.dir/bench_table7_bounds.cc.o.d"
  "bench_table7_bounds"
  "bench_table7_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
