file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_powerlaw.dir/bench_table5_powerlaw.cc.o"
  "CMakeFiles/bench_table5_powerlaw.dir/bench_table5_powerlaw.cc.o.d"
  "bench_table5_powerlaw"
  "bench_table5_powerlaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_powerlaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
