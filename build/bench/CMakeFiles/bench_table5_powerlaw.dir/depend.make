# Empty dependencies file for bench_table5_powerlaw.
# This may be replaced when dependencies are built.
