# Empty dependencies file for bench_table6_random.
# This may be replaced when dependencies are built.
