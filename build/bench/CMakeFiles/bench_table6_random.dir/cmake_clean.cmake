file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_random.dir/bench_table6_random.cc.o"
  "CMakeFiles/bench_table6_random.dir/bench_table6_random.cc.o.d"
  "bench_table6_random"
  "bench_table6_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
