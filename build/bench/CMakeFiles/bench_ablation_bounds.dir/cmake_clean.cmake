file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bounds.dir/bench_ablation_bounds.cc.o"
  "CMakeFiles/bench_ablation_bounds.dir/bench_ablation_bounds.cc.o.d"
  "bench_ablation_bounds"
  "bench_ablation_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
