# Empty compiler generated dependencies file for bench_table3_easy_gaps.
# This may be replaced when dependencies are built.
