file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_easy_gaps.dir/bench_table3_easy_gaps.cc.o"
  "CMakeFiles/bench_table3_easy_gaps.dir/bench_table3_easy_gaps.cc.o.d"
  "bench_table3_easy_gaps"
  "bench_table3_easy_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_easy_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
