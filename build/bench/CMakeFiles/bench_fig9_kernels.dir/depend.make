# Empty dependencies file for bench_fig9_kernels.
# This may be replaced when dependencies are built.
