file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ours.dir/bench_fig8_ours.cc.o"
  "CMakeFiles/bench_fig8_ours.dir/bench_fig8_ours.cc.o.d"
  "bench_fig8_ours"
  "bench_fig8_ours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
