file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_baselines.dir/bench_fig7_baselines.cc.o"
  "CMakeFiles/bench_fig7_baselines.dir/bench_fig7_baselines.cc.o.d"
  "bench_fig7_baselines"
  "bench_fig7_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
