file(REMOVE_RECURSE
  "CMakeFiles/social_coverage.dir/social_coverage.cpp.o"
  "CMakeFiles/social_coverage.dir/social_coverage.cpp.o.d"
  "social_coverage"
  "social_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
