# Empty dependencies file for social_coverage.
# This may be replaced when dependencies are built.
