# Empty compiler generated dependencies file for collusion_detection.
# This may be replaced when dependencies are built.
