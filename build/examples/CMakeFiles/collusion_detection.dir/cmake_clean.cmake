file(REMOVE_RECURSE
  "CMakeFiles/collusion_detection.dir/collusion_detection.cpp.o"
  "CMakeFiles/collusion_detection.dir/collusion_detection.cpp.o.d"
  "collusion_detection"
  "collusion_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collusion_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
