file(REMOVE_RECURSE
  "CMakeFiles/graph_gen.dir/graph_gen.cpp.o"
  "CMakeFiles/graph_gen.dir/graph_gen.cpp.o.d"
  "graph_gen"
  "graph_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
