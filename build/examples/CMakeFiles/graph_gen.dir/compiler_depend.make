# Empty compiler generated dependencies file for graph_gen.
# This may be replaced when dependencies are built.
