file(REMOVE_RECURSE
  "CMakeFiles/mis_cli.dir/mis_cli.cpp.o"
  "CMakeFiles/mis_cli.dir/mis_cli.cpp.o.d"
  "mis_cli"
  "mis_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
