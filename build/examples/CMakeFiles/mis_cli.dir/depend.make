# Empty dependencies file for mis_cli.
# This may be replaced when dependencies are built.
