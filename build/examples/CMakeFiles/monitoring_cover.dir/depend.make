# Empty dependencies file for monitoring_cover.
# This may be replaced when dependencies are built.
