file(REMOVE_RECURSE
  "CMakeFiles/monitoring_cover.dir/monitoring_cover.cpp.o"
  "CMakeFiles/monitoring_cover.dir/monitoring_cover.cpp.o.d"
  "monitoring_cover"
  "monitoring_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitoring_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
