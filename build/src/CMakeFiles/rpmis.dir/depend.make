# Empty dependencies file for rpmis.
# This may be replaced when dependencies are built.
