file(REMOVE_RECURSE
  "librpmis.a"
)
