
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/du.cc" "src/CMakeFiles/rpmis.dir/baselines/du.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/baselines/du.cc.o.d"
  "/root/repo/src/baselines/greedy.cc" "src/CMakeFiles/rpmis.dir/baselines/greedy.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/baselines/greedy.cc.o.d"
  "/root/repo/src/baselines/semi_external.cc" "src/CMakeFiles/rpmis.dir/baselines/semi_external.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/baselines/semi_external.cc.o.d"
  "/root/repo/src/benchkit/datasets.cc" "src/CMakeFiles/rpmis.dir/benchkit/datasets.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/benchkit/datasets.cc.o.d"
  "/root/repo/src/benchkit/run.cc" "src/CMakeFiles/rpmis.dir/benchkit/run.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/benchkit/run.cc.o.d"
  "/root/repo/src/benchkit/table.cc" "src/CMakeFiles/rpmis.dir/benchkit/table.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/benchkit/table.cc.o.d"
  "/root/repo/src/ds/bucket_queue.cc" "src/CMakeFiles/rpmis.dir/ds/bucket_queue.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/ds/bucket_queue.cc.o.d"
  "/root/repo/src/exact/brute_force.cc" "src/CMakeFiles/rpmis.dir/exact/brute_force.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/exact/brute_force.cc.o.d"
  "/root/repo/src/exact/vc_solver.cc" "src/CMakeFiles/rpmis.dir/exact/vc_solver.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/exact/vc_solver.cc.o.d"
  "/root/repo/src/graph/adjacency_graph.cc" "src/CMakeFiles/rpmis.dir/graph/adjacency_graph.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/graph/adjacency_graph.cc.o.d"
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/rpmis.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/rpmis.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/rpmis.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/rpmis.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/graph/io.cc.o.d"
  "/root/repo/src/localsearch/arw.cc" "src/CMakeFiles/rpmis.dir/localsearch/arw.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/localsearch/arw.cc.o.d"
  "/root/repo/src/localsearch/boosted.cc" "src/CMakeFiles/rpmis.dir/localsearch/boosted.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/localsearch/boosted.cc.o.d"
  "/root/repo/src/localsearch/online_mis.cc" "src/CMakeFiles/rpmis.dir/localsearch/online_mis.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/localsearch/online_mis.cc.o.d"
  "/root/repo/src/localsearch/redumis.cc" "src/CMakeFiles/rpmis.dir/localsearch/redumis.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/localsearch/redumis.cc.o.d"
  "/root/repo/src/mis/bdone.cc" "src/CMakeFiles/rpmis.dir/mis/bdone.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/mis/bdone.cc.o.d"
  "/root/repo/src/mis/bdtwo.cc" "src/CMakeFiles/rpmis.dir/mis/bdtwo.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/mis/bdtwo.cc.o.d"
  "/root/repo/src/mis/io_efficient.cc" "src/CMakeFiles/rpmis.dir/mis/io_efficient.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/mis/io_efficient.cc.o.d"
  "/root/repo/src/mis/kernel_capture.cc" "src/CMakeFiles/rpmis.dir/mis/kernel_capture.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/mis/kernel_capture.cc.o.d"
  "/root/repo/src/mis/kernelizer.cc" "src/CMakeFiles/rpmis.dir/mis/kernelizer.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/mis/kernelizer.cc.o.d"
  "/root/repo/src/mis/linear_time.cc" "src/CMakeFiles/rpmis.dir/mis/linear_time.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/mis/linear_time.cc.o.d"
  "/root/repo/src/mis/lp_reduction.cc" "src/CMakeFiles/rpmis.dir/mis/lp_reduction.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/mis/lp_reduction.cc.o.d"
  "/root/repo/src/mis/near_linear.cc" "src/CMakeFiles/rpmis.dir/mis/near_linear.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/mis/near_linear.cc.o.d"
  "/root/repo/src/mis/per_component.cc" "src/CMakeFiles/rpmis.dir/mis/per_component.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/mis/per_component.cc.o.d"
  "/root/repo/src/mis/solution.cc" "src/CMakeFiles/rpmis.dir/mis/solution.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/mis/solution.cc.o.d"
  "/root/repo/src/mis/upper_bounds.cc" "src/CMakeFiles/rpmis.dir/mis/upper_bounds.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/mis/upper_bounds.cc.o.d"
  "/root/repo/src/mis/verify.cc" "src/CMakeFiles/rpmis.dir/mis/verify.cc.o" "gcc" "src/CMakeFiles/rpmis.dir/mis/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
