# Empty compiler generated dependencies file for rpmis.
# This may be replaced when dependencies are built.
