// Shared plumbing for the experiment harness binaries.
//
// Every bench accepts `--fast` (subsample instances, shrink budgets) so
// the full suite can be smoke-tested quickly; default runs reproduce the
// EXPERIMENTS.md numbers.
#ifndef RPMIS_BENCH_BENCH_UTIL_H_
#define RPMIS_BENCH_BENCH_UTIL_H_

#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "benchkit/datasets.h"
#include "benchkit/table.h"
#include "graph/graph.h"
#include "mis/solution.h"
#include "mis/verify.h"
#include "support/assert.h"
#include "support/timer.h"

namespace rpmis::bench {

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Keeps the first `keep` specs in fast mode.
inline std::vector<DatasetSpec> MaybeSubsample(std::vector<DatasetSpec> specs,
                                               bool fast, size_t keep) {
  if (fast && specs.size() > keep) specs.resize(keep);
  return specs;
}

struct NamedAlgorithm {
  std::string name;
  std::function<MisSolution(const Graph&)> run;
};

/// Runs `algo` on g, validates the result, and returns it; aborts on an
/// invalid solution so a broken heuristic can never "win" a table.
inline MisSolution RunChecked(const NamedAlgorithm& algo, const Graph& g) {
  MisSolution sol = algo.run(g);
  RPMIS_ASSERT_MSG(IsMaximalIndependentSet(g, sol.in_set),
                   "bench algorithm produced an invalid solution");
  return sol;
}

inline void PrintHeader(const std::string& title, const std::string& claim) {
  std::cout << "\n=== " << title << " ===\n";
  if (!claim.empty()) std::cout << "Paper claim: " << claim << "\n";
  std::cout << std::endl;
}

}  // namespace rpmis::bench

#endif  // RPMIS_BENCH_BENCH_UTIL_H_
