// Shared plumbing for the experiment harness binaries.
//
// Every bench accepts `--fast` (subsample instances, shrink budgets) so
// the full suite can be smoke-tested quickly; default runs reproduce the
// EXPERIMENTS.md numbers. The solver benches additionally accept
// `--per-component` to run every algorithm component-wise with the
// parallel component scheduler (see mis/per_component.h).
#ifndef RPMIS_BENCH_BENCH_UTIL_H_
#define RPMIS_BENCH_BENCH_UTIL_H_

#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "benchkit/datasets.h"
#include "benchkit/obs_session.h"
#include "benchkit/run.h"
#include "benchkit/table.h"
#include "graph/graph.h"
#include "mis/per_component.h"
#include "mis/solution.h"
#include "mis/verify.h"
#include "support/assert.h"
#include "support/timer.h"

namespace rpmis::bench {

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Keeps the first `keep` specs in fast mode.
inline std::vector<DatasetSpec> MaybeSubsample(std::vector<DatasetSpec> specs,
                                               bool fast, size_t keep) {
  if (fast && specs.size() > keep) specs.resize(keep);
  return specs;
}

struct NamedAlgorithm {
  std::string name;
  std::function<MisSolution(const Graph&)> run;
};

/// With `enabled` (the shared --per-component flag), wraps every
/// algorithm to solve each connected component independently, components
/// scheduled across the support/parallel pool (RPMIS_THREADS-aware).
/// Results are identical to the plain run for component-local algorithms;
/// only the time/memory columns move. No-op when disabled.
inline std::vector<NamedAlgorithm> MaybePerComponent(
    std::vector<NamedAlgorithm> algos, bool enabled) {
  if (!enabled) return algos;
  for (NamedAlgorithm& algo : algos) {
    algo.run = [inner = std::move(algo.run)](const Graph& g) {
      return RunPerComponentParallel(g, inner);
    };
  }
  return algos;
}

/// Runs `algo` on g, validates the result, and returns it; aborts on an
/// invalid solution so a broken heuristic can never "win" a table.
inline MisSolution RunChecked(const NamedAlgorithm& algo, const Graph& g) {
  MisSolution sol = algo.run(g);
  RPMIS_ASSERT_MSG(IsMaximalIndependentSet(g, sol.in_set),
                   "bench algorithm produced an invalid solution");
  return sol;
}

inline void PrintHeader(const std::string& title, const std::string& claim) {
  std::cout << "\n=== " << title << " ===\n";
  if (!claim.empty()) std::cout << "Paper claim: " << claim << "\n";
  std::cout << std::endl;
}

struct MeasuredSolve {
  MisSolution sol;
  double seconds = 0.0;
};

/// RunChecked under a fresh observability run: the session's sinks are
/// installed for the solve, and one JSONL record (wall time, solution
/// counters, resource probe) is committed on return. The human table and
/// the machine record come from the same measurement.
inline MeasuredSolve MeasureChecked(ObsSession& obs, const NamedAlgorithm& algo,
                                    const Graph& g,
                                    const std::string& dataset) {
  ObsSession::Run run = obs.Start(algo.name, dataset, /*seed=*/0);
  Timer t;
  MeasuredSolve out;
  out.sol = RunChecked(algo, g);
  out.seconds = t.Seconds();
  run.NoteSeconds(out.seconds);
  run.NoteSolution(out.sol);
  return out;
}

/// Copies a fork-isolated measurement into `record`: wall and child CPU
/// time, paging activity, and the child's peak-RSS growth when VmHWM was
/// readable (absent otherwise, per the record contract).
inline void NoteChildMeasurement(RunRecord& record, const ChildMeasurement& m) {
  record.AddNumber("time.wall_seconds", m.seconds);
  if (!m.ok) {
    record.AddString("status", "fail");
    return;
  }
  record.AddNumber("time.child_utime_seconds", m.utime_seconds);
  record.AddNumber("time.child_stime_seconds", m.stime_seconds);
  record.AddNumber("mem.child_minor_faults",
                   static_cast<double>(m.minor_faults));
  record.AddNumber("mem.child_major_faults",
                   static_cast<double>(m.major_faults));
  if (m.rss_available) {
    record.AddNumber("mem.child_peak_rss_delta_kb",
                     static_cast<double>(m.peak_rss_delta_kb));
  }
}

}  // namespace rpmis::bench

#endif  // RPMIS_BENCH_BENCH_UTIL_H_
