// Table 4: gap of the non-iterative algorithms to the best result
// obtained by the local-search algorithms on the 8 hard instances.
//
// Expected shape mirrors Table 3: BDOne far better than Greedy/DU/SemiE,
// NearLinear generally the smallest gap (BDTwo occasionally better where
// folding bites and dominance does not).
#include <algorithm>

#include "baselines/du.h"
#include "baselines/greedy.h"
#include "baselines/semi_external.h"
#include "bench_util.h"
#include "localsearch/boosted.h"
#include "localsearch/redumis.h"
#include "mis/bdone.h"
#include "mis/bdtwo.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"

using namespace rpmis;

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  const bool per_component = bench::HasFlag(argc, argv, "--per-component");
  ObsSession obs("bench_table4", argc, argv);
  bench::PrintHeader(
      "Table 4 - gap to the best local-search result (hard instances)",
      "Greedy >> DU/SemiE >> BDOne > BDTwo/LinearTime > NearLinear (BDTwo "
      "wins occasionally); the paper's BDTwo runs out of memory on the 3 "
      "largest graphs.");

  const std::vector<bench::NamedAlgorithm> algos = bench::MaybePerComponent(
      {
          {"Greedy", [](const Graph& g) { return RunGreedy(g); }},
          {"DU", [](const Graph& g) { return RunDU(g); }},
          {"SemiE", [](const Graph& g) { return RunSemiE(g); }},
          {"BDOne", [](const Graph& g) { return RunBDOne(g); }},
          {"BDTwo", [](const Graph& g) { return RunBDTwo(g); }},
          {"LinearTime", [](const Graph& g) { return RunLinearTime(g); }},
          {"NearLinear", [](const Graph& g) { return RunNearLinear(g); }},
      },
      per_component);

  TablePrinter table({"Graph", "best", "Greedy", "DU", "SemiE", "BDOne",
                      "BDTwo", "LinearT", "NearLin"});
  for (const auto& spec : bench::MaybeSubsample(HardDatasets(), fast, 2)) {
    Graph g = LoadDataset(spec);
    // "Best result size obtained by the local search algorithms": ARW-NL
    // and the ReduMIS substitute with a scaled-down budget.
    uint64_t best = 0;
    {
      ObsSession::Run run = obs.Start("arw-nl", spec.name, /*seed=*/0);
      Timer t;
      BoostedOptions bo;
      bo.time_limit_seconds = fast ? 0.5 : 4.0;
      const uint64_t size = RunBoostedArw(g, BoostKind::kNearLinear, bo).size;
      run.NoteSeconds(t.Seconds());
      run.record().AddNumber("solution.size", static_cast<double>(size));
      best = std::max(best, size);
    }
    {
      ObsSession::Run run = obs.Start("redumis", spec.name, /*seed=*/0);
      Timer t;
      ReduMisOptions ro;
      ro.time_limit_seconds = fast ? 0.5 : 4.0;
      const uint64_t size = RunReduMis(g, ro).size;
      run.NoteSeconds(t.Seconds());
      run.record().AddNumber("solution.size", static_cast<double>(size));
      best = std::max(best, size);
    }
    std::vector<MisSolution> sols;
    for (const auto& algo : algos) {
      sols.push_back(bench::MeasureChecked(obs, algo, g, spec.name).sol);
      best = std::max(best, sols.back().size);  // heuristics can beat
                                                // short LS runs
    }
    std::vector<std::string> row{spec.name, FormatCount(best)};
    for (const MisSolution& sol : sols) {
      row.push_back(std::to_string(static_cast<int64_t>(best) -
                                   static_cast<int64_t>(sol.size)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
