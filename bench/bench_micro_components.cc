// Micro benchmarks (google-benchmark) for the library's substrates and
// algorithms, including the Table 1 complexity evidence: BDTwo's folding
// is super-linear on the Theorem 3.1 family while LinearTime stays linear.
#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "baselines/du.h"
#include "baselines/greedy.h"
#include "ds/bucket_queue.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "mis/bdone.h"
#include "mis/bdtwo.h"
#include "mis/linear_time.h"
#include "mis/lp_reduction.h"
#include "mis/near_linear.h"
#include "mis/per_component.h"

namespace rpmis {
namespace {

Graph& PowerLawFixture() {
  static Graph g = ChungLuPowerLaw(50000, 2.1, 5.0, /*seed=*/1);
  return g;
}

// 100k two-vertex components: the many-tiny-components regime where the
// old per-component extraction was quadratic (an O(n) renaming array per
// component).
Graph& ManyComponentsFixture() {
  static Graph g = [] {
    const Vertex pairs = 100000;
    std::vector<Edge> edges;
    edges.reserve(pairs);
    for (Vertex i = 0; i < pairs; ++i) edges.emplace_back(2 * i, 2 * i + 1);
    return Graph::FromEdges(2 * pairs, edges);
  }();
  return g;
}

// The pre-rewrite RunPerComponent, kept verbatim so the speedup of the
// shared-renaming extraction stays measurable: per component it copies
// the member slice and lets InducedSubgraph allocate and fill a fresh
// size-n map — O(n * #components) total.
MisSolution RunPerComponentQuadratic(
    const Graph& g, const std::function<MisSolution(const Graph&)>& algo) {
  const ComponentInfo cc = ConnectedComponents(g);
  MisSolution merged;
  merged.in_set.assign(g.NumVertices(), 0);
  merged.provably_maximum = true;
  for (Vertex c = 0; c < cc.num_components; ++c) {
    std::vector<Vertex> members(cc.members.begin() + cc.offsets[c],
                                cc.members.begin() + cc.offsets[c + 1]);
    std::vector<Vertex> old_to_new;
    const Graph sub = g.InducedSubgraph(members, &old_to_new);
    const MisSolution part = algo(sub);
    for (Vertex m : members) {
      if (part.in_set[old_to_new[m]]) merged.in_set[m] = 1;
    }
    merged.MergeStatsFrom(part);
  }
  return merged;
}

void BM_PerComponent_QuadraticOld(benchmark::State& state) {
  const Graph& g = ManyComponentsFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPerComponentQuadratic(
        g, [](const Graph& sub) { return RunLinearTime(sub); }));
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_PerComponent_QuadraticOld)->Unit(benchmark::kMillisecond);

void BM_PerComponent_Serial(benchmark::State& state) {
  const Graph& g = ManyComponentsFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPerComponent(
        g, [](const Graph& sub) { return RunLinearTime(sub); }));
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_PerComponent_Serial)->Unit(benchmark::kMillisecond);

void BM_PerComponent_Parallel(benchmark::State& state) {
  const Graph& g = ManyComponentsFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPerComponentParallel(
        g, [](const Graph& sub) { return RunLinearTime(sub); }));
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_PerComponent_Parallel)->Unit(benchmark::kMillisecond);

// The balanced-components regime where cross-component parallelism (not
// the extraction fix) is the win: a handful of mid-sized components.
void BM_PerComponent_MidComponents(benchmark::State& state) {
  static Graph g = [] {
    GraphBuilder b(16 * 20000);
    for (Vertex c = 0; c < 16; ++c) {
      const Graph part = ChungLuPowerLaw(20000, 2.1, 5.0, /*seed=*/c + 1);
      const Vertex base = c * 20000;
      for (const auto& [u, v] : part.CollectEdges()) b.AddEdge(base + u, base + v);
    }
    return b.Build();
  }();
  const bool parallel = state.range(0) != 0;
  for (auto _ : state) {
    const auto algo = [](const Graph& sub) { return RunLinearTime(sub); };
    benchmark::DoNotOptimize(parallel ? RunPerComponentParallel(g, algo)
                                      : RunPerComponent(g, algo));
  }
}
BENCHMARK(BM_PerComponent_MidComponents)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_BucketQueueChurn(benchmark::State& state) {
  const Vertex n = 10000;
  std::vector<uint32_t> keys(n);
  for (Vertex v = 0; v < n; ++v) keys[v] = v % 512;
  for (auto _ : state) {
    BucketQueue q = BucketQueue::FromKeys(keys, 512);
    while (!q.Empty()) benchmark::DoNotOptimize(q.PopMin());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BucketQueueChurn);

void BM_LazyMaxQueueDrain(benchmark::State& state) {
  const Vertex n = 10000;
  std::vector<uint32_t> keys(n);
  for (Vertex v = 0; v < n; ++v) keys[v] = v % 512;
  for (auto _ : state) {
    LazyMaxBucketQueue q(keys);
    Vertex v;
    auto key = [&](Vertex x) { return keys[x]; };
    auto alive = [](Vertex) { return true; };
    while ((v = q.PopMax(key, alive)) != kInvalidVertex) {
      benchmark::DoNotOptimize(v);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LazyMaxQueueDrain);

void BM_TriangleCounts(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdgeTriangleCounts(g));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_TriangleCounts);

void BM_LpReduction(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveLpReduction(g));
  }
}
BENCHMARK(BM_LpReduction);

void BM_Greedy(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) benchmark::DoNotOptimize(RunGreedy(g));
}
BENCHMARK(BM_Greedy);

void BM_DU(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) benchmark::DoNotOptimize(RunDU(g));
}
BENCHMARK(BM_DU);

void BM_BDOne(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) benchmark::DoNotOptimize(RunBDOne(g));
}
BENCHMARK(BM_BDOne);

void BM_LinearTime(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) benchmark::DoNotOptimize(RunLinearTime(g));
}
BENCHMARK(BM_LinearTime);

void BM_NearLinear(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) benchmark::DoNotOptimize(RunNearLinear(g));
}
BENCHMARK(BM_NearLinear);

// Theorem 3.1 family: BDTwo must grow super-linearly in k, LinearTime
// linearly. Compare the per-edge cost across the range.
void BM_Theorem31_BDTwo(benchmark::State& state) {
  Graph g = Theorem31Gadget(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(RunBDTwo(g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Theorem31_BDTwo)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)
    ->Complexity();

void BM_Theorem31_LinearTime(benchmark::State& state) {
  Graph g = Theorem31Gadget(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(RunLinearTime(g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Theorem31_LinearTime)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)
    ->Complexity();

}  // namespace
}  // namespace rpmis

BENCHMARK_MAIN();
