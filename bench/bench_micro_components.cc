// Micro benchmarks (google-benchmark) for the library's substrates and
// algorithms, including the Table 1 complexity evidence: BDTwo's folding
// is super-linear on the Theorem 3.1 family while LinearTime stays linear.
#include <benchmark/benchmark.h>

#include "baselines/du.h"
#include "baselines/greedy.h"
#include "ds/bucket_queue.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "mis/bdone.h"
#include "mis/bdtwo.h"
#include "mis/linear_time.h"
#include "mis/lp_reduction.h"
#include "mis/near_linear.h"

namespace rpmis {
namespace {

Graph& PowerLawFixture() {
  static Graph g = ChungLuPowerLaw(50000, 2.1, 5.0, /*seed=*/1);
  return g;
}

void BM_BucketQueueChurn(benchmark::State& state) {
  const Vertex n = 10000;
  std::vector<uint32_t> keys(n);
  for (Vertex v = 0; v < n; ++v) keys[v] = v % 512;
  for (auto _ : state) {
    BucketQueue q = BucketQueue::FromKeys(keys, 512);
    while (!q.Empty()) benchmark::DoNotOptimize(q.PopMin());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BucketQueueChurn);

void BM_LazyMaxQueueDrain(benchmark::State& state) {
  const Vertex n = 10000;
  std::vector<uint32_t> keys(n);
  for (Vertex v = 0; v < n; ++v) keys[v] = v % 512;
  for (auto _ : state) {
    LazyMaxBucketQueue q(keys);
    Vertex v;
    auto key = [&](Vertex x) { return keys[x]; };
    auto alive = [](Vertex) { return true; };
    while ((v = q.PopMax(key, alive)) != kInvalidVertex) {
      benchmark::DoNotOptimize(v);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LazyMaxQueueDrain);

void BM_TriangleCounts(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdgeTriangleCounts(g));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_TriangleCounts);

void BM_LpReduction(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveLpReduction(g));
  }
}
BENCHMARK(BM_LpReduction);

void BM_Greedy(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) benchmark::DoNotOptimize(RunGreedy(g));
}
BENCHMARK(BM_Greedy);

void BM_DU(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) benchmark::DoNotOptimize(RunDU(g));
}
BENCHMARK(BM_DU);

void BM_BDOne(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) benchmark::DoNotOptimize(RunBDOne(g));
}
BENCHMARK(BM_BDOne);

void BM_LinearTime(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) benchmark::DoNotOptimize(RunLinearTime(g));
}
BENCHMARK(BM_LinearTime);

void BM_NearLinear(benchmark::State& state) {
  const Graph& g = PowerLawFixture();
  for (auto _ : state) benchmark::DoNotOptimize(RunNearLinear(g));
}
BENCHMARK(BM_NearLinear);

// Theorem 3.1 family: BDTwo must grow super-linearly in k, LinearTime
// linearly. Compare the per-edge cost across the range.
void BM_Theorem31_BDTwo(benchmark::State& state) {
  Graph g = Theorem31Gadget(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(RunBDTwo(g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Theorem31_BDTwo)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)
    ->Complexity();

void BM_Theorem31_LinearTime(benchmark::State& state) {
  Graph g = Theorem31Gadget(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(RunLinearTime(g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Theorem31_LinearTime)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)
    ->Complexity();

}  // namespace
}  // namespace rpmis

BENCHMARK_MAIN();
