// Figure 15 (appendix): convergence of the local-search algorithms on the
// other four hard instances — cnr-2000, eu-2005, uk-2002, uk-2005. Same
// harness as Figure 10; the paper reports ARW-NL first-solution accuracy
// of 99.908% / 99.949% / 99.973% / 99.962% on these.
#include "baselines/du.h"
#include "bench_util.h"
#include "localsearch/arw.h"
#include "localsearch/boosted.h"
#include "localsearch/online_mis.h"
#include "localsearch/redumis.h"

using namespace rpmis;

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  ObsSession obs("bench_fig15", argc, argv);
  bench::PrintHeader(
      "Figure 15 - local-search convergence (cnr-2000, eu-2005, uk-2002, "
      "uk-2005)",
      "Same trend as Figure 10: ARW-NL first solutions within ~0.1% of the "
      "best; boosted variants dominate.");

  const double budget = fast ? 0.5 : 4.0;
  std::vector<std::string> graphs{"cnr-2000", "eu-2005", "uk-2002",
                                  "uk-2005"};
  if (fast) graphs.resize(1);

  TablePrinter table({"Graph", "ARW", "OnlineMIS", "ReduMIS", "ARW-LT",
                      "ARW-NL", "NL-first acc"});
  for (const std::string& name : graphs) {
    Graph g = LoadDataset(DatasetByName(name));
    // Each run commits one JSONL record (final size, wall time, samples
    // when --progress is on).
    const auto measure = [&](const std::string& algorithm, auto&& solve) {
      ObsSession::Run run = obs.Start(algorithm, name, /*seed=*/0);
      Timer t;
      const auto r = solve();
      run.NoteSeconds(t.Seconds());
      run.record().AddNumber("solution.size", static_cast<double>(r.size));
      return r;
    };
    uint64_t arw, online, redu, lt, nl, nl_first;
    arw = measure("arw", [&] {
            ArwOptions o;
            o.time_limit_seconds = budget;
            return RunArw(g, RunDU(g).in_set, o);
          }).size;
    online = measure("onlinemis", [&] {
               OnlineMisOptions o;
               o.time_limit_seconds = budget;
               return RunOnlineMis(g, o);
             }).size;
    redu = measure("redumis", [&] {
             ReduMisOptions o;
             o.time_limit_seconds = budget;
             return RunReduMis(g, o);
           }).size;
    lt = measure("arw-lt", [&] {
           BoostedOptions o;
           o.time_limit_seconds = budget;
           return RunBoostedArw(g, BoostKind::kLinearTime, o);
         }).size;
    {
      BoostedResult r = measure("arw-nl", [&] {
        BoostedOptions o;
        o.time_limit_seconds = budget;
        return RunBoostedArw(g, BoostKind::kNearLinear, o);
      });
      nl = r.size;
      nl_first = r.history.empty() ? r.size : r.history.front().size;
    }
    const uint64_t best = std::max({arw, online, redu, lt, nl});
    table.AddRow({name, FormatCount(arw), FormatCount(online),
                  FormatCount(redu), FormatCount(lt), FormatCount(nl),
                  FormatPercent(static_cast<double>(nl_first) / best)});
  }
  table.Print(std::cout);
  std::cout << "(final sizes after equal budgets; NL-first acc = ARW-NL's "
               "first reported solution vs the best of all runs)\n";
  return 0;
}
