// Compaction micro-benchmark: NearLinear end-to-end with the mid-run
// compaction engine (default) versus the `--no-compaction` escape hatch,
// on a Chung–Lu power-law graph (default ≥10M edges; --fast: ~2M).
//
// Both sides must produce byte-identical solutions — the bench exits
// non-zero on any mismatch, so the --fast run doubles as a ctest smoke
// for the mapping stack. The LP prepass is disabled here because it runs
// once, before the peeling loop, on the identical kernel either way: it
// adds equal time to both sides and only dilutes the effect under test.
// Per-run counters (rebuilds, slots scanned vs kept) come from the same
// `--stats` plumbing mis_cli uses.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "benchkit/stats.h"
#include "benchkit/table.h"
#include "graph/generators.h"
#include "mis/near_linear.h"
#include "support/parallel.h"
#include "support/timer.h"

namespace rpmis::bench {
namespace {

struct Side {
  std::string label;
  double seconds = 0.0;  // best over reps
  MisSolution sol;       // from the last rep (all reps identical)
};

Side Run(ObsSession& obs, const std::string& label, const Graph& g,
         bool compaction, double threshold, int reps) {
  Side out;
  out.label = label;
  for (int r = 0; r < reps; ++r) {
    NearLinearOptions opt;
    opt.lp_reduction = false;
    opt.compaction.enabled = compaction;
    opt.compaction.threshold = threshold;
    ObsSession::Run run = obs.Start("nearlinear", "chung-lu-powerlaw", 42);
    run.record().AddString("config", label);
    Timer t;
    MisSolution sol = RunNearLinear(g, nullptr, opt);
    const double s = t.Seconds();
    run.NoteSeconds(s);
    run.NoteSolution(sol);
    if (r == 0 || s < out.seconds) out.seconds = s;
    out.sol = std::move(sol);
  }
  return out;
}

std::string Fmt(double v, const char* spec = "%.2f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace
}  // namespace rpmis::bench

int main(int argc, char** argv) {
  using namespace rpmis;
  using namespace rpmis::bench;

  const bool fast = HasFlag(argc, argv, "--fast");
  const Vertex n = fast ? 200'000 : 1'000'000;
  const int reps = fast ? 1 : 3;
  ObsSession obs("bench_micro_compaction", argc, argv);

  PrintHeader("micro: mid-run compaction (NearLinear)",
              "rebuilding the alive subgraph keeps reduction/peeling scans "
              "on live data; solutions stay byte-identical");

  std::printf("generating Chung-Lu power-law (n=%llu, beta=3.5, avg=20) ...\n",
              static_cast<unsigned long long>(n));
  const Graph g = ChungLuPowerLaw(n, 3.5, 20.0, 42);
  std::printf("n=%llu m=%llu threads=%zu reps=%d (best-of)\n",
              static_cast<unsigned long long>(g.NumVertices()),
              static_cast<unsigned long long>(g.NumEdges()), NumThreads(),
              reps);

  std::vector<Side> sides;
  sides.push_back(Run(obs, "compaction (thr=0.5)", g, true, 0.5, reps));
  sides.push_back(Run(obs, "no-compaction", g, false, 0.5, reps));

  TablePrinter table(
      {"config", "sec", "rebuilds", "slots scanned", "slots kept"});
  for (const Side& s : sides) {
    const CompactionStats& c = s.sol.compaction;
    table.AddRow({s.label, Fmt(s.seconds),
                  std::to_string(c.compactions),
                  std::to_string(c.slots_scanned),
                  std::to_string(c.slots_kept)});
  }
  table.Print(std::cout);

  const Side& on = sides[0];
  const Side& off = sides[1];
  const bool identical = on.sol.in_set == off.sol.in_set &&
                         on.sol.size == off.sol.size;
  std::printf("\nsolutions byte-identical: %s (size %llu)\n",
              identical ? "yes" : "NO (BUG)",
              static_cast<unsigned long long>(on.sol.size));

  const double ratio = on.seconds > 0 ? off.seconds / on.seconds : 0.0;
  std::printf("end-to-end speedup (no-compaction / compaction): %.2fx %s\n",
              ratio, ratio >= 2.0 ? "(>= 2x: PASS)" : "(< 2x)");

  std::printf("\nper-run counters (compaction side):\n%s",
              FormatSolverStats(on.sol).c_str());

  return identical ? 0 : 1;
}
