// Table 2: statistics of the evaluation graphs.
//
// Prints the dataset suite (synthetic stand-ins for the paper's 20 real
// graphs; DESIGN.md §4) alongside the original graphs' sizes for
// reference. The reproduced property is the FAMILY SHAPE: power-law
// degree distributions with a large degree-<=2 population and a heavy hub
// tail — the structure Reducing-Peeling exploits.
#include "bench_util.h"
#include "graph/algorithms.h"

using namespace rpmis;

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  ObsSession obs("bench_table2", argc, argv);
  bench::PrintHeader("Table 2 - dataset statistics",
                     "20 power-law graphs, average degree 2.75 - 115, "
                     "sorted by edge count; many low-degree vertices.");

  TablePrinter table({"Graph", "kind", "n", "m", "avg d", "max d", "deg<=2",
                      "paper n", "paper m"});
  for (const auto& spec :
       bench::MaybeSubsample(AllDatasets(), fast, 6)) {
    Graph g = LoadDataset(spec);
    DegreeStats s = ComputeDegreeStats(g);
    ObsSession::Run run = obs.Start("stats", spec.name, /*seed=*/0);
    run.record().AddNumber("graph.vertices",
                           static_cast<double>(g.NumVertices()));
    run.record().AddNumber("graph.edges", static_cast<double>(g.NumEdges()));
    run.record().AddNumber("graph.avg_degree", s.avg_degree);
    run.record().AddNumber("graph.max_degree",
                           static_cast<double>(s.max_degree));
    run.record().AddNumber("graph.degree_le2",
                           static_cast<double>(s.num_degree_le2));
    table.AddRow({spec.name, spec.hard ? "hard" : "easy",
                  FormatCount(g.NumVertices()), FormatCount(g.NumEdges()),
                  FormatDouble(s.avg_degree, 2), FormatCount(s.max_degree),
                  FormatPercent(static_cast<double>(s.num_degree_le2) /
                                    std::max<Vertex>(1, g.NumVertices()),
                                1),
                  FormatCount(spec.paper_n), FormatCount(spec.paper_m)});
  }
  table.Print(std::cout);
  return 0;
}
