// Table 7: upper bounds on the independence number — the "best existing"
// bound of [1] (min of clique-cover, LP and cycle-cover, computed on the
// input graph) versus NearLinear's free Theorem 6.1 bound |I| + |R|.
//
// Expected shape: NearLinear's bound is slightly tighter (never looser by
// more than a whisker) and costs nothing extra.
#include "bench_util.h"
#include "mis/near_linear.h"
#include "mis/upper_bounds.h"

using namespace rpmis;

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  ObsSession obs("bench_table7", argc, argv);
  bench::PrintHeader(
      "Table 7 - upper bounds: existing (clique/LP/cycle cover) vs "
      "NearLinear's |I| + |R|",
      "NearLinear reports a slightly tighter upper bound, obtained as a "
      "by-product without any extra cost.");

  TablePrinter table({"Graph", "CliqueCov", "LP", "CycleCov", "Existing",
                      "Ours (|I|+|R|)", "|I| (lower)"});
  for (const auto& spec : bench::MaybeSubsample(EasyDatasets(), fast, 3)) {
    Graph g = LoadDataset(spec);
    const uint64_t clique = CliqueCoverBound(g);
    const uint64_t lp = LpUpperBound(g);
    const uint64_t cycle = CycleCoverBound(g);
    const uint64_t existing = std::min({clique, lp, cycle});
    ObsSession::Run run = obs.Start("nearlinear", spec.name, /*seed=*/0);
    Timer t;
    const MisSolution nl = RunNearLinear(g);
    run.NoteSeconds(t.Seconds());
    run.NoteSolution(nl);
    run.record().AddNumber("bound.clique_cover", static_cast<double>(clique));
    run.record().AddNumber("bound.lp", static_cast<double>(lp));
    run.record().AddNumber("bound.cycle_cover", static_cast<double>(cycle));
    run.record().AddNumber("bound.existing_best",
                           static_cast<double>(existing));
    table.AddRow({spec.name, FormatCount(clique), FormatCount(lp),
                  FormatCount(cycle), FormatCount(existing),
                  FormatCount(nl.UpperBound()), FormatCount(nl.size)});
  }
  table.Print(std::cout);
  return 0;
}
