// Table 5: power-law random graphs PLR1..PLR9 with growth exponent
// beta = 1.9 .. 2.7 (scaled from the paper's 10^7 vertices). Gaps of
// Greedy, DU, SemiE and BDOne to the independence number.
//
// Expected shape: "power-law random graphs are actually very easy":
// BDOne certifies a maximum independent set on every instance (gap 0*);
// DU also reaches gap 0 but cannot certify it; Greedy and SemiE leave
// real gaps.
#include "baselines/du.h"
#include "baselines/greedy.h"
#include "baselines/semi_external.h"
#include "bench_util.h"
#include "exact/vc_solver.h"
#include "graph/generators.h"
#include "mis/bdone.h"

using namespace rpmis;

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  const bool per_component = bench::HasFlag(argc, argv, "--per-component");
  ObsSession obs("bench_table5", argc, argv);
  bench::PrintHeader(
      "Table 5 - power-law random graphs, beta = 1.9 .. 2.7",
      "BDOne reports certified maximum independent sets (0*) on all PLR "
      "graphs; DU hits 0 without a certificate; Greedy/SemiE leave gaps.");

  const Vertex n = fast ? 20000 : 200000;
  const std::vector<bench::NamedAlgorithm> algos = bench::MaybePerComponent(
      {
          {"Greedy", [](const Graph& g) { return RunGreedy(g); }},
          {"DU", [](const Graph& g) { return RunDU(g); }},
          {"SemiE", [](const Graph& g) { return RunSemiE(g); }},
          {"BDOne", [](const Graph& g) { return RunBDOne(g); }},
      },
      per_component);

  TablePrinter table(
      {"Graph", "beta", "alpha", "Greedy", "DU", "SemiE", "BDOne"});
  int index = 1;
  for (double beta = 1.9; beta < 2.75; beta += 0.1, ++index) {
    if (fast && index > 3) break;
    std::string dataset = "PLR";
    dataset += std::to_string(index);
    const uint64_t seed = 500 + static_cast<uint64_t>(index);
    Graph g = ChungLuPowerLaw(n, beta, 3.0, seed);
    VcSolverOptions exact_opt;
    exact_opt.time_limit_seconds = fast ? 5.0 : 30.0;
    VcSolverResult exact;
    {
      ObsSession::Run run = obs.Start("exact", dataset, seed);
      Timer t;
      exact = SolveExactMis(g, exact_opt);
      run.NoteSeconds(t.Seconds());
      run.record().AddNumber("solution.size", static_cast<double>(exact.size));
      run.record().AddNumber("exact.proven_optimal",
                             exact.proven_optimal ? 1.0 : 0.0);
    }
    std::vector<std::string> row{dataset, FormatDouble(beta, 1),
                                 (exact.proven_optimal ? "" : ">=") +
                                     FormatCount(exact.size)};
    for (const auto& algo : algos) {
      const MisSolution sol = bench::MeasureChecked(obs, algo, g, dataset).sol;
      std::string cell = std::to_string(static_cast<int64_t>(exact.size) -
                                        static_cast<int64_t>(sol.size));
      if (sol.provably_maximum) cell += "*";
      row.push_back(std::move(cell));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "(* = certified maximum via Theorem 6.1 with empty residual)\n";
  return 0;
}
