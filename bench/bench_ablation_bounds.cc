// Ablation (§6 extension): guiding the exact branch-and-reduce solver
// with NearLinear's Theorem 6.1 upper bound.
//
// On uniform random graphs whose kernels require real branching, the
// tighter free bound (plus the warm-start incumbent) should cut branch
// nodes without ever changing the optimum.
#include "bench_util.h"
#include "exact/vc_solver.h"
#include "graph/generators.h"

using namespace rpmis;

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  ObsSession obs("bench_ablation_bounds", argc, argv);
  bench::PrintHeader(
      "Ablation - exact solver guided by the Theorem 6.1 bound (§6)",
      "A tighter upper bound prunes unpromising branches early; the "
      "optimum never changes.");

  TablePrinter table({"Graph", "plain nodes", "plain time", "guided nodes",
                      "guided time", "same optimum"});
  const Vertex n = fast ? 200 : 700;
  for (uint64_t seed = 1; seed <= (fast ? 2u : 4u); ++seed) {
    Graph g = ErdosRenyiGnm(n, 3 * n, seed * 11);
    std::string name = "Gnm-";
    name += std::to_string(n);
    name += "-s";
    name += std::to_string(seed);
    VcSolverOptions plain, guided;
    plain.time_limit_seconds = guided.time_limit_seconds = fast ? 5 : 30;
    guided.use_reducing_peeling_bound = true;
    // One record per configuration, tagged via the config string.
    const auto solve = [&](const char* config, const VcSolverOptions& opt) {
      ObsSession::Run run = obs.Start("exact", name, seed);
      run.record().AddString("config", config);
      const VcSolverResult r = SolveExactMis(g, opt);
      run.NoteSeconds(r.seconds);
      run.record().AddNumber("solution.size", static_cast<double>(r.size));
      run.record().AddNumber("exact.branch_nodes",
                             static_cast<double>(r.branch_nodes));
      run.record().AddNumber("exact.proven_optimal",
                             r.proven_optimal ? 1.0 : 0.0);
      return r;
    };
    const VcSolverResult a = solve("plain", plain);
    const VcSolverResult b = solve("theorem61-bound", guided);
    std::string a_nodes = FormatCount(a.branch_nodes);
    if (!a.proven_optimal) a_nodes.push_back('+');
    std::string b_nodes = FormatCount(b.branch_nodes);
    if (!b.proven_optimal) b_nodes.push_back('+');
    // "same optimum" is only meaningful when both searches completed;
    // capped runs merely compare incumbents.
    std::string same;
    if (a.proven_optimal && b.proven_optimal) {
      same = a.size == b.size ? "yes" : "NO";
    } else {
      same = a.size == b.size ? "capped, =" : "capped, !=";
    }
    table.AddRow({std::move(name), std::move(a_nodes), FormatSeconds(a.seconds),
                  std::move(b_nodes), FormatSeconds(b.seconds), std::move(same)});
  }
  table.Print(std::cout);
  std::cout << "('+' marks runs cut off by the budget; capped rows compare "
               "best-found incumbents, not optima)\n";
  return 0;
}
