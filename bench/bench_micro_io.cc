// Ingest micro-benchmark: throughput (MB/s and edges/s) of every graph
// reader, the legacy-vs-fast edge-list parser ratio, the binary sidecar
// cache, and the serial-vs-parallel CSR build.
//
// The paper's premise is linear-time MIS on graphs with billions of
// edges; this bench verifies that loading a Table-2-scale dataset no
// longer dwarfs the solve time. Default scale is a 10M-edge power-law-ish
// G(n, m) graph (--fast: 1M edges). Thread count for the parallel stages
// follows RPMIS_THREADS.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "benchkit/table.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "support/parallel.h"
#include "support/timer.h"

namespace rpmis::bench {
namespace {

namespace fs = std::filesystem;

struct Throughput {
  double seconds = 0.0;
  uint64_t bytes = 0;
  uint64_t edges = 0;
};

double MbPerSec(const Throughput& t) {
  return t.seconds > 0 ? static_cast<double>(t.bytes) / 1e6 / t.seconds : 0.0;
}
double MEdgesPerSec(const Throughput& t) {
  return t.seconds > 0 ? static_cast<double>(t.edges) / 1e6 / t.seconds : 0.0;
}

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

/// Best-of-`reps` wall time for one full read of `path` via `read`.
Throughput Measure(const std::string& path, int reps,
                   const std::function<Graph(const std::string&)>& read) {
  Throughput best;
  best.bytes = fs::file_size(path);
  for (int r = 0; r < reps; ++r) {
    Timer t;
    Graph g = read(path);
    const double s = t.Seconds();
    if (r == 0 || s < best.seconds) best.seconds = s;
    best.edges = g.NumEdges();
  }
  return best;
}

bool SameCsr(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  for (Vertex v = 0; v < a.NumVertices(); ++v) {
    if (a.EdgeBegin(v) != b.EdgeBegin(v)) return false;
    const auto na = a.Neighbors(v);
    const auto nb = b.Neighbors(v);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

}  // namespace
}  // namespace rpmis::bench

int main(int argc, char** argv) {
  using namespace rpmis;
  using namespace rpmis::bench;

  const bool fast = HasFlag(argc, argv, "--fast");
  const uint64_t target_edges = fast ? 1'000'000 : 10'000'000;
  const Vertex n = static_cast<Vertex>(target_edges / 5);
  const int reps = fast ? 1 : 2;
  // Constructed before any file I/O so --trace covers the ingest spans.
  ObsSession obs("bench_micro_io", argc, argv);

  PrintHeader("micro: graph ingest throughput",
              "I/O must run at disk/memory speed so solve time dominates "
              "even on Table-2-scale graphs");

  std::printf("generating G(n=%llu, m=%llu) ...\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(target_edges));
  Graph g = ErdosRenyiGnm(n, target_edges, /*seed=*/7);

  const std::string dir =
      (fs::temp_directory_path() / "rpmis_bench_micro_io").string();
  fs::create_directories(dir);
  const std::string el = dir + "/g.txt";
  const std::string dimacs = dir + "/g.dimacs";
  const std::string metis = dir + "/g.graph";
  const std::string binary = dir + "/g.rpmi";

  std::printf("writing %llu edges in 4 formats ...\n",
              static_cast<unsigned long long>(g.NumEdges()));
  WriteEdgeListFile(g, el);
  {
    std::ofstream out(dimacs);
    WriteDimacs(g, out);
    std::ofstream out2(metis);
    WriteMetis(g, out2);
  }
  WriteBinaryFile(g, binary);

  std::vector<std::pair<std::string, Throughput>> rows;
  rows.emplace_back("edge list (legacy stream)",
                    Measure(el, reps, [](const std::string& p) {
                      std::ifstream in(p);
                      return ReadEdgeList(in);
                    }));
  rows.emplace_back("edge list (fast mmap)", Measure(el, reps, [](const std::string& p) {
                      return ReadEdgeListFile(p);
                    }));
  rows.emplace_back("DIMACS (fast mmap)", Measure(dimacs, reps, [](const std::string& p) {
                      return ReadDimacsFile(p);
                    }));
  rows.emplace_back("METIS (fast mmap)", Measure(metis, reps, [](const std::string& p) {
                      return ReadMetisFile(p);
                    }));
  rows.emplace_back("binary CSR", Measure(binary, reps, [](const std::string& p) {
                      return ReadBinaryFile(p);
                    }));
  // LoadGraphFile twice: the first call parses the text and writes the
  // sidecar cache, the second hits it.
  fs::remove(GraphCachePath(el));
  rows.emplace_back("LoadGraphFile (cold, writes cache)",
                    Measure(el, 1, [](const std::string& p) {
                      return LoadGraphFile(p);
                    }));
  rows.emplace_back("LoadGraphFile (warm cache)",
                    Measure(el, reps, [](const std::string& p) {
                      return LoadGraphFile(p);
                    }));

  TablePrinter table({"reader", "MB", "sec", "MB/s", "Medges/s"});
  for (const auto& [name, t] : rows) {
    // The machine twin of the table row: one record per reader.
    ObsSession::Run run = obs.Start("ingest", name, /*seed=*/7);
    run.NoteSeconds(t.seconds);
    run.record().AddNumber("io.bytes", static_cast<double>(t.bytes));
    run.record().AddNumber("io.edges", static_cast<double>(t.edges));
    run.record().AddNumber("io.mb_per_s", MbPerSec(t));
    run.record().AddNumber("io.medges_per_s", MEdgesPerSec(t));
    table.AddRow({name, Fmt(static_cast<double>(t.bytes) / 1e6),
                  Fmt(t.seconds * 1000) + "ms", Fmt(MbPerSec(t)),
                  Fmt(MEdgesPerSec(t))});
  }
  table.Print(std::cout);

  const double legacy_s = rows[0].second.seconds;
  const double fast_s = rows[1].second.seconds;
  std::printf("\nedge-list speedup (legacy / fast): %.2fx %s\n",
              legacy_s / fast_s,
              legacy_s / fast_s >= 5.0 ? "(>= 5x: PASS)" : "(< 5x)");

  // CSR build: serial vs parallel on the same edge multiset, and the
  // determinism contract (byte-identical CSR regardless of thread count).
  std::vector<Edge> edges = g.CollectEdges();
  Timer ts;
  Graph serial = Graph::FromEdgesSerial(g.NumVertices(), edges);
  const double serial_s = ts.Seconds();
  ts.Restart();
  Graph parallel = Graph::FromEdgesParallel(g.NumVertices(), edges);
  const double parallel_s = ts.Seconds();
  std::printf(
      "\nFromEdges (%llu edges): serial %.0fms, parallel %.0fms "
      "(%zu threads), CSR identical: %s\n",
      static_cast<unsigned long long>(edges.size()), serial_s * 1000,
      parallel_s * 1000, NumThreads(),
      SameCsr(serial, parallel) ? "yes" : "NO (BUG)");

  fs::remove_all(dir);
  return 0;
}
