// Table 6: uniform random graphs R1..R5 with average degree 2 .. 3
// (G(n, m); scaled from the paper's 10^6 vertices). Gaps of DU, SemiE,
// BDOne, BDTwo and NearLinear to the best result.
//
// Expected shape: our algorithms certify optimal solutions on the
// sparsest instances (R1-R3); around average degree 2.75-3 the kernels
// stop collapsing and small gaps appear (the paper's R5 defeats even its
// exact solver).
#include <algorithm>

#include "baselines/du.h"
#include "baselines/semi_external.h"
#include "bench_util.h"
#include "exact/vc_solver.h"
#include "graph/generators.h"
#include "mis/bdone.h"
#include "mis/bdtwo.h"
#include "mis/near_linear.h"

using namespace rpmis;

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  const bool per_component = bench::HasFlag(argc, argv, "--per-component");
  ObsSession obs("bench_table6", argc, argv);
  bench::PrintHeader(
      "Table 6 - uniform random graphs, average degree 2.00 .. 3.00",
      "All our algorithms certify optima on R1-R3; R4/R5 leave small gaps "
      "with NearLinear/BDTwo closest.");

  const Vertex n = fast ? 20000 : 200000;
  const std::vector<bench::NamedAlgorithm> algos = bench::MaybePerComponent(
      {
          {"DU", [](const Graph& g) { return RunDU(g); }},
          {"SemiE", [](const Graph& g) { return RunSemiE(g); }},
          {"BDOne", [](const Graph& g) { return RunBDOne(g); }},
          {"BDTwo", [](const Graph& g) { return RunBDTwo(g); }},
          {"NearLinear", [](const Graph& g) { return RunNearLinear(g); }},
      },
      per_component);

  TablePrinter table({"Graph", "avg d", "best", "DU", "SemiE", "BDOne",
                      "BDTwo", "NearLin"});
  const double avg_degrees[] = {2.0, 2.25, 2.5, 2.75, 3.0};
  int index = 1;
  for (double d : avg_degrees) {
    if (fast && index > 3) break;
    std::string dataset = "R";
    dataset += std::to_string(index);
    const uint64_t seed = 600 + static_cast<uint64_t>(index);
    Graph g = ErdosRenyiGnm(n, static_cast<uint64_t>(n * d / 2), seed);
    VcSolverOptions exact_opt;
    exact_opt.time_limit_seconds = fast ? 5.0 : 30.0;
    VcSolverResult exact;
    {
      ObsSession::Run run = obs.Start("exact", dataset, seed);
      Timer t;
      exact = SolveExactMis(g, exact_opt);
      run.NoteSeconds(t.Seconds());
      run.record().AddNumber("solution.size", static_cast<double>(exact.size));
      run.record().AddNumber("exact.proven_optimal",
                             exact.proven_optimal ? 1.0 : 0.0);
    }

    std::vector<MisSolution> sols;
    uint64_t best = exact.size;
    for (const auto& algo : algos) {
      sols.push_back(bench::MeasureChecked(obs, algo, g, dataset).sol);
      best = std::max(best, sols.back().size);
    }
    std::string best_cell = FormatCount(best);
    if (!exact.proven_optimal) best_cell.insert(0, ">=");
    std::vector<std::string> row{dataset, FormatDouble(d, 2),
                                 std::move(best_cell)};
    for (const MisSolution& sol : sols) {
      std::string cell = std::to_string(static_cast<int64_t>(best) -
                                        static_cast<int64_t>(sol.size));
      if (sol.provably_maximum) cell.push_back('*');
      row.push_back(std::move(cell));
    }
    table.AddRow(std::move(row));
    ++index;
  }
  table.Print(std::cout);
  std::cout << "(* = certified maximum via Theorem 6.1 with empty residual)\n";
  return 0;
}
