// Eval-III (Figure 9): kernelization time and kernel size — LinearTime
// and NearLinear kernels versus KernelReduMIS (the full Akiba–Iwata rule
// set, mis/kernelizer.h).
//
// Expected shape: KernelReduMIS computes the smallest kernel but costs
// far more time; LinearTime is fastest with the largest kernel;
// NearLinear sits between on both axes.
#include "bench_util.h"
#include "mis/kernelizer.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"

using namespace rpmis;

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  ObsSession obs("bench_fig9", argc, argv);
  bench::PrintHeader(
      "Figure 9 / Eval-III - kernelization time and kernel size",
      "KernelReduMIS: smallest kernel, much slower; LinearTime: fastest, "
      "largest kernel; NearLinear: between on both axes.");

  TablePrinter table({"Graph", "LT time", "LT kernel", "NL time", "NL kernel",
                      "Full time", "Full kernel"});
  std::vector<DatasetSpec> specs = EasyDatasets();
  for (auto& h : HardDatasets()) specs.push_back(h);
  for (const auto& spec : bench::MaybeSubsample(specs, fast, 3)) {
    Graph g = LoadDataset(spec);
    double lt_time, nl_time, full_time;
    MisSolution lt, nl;
    uint64_t full_kernel_n = 0;
    {
      ObsSession::Run run = obs.Start("lineartime", spec.name, /*seed=*/0);
      Timer t;
      lt = RunLinearTime(g);
      lt_time = t.Seconds();
      run.NoteSeconds(lt_time);
      run.NoteSolution(lt);
    }
    {
      ObsSession::Run run = obs.Start("nearlinear", spec.name, /*seed=*/0);
      Timer t;
      nl = RunNearLinear(g);
      nl_time = t.Seconds();
      run.NoteSeconds(nl_time);
      run.NoteSolution(nl);
    }
    {
      ObsSession::Run run = obs.Start("kernelredumis", spec.name, /*seed=*/0);
      Timer t;
      Kernelizer full(g);
      full.Run();
      full_time = t.Seconds();
      full_kernel_n = full.Kernel().NumVertices();
      run.NoteSeconds(full_time);
      run.record().AddNumber("kernel.vertices",
                             static_cast<double>(full_kernel_n));
      run.record().AddNumber("kernel.edges",
                             static_cast<double>(full.Kernel().NumEdges()));
    }

    table.AddRow({spec.name, FormatSeconds(lt_time),
                  FormatCount(lt.kernel_vertices), FormatSeconds(nl_time),
                  FormatCount(nl.kernel_vertices), FormatSeconds(full_time),
                  FormatCount(full_kernel_n)});
  }
  table.Print(std::cout);
  std::cout << "(kernel = remaining vertices when the first peel would be "
               "needed; 0 means solved by exact reductions alone)\n";
  return 0;
}
