// Eval-III (Figure 9): kernelization time and kernel size — LinearTime
// and NearLinear kernels versus KernelReduMIS (the full Akiba–Iwata rule
// set, mis/kernelizer.h).
//
// Expected shape: KernelReduMIS computes the smallest kernel but costs
// far more time; LinearTime is fastest with the largest kernel;
// NearLinear sits between on both axes.
#include "bench_util.h"
#include "mis/kernelizer.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"

using namespace rpmis;

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  bench::PrintHeader(
      "Figure 9 / Eval-III - kernelization time and kernel size",
      "KernelReduMIS: smallest kernel, much slower; LinearTime: fastest, "
      "largest kernel; NearLinear: between on both axes.");

  TablePrinter table({"Graph", "LT time", "LT kernel", "NL time", "NL kernel",
                      "Full time", "Full kernel"});
  std::vector<DatasetSpec> specs = EasyDatasets();
  for (auto& h : HardDatasets()) specs.push_back(h);
  for (const auto& spec : bench::MaybeSubsample(specs, fast, 3)) {
    Graph g = LoadDataset(spec);
    Timer t1;
    MisSolution lt = RunLinearTime(g);
    const double lt_time = t1.Seconds();

    Timer t2;
    MisSolution nl = RunNearLinear(g);
    const double nl_time = t2.Seconds();

    Timer t3;
    Kernelizer full(g);
    full.Run();
    const double full_time = t3.Seconds();

    table.AddRow({spec.name, FormatSeconds(lt_time),
                  FormatCount(lt.kernel_vertices), FormatSeconds(nl_time),
                  FormatCount(nl.kernel_vertices), FormatSeconds(full_time),
                  FormatCount(full.Kernel().NumVertices())});
  }
  table.Print(std::cout);
  std::cout << "(kernel = remaining vertices when the first peel would be "
               "needed; 0 means solved by exact reductions alone)\n";
  return 0;
}
