// Dynamic-update micro-benchmark: per-update cost of the dynamic engine
// versus a from-scratch LinearTime re-solve, on a Chung–Lu power-law
// graph (default n=1M avg deg 20, ~10M edges; --fast: n=200k avg 10,
// ~1M edges — still over the 1M-edge acceptance floor).
//
// The headline criterion is exit-code enforced so the --fast run doubles
// as a ctest smoke: the mean single-edge update must be at least 10x
// faster than one from-scratch solve, and the maintained set must stay a
// valid MIS within 1% of a from-scratch solve of the final graph. One
// JSONL run record per measured phase (--records), with the engine's
// dynamic.* counters and latency histogram in the dynamic record.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "benchkit/stats.h"
#include "dynamic/engine.h"
#include "dynamic/update.h"
#include "graph/generators.h"
#include "mis/linear_time.h"
#include "mis/verify.h"
#include "support/parallel.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace rpmis;
  using namespace rpmis::bench;

  const bool fast = HasFlag(argc, argv, "--fast");
  const Vertex n = fast ? 200'000 : 1'000'000;
  const double avg_degree = fast ? 10.0 : 20.0;
  const size_t num_updates = fast ? 2'000 : 10'000;
  const int reps = fast ? 1 : 3;
  ObsSession obs("bench_micro_dynamic", argc, argv);

  PrintHeader("micro: dynamic updates (engine vs from-scratch)",
              "cone-local repair makes one edge update orders of magnitude "
              "cheaper than re-running LinearTime");

  std::printf("generating Chung-Lu power-law (n=%llu, beta=3.5, avg=%.0f) ...\n",
              static_cast<unsigned long long>(n), avg_degree);
  const Graph g = ChungLuPowerLaw(n, 3.5, avg_degree, 42);
  std::printf("n=%llu m=%llu threads=%zu\n",
              static_cast<unsigned long long>(g.NumVertices()),
              static_cast<unsigned long long>(g.NumEdges()), NumThreads());

  // Baseline: one from-scratch LinearTime solve (best over reps).
  double scratch_seconds = 0.0;
  uint64_t scratch_size = 0;
  for (int r = 0; r < reps; ++r) {
    ObsSession::Run run = obs.Start("lineartime", "chung-lu-powerlaw", 42);
    Timer t;
    const MisSolution sol = RunLinearTime(g);
    const double s = t.Seconds();
    run.NoteSeconds(s);
    run.NoteSolution(sol);
    if (r == 0 || s < scratch_seconds) scratch_seconds = s;
    scratch_size = sol.size;
  }
  std::printf("from-scratch solve: %.3fs (size %llu)\n", scratch_seconds,
              static_cast<unsigned long long>(scratch_size));

  // Single-edge updates only: the acceptance criterion is about edge
  // updates, and mixed-op coverage lives in the differential test.
  StreamOptions stream_opts;
  stream_opts.insert_vertex_weight = 0.0;
  stream_opts.delete_vertex_weight = 0.0;
  const std::vector<GraphUpdate> updates =
      RandomUpdateStream(g, num_updates, /*seed=*/7, stream_opts);

  ObsSession::Run run = obs.Start("dynamic", "chung-lu-powerlaw", 7);
  Timer t;
  DynamicMisEngine engine(g);
  const double init_seconds = t.Seconds();
  t.Restart();
  engine.ApplyUpdates(updates);
  const double apply_seconds = t.Seconds();
  const double per_update = apply_seconds / static_cast<double>(updates.size());

  engine.PublishMetrics(run.metrics());
  run.NoteSeconds(apply_seconds);
  run.record().AddNumber("graph.vertices", static_cast<double>(g.NumVertices()));
  run.record().AddNumber("graph.edges", static_cast<double>(g.NumEdges()));
  run.record().AddNumber("updates.count", static_cast<double>(updates.size()));
  run.record().AddNumber("updates.per_update_seconds", per_update);
  run.record().AddNumber("solution.final_size",
                         static_cast<double>(engine.Size()));
  run.Commit();

  std::printf("engine: init %.3fs, %zu updates in %.3fs (%.1fus/update)\n",
              init_seconds, updates.size(), apply_seconds, per_update * 1e6);
  std::printf("%s", FormatDynamicStats(engine.stats()).c_str());

  // Validity + quality of the final maintained set versus a from-scratch
  // solve of the final graph (alive-induced: edge-only streams keep every
  // vertex alive, but stay universe-safe anyway).
  std::vector<Vertex> alive;
  for (Vertex v = 0; v < engine.NumVertices(); ++v) {
    if (engine.Exists(v)) alive.push_back(v);
  }
  const Graph final_graph = engine.CurrentGraph().InducedSubgraph(alive);
  std::vector<uint8_t> selector(final_graph.NumVertices(), 0);
  for (size_t i = 0; i < alive.size(); ++i) {
    selector[i] = engine.InSet(alive[i]) ? 1 : 0;
  }
  std::string why;
  const bool valid = VerifyMis(final_graph, selector, &why);
  const MisSolution final_scratch = RunLinearTime(final_graph);
  const double quality =
      final_scratch.size == 0
          ? 1.0
          : static_cast<double>(engine.Size()) /
                static_cast<double>(final_scratch.size);
  const double speedup = per_update > 0 ? scratch_seconds / per_update : 0.0;

  std::printf("\nfinal set valid: %s%s%s\n", valid ? "yes" : "NO (BUG)",
              valid ? "" : " — ", valid ? "" : why.c_str());
  std::printf("quality vs from-scratch on final graph: %llu / %llu = %.4f %s\n",
              static_cast<unsigned long long>(engine.Size()),
              static_cast<unsigned long long>(final_scratch.size), quality,
              quality >= 0.99 ? "(>= 0.99: PASS)" : "(< 0.99: FAIL)");
  std::printf("per-update speedup vs from-scratch: %.0fx %s\n", speedup,
              speedup >= 10.0 ? "(>= 10x: PASS)" : "(< 10x: FAIL)");

  return (valid && quality >= 0.99 && speedup >= 10.0) ? 0 : 1;
}
