// Figure 7: processing time and memory of Greedy, DU, SemiE and BDOne on
// the easy instances. Memory is each run's fork-isolated peak-RSS growth
// (the paper uses memusage(1)); graph construction is excluded by
// building the graph before the fork.
//
// Expected shape: Greedy fastest, BDOne faster than DU (lazy bucket
// updates), SemiE slowest (two-k swaps); all four use similar memory.
#include "baselines/du.h"
#include "baselines/greedy.h"
#include "baselines/semi_external.h"
#include "bench_util.h"
#include "benchkit/run.h"
#include "mis/bdone.h"

using namespace rpmis;

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  const bool per_component = bench::HasFlag(argc, argv, "--per-component");
  ObsSession obs("bench_fig7", argc, argv);
  bench::PrintHeader(
      "Figure 7 - time & memory: existing polynomial baselines vs BDOne",
      "Greedy fastest; BDOne faster than DU; SemiE slowest; similar memory "
      "across all four.");

  const std::vector<bench::NamedAlgorithm> algos = bench::MaybePerComponent(
      {
          {"Greedy", [](const Graph& g) { return RunGreedy(g); }},
          {"DU", [](const Graph& g) { return RunDU(g); }},
          {"SemiE", [](const Graph& g) { return RunSemiE(g); }},
          {"BDOne", [](const Graph& g) { return RunBDOne(g); }},
      },
      per_component);

  TablePrinter time_table({"Graph", "Greedy", "DU", "SemiE", "BDOne"});
  TablePrinter mem_table({"Graph", "Greedy", "DU", "SemiE", "BDOne"});
  for (const auto& spec : bench::MaybeSubsample(EasyDatasets(), fast, 3)) {
    Graph g = LoadDataset(spec);
    std::vector<std::string> trow{spec.name}, mrow{spec.name};
    for (const auto& algo : algos) {
      // The solve runs in a fork, so the parent-side metrics registry
      // stays empty; the record carries the child's wall/CPU/paging
      // figures instead.
      ObsSession::Run run = obs.Start(algo.name, spec.name, /*seed=*/0);
      ChildMeasurement m = MeasureInChild([&](uint64_t payload[4]) {
        MisSolution sol = bench::RunChecked(algo, g);
        payload[0] = sol.size;
      });
      bench::NoteChildMeasurement(run.record(), m);
      if (m.ok) {
        run.record().AddNumber("solution.size",
                               static_cast<double>(m.payload[0]));
      }
      run.Commit();
      trow.push_back(m.ok ? FormatSeconds(m.seconds) : "fail");
      mrow.push_back(m.ok ? FormatKb(m.peak_rss_delta_kb) : "fail");
    }
    time_table.AddRow(std::move(trow));
    mem_table.AddRow(std::move(mrow));
  }
  std::cout << "-- (a) processing time --\n";
  time_table.Print(std::cout);
  std::cout << "\n-- (b) peak memory growth during the run --\n";
  mem_table.Print(std::cout);
  return 0;
}
