// Table 3: gap of each algorithm's independent set to the independence
// number on the 12 easy instances, with NearLinear's accuracy and kernel
// size. The independence number comes from the exact branch-and-reduce
// solver (VCSolver substitute); rows where it timed out are flagged with
// '>=' and measure against its best-found solution instead.
#include "baselines/du.h"
#include "baselines/greedy.h"
#include "baselines/semi_external.h"
#include "bench_util.h"
#include "exact/vc_solver.h"
#include "mis/bdone.h"
#include "mis/bdtwo.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"

using namespace rpmis;

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  const bool per_component = bench::HasFlag(argc, argv, "--per-component");
  ObsSession obs("bench_table3", argc, argv);
  bench::PrintHeader(
      "Table 3 - gap to the independence number (easy instances)",
      "Greedy >> DU, SemiE > BDOne > BDTwo/LinearTime > NearLinear; "
      "NearLinear accuracy >= 99.895%, certifies optimality (*) on most "
      "power-law graphs via an empty kernel.");

  const std::vector<bench::NamedAlgorithm> algos = bench::MaybePerComponent(
      {
          {"Greedy", [](const Graph& g) { return RunGreedy(g); }},
          {"DU", [](const Graph& g) { return RunDU(g); }},
          {"SemiE", [](const Graph& g) { return RunSemiE(g); }},
          {"BDOne", [](const Graph& g) { return RunBDOne(g); }},
          {"BDTwo", [](const Graph& g) { return RunBDTwo(g); }},
          {"LinearTime", [](const Graph& g) { return RunLinearTime(g); }},
          {"NearLinear", [](const Graph& g) { return RunNearLinear(g); }},
      },
      per_component);

  TablePrinter table({"Graph", "alpha", "Greedy", "DU", "SemiE", "BDOne",
                      "BDTwo", "LinearT", "NearLin", "NL acc", "NL kernel"});
  for (const auto& spec : bench::MaybeSubsample(EasyDatasets(), fast, 3)) {
    Graph g = LoadDataset(spec);
    VcSolverOptions exact_opt;
    exact_opt.time_limit_seconds = fast ? 5.0 : 30.0;
    VcSolverResult exact;
    {
      ObsSession::Run run = obs.Start("exact", spec.name, /*seed=*/0);
      Timer t;
      exact = SolveExactMis(g, exact_opt);
      run.NoteSeconds(t.Seconds());
      run.record().AddNumber("solution.size", static_cast<double>(exact.size));
      run.record().AddNumber("exact.proven_optimal",
                             exact.proven_optimal ? 1.0 : 0.0);
    }

    std::vector<std::string> row{spec.name,
                                 (exact.proven_optimal ? "" : ">=") +
                                     FormatCount(exact.size)};
    uint64_t nl_size = 0, nl_kernel = 0;
    bool nl_certified = false;
    for (const auto& algo : algos) {
      const MisSolution sol = bench::MeasureChecked(obs, algo, g, spec.name).sol;
      const int64_t gap = static_cast<int64_t>(exact.size) -
                          static_cast<int64_t>(sol.size);
      std::string cell = std::to_string(gap);
      if (sol.provably_maximum) cell += "*";
      row.push_back(cell);
      if (algo.name == "NearLinear") {
        nl_size = sol.size;
        nl_kernel = sol.kernel_vertices;
        nl_certified = sol.provably_maximum;
      }
    }
    row.push_back(FormatPercent(
        exact.size == 0 ? 1.0
                        : static_cast<double>(nl_size) / exact.size));
    row.push_back(nl_certified && nl_kernel == 0 ? "0"
                                                 : FormatCount(nl_kernel));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "(* = the algorithm certifies its set as maximum: no peel "
               "left a residual)\n";
  return 0;
}
