// Figure 10: convergence of the local-search algorithms — ARW, OnlineMIS,
// ReduMIS, ARW-LT, ARW-NL — on four hard instances (soc-pokec, indochina,
// webbase, it-2004). Each algorithm reports (t, |I|) whenever it finds a
// larger independent set; budgets are scaled from the paper's five hours
// to seconds per DESIGN.md §4.
//
// The printed curves are regenerated from the observability stream: every
// run commits a JSONL record whose progress samples carry the incumbent
// sizes (forced samples at each improvement), the bench re-reads the file
// with ReadProgressSamples, and plots ONLY the parsed samples. The
// in-memory histories are kept solely to verify the round trip — any size
// mismatch exits non-zero. EXPERIMENTS.md documents the same recipe for
// offline consumers.
//
// Expected shape: ARW-LT/ARW-NL take an immediate lead (their first point
// is already near the final best, accuracy >= 99.9%); ReduMIS starts late
// (kernelization) but converges high; OnlineMIS between; plain ARW lowest.
#include <filesystem>

#include "baselines/du.h"
#include "bench_util.h"
#include "benchkit/record.h"
#include "localsearch/arw.h"
#include "localsearch/boosted.h"
#include "localsearch/online_mis.h"
#include "localsearch/redumis.h"

using namespace rpmis;

namespace {

struct Curve {
  std::string name;       // printed name ("ARW-NL")
  std::string algorithm;  // record algorithm id ("arw-nl")
  std::string label;      // incumbent sample label in the progress stream
  std::vector<ConvergencePoint> expected;  // in-memory history (verify only)
  std::vector<ConvergencePoint> points;    // regenerated from JSONL
  uint64_t final_size = 0;
};

void PrintCurve(const Curve& c) {
  std::cout << "  " << c.name << ":";
  // Print up to 8 points: first, last, and evenly spaced middles.
  const auto& p = c.points;
  const size_t step = p.size() <= 8 ? 1 : p.size() / 8;
  for (size_t i = 0; i < p.size(); i += step) {
    std::cout << " (" << FormatSeconds(p[i].seconds) << ", "
              << FormatCount(p[i].size) << ")";
  }
  if (!p.empty() && (p.size() - 1) % step != 0) {
    std::cout << " (" << FormatSeconds(p.back().seconds) << ", "
              << FormatCount(p.back().size) << ")";
  }
  std::cout << "\n";
}

bool RunConvergence(ObsSession& obs, const std::vector<std::string>& graphs,
                    bool fast) {
  const double budget = fast ? 0.5 : 4.0;
  bool round_trip_ok = true;
  for (const std::string& name : graphs) {
    const DatasetSpec& spec = DatasetByName(name);
    Graph g = LoadDataset(spec);
    std::cout << "--- " << name << " (n=" << FormatCount(g.NumVertices())
              << ", m=" << FormatCount(g.NumEdges()) << ", budget "
              << FormatSeconds(budget) << ") ---\n";

    // One curve file per dataset so the regeneration below can filter by
    // algorithm alone. Truncated up front: the writer appends.
    const std::string curve_path =
        (std::filesystem::temp_directory_path() /
         ("rpmis_fig10_" + name + ".jsonl"))
            .string();
    std::filesystem::remove(curve_path);
    RunRecordWriter curve_out(curve_path);

    std::vector<Curve> curves;
    // Runs one algorithm under a forced-progress obs run, commits its
    // record to both the session sinks and the bench's curve file, and
    // keeps the in-memory history only for the round-trip check.
    const auto measure = [&](const std::string& display,
                             const std::string& algorithm,
                             const std::string& label, auto&& solve) {
      ObsSession::Run run =
          obs.Start(algorithm, name, /*seed=*/0, /*force_progress=*/true);
      Timer t;
      const auto r = solve();
      run.NoteSeconds(t.Seconds());
      run.record().AddNumber("solution.size", static_cast<double>(r.size));
      run.Commit();
      curve_out.Write(run.record());
      curves.push_back({display, algorithm, label, r.history, {}, r.size});
    };

    measure("ARW", "arw", "arw", [&] {
      // Initialized by DU (the paper's configuration).
      ArwOptions o;
      o.time_limit_seconds = budget;
      return RunArw(g, RunDU(g).in_set, o);
    });
    measure("OnlineMIS", "onlinemis", "arw", [&] {
      OnlineMisOptions o;
      o.time_limit_seconds = budget;
      return RunOnlineMis(g, o);
    });
    measure("ReduMIS", "redumis", "redumis", [&] {
      ReduMisOptions o;
      o.time_limit_seconds = budget;
      return RunReduMis(g, o);
    });
    measure("ARW-LT", "arw-lt", "boosted", [&] {
      BoostedOptions o;
      o.time_limit_seconds = budget;
      return RunBoostedArw(g, BoostKind::kLinearTime, o);
    });
    measure("ARW-NL", "arw-nl", "boosted", [&] {
      BoostedOptions o;
      o.time_limit_seconds = budget;
      return RunBoostedArw(g, BoostKind::kNearLinear, o);
    });

    // Regenerate every curve from the JSONL alone: incumbent samples are
    // the ones tagged with the solver's improvement label (strided ticks
    // and inner kernel-level ARW samples are filtered out).
    for (Curve& c : curves) {
      for (const obs::ProgressSample& s :
           ReadProgressSamples(curve_path, c.algorithm)) {
        if (s.label != c.label) continue;
        if (s.solution_size == obs::kProgressFieldAbsent) continue;
        c.points.push_back({s.seconds, s.solution_size});
      }
      if (c.points.size() != c.expected.size()) {
        round_trip_ok = false;
      } else {
        for (size_t i = 0; i < c.points.size(); ++i) {
          if (c.points[i].size != c.expected[i].size) round_trip_ok = false;
        }
      }
    }

    uint64_t best = 0;
    for (const Curve& c : curves) best = std::max(best, c.final_size);
    for (const Curve& c : curves) PrintCurve(c);
    // The paper reports the accuracy of ARW-NL's FIRST solution vs the
    // overall best.
    const Curve& arw_nl = curves.back();
    if (!arw_nl.points.empty() && best > 0) {
      std::cout << "  ARW-NL first-solution accuracy vs best: "
                << FormatPercent(
                       static_cast<double>(arw_nl.points.front().size) / best)
                << "\n";
    }
    std::cout << "  (curves regenerated from " << curve_path << ": "
              << (round_trip_ok ? "sizes byte-identical to the in-memory "
                                  "histories"
                                : "MISMATCH vs in-memory histories (BUG)")
              << ")\n";
    std::cout << "\n";
  }
  return round_trip_ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  ObsSession obs("bench_fig10", argc, argv);
  bench::PrintHeader(
      "Figure 10 - local-search convergence (soc-pokec, indochina, webbase, "
      "it-2004)",
      "ARW-NL's first solution accuracy 99.931% - 99.985% of the 5h best; "
      "ARW-LT/ARW-NL dominate ARW, OnlineMIS and lead ReduMIS early.");
  std::vector<std::string> graphs{"soc-pokec", "indochina", "webbase",
                                  "it-2004"};
  if (fast) graphs.resize(1);
  return RunConvergence(obs, graphs, fast) ? 0 : 1;
}
