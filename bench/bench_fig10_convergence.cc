// Figure 10: convergence of the local-search algorithms — ARW, OnlineMIS,
// ReduMIS, ARW-LT, ARW-NL — on four hard instances (soc-pokec, indochina,
// webbase, it-2004). Each algorithm reports (t, |I|) whenever it finds a
// larger independent set; budgets are scaled from the paper's five hours
// to seconds per DESIGN.md §4.
//
// Expected shape: ARW-LT/ARW-NL take an immediate lead (their first point
// is already near the final best, accuracy >= 99.9%); ReduMIS starts late
// (kernelization) but converges high; OnlineMIS between; plain ARW lowest.
#include "baselines/du.h"
#include "bench_util.h"
#include "localsearch/arw.h"
#include "localsearch/boosted.h"
#include "localsearch/online_mis.h"
#include "localsearch/redumis.h"

using namespace rpmis;

namespace {

void RunConvergence(const std::vector<std::string>& graphs, bool fast) {
  const double budget = fast ? 0.5 : 4.0;
  for (const std::string& name : graphs) {
    const DatasetSpec& spec = DatasetByName(name);
    Graph g = LoadDataset(spec);
    std::cout << "--- " << name << " (n=" << FormatCount(g.NumVertices())
              << ", m=" << FormatCount(g.NumEdges()) << ", budget "
              << FormatSeconds(budget) << ") ---\n";

    struct Trace {
      std::string name;
      std::vector<ConvergencePoint> points;
      uint64_t final_size = 0;
    };
    std::vector<Trace> traces;

    {  // ARW, initialized by DU (the paper's configuration).
      ArwOptions o;
      o.time_limit_seconds = budget;
      ArwResult r = RunArw(g, RunDU(g).in_set, o);
      traces.push_back({"ARW", r.history, r.size});
    }
    {
      OnlineMisOptions o;
      o.time_limit_seconds = budget;
      ArwResult r = RunOnlineMis(g, o);
      traces.push_back({"OnlineMIS", r.history, r.size});
    }
    {
      ReduMisOptions o;
      o.time_limit_seconds = budget;
      ArwResult r = RunReduMis(g, o);
      traces.push_back({"ReduMIS", r.history, r.size});
    }
    {
      BoostedOptions o;
      o.time_limit_seconds = budget;
      BoostedResult r = RunBoostedArw(g, BoostKind::kLinearTime, o);
      traces.push_back({"ARW-LT", r.history, r.size});
    }
    {
      BoostedOptions o;
      o.time_limit_seconds = budget;
      BoostedResult r = RunBoostedArw(g, BoostKind::kNearLinear, o);
      traces.push_back({"ARW-NL", r.history, r.size});
    }

    uint64_t best = 0;
    for (const auto& t : traces) best = std::max(best, t.final_size);
    for (const auto& t : traces) {
      std::cout << "  " << t.name << ":";
      // Print up to 8 points: first, last, and evenly spaced middles.
      const auto& p = t.points;
      const size_t step = p.size() <= 8 ? 1 : p.size() / 8;
      for (size_t i = 0; i < p.size(); i += step) {
        std::cout << " (" << FormatSeconds(p[i].seconds) << ", "
                  << FormatCount(p[i].size) << ")";
      }
      if (!p.empty() && (p.size() - 1) % step != 0) {
        std::cout << " (" << FormatSeconds(p.back().seconds) << ", "
                  << FormatCount(p.back().size) << ")";
      }
      std::cout << "\n";
    }
    // The paper reports the accuracy of ARW-NL's FIRST solution vs the
    // overall best.
    const auto& arw_nl = traces.back();
    if (!arw_nl.points.empty() && best > 0) {
      std::cout << "  ARW-NL first-solution accuracy vs best: "
                << FormatPercent(
                       static_cast<double>(arw_nl.points.front().size) / best)
                << "\n";
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  bench::PrintHeader(
      "Figure 10 - local-search convergence (soc-pokec, indochina, webbase, "
      "it-2004)",
      "ARW-NL's first solution accuracy 99.931% - 99.985% of the 5h best; "
      "ARW-LT/ARW-NL dominate ARW, OnlineMIS and lead ReduMIS early.");
  std::vector<std::string> graphs{"soc-pokec", "indochina", "webbase",
                                  "it-2004"};
  if (fast) graphs.resize(1);
  RunConvergence(graphs, fast);
  return 0;
}
