// Ablation (DESIGN.md §3): what each NearLinear prepass buys.
//
// Runs NearLinear with all four combinations of {one-pass dominance, LP
// reduction} on the easy suite, reporting time, kernel size and solution
// size. The paper's claim: the prepasses shrink Δ (making the main loop
// effectively linear) and the kernel, at negligible cost.
#include "bench_util.h"
#include "mis/near_linear.h"
#include "support/timer.h"

using namespace rpmis;

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  ObsSession obs("bench_ablation_nearlinear", argc, argv);
  bench::PrintHeader(
      "Ablation - NearLinear prepasses (one-pass dominance / LP)",
      "Prepasses shrink the kernel and the peel count at near-zero cost; "
      "the dominance prepass is the bigger lever on power-law graphs.");

  struct Config {
    std::string name;
    NearLinearOptions opts;
  };
  std::vector<Config> configs;
  for (bool opd : {true, false}) {
    for (bool lp : {true, false}) {
      NearLinearOptions o;
      o.one_pass_dominance = opd;
      o.lp_reduction = lp;
      configs.push_back({std::string(opd ? "+dom" : "-dom") +
                             (lp ? "+lp" : "-lp"),
                         o});
    }
  }

  TablePrinter table({"Graph", "config", "time", "kernel n", "peels", "|I|"});
  for (const auto& spec : bench::MaybeSubsample(EasyDatasets(), fast, 2)) {
    Graph g = LoadDataset(spec);
    for (const auto& cfg : configs) {
      ObsSession::Run run = obs.Start("nearlinear", spec.name, /*seed=*/0);
      run.record().AddString("config", cfg.name);
      Timer t;
      MisSolution sol = RunNearLinear(g, nullptr, cfg.opts);
      const double seconds = t.Seconds();
      run.NoteSeconds(seconds);
      run.NoteSolution(sol);
      table.AddRow({spec.name, cfg.name, FormatSeconds(seconds),
                    FormatCount(sol.kernel_vertices),
                    FormatCount(sol.rules.peels), FormatCount(sol.size)});
    }
  }
  table.Print(std::cout);
  return 0;
}
