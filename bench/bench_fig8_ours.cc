// Figure 8: processing time and memory of BDOne, BDTwo, LinearTime and
// NearLinear, with the exact solver as the reference upper line.
//
// Expected shape: BDOne ~ LinearTime ~ NearLinear in time and memory;
// BDTwo slower and ~3x the memory (6m adjacency-list representation);
// VCSolver far above everything.
#include "bench_util.h"
#include "benchkit/run.h"
#include "exact/vc_solver.h"
#include "mis/bdone.h"
#include "mis/bdtwo.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"

using namespace rpmis;

int main(int argc, char** argv) {
  const bool fast = bench::HasFlag(argc, argv, "--fast");
  const bool per_component = bench::HasFlag(argc, argv, "--per-component");
  ObsSession obs("bench_fig8", argc, argv);
  bench::PrintHeader(
      "Figure 8 - time & memory: our four algorithms (+ VCSolver reference)",
      "BDOne ~ LinearTime ~ NearLinear in time/memory; BDTwo ~3x memory and "
      "slower; VCSolver one or more orders of magnitude above.");

  const std::vector<bench::NamedAlgorithm> algos = bench::MaybePerComponent(
      {
          {"BDOne", [](const Graph& g) { return RunBDOne(g); }},
          {"BDTwo", [](const Graph& g) { return RunBDTwo(g); }},
          {"LinearTime", [](const Graph& g) { return RunLinearTime(g); }},
          {"NearLinear", [](const Graph& g) { return RunNearLinear(g); }},
      },
      per_component);

  TablePrinter time_table(
      {"Graph", "BDOne", "BDTwo", "LinearT", "NearLin", "VCSolver"});
  TablePrinter mem_table(
      {"Graph", "BDOne", "BDTwo", "LinearT", "NearLin", "VCSolver"});
  for (const auto& spec : bench::MaybeSubsample(EasyDatasets(), fast, 3)) {
    Graph g = LoadDataset(spec);
    std::vector<std::string> trow{spec.name}, mrow{spec.name};
    for (const auto& algo : algos) {
      // Fork-isolated solve: the record gets the child's rusage figures
      // (wall/CPU time, faults, peak-RSS growth) via NoteChildMeasurement.
      ObsSession::Run run = obs.Start(algo.name, spec.name, /*seed=*/0);
      ChildMeasurement m = MeasureInChild([&](uint64_t payload[4]) {
        MisSolution sol = bench::RunChecked(algo, g);
        payload[0] = sol.size;
      });
      bench::NoteChildMeasurement(run.record(), m);
      if (m.ok) {
        run.record().AddNumber("solution.size",
                               static_cast<double>(m.payload[0]));
      }
      run.Commit();
      trow.push_back(m.ok ? FormatSeconds(m.seconds) : "fail");
      mrow.push_back(m.ok ? FormatKb(m.peak_rss_delta_kb) : "fail");
    }
    {
      ObsSession::Run run = obs.Start("exact", spec.name, /*seed=*/0);
      ChildMeasurement m = MeasureInChild([&](uint64_t payload[4]) {
        VcSolverOptions opt;
        opt.time_limit_seconds = fast ? 5.0 : 30.0;
        VcSolverResult r = SolveExactMis(g, opt);
        payload[0] = r.size;
        payload[1] = r.proven_optimal ? 1 : 0;
      });
      bench::NoteChildMeasurement(run.record(), m);
      if (m.ok) {
        run.record().AddNumber("solution.size",
                               static_cast<double>(m.payload[0]));
        run.record().AddNumber("exact.proven_optimal",
                               static_cast<double>(m.payload[1]));
      }
      run.Commit();
      std::string t = m.ok ? FormatSeconds(m.seconds) : "fail";
      if (m.ok && m.payload[1] == 0) t += " (cap)";
      trow.push_back(t);
      mrow.push_back(m.ok ? FormatKb(m.peak_rss_delta_kb) : "fail");
    }
    time_table.AddRow(std::move(trow));
    mem_table.AddRow(std::move(mrow));
  }
  std::cout << "-- (a) processing time --\n";
  time_table.Print(std::cout);
  std::cout << "\n-- (b) peak memory growth during the run --\n";
  mem_table.Print(std::cout);
  return 0;
}
