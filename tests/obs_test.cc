// Observability-layer tests: counter-exactness goldens on deterministic
// fixtures, trace well-formedness, and the core contract that sinks only
// observe — solutions are byte-identical with observability on or off.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "benchkit/stats.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "mis/bdone.h"
#include "mis/bdtwo.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"
#include "mis/per_component.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "obs/validate.h"

namespace rpmis {
namespace {

Graph Path(Vertex n) {
  std::vector<Edge> e;
  for (Vertex i = 0; i + 1 < n; ++i) e.emplace_back(i, i + 1);
  return Graph::FromEdges(n, e);
}

Graph Cycle(Vertex n) {
  std::vector<Edge> e;
  for (Vertex i = 0; i + 1 < n; ++i) e.emplace_back(i, i + 1);
  e.emplace_back(n - 1, Vertex{0});
  return Graph::FromEdges(n, e);
}

Graph Clique(Vertex n) {
  std::vector<Edge> e;
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = i + 1; j < n; ++j) e.emplace_back(i, j);
  }
  return Graph::FromEdges(n, e);
}

/// Snapshot of a published solution's registry (MetricsRegistry itself
/// owns a mutex and cannot be returned by value).
struct PublishedMetrics {
  std::vector<obs::MetricsRegistry::Entry> entries;

  uint64_t Counter(const std::string& name) const {
    for (const auto& e : entries) {
      if (e.name == name && e.is_counter) return e.counter;
    }
    return 0;
  }
  double Gauge(const std::string& name) const {
    for (const auto& e : entries) {
      if (e.name == name && !e.is_counter) return e.gauge;
    }
    return 0.0;
  }
};

/// Runs `solve` and publishes its counters into a fresh registry — the
/// same pipeline the JSONL records use, so the goldens below pin both the
/// solver counts and the registry naming.
template <typename Solve>
PublishedMetrics Published(const Graph& g, Solve&& solve) {
  obs::MetricsRegistry reg;
  MisSolution sol = solve(g);
  PublishSolutionMetrics(sol, &reg);
  return PublishedMetrics{reg.Snapshot()};
}

// The golden counts are the deterministic behaviour of the current rule
// order on fully symmetric fixtures; a change here means a reduction
// fires differently, which is worth a deliberate review.

TEST(CounterGoldensTest, PathFiveVertices) {
  const Graph g = Path(5);
  {
    auto reg = Published(g, [](const Graph& g) { return RunBDOne(g); });
    EXPECT_EQ(reg.Counter("rules.degree_one"), 2u);
    EXPECT_EQ(reg.Counter("rules.peels"), 0u);
    EXPECT_EQ(reg.Gauge("solution.size"), 3.0);
  }
  {
    auto reg = Published(g, [](const Graph& g) { return RunBDTwo(g); });
    EXPECT_EQ(reg.Counter("rules.degree_one"), 2u);
    EXPECT_EQ(reg.Counter("rules.peels"), 0u);
  }
  {
    auto reg = Published(g, [](const Graph& g) { return RunLinearTime(g); });
    EXPECT_EQ(reg.Counter("rules.degree_one"), 2u);
    EXPECT_EQ(reg.Counter("rules.peels"), 0u);
  }
  {
    // NearLinear's one-pass dominance prepass claims path endpoints
    // before the degree-one rule can see them.
    auto reg = Published(g, [](const Graph& g) { return RunNearLinear(g); });
    EXPECT_EQ(reg.Counter("rules.one_pass_dominance"), 2u);
    EXPECT_EQ(reg.Counter("rules.degree_one"), 0u);
    EXPECT_EQ(reg.Counter("rules.peels"), 0u);
    EXPECT_EQ(reg.Gauge("solution.provably_maximum"), 1.0);
  }
}

TEST(CounterGoldensTest, CycleSixVertices) {
  const Graph g = Cycle(6);
  {
    // BDOne has no degree-two rule: it must peel once to break the cycle.
    auto reg = Published(g, [](const Graph& g) { return RunBDOne(g); });
    EXPECT_EQ(reg.Counter("rules.degree_one"), 2u);
    EXPECT_EQ(reg.Counter("rules.peels"), 1u);
  }
  {
    // BDTwo folds instead of peeling: exact on every cycle.
    auto reg = Published(g, [](const Graph& g) { return RunBDTwo(g); });
    EXPECT_EQ(reg.Counter("rules.degree_two_folding"), 2u);
    EXPECT_EQ(reg.Counter("rules.degree_one"), 1u);
    EXPECT_EQ(reg.Counter("rules.peels"), 0u);
  }
  {
    // LinearTime applies one Lemma 4.1 cycle reduction, then finishes
    // with degree-one rules.
    auto reg = Published(g, [](const Graph& g) { return RunLinearTime(g); });
    EXPECT_EQ(reg.Counter("rules.degree_two_path"), 1u);
    EXPECT_EQ(reg.Counter("rules.degree_one"), 2u);
    EXPECT_EQ(reg.Counter("rules.peels"), 0u);
  }
  {
    auto reg = Published(g, [](const Graph& g) { return RunNearLinear(g); });
    EXPECT_EQ(reg.Counter("rules.degree_two_path"), 2u);
    EXPECT_EQ(reg.Counter("rules.dominance"), 1u);
    EXPECT_EQ(reg.Counter("rules.peels"), 0u);
    EXPECT_EQ(reg.Gauge("solution.size"), 3.0);
  }
}

TEST(CounterGoldensTest, CliqueFiveVertices) {
  const Graph g = Clique(5);
  {
    // A clique defeats the exact degree-one/two rules: BDOne peels hubs
    // until the rest collapses.
    auto reg = Published(g, [](const Graph& g) { return RunBDOne(g); });
    EXPECT_EQ(reg.Counter("rules.peels"), 3u);
    EXPECT_EQ(reg.Counter("rules.degree_one"), 1u);
    EXPECT_EQ(reg.Gauge("solution.size"), 1.0);
  }
  {
    auto reg = Published(g, [](const Graph& g) { return RunBDTwo(g); });
    EXPECT_EQ(reg.Counter("rules.peels"), 2u);
    EXPECT_EQ(reg.Counter("rules.degree_two_isolation"), 1u);
  }
  {
    auto reg = Published(g, [](const Graph& g) { return RunLinearTime(g); });
    EXPECT_EQ(reg.Counter("rules.peels"), 2u);
    EXPECT_EQ(reg.Counter("rules.degree_two_path"), 1u);
    EXPECT_EQ(reg.Counter("rules.degree_one"), 1u);
  }
  {
    // Dominance alone solves a clique: every vertex dominates its
    // neighbours, so four removals leave an isolated vertex — no peel.
    auto reg = Published(g, [](const Graph& g) { return RunNearLinear(g); });
    EXPECT_EQ(reg.Counter("rules.one_pass_dominance"), 4u);
    EXPECT_EQ(reg.Counter("rules.peels"), 0u);
    EXPECT_EQ(reg.Gauge("solution.provably_maximum"), 1.0);
  }
}

TEST(CounterGoldensTest, NoCompactionsOnTinyGraphs) {
  // The compaction policy must never trigger on graphs this small — a
  // rebuild on a 10-vertex instance would be pure overhead.
  const Graph fixtures[] = {Path(10), Cycle(7), Clique(5)};
  for (const Graph& g : fixtures) {
    for (const auto& solve :
         {std::function<MisSolution(const Graph&)>(
              [](const Graph& g) { return RunBDOne(g); }),
          std::function<MisSolution(const Graph&)>(
              [](const Graph& g) { return RunBDTwo(g); }),
          std::function<MisSolution(const Graph&)>(
              [](const Graph& g) { return RunLinearTime(g); }),
          std::function<MisSolution(const Graph&)>(
              [](const Graph& g) { return RunNearLinear(g); })}) {
      MisSolution sol = solve(g);
      EXPECT_EQ(sol.compaction.compactions, 0u);
      obs::MetricsRegistry reg;
      PublishSolutionMetrics(sol, &reg);
      EXPECT_EQ(reg.Counter("compaction.rebuilds"), 0u);
    }
  }
}

TEST(TraceTest, SolverTraceIsWellFormed) {
#ifdef RPMIS_NO_OBS
  GTEST_SKIP() << "solver hooks compiled out";
#endif
  const Graph g = ChungLuPowerLaw(5000, 2.5, 4.0, /*seed=*/11);
  obs::TraceSink sink;
  {
    obs::ScopedObservability scope(&sink, nullptr, nullptr);
    RunBDOne(g);
    RunBDTwo(g);
    RunLinearTime(g);
    RunNearLinear(g);
  }
  EXPECT_GT(sink.NumEvents(), 0u);
  EXPECT_EQ(sink.DroppedEvents(), 0u);
  const std::string json = sink.ToJson();
  const obs::ValidationResult r = obs::ValidateTraceJson(json);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.num_events, sink.NumEvents());
  for (const char* span : {"bdone", "bdtwo", "lineartime", "nearlinear",
                           "nearlinear.core", "nearlinear.finalize"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + span + "\""),
              std::string::npos)
        << span;
  }
}

TEST(TraceTest, ParallelComponentTraceIsWellFormed) {
#ifdef RPMIS_NO_OBS
  GTEST_SKIP() << "solver hooks compiled out";
#endif
  // Spans from pool workers must balance per thread id.
  GraphBuilder b(4 * 2000);
  for (Vertex c = 0; c < 4; ++c) {
    const Graph part = ChungLuPowerLaw(2000, 2.2, 4.0, /*seed=*/c + 1);
    for (const auto& [u, v] : part.CollectEdges()) {
      b.AddEdge(c * 2000 + u, c * 2000 + v);
    }
  }
  const Graph g = b.Build();
  obs::TraceSink sink;
  {
    obs::ScopedObservability scope(&sink, nullptr, nullptr);
    RunPerComponentParallel(
        g, [](const Graph& sub) { return RunLinearTime(sub); });
  }
  const obs::ValidationResult r = obs::ValidateTraceJson(sink.ToJson());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_NE(sink.ToJson().find("component.solve"), std::string::npos);
}

TEST(TraceTest, CappedSinkCountsDropsAndStaysValid) {
  obs::TraceSink sink(/*max_events=*/4);
  for (int i = 0; i < 8; ++i) {
    obs::TraceSpan span(&sink, "tiny");
  }
  EXPECT_LE(sink.NumEvents(), 4u);
  EXPECT_GT(sink.DroppedEvents(), 0u);
  const obs::ValidationResult r = obs::ValidateTraceJson(sink.ToJson());
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ObsTest, SolutionsByteIdenticalWithObservabilityOnAndOff) {
  const Graph g = ChungLuPowerLaw(20000, 2.3, 5.0, /*seed=*/3);
  const std::function<MisSolution(const Graph&)> algorithms[] = {
      [](const Graph& g) { return RunBDOne(g); },
      [](const Graph& g) { return RunBDTwo(g); },
      [](const Graph& g) { return RunLinearTime(g); },
      [](const Graph& g) { return RunNearLinear(g); },
  };
  for (const auto& solve : algorithms) {
    const MisSolution off = solve(g);
    obs::TraceSink trace;
    obs::MetricsRegistry metrics;
    obs::ProgressSampler sampler(/*every=*/64);
    MisSolution on;
    {
      obs::ScopedObservability scope(&trace, &metrics, &sampler);
      on = solve(g);
    }
    // Sinks only observe: identical bytes, identical counters.
    EXPECT_EQ(on.in_set, off.in_set);
    EXPECT_EQ(on.size, off.size);
    EXPECT_EQ(on.rules.TotalExact(), off.rules.TotalExact());
    EXPECT_EQ(on.rules.peels, off.rules.peels);
#ifndef RPMIS_NO_OBS
    // And the observing run actually observed something.
    EXPECT_GT(trace.NumEvents(), 0u);
#endif
  }
}

TEST(ObsTest, ProgressSamplerSeesSolverStream) {
#ifdef RPMIS_NO_OBS
  GTEST_SKIP() << "solver hooks compiled out";
#endif
  const Graph g = ChungLuPowerLaw(20000, 2.3, 5.0, /*seed=*/3);
  obs::ProgressSampler sampler(/*every=*/512);
  {
    obs::ScopedObservability scope(nullptr, nullptr, &sampler);
    RunNearLinear(g);
  }
  EXPECT_GT(sampler.Events(), 0u);
  const std::vector<obs::ProgressSample> samples = sampler.Samples();
  ASSERT_FALSE(samples.empty());
  double prev = 0.0;
  for (const obs::ProgressSample& s : samples) {
    EXPECT_GE(s.seconds, prev);
    prev = s.seconds;
    EXPECT_NE(s.solution_size, obs::kProgressFieldAbsent);
    EXPECT_NE(s.live_vertices, obs::kProgressFieldAbsent);
    EXPECT_FALSE(s.label.empty());
  }
}

TEST(HistogramTest, RecordsIntoLogBucketsAndPublishes) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.MeanSeconds(), 0.0);
  EXPECT_EQ(h.QuantileSeconds(0.5), 0.0);

  h.Record(0.5e-6);   // <= 1us -> bucket 0
  h.Record(3e-6);     // -> bucket 2 (le 4us)
  h.Record(100e-6);   // -> bucket 7 (le 128us)
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(7), 1u);
  EXPECT_NEAR(h.SumSeconds(), 103.5e-6, 1e-9);
  EXPECT_NEAR(h.MeanSeconds(), 34.5e-6, 1e-9);
  // Quantiles come back as bucket upper edges.
  EXPECT_DOUBLE_EQ(h.QuantileSeconds(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(h.QuantileSeconds(0.5), 4e-6);
  EXPECT_DOUBLE_EQ(h.QuantileSeconds(1.0), 128e-6);

  obs::MetricsRegistry metrics;
  h.PublishTo(metrics, "lat");
  EXPECT_EQ(metrics.Counter("lat.count"), 3u);
  EXPECT_EQ(metrics.Counter("lat.sum_us"), 104u);  // rounded
  EXPECT_EQ(metrics.Counter("lat.le_us.4"), 1u);
  EXPECT_EQ(metrics.Counter("lat.le_us.128"), 1u);
  EXPECT_FALSE(metrics.Contains("lat.le_us.2"));  // empty buckets omitted

  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumSeconds(), 0.0);
}

TEST(HistogramTest, ClampsExtremes) {
  obs::LatencyHistogram h;
  h.Record(-1.0);     // negative -> bucket 0
  h.Record(1e12);     // beyond the last edge -> last bucket
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(obs::LatencyHistogram::kBuckets - 1), 1u);
}

TEST(ObsTest, ScopedObservabilityNestsAndRestores) {
  obs::TraceSink outer_sink;
  EXPECT_EQ(obs::Trace(), nullptr);
  {
    obs::ScopedObservability outer(&outer_sink, nullptr, nullptr);
#ifndef RPMIS_NO_OBS
    EXPECT_EQ(obs::Trace(), &outer_sink);
#endif
    {
      obs::TraceSink inner_sink;
      obs::ScopedObservability inner(&inner_sink, nullptr, nullptr);
#ifndef RPMIS_NO_OBS
      EXPECT_EQ(obs::Trace(), &inner_sink);
#endif
    }
#ifndef RPMIS_NO_OBS
    EXPECT_EQ(obs::Trace(), &outer_sink);
#endif
  }
  EXPECT_EQ(obs::Trace(), nullptr);
}

}  // namespace
}  // namespace rpmis
