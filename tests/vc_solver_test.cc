#include "exact/vc_solver.h"

#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "graph/generators.h"
#include "mis/verify.h"
#include "test_util.h"

namespace rpmis {
namespace {

TEST(VcSolverTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = ErdosRenyiGnm(30, 60 + 3 * seed, seed);
    VcSolverResult r = SolveExactMis(g);
    EXPECT_TRUE(r.proven_optimal) << seed;
    EXPECT_TRUE(IsMaximalIndependentSet(g, r.in_set)) << seed;
    EXPECT_EQ(r.size, BruteForceAlpha(g)) << seed;
  }
}

TEST(VcSolverTest, MatchesBruteForceOnDenserGraphs) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = ErdosRenyiGnm(24, 110, seed + 50);
    VcSolverResult r = SolveExactMis(g);
    EXPECT_TRUE(r.proven_optimal);
    EXPECT_EQ(r.size, BruteForceAlpha(g)) << seed;
  }
}

TEST(VcSolverTest, PaperFigures) {
  EXPECT_EQ(SolveExactMis(testing::PaperFigure1()).size, 5u);
  EXPECT_EQ(SolveExactMis(testing::PaperFigure1Modified()).size,
            BruteForceAlpha(testing::PaperFigure1Modified()));
  EXPECT_EQ(SolveExactMis(testing::PaperFigure2()).size, 3u);
  EXPECT_EQ(SolveExactMis(testing::PaperFigure5()).size, 4u);
}

TEST(VcSolverTest, StructuredFamilies) {
  EXPECT_EQ(SolveExactMis(CycleGraph(15)).size, 7u);
  EXPECT_EQ(SolveExactMis(GridGraph(4, 4)).size, 8u);
  EXPECT_EQ(SolveExactMis(CompleteGraph(10)).size, 1u);
  EXPECT_EQ(SolveExactMis(CompleteBipartite(4, 9)).size, 9u);
  EXPECT_EQ(SolveExactMis(Theorem31Gadget(8)).size,
            BruteForceAlpha(Theorem31Gadget(8)));
}

TEST(VcSolverTest, SolvesBeyondBruteForceScale) {
  // 100k-vertex power-law graph: kernelization + component splitting must
  // crack it exactly within the default budget.
  Graph g = ChungLuPowerLaw(100000, 2.1, 4.0, /*seed=*/17);
  VcSolverResult r = SolveExactMis(g);
  EXPECT_TRUE(IsMaximalIndependentSet(g, r.in_set));
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_GT(r.size, g.NumVertices() / 2);  // power-law MIS is large
}

TEST(VcSolverTest, TimeBudgetDegradesGracefully) {
  // A dense random graph with an absurdly small budget: the result must
  // still be a valid maximal IS, just not proven optimal.
  Graph g = ErdosRenyiGnm(300, 3000, /*seed=*/23);
  VcSolverOptions opt;
  opt.time_limit_seconds = 0.01;
  VcSolverResult r = SolveExactMis(g, opt);
  EXPECT_TRUE(IsMaximalIndependentSet(g, r.in_set));
  // (proven_optimal may be either way if kernelization solves it fast.)
}

TEST(VcSolverTest, ComponentDecomposition) {
  // Disjoint union of two odd cycles and a clique.
  GraphBuilder b(5 + 7 + 6);
  for (Vertex i = 0; i < 5; ++i) b.AddEdge(i, (i + 1) % 5);
  for (Vertex i = 0; i < 7; ++i) b.AddEdge(5 + i, 5 + (i + 1) % 7);
  for (Vertex i = 0; i < 6; ++i) {
    for (Vertex j = i + 1; j < 6; ++j) b.AddEdge(12 + i, 12 + j);
  }
  VcSolverResult r = SolveExactMis(b.Build());
  EXPECT_EQ(r.size, 2u + 3u + 1u);
  EXPECT_TRUE(r.proven_optimal);
}

TEST(VcSolverTest, ReducingPeelingBoundPreservesExactness) {
  // §6 extension: pruning with NearLinear's Theorem 6.1 bound must never
  // change the optimum.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = ErdosRenyiGnm(40, 110, seed);
    VcSolverOptions plain, guided;
    guided.use_reducing_peeling_bound = true;
    const VcSolverResult a = SolveExactMis(g, plain);
    const VcSolverResult b = SolveExactMis(g, guided);
    ASSERT_TRUE(a.proven_optimal && b.proven_optimal) << seed;
    EXPECT_EQ(a.size, b.size) << seed;
    EXPECT_TRUE(IsMaximalIndependentSet(g, b.in_set));
  }
}

TEST(VcSolverTest, ReducingPeelingBoundPrunesNodes) {
  // On an instance with real branching, the tighter bound should not
  // *increase* the node count (usually it shrinks it).
  Graph g = ErdosRenyiGnm(380, 1140, /*seed=*/5);
  VcSolverOptions plain, guided;
  plain.time_limit_seconds = guided.time_limit_seconds = 10;
  guided.use_reducing_peeling_bound = true;
  const VcSolverResult a = SolveExactMis(g, plain);
  const VcSolverResult b = SolveExactMis(g, guided);
  if (a.proven_optimal && b.proven_optimal) {
    EXPECT_EQ(a.size, b.size);
    EXPECT_LE(b.branch_nodes, a.branch_nodes + a.branch_nodes / 4);
  }
}

}  // namespace
}  // namespace rpmis
