#include "mis/verify.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "mis/solution.h"
#include "test_util.h"

namespace rpmis {
namespace {

TEST(VerifyTest, IndependenceAndMaximality) {
  Graph g = testing::PaperFigure2();
  std::vector<uint8_t> is{1, 0, 1, 1, 0, 0};  // {v1, v3, v4}: maximum
  EXPECT_TRUE(IsIndependentSet(g, is));
  EXPECT_TRUE(IsMaximalIndependentSet(g, is));

  std::vector<uint8_t> maximal_not_max{0, 1, 0, 0, 0, 1};  // {v2, v6}
  EXPECT_TRUE(IsMaximalIndependentSet(g, maximal_not_max));

  std::vector<uint8_t> not_maximal(6, 0);
  EXPECT_TRUE(IsIndependentSet(g, not_maximal));
  EXPECT_FALSE(IsMaximalIndependentSet(g, not_maximal));

  std::vector<uint8_t> not_independent{1, 1, 0, 0, 0, 0};  // v1-v2 edge
  EXPECT_FALSE(IsIndependentSet(g, not_independent));
}

TEST(VerifyTest, WrongSizeSelectorRejected) {
  Graph g = PathGraph(4);
  EXPECT_FALSE(IsIndependentSet(g, std::vector<uint8_t>(3, 0)));
  EXPECT_FALSE(IsVertexCover(g, std::vector<uint8_t>(5, 1)));
}

TEST(VerifyTest, VertexCoverDuality) {
  // §2: I is a (maximal) independent set iff V \ I is a vertex cover.
  Graph g = testing::PaperFigure1();
  std::vector<uint8_t> is(10, 0);
  for (Vertex v : {0u, 3u, 5u, 7u, 9u}) is[v] = 1;  // {v1,v4,v6,v8,v10}
  ASSERT_TRUE(IsIndependentSet(g, is));
  EXPECT_TRUE(IsVertexCover(g, Complement(is)));
  // The complement of a NON-independent set can still cover, but the
  // complement of this specific maximum IS is the minimum cover of size 5.
  uint64_t cover_size = 0;
  for (uint8_t f : Complement(is)) cover_size += f;
  EXPECT_EQ(cover_size, 5u);
}

TEST(VerifyTest, ExtendToMaximalProducesMaximal) {
  Graph g = CycleGraph(9);
  std::vector<uint8_t> is(9, 0);
  const uint64_t added = ExtendToMaximal(g, is);
  EXPECT_GE(added, 3u);
  EXPECT_TRUE(IsMaximalIndependentSet(g, is));
}

TEST(VerifyTest, ExtendToMaximalRespectsExisting) {
  Graph g = PathGraph(5);
  std::vector<uint8_t> is{0, 1, 0, 0, 0};
  ExtendToMaximal(g, is);
  EXPECT_TRUE(IsMaximalIndependentSet(g, is));
  EXPECT_EQ(is[1], 1);  // pre-selected vertex kept
}

TEST(VerifyTest, ReplayDeferredStackAlternates) {
  // Path 0-1-2-3-4-5 with endpoint decided: 0 in I. Stack pushed 5,4,3,2,1
  // (pop order 1..5), each entry carrying its at-removal partners; the
  // replay must pick the alternating half {2, 4}.
  Graph g = PathGraph(6);
  std::vector<uint8_t> is(6, 0);
  is[0] = 1;
  std::vector<DeferredDecision> stack{
      {5, 4, 4}, {4, 3, 5}, {3, 2, 4}, {2, 1, 3}, {1, 0, 2}};
  const uint64_t added = ReplayDeferredStack(stack, is);
  EXPECT_EQ(added, 2u);
  EXPECT_TRUE(IsIndependentSet(g, is));
  EXPECT_EQ(is[2], 1);
  EXPECT_EQ(is[4], 1);
}

TEST(VerifyTest, VerifyMisReportsTheFirstViolation) {
  Graph g = testing::PaperFigure2();
  std::string why;

  std::vector<uint8_t> good{1, 0, 1, 1, 0, 0};
  EXPECT_TRUE(VerifyMis(g, good, &why));
  EXPECT_TRUE(why.empty());
  EXPECT_TRUE(VerifyMis(g, good));  // why is optional

  std::vector<uint8_t> wrong_size(5, 0);
  EXPECT_FALSE(VerifyMis(g, wrong_size, &why));
  EXPECT_NE(why.find("5 entries"), std::string::npos) << why;

  std::vector<uint8_t> dependent{1, 1, 0, 0, 0, 0};  // edge (0, 1)
  EXPECT_FALSE(VerifyMis(g, dependent, &why));
  EXPECT_NE(why.find("not independent"), std::string::npos) << why;

  std::vector<uint8_t> not_maximal(6, 0);
  EXPECT_FALSE(VerifyMis(g, not_maximal, &why));
  EXPECT_NE(why.find("not maximal"), std::string::npos) << why;
}

TEST(VerifyTest, ReplayDeferredStackHonorsVirtualPartners) {
  // Partners that are NOT original-graph edges (rewired/virtual) must
  // still block: v=1 with virtual partner 3 already in I stays out.
  Graph g = PathGraph(4);
  std::vector<uint8_t> is(4, 0);
  is[3] = 1;
  std::vector<DeferredDecision> stack{{1, 0, 3}};
  const uint64_t added = ReplayDeferredStack(stack, is);
  EXPECT_EQ(added, 0u);
  EXPECT_EQ(is[1], 0);
}

}  // namespace
}  // namespace rpmis
