#include "mis/lp_reduction.h"

#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "graph/generators.h"
#include "mis/verify.h"

namespace rpmis {
namespace {

TEST(HopcroftKarpTest, PerfectMatchingOnBipartite) {
  // K_{3,3}: matching 3.
  std::vector<Edge> cross;
  for (Vertex l = 0; l < 3; ++l) {
    for (Vertex r = 0; r < 3; ++r) cross.emplace_back(l, r);
  }
  EXPECT_EQ(HopcroftKarpMatching(3, 3, cross), 3u);
}

TEST(HopcroftKarpTest, AugmentingPathNeeded) {
  // Greedy alone can mis-match this: L0-{R0}, L1-{R0,R1}.
  std::vector<Edge> cross{{1, 0}, {1, 1}, {0, 0}};
  std::vector<Vertex> ml, mr;
  EXPECT_EQ(HopcroftKarpMatching(2, 2, cross, &ml, &mr), 2u);
  EXPECT_EQ(ml[0], 0u);
  EXPECT_EQ(ml[1], 1u);
}

TEST(HopcroftKarpTest, MatchingIsConsistent) {
  Graph g = ErdosRenyiGnm(40, 80, /*seed=*/17);
  std::vector<Edge> cross;
  for (const auto& [u, v] : g.CollectEdges()) {
    cross.emplace_back(u, v);
    cross.emplace_back(v, u);
  }
  std::vector<Vertex> ml, mr;
  HopcroftKarpMatching(40, 40, cross, &ml, &mr);
  for (Vertex l = 0; l < 40; ++l) {
    if (ml[l] != kInvalidVertex) {
      EXPECT_EQ(mr[ml[l]], l);
    }
  }
}

TEST(LpReductionTest, BipartiteGraphFullyResolved) {
  // On a bipartite graph the LP is integral: no half variables, and the
  // include side is a maximum independent set.
  Graph g = CompleteBipartite(3, 5);
  LpReduction lp = SolveLpReduction(g);
  EXPECT_EQ(lp.num_half, 0u);
  EXPECT_EQ(lp.num_include, 5u);
  EXPECT_EQ(lp.num_exclude, 3u);
  EXPECT_TRUE(IsIndependentSet(g, lp.include));
}

TEST(LpReductionTest, OddCycleIsAllHalf) {
  // C5 has LP optimum 5/2, all-half; nothing can be fixed.
  Graph g = CycleGraph(5);
  LpReduction lp = SolveLpReduction(g);
  EXPECT_EQ(lp.num_half, 5u);
  EXPECT_EQ(lp.num_include, 0u);
  EXPECT_EQ(lp.num_exclude, 0u);
  EXPECT_EQ(lp.Bound(5), 2u);  // floor(5/2) >= alpha = 2
}

TEST(LpReductionTest, IncludeNeighborsAreExcluded) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = ErdosRenyiGnm(40, 60, seed);
    LpReduction lp = SolveLpReduction(g);
    EXPECT_TRUE(IsIndependentSet(g, lp.include));
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      if (!lp.include[v]) continue;
      for (Vertex w : g.Neighbors(v)) {
        EXPECT_TRUE(lp.exclude[w]) << v << "->" << w;
      }
    }
  }
}

TEST(LpReductionTest, NemhauserTrotterPersistency) {
  // alpha(G) = num_include + alpha(G[half]) for every instance.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = ErdosRenyiGnm(20, 30 + 2 * seed, seed);
    LpReduction lp = SolveLpReduction(g);
    std::vector<Vertex> half;
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      if (!lp.include[v] && !lp.exclude[v]) half.push_back(v);
    }
    Graph kernel = g.InducedSubgraph(half);
    EXPECT_EQ(BruteForceAlpha(g), lp.num_include + BruteForceAlpha(kernel))
        << "seed " << seed;
  }
}

TEST(LpReductionTest, BoundDominatesAlpha) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = ErdosRenyiGnm(24, 50, seed + 100);
    LpReduction lp = SolveLpReduction(g);
    EXPECT_GE(lp.Bound(g.NumVertices()), BruteForceAlpha(g));
  }
}

}  // namespace
}  // namespace rpmis
