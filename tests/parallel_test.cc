// Coverage for support/parallel plus the contract the ingest fast path
// leans on: Graph::FromEdgesParallel produces a CSR byte-identical to the
// serial build at every thread count.
#include "support/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "support/random.h"

namespace rpmis {
namespace {

/// Scoped RPMIS_THREADS override.
class ThreadsEnv {
 public:
  explicit ThreadsEnv(const char* value) {
    const char* old = std::getenv("RPMIS_THREADS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value == nullptr) {
      unsetenv("RPMIS_THREADS");
    } else {
      setenv("RPMIS_THREADS", value, 1);
    }
  }
  ~ThreadsEnv() {
    if (had_) {
      setenv("RPMIS_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("RPMIS_THREADS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(NumThreadsTest, RespectsEnvOverride) {
  {
    ThreadsEnv env("3");
    EXPECT_EQ(NumThreads(), 3u);
  }
  {
    ThreadsEnv env("1");
    EXPECT_EQ(NumThreads(), 1u);
  }
  {
    // Clamped to the sanity ceiling.
    ThreadsEnv env("100000");
    EXPECT_EQ(NumThreads(), 256u);
  }
  {
    // Garbage and non-positive values fall back to hardware concurrency.
    ThreadsEnv env("zero");
    EXPECT_GE(NumThreads(), 1u);
    ThreadsEnv env2("-4");
    EXPECT_GE(NumThreads(), 1u);
  }
}

TEST(RunParallelTest, RunsEveryTaskExactlyOnce) {
  ThreadsEnv env("8");
  constexpr size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  RunParallel(kTasks, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(RunParallelTest, PropagatesLowestIndexedException) {
  ThreadsEnv env("4");
  try {
    RunParallel(100, [&](size_t i) {
      if (i == 17 || i == 63) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 17");
  }
}

TEST(ParallelChunksTest, CoversRangeExactlyOnce) {
  ThreadsEnv env("8");
  constexpr size_t kItems = 10000;
  std::vector<std::atomic<int>> hits(kItems);
  ParallelChunks(0, kItems, 16, [&](size_t b, size_t e) {
    ASSERT_LE(b, e);
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kItems; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelChunksTest, SmallRangeRunsInline) {
  ThreadsEnv env("8");
  size_t calls = 0;
  ParallelChunks(10, 20, 100, [&](size_t b, size_t e) {
    ++calls;
    EXPECT_EQ(b, 10u);
    EXPECT_EQ(e, 20u);
  });
  EXPECT_EQ(calls, 1u);
  // Empty range: body never runs.
  ParallelChunks(5, 5, 1, [&](size_t, size_t) { FAIL(); });
}

// ---- serial vs parallel CSR build --------------------------------------

void ExpectIdenticalCsr(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (Vertex v = 0; v < a.NumVertices(); ++v) {
    ASSERT_EQ(a.EdgeBegin(v), b.EdgeBegin(v)) << "offset of " << v;
    const auto na = a.Neighbors(v);
    const auto nb = b.Neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "adjacency of " << v;
  }
}

std::vector<Edge> MessyRandomEdges(Vertex n, size_t m, uint64_t seed) {
  // Duplicates (in both orientations) and self-loops included on purpose:
  // the build must canonicalize them away identically in both paths.
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m + m / 4);
  for (size_t i = 0; i < m; ++i) {
    const auto u = static_cast<Vertex>(rng.NextBounded(n));
    const auto v = static_cast<Vertex>(rng.NextBounded(n));
    edges.emplace_back(u, v);
    if (i % 5 == 0) edges.emplace_back(v, u);   // reversed duplicate
    if (i % 11 == 0) edges.emplace_back(u, u);  // self-loop
  }
  return edges;
}

TEST(FromEdgesParallelTest, MatchesSerialAcrossThreadCounts) {
  for (const char* threads : {"1", "2", "8"}) {
    ThreadsEnv env(threads);
    for (uint64_t seed : {1u, 2u, 3u}) {
      const Vertex n = 2000;
      const std::vector<Edge> edges = MessyRandomEdges(n, 60000, seed);
      Graph serial = Graph::FromEdgesSerial(n, edges);
      Graph parallel = Graph::FromEdgesParallel(n, edges);
      ExpectIdenticalCsr(serial, parallel);
    }
  }
}

TEST(FromEdgesParallelTest, MatchesSerialOnStructuredGraphs) {
  ThreadsEnv env("4");
  const Graph power_law = ChungLuPowerLaw(5000, 2.1, 6.0, /*seed=*/9);
  const std::vector<Edge> edges = power_law.CollectEdges();
  Graph serial = Graph::FromEdgesSerial(power_law.NumVertices(), edges);
  Graph parallel = Graph::FromEdgesParallel(power_law.NumVertices(), edges);
  ExpectIdenticalCsr(serial, parallel);
}

TEST(FromEdgesParallelTest, DegenerateInputs) {
  ThreadsEnv env("8");
  ExpectIdenticalCsr(Graph::FromEdgesSerial(0, std::vector<Edge>{}),
                     Graph::FromEdgesParallel(0, std::vector<Edge>{}));
  // Isolated vertices and a single edge.
  const std::vector<Edge> one{{3, 7}};
  ExpectIdenticalCsr(Graph::FromEdgesSerial(10, one),
                     Graph::FromEdgesParallel(10, one));
  // Only self-loops: empty edge set after normalization.
  const std::vector<Edge> loops{{1, 1}, {2, 2}};
  Graph g = Graph::FromEdgesParallel(4, loops);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.NumVertices(), 4u);
}

TEST(FromEdgesParallelTest, AutoDispatchIsDeterministic) {
  // Above the dispatch threshold with >1 threads, FromEdges takes the
  // parallel path; the result must still equal the serial reference.
  ThreadsEnv env("8");
  const Vertex n = 5000;
  const std::vector<Edge> edges = MessyRandomEdges(n, 80000, /*seed=*/4);
  ExpectIdenticalCsr(Graph::FromEdgesSerial(n, edges),
                     Graph::FromEdges(n, edges));
}

}  // namespace
}  // namespace rpmis
