#include <gtest/gtest.h>

#include "baselines/du.h"
#include "baselines/greedy.h"
#include "baselines/semi_external.h"
#include "exact/brute_force.h"
#include "graph/generators.h"
#include "mis/bdone.h"
#include "mis/verify.h"
#include "test_util.h"

namespace rpmis {
namespace {

struct BaselineCase {
  std::string name;
  std::function<MisSolution(const Graph&)> run;
};

const BaselineCase kBaselines[] = {
    {"Greedy", [](const Graph& g) { return RunGreedy(g); }},
    {"DU", [](const Graph& g) { return RunDU(g); }},
    {"SemiE", [](const Graph& g) { return RunSemiE(g); }},
};

class BaselineProperty
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(BaselineProperty, ValidMaximalAndBounded) {
  const auto [idx, seed] = GetParam();
  for (const Graph& g :
       {ErdosRenyiGnm(30, 60, seed), ChungLuPowerLaw(40, 2.2, 3.0, seed),
        CycleGraph(11), GridGraph(4, 4), testing::PaperFigure1()}) {
    MisSolution sol = kBaselines[idx].run(g);
    EXPECT_TRUE(IsMaximalIndependentSet(g, sol.in_set)) << kBaselines[idx].name;
    if (g.NumVertices() <= 40) {
      EXPECT_LE(sol.size, BruteForceAlpha(g)) << kBaselines[idx].name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineProperty,
    ::testing::Combine(::testing::Values(0u, 1u, 2u),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const auto& info) {
      return kBaselines[std::get<0>(info.param)].name + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(GreedyTest, TakesLowDegreeFirst) {
  // Star: the leaves have lower static degree than the hub, so Greedy
  // finds the maximum IS (all leaves).
  MisSolution sol = RunGreedy(StarGraph(6));
  EXPECT_EQ(sol.size, 6u);
}

TEST(DuTest, AdaptiveBeatsStaticOnChainedStars) {
  // Two hubs sharing leaves: DU re-evaluates degrees after removals.
  Graph g = CompleteBipartite(2, 8);
  EXPECT_EQ(RunDU(g).size, 8u);
}

TEST(SemiETest, OneKSwapImprovesGreedy) {
  // A hub whose removal frees two 1-tight vertices: star K_{1,2} with the
  // centre degree-2 — build a graph where greedy takes a middle vertex.
  // Path of 5: greedy may take the centre; SemiE must reach alpha = 3.
  Graph g = PathGraph(5);
  MisSolution sol = RunSemiE(g);
  EXPECT_EQ(sol.size, 3u);
}

TEST(SemiETest, SwapRoundsNeverInvalidate) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = ErdosRenyiGnm(200, 500, seed);
    MisSolution sol = RunSemiE(g);
    EXPECT_TRUE(IsMaximalIndependentSet(g, sol.in_set)) << seed;
    // SemiE must not do worse than its Greedy seed.
    EXPECT_GE(sol.size, RunGreedy(g).size) << seed;
  }
}

TEST(SemiETest, TwoKSwapsHelpInAggregate) {
  // The paper runs SemiE "with two-k swap"; across a batch of random
  // instances the two-k configuration must never lose to one-k-only and
  // must win somewhere (it subsumes it, plus extra improving moves).
  uint64_t with_total = 0, without_total = 0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = ErdosRenyiGnm(300, 1200, seed + 40);
    SemiEOptions with, without;
    without.two_k_swaps = false;
    const MisSolution a = RunSemiE(g, with);
    const MisSolution b = RunSemiE(g, without);
    EXPECT_TRUE(IsMaximalIndependentSet(g, a.in_set)) << seed;
    with_total += a.size;
    without_total += b.size;
  }
  EXPECT_GT(with_total, without_total);
}

TEST(BaselineOrdering, PaperShapeOnPowerLaw) {
  // The paper's Eval-I shape: BDOne >= DU >= Greedy on power-law graphs
  // (allowing slack of 1 for DU vs Greedy noise at this scale).
  Graph g = ChungLuPowerLaw(30000, 2.1, 4.0, /*seed=*/99);
  const uint64_t greedy = RunGreedy(g).size;
  const uint64_t du = RunDU(g).size;
  const uint64_t bdone = RunBDOne(g).size;
  EXPECT_GE(du + 5, greedy);
  EXPECT_GE(bdone, du);
  EXPECT_GT(bdone, greedy);
}

}  // namespace
}  // namespace rpmis
