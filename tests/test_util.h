// Shared fixtures for the rpmis test suite, including reconstructions of
// the paper's worked-example graphs (Figures 1, 2 and 5). The
// reconstructions are validated against every walkthrough the paper gives
// (BDOne, BDTwo, LinearTime and the NearLinear dominance example) in
// paper_examples_test.cc.
#ifndef RPMIS_TESTS_TEST_UTIL_H_
#define RPMIS_TESTS_TEST_UTIL_H_

#include <vector>

#include "graph/graph.h"

namespace rpmis::testing {

// Paper vertex v_i maps to id i-1 throughout.

/// Figure 1: 10 vertices; α = 4+1; maximum IS {v1,v4,v6,v8,v10};
/// BDOne finds {v1,v5,v7,v10} (size 4), BDTwo/LinearTime find size 5.
inline Graph PaperFigure1() {
  return Graph::FromEdges(
      10, std::vector<Edge>{{0, 1},
                            {0, 2},
                            {1, 2},
                            {1, 3},
                            {2, 3},
                            {3, 4},
                            {4, 5},
                            {4, 7},
                            {5, 6},
                            {6, 7},
                            {8, 9}});
}

/// §1's modified Figure 1: v10 removed, v9 joined to v1,v5,v6,v7,v8.
/// Minimum degree 3 (no degree-1/2 reductions apply), yet v9 is dominated
/// and NearLinear solves the graph exactly.
inline Graph PaperFigure1Modified() {
  return Graph::FromEdges(9, std::vector<Edge>{{0, 1},
                                               {0, 2},
                                               {1, 2},
                                               {1, 3},
                                               {2, 3},
                                               {3, 4},
                                               {4, 5},
                                               {4, 7},
                                               {5, 6},
                                               {6, 7},
                                               {8, 0},
                                               {8, 4},
                                               {8, 5},
                                               {8, 6},
                                               {8, 7}});
}

/// Figure 2: 6 vertices; α = 3 with maximum IS {v1,v3,v4};
/// {v2,v6} is a maximal (non-maximum) IS.
inline Graph PaperFigure2() {
  return Graph::FromEdges(6, std::vector<Edge>{{0, 1},
                                               {1, 2},
                                               {1, 3},
                                               {2, 4},
                                               {2, 5},
                                               {3, 4},
                                               {3, 5},
                                               {4, 5}});
}

/// Figure 5 (LinearTime running example): 10 vertices, α = 4,
/// maximum IS {v1,v3,v6,v10}.
inline Graph PaperFigure5() {
  return Graph::FromEdges(10, std::vector<Edge>{{0, 1},
                                                {1, 2},
                                                {0, 3},
                                                {2, 3},
                                                {3, 4},
                                                {4, 9},
                                                {4, 5},
                                                {5, 6},
                                                {6, 7},
                                                {6, 8},
                                                {7, 8},
                                                {7, 9},
                                                {8, 9}});
}

}  // namespace rpmis::testing

#endif  // RPMIS_TESTS_TEST_UTIL_H_
