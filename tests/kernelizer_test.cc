#include "mis/kernelizer.h"

#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "graph/generators.h"
#include "mis/verify.h"
#include "support/random.h"
#include "test_util.h"

namespace rpmis {
namespace {

// Core exactness property: alpha(G) == offset + alpha(kernel), and any
// optimal kernel solution lifts to an optimal full solution.
void CheckExactness(const Graph& g, const KernelizerOptions& opts) {
  Kernelizer kern(g, opts);
  kern.Run();
  const Graph& kernel = kern.Kernel();
  ASSERT_LE(kernel.NumVertices(), 64u) << "fixture too hard to verify";
  const uint64_t alpha = BruteForceAlpha(g);
  const uint64_t kernel_alpha = BruteForceAlpha(kernel);
  EXPECT_EQ(alpha, kern.AlphaOffset() + kernel_alpha);

  const std::vector<uint8_t> kernel_mis = BruteForceMis(kernel);
  const std::vector<uint8_t> lifted = kern.Lift(kernel_mis);
  EXPECT_TRUE(IsIndependentSet(g, lifted));
  uint64_t size = 0;
  for (uint8_t f : lifted) size += f;
  EXPECT_EQ(size, alpha);
}

TEST(KernelizerTest, SolvesTreesCompletely) {
  Kernelizer kern(BinaryTree(31));
  kern.Run();
  EXPECT_EQ(kern.Kernel().NumVertices(), 0u);
  EXPECT_EQ(kern.AlphaOffset(), BruteForceAlpha(BinaryTree(31)));
}

TEST(KernelizerTest, PaperFigures) {
  for (const Graph& g :
       {testing::PaperFigure1(), testing::PaperFigure1Modified(),
        testing::PaperFigure2(), testing::PaperFigure5()}) {
    CheckExactness(g, {});
  }
}

TEST(KernelizerTest, RandomGraphsAllRules) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    CheckExactness(ErdosRenyiGnm(26, 40 + 2 * seed, seed), {});
  }
}

TEST(KernelizerTest, RandomGraphsDegreeRulesOnly) {
  KernelizerOptions opts;
  opts.dominance = opts.twin = opts.unconfined = opts.lp = false;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    CheckExactness(ErdosRenyiGnm(24, 36, seed), opts);
  }
}

TEST(KernelizerTest, RandomGraphsNoFolding) {
  KernelizerOptions opts;
  opts.degree_two = false;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    CheckExactness(ErdosRenyiGnm(24, 44, seed), opts);
  }
}

TEST(KernelizerTest, DominanceCracksModifiedFigure1) {
  KernelizerOptions opts;
  opts.degree_two = false;
  opts.twin = opts.unconfined = opts.lp = false;
  Graph g = testing::PaperFigure1Modified();
  Kernelizer kern(g, opts);
  kern.Run();
  EXPECT_GE(kern.Rules().dominance, 1u);
  CheckExactness(g, opts);
}

TEST(KernelizerTest, FoldChainResolvesCorrectly) {
  // A long even path folds repeatedly; lifting must reproduce alpha.
  CheckExactness(PathGraph(12), {});
  KernelizerOptions fold_only;
  fold_only.degree_one = true;
  fold_only.dominance = fold_only.twin = fold_only.unconfined = fold_only.lp = false;
  CheckExactness(PathGraph(12), fold_only);
  CheckExactness(CycleGraph(9), fold_only);
}

TEST(KernelizerTest, CliqueKernelIsReduced) {
  // K6: the dominance rule alone collapses a clique to one vertex.
  Kernelizer kern(CompleteGraph(6));
  kern.Run();
  EXPECT_EQ(kern.AlphaOffset() + BruteForceAlpha(kern.Kernel()), 1u);
}

TEST(KernelizerTest, Theorem31GadgetFullyKernelized) {
  // The gadget is built from degree-1/2-reducible structure; the full rule
  // set should leave (at most) a trivial kernel.
  Kernelizer kern(Theorem31Gadget(16));
  kern.Run();
  EXPECT_LE(kern.Kernel().NumVertices(), 8u);
}

TEST(KernelizerTest, RulesCountersPopulated) {
  Graph g = ChungLuPowerLaw(2000, 2.1, 3.0, /*seed=*/5);
  Kernelizer kern(g);
  kern.Run();
  EXPECT_GT(kern.Rules().TotalExact(), 0u);
}

TEST(KernelizerTest, LiftOfEmptyKernelSolutionIsValid) {
  Graph g = ErdosRenyiGnm(30, 45, /*seed=*/3);
  Kernelizer kern(g);
  kern.Run();
  std::vector<uint8_t> none(kern.Kernel().NumVertices(), 0);
  std::vector<uint8_t> lifted = kern.Lift(none);
  EXPECT_TRUE(IsIndependentSet(g, lifted));
}

TEST(KernelizerTest, UnconfinedRuleFiresInIsolation) {
  // v = 0 is unconfined: its neighbour u = 1 satisfies N(u) ⊆ N[v]
  // (a null extender), so some maximum IS avoids v. With every other
  // rule disabled, only the unconfined test can remove anything.
  Graph g = Graph::FromEdges(
      6, std::vector<Edge>{{0, 1}, {0, 2}, {1, 2}, {0, 3}, {3, 4}, {3, 5},
                           {4, 5}});
  KernelizerOptions opts;
  opts.degree_one = opts.degree_two = false;
  opts.dominance = opts.twin = opts.lp = false;
  Kernelizer kern(g, opts);
  kern.Run();
  EXPECT_GE(kern.Rules().unconfined, 1u);
  CheckExactness(g, opts);
}

TEST(KernelizerTest, TwinWithInnerEdgeTakesBoth) {
  // u=0, v=1 twins over {2,3,4} with edge (2,3): u and v join I.
  Graph g = Graph::FromEdges(
      8, std::vector<Edge>{{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4},
                           {2, 3}, {2, 5}, {3, 6}, {4, 7}, {5, 6}, {6, 7}});
  KernelizerOptions opts;
  opts.dominance = opts.unconfined = opts.lp = false;
  opts.degree_one = opts.degree_two = false;  // isolate the twin pass
  Kernelizer kern(g, opts);
  kern.Run();
  EXPECT_GE(kern.Rules().twin, 2u);
  CheckExactness(g, opts);
}

TEST(KernelizerTest, TwinFoldWithoutInnerEdge) {
  // u=0, v=1 twins over pairwise NON-adjacent {2,3,4}: the fold variant
  // fires and the lift must recover alpha either way the supervertex goes.
  Graph g = Graph::FromEdges(
      11, std::vector<Edge>{{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4},
                            {2, 5}, {2, 6}, {3, 7}, {3, 8}, {4, 9}, {4, 10},
                            {5, 6}, {7, 8}, {9, 10}, {5, 7}, {7, 9}});
  KernelizerOptions opts;
  opts.dominance = opts.unconfined = opts.lp = false;
  opts.degree_one = opts.degree_two = false;  // isolate the twin pass
  Kernelizer kern(g, opts);
  kern.Run();
  EXPECT_GE(kern.Rules().twin, 2u);
  // Full-rule and isolated-rule runs must both stay exact.
  ASSERT_LE(kern.Kernel().NumVertices(), 64u);
  EXPECT_EQ(BruteForceAlpha(g),
            kern.AlphaOffset() + BruteForceAlpha(kern.Kernel()));
  const std::vector<uint8_t> lifted = kern.Lift(BruteForceMis(kern.Kernel()));
  EXPECT_TRUE(IsIndependentSet(g, lifted));
  uint64_t size = 0;
  for (uint8_t f : lifted) size += f;
  EXPECT_EQ(size, BruteForceAlpha(g));
  CheckExactness(g, {});
}

TEST(KernelizerTest, TwinFoldStressRandomized) {
  // Random graphs seeded with deliberate twin structures; the full rule
  // set must remain exact through chained folds.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    GraphBuilder b(30);
    // Random background edges.
    for (int e = 0; e < 25; ++e) {
      Vertex x = static_cast<Vertex>(rng.NextBounded(30));
      Vertex y = static_cast<Vertex>(rng.NextBounded(30));
      if (x != y) b.AddEdge(x, y);
    }
    // Two planted twin pairs over disjoint triples.
    for (Vertex base : {0u, 10u}) {
      for (Vertex n = 2; n < 5; ++n) {
        b.AddEdge(base, base + n);
        b.AddEdge(base + 1, base + n);
      }
    }
    Graph g = b.Build();
    // Planted twins may be perturbed by background edges; exactness is
    // the invariant, twin firing is incidental.
    CheckExactness(g, {});
  }
}

}  // namespace
}  // namespace rpmis
