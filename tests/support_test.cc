#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "support/fast_set.h"
#include "support/mmap_file.h"
#include "support/random.h"
#include "support/timer.h"

namespace rpmis {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const uint64_t x = a.Next();
    EXPECT_EQ(x, b.Next());
  }
  // Different seed diverges immediately with overwhelming probability.
  Rng a2(42);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // crude uniformity sanity
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(FastSetTest, InsertContainsErase) {
  FastSet s(10);
  EXPECT_FALSE(s.Contains(3));
  s.Insert(3);
  EXPECT_TRUE(s.Contains(3));
  s.Erase(3);
  EXPECT_FALSE(s.Contains(3));
}

TEST(FastSetTest, ClearIsConstantTimeReset) {
  FastSet s(1000);
  for (uint32_t i = 0; i < 1000; ++i) s.Insert(i);
  s.Clear();
  for (uint32_t i = 0; i < 1000; ++i) EXPECT_FALSE(s.Contains(i));
  s.Insert(5);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(6));
}

TEST(FastSetTest, ResizeResets) {
  FastSet s(4);
  s.Insert(2);
  s.Resize(8);
  EXPECT_EQ(s.Universe(), 8u);
  EXPECT_FALSE(s.Contains(2));
}

TEST(FastSetTest, ManyGenerations) {
  FastSet s(8);
  for (int gen = 0; gen < 100000; ++gen) {
    s.Insert(static_cast<uint32_t>(gen % 8));
    ASSERT_TRUE(s.Contains(gen % 8));
    s.Clear();
    ASSERT_FALSE(s.Contains(gen % 8));
  }
}

TEST(MmapFileTest, MapsRegularFileContents) {
  const std::string path = ::testing::TempDir() + "/rpmis_mmap_test.txt";
  const std::string payload = "hello mmap\nsecond line\n";
  {
    std::ofstream out(path, std::ios::binary);
    out << payload;
  }
  MmapFile file = MmapFile::Open(path);
  EXPECT_EQ(file.view(), payload);
  EXPECT_TRUE(file.is_mapped());
  // The view must survive a move (fallback buffers relocate with SSO).
  MmapFile moved = std::move(file);
  EXPECT_EQ(moved.view(), payload);
  std::filesystem::remove(path);
}

TEST(MmapFileTest, EmptyFileYieldsEmptyView) {
  const std::string path = ::testing::TempDir() + "/rpmis_mmap_empty.txt";
  { std::ofstream out(path, std::ios::binary); }
  MmapFile file = MmapFile::Open(path);
  EXPECT_TRUE(file.view().empty());
  std::filesystem::remove(path);
}

TEST(MmapFileTest, MissingFileThrows) {
  EXPECT_THROW(MmapFile::Open("/nonexistent/rpmis_mmap"), std::runtime_error);
}

TEST(ReadStreamToStringTest, SlurpsAcrossChunkBoundaries) {
  // Larger than the 256KB read chunk so the loop iterates.
  std::string payload(600000, 'x');
  for (size_t i = 0; i < payload.size(); i += 997) {
    payload[i] = static_cast<char>('a' + (i % 26));
  }
  std::istringstream in(payload);
  EXPECT_EQ(ReadStreamToString(in), payload);
  std::istringstream empty("");
  EXPECT_EQ(ReadStreamToString(empty), "");
}

TEST(TimerTest, MonotoneAndRestartable) {
  Timer t;
  const double a = t.Seconds();
  const double b = t.Seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
  t.Restart();
  EXPECT_LT(t.Seconds(), 1.0);
  EXPECT_NEAR(t.Millis(), t.Seconds() * 1000, 1000);
}

}  // namespace
}  // namespace rpmis
