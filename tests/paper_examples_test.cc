// Re-enactments of every worked example in the paper, pinned to the
// reconstructed figure graphs in test_util.h.
#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "mis/bdone.h"
#include "mis/bdtwo.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"
#include "mis/verify.h"
#include "test_util.h"

namespace rpmis {
namespace {

// §1 / Figure 1: "{v2, v5, v7, v9} is an independent set of size 4, while
// {v1, v4, v6, v8, v10} is a maximum independent set of size 5."
TEST(PaperFigure1, StatedSetsAreCorrect) {
  Graph g = testing::PaperFigure1();
  std::vector<uint8_t> is4(10, 0);
  for (Vertex v : {1u, 4u, 6u, 8u}) is4[v] = 1;
  EXPECT_TRUE(IsIndependentSet(g, is4));
  std::vector<uint8_t> mis(10, 0);
  for (Vertex v : {0u, 3u, 5u, 7u, 9u}) mis[v] = 1;
  EXPECT_TRUE(IsMaximalIndependentSet(g, mis));
  EXPECT_EQ(BruteForceAlpha(g), 5u);
  // "{v2, v3, v5, v7, v9} is the minimum vertex cover."
  EXPECT_TRUE(IsVertexCover(g, Complement(mis)));
}

// §1: "Thus, BDOne computes the independent set {v1, v5, v7, v10} of
// size 4" — one below optimum with the paper's peel tie-breaking. Any
// tie-break yields 4 or 5, and a peel always happens, so BDOne can never
// CERTIFY a maximum here.
TEST(PaperFigure1, BDOnePeelsAndCannotCertify) {
  MisSolution sol = RunBDOne(testing::PaperFigure1());
  EXPECT_GE(sol.size, 4u);
  EXPECT_LE(sol.size, 5u);
  EXPECT_FALSE(sol.provably_maximum);
  EXPECT_GT(sol.rules.peels, 0u);
}

// §1: "BDTwo obtains a maximum independent set ... of size 5."
TEST(PaperFigure1, BDTwoFindsOptimum) {
  MisSolution sol = RunBDTwo(testing::PaperFigure1());
  EXPECT_EQ(sol.size, 5u);
  EXPECT_TRUE(sol.provably_maximum);
  EXPECT_EQ(sol.rules.peels, 0u);
}

// §1: "LinearTime also obtains {v1,v4,v6,v8,v10} but runs in linear time."
TEST(PaperFigure1, LinearTimeFindsOptimum) {
  MisSolution sol = RunLinearTime(testing::PaperFigure1());
  EXPECT_EQ(sol.size, 5u);
  EXPECT_TRUE(sol.provably_maximum);
  EXPECT_EQ(sol.rules.peels, 0u);
  EXPECT_GT(sol.rules.degree_two_path, 0u);
}

// §1 / §5: the modified Figure 1 has minimum degree 3, so no degree-1/2
// rule applies, yet the dominance reduction removes v9 and the rest is
// solved by LinearTime-style reductions.
TEST(PaperFigure1Modified, MinimumDegreeIsThree) {
  Graph g = testing::PaperFigure1Modified();
  EXPECT_EQ(ComputeDegreeStats(g).min_degree, 3u);
}

TEST(PaperFigure1Modified, V9IsDominated) {
  Graph g = testing::PaperFigure1Modified();
  // v9 (id 8) is dominated by one of its neighbours:
  // exists v with delta(v, v9) == d(v) - 1 (Lemma 5.2).
  auto delta = EdgeTriangleCounts(g);
  bool dominated = false;
  for (uint64_t e = g.EdgeBegin(8); e < g.EdgeEnd(8); ++e) {
    const Vertex v = g.EdgeTarget(e);
    // Find delta on the mirror (v -> 8); symmetric, so reuse e's value.
    if (delta[e] == g.Degree(v) - 1) dominated = true;
  }
  EXPECT_TRUE(dominated);
}

TEST(PaperFigure1Modified, NearLinearSolvesExactly) {
  Graph g = testing::PaperFigure1Modified();
  MisSolution sol = RunNearLinear(g);
  EXPECT_EQ(sol.size, BruteForceAlpha(g));
  EXPECT_TRUE(sol.provably_maximum);
  EXPECT_EQ(sol.rules.peels, 0u);
}

TEST(PaperFigure1Modified, DominanceAloneSuffices) {
  // Without the prepasses, the incremental dominance machinery must still
  // crack the instance (this is the §5 walkthrough).
  NearLinearOptions opts;
  opts.one_pass_dominance = false;
  opts.lp_reduction = false;
  Graph g = testing::PaperFigure1Modified();
  MisSolution sol = RunNearLinear(g, nullptr, opts);
  EXPECT_EQ(sol.size, BruteForceAlpha(g));
  EXPECT_EQ(sol.rules.peels, 0u);
  EXPECT_GT(sol.rules.dominance, 0u);
}

// §2 / Figure 2: "{v2,v6} is a maximal independent set, {v1,v3,v4} is a
// maximum independent set, and the independence number is 3."
TEST(PaperFigure2, StatedSetsAreCorrect) {
  Graph g = testing::PaperFigure2();
  std::vector<uint8_t> maximal{0, 1, 0, 0, 0, 1};
  EXPECT_TRUE(IsMaximalIndependentSet(g, maximal));
  std::vector<uint8_t> maximum{1, 0, 1, 1, 0, 0};
  EXPECT_TRUE(IsMaximalIndependentSet(g, maximum));
  EXPECT_EQ(BruteForceAlpha(g), 3u);
}

// §3.2 running example: BDOne reaches {v1, v3, v4} (size 3 = optimum; it
// cannot *certify* it because one peel happened).
TEST(PaperFigure2, BDOneReachesOptimumWithOnePeel) {
  MisSolution sol = RunBDOne(testing::PaperFigure2());
  EXPECT_EQ(sol.size, 3u);
  EXPECT_EQ(sol.rules.peels, 1u);
}

// §3.3 running example: BDTwo certifies the optimum with zero peels
// ("we can report {v1,v3,v4} as a maximum independent set").
TEST(PaperFigure2, BDTwoCertifiesOptimum) {
  MisSolution sol = RunBDTwo(testing::PaperFigure2());
  EXPECT_EQ(sol.size, 3u);
  EXPECT_TRUE(sol.provably_maximum);
  EXPECT_EQ(sol.rules.peels, 0u);
}

// §4 running example (Figure 5): LinearTime finds a maximum IS of size 4;
// the run exercises path case 1 (v == w) and case 5 (even, rewire).
TEST(PaperFigure5, LinearTimeFindsOptimum) {
  Graph g = testing::PaperFigure5();
  EXPECT_EQ(BruteForceAlpha(g), 4u);
  MisSolution sol = RunLinearTime(g);
  EXPECT_EQ(sol.size, 4u);
  EXPECT_GE(sol.rules.degree_two_path, 2u);
  // The paper's stated result {v1, v3, v10, v6} is one optimum.
  std::vector<uint8_t> stated(10, 0);
  for (Vertex v : {0u, 2u, 9u, 5u}) stated[v] = 1;
  EXPECT_TRUE(IsMaximalIndependentSet(g, stated));
}

// Theorem 3.1's adversarial family: BDTwo folds Θ(k log k) times the unit
// cost while LinearTime stays linear; all algorithms must stay valid and
// within the Theorem 6.1 envelope.
TEST(Theorem31Family, AlgorithmsStayWithinBounds) {
  Graph g = Theorem31Gadget(8);  // 33 vertices: brute-forceable
  const uint64_t alpha = BruteForceAlpha(g);
  for (const MisSolution& sol :
       {RunBDTwo(g), RunLinearTime(g), RunNearLinear(g)}) {
    EXPECT_TRUE(IsMaximalIndependentSet(g, sol.in_set));
    EXPECT_LE(sol.size, alpha);
    EXPECT_GE(sol.UpperBound(), alpha);
  }
}

TEST(Theorem31Family, TriggersManyFolds) {
  Graph g = Theorem31Gadget(64);
  MisSolution sol = RunBDTwo(g);
  // Every trigger vertex causes one fold: k-1 = 63 of them, minus any that
  // resolve otherwise; require at least k/2.
  EXPECT_GE(sol.rules.degree_two_folding, 32u);
}

// Lemma 2.1 / 2.2 micro-checks on the exact shapes of Figure 3.
TEST(ReductionShapes, DegreeOneShape) {
  // u - v, v - x, v - y: take u, drop v; alpha = 1 + alpha(G \ {u, v}).
  Graph g = Graph::FromEdges(4, std::vector<Edge>{{0, 1}, {1, 2}, {1, 3}});
  MisSolution sol = RunBDOne(g);
  EXPECT_EQ(sol.size, 3u);  // {u, x, y}
  EXPECT_TRUE(sol.provably_maximum);
}

TEST(ReductionShapes, DegreeTwoIsolationShape) {
  // Triangle u-v-w plus pendants on v and w.
  Graph g = Graph::FromEdges(
      6, std::vector<Edge>{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 5}});
  const uint64_t alpha = BruteForceAlpha(g);
  EXPECT_EQ(RunBDTwo(g).size, alpha);
  EXPECT_EQ(RunLinearTime(g).size, alpha);
}

TEST(ReductionShapes, DegreeTwoFoldingShape) {
  // C4: every vertex is degree-2 with NON-adjacent neighbours, so BDTwo's
  // very first step must be a fold; the backtracking must then recover the
  // optimum {opposite pair}.
  Graph g = CycleGraph(4);
  MisSolution sol = RunBDTwo(g);
  EXPECT_EQ(sol.size, 2u);
  EXPECT_GE(sol.rules.degree_two_folding, 1u);
  EXPECT_TRUE(sol.provably_maximum);
  EXPECT_TRUE(IsMaximalIndependentSet(g, sol.in_set));
}

}  // namespace
}  // namespace rpmis
