#include "ds/bucket_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "support/random.h"

namespace rpmis {
namespace {

TEST(BucketQueueTest, InsertPopMinMax) {
  BucketQueue q(10, 100);
  q.Insert(0, 5);
  q.Insert(1, 3);
  q.Insert(2, 7);
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_EQ(q.MinKey(), 3u);
  EXPECT_EQ(q.MaxKey(), 7u);
  EXPECT_EQ(q.PopMin(), 1u);
  EXPECT_EQ(q.PopMax(), 2u);
  EXPECT_EQ(q.PopMin(), 0u);
  EXPECT_TRUE(q.Empty());
}

TEST(BucketQueueTest, UpdateMovesBetweenBuckets) {
  BucketQueue q(4, 50);
  q.Insert(0, 10);
  q.Insert(1, 20);
  q.Update(0, 30);  // increase
  EXPECT_EQ(q.PopMax(), 0u);
  q.Update(1, 1);  // decrease
  EXPECT_EQ(q.MinKey(), 1u);
  EXPECT_EQ(q.PopMin(), 1u);
}

TEST(BucketQueueTest, RemoveArbitrary) {
  BucketQueue q(5, 10);
  for (Vertex v = 0; v < 5; ++v) q.Insert(v, v);
  q.Remove(2);
  EXPECT_FALSE(q.Contains(2));
  EXPECT_EQ(q.Size(), 4u);
  EXPECT_EQ(q.PopMin(), 0u);
  EXPECT_EQ(q.PopMax(), 4u);
}

TEST(BucketQueueTest, FromKeys) {
  std::vector<uint32_t> keys{4, 1, 4, 2};
  BucketQueue q = BucketQueue::FromKeys(keys, 4);
  EXPECT_EQ(q.Size(), 4u);
  EXPECT_EQ(q.MinKey(), 1u);
  EXPECT_EQ(q.MaxKey(), 4u);
}

// Randomized comparison with a multimap-based reference.
TEST(BucketQueueTest, RandomizedAgainstReference) {
  const Vertex n = 200;
  BucketQueue q(n, 300);
  std::map<Vertex, uint32_t> ref;
  Rng rng(42);
  for (int step = 0; step < 4000; ++step) {
    const int op = static_cast<int>(rng.NextBounded(5));
    if (op <= 1) {  // insert
      const Vertex v = static_cast<Vertex>(rng.NextBounded(n));
      if (ref.count(v)) continue;
      const uint32_t k = static_cast<uint32_t>(rng.NextBounded(300));
      q.Insert(v, k);
      ref[v] = k;
    } else if (op == 2 && !ref.empty()) {  // update
      auto it = ref.begin();
      std::advance(it, rng.NextBounded(ref.size()));
      const uint32_t k = static_cast<uint32_t>(rng.NextBounded(300));
      q.Update(it->first, k);
      it->second = k;
    } else if (op == 3 && !ref.empty()) {  // pop min
      const Vertex v = q.PopMin();
      uint32_t expect = ~0u;
      for (auto& [vv, kk] : ref) expect = std::min(expect, kk);
      ASSERT_EQ(ref[v], expect);
      ref.erase(v);
    } else if (op == 4 && !ref.empty()) {  // pop max
      const Vertex v = q.PopMax();
      uint32_t expect = 0;
      for (auto& [vv, kk] : ref) expect = std::max(expect, kk);
      ASSERT_EQ(ref[v], expect);
      ref.erase(v);
    }
    ASSERT_EQ(q.Size(), ref.size());
  }
}

TEST(LazyMaxBucketQueueTest, PopsInDecreasingTrueKeyOrder) {
  // True keys only decrease; the queue is fed stale values.
  std::vector<uint32_t> keys{5, 9, 3, 9, 7};
  std::vector<uint8_t> alive(5, 1);
  std::vector<uint32_t> current = keys;
  LazyMaxBucketQueue q(keys);
  current[1] = 4;  // degraded after construction
  current[3] = 6;

  auto key_fn = [&](Vertex v) { return current[v]; };
  auto alive_fn = [&](Vertex v) { return alive[v] != 0; };
  std::vector<Vertex> order;
  for (int i = 0; i < 5; ++i) order.push_back(q.PopMax(key_fn, alive_fn));
  // Expected order by current keys: 4 (7), 3 (6), 0 (5), 1 (4), 2 (3).
  EXPECT_EQ(order, (std::vector<Vertex>{4, 3, 0, 1, 2}));
  EXPECT_EQ(q.PopMax(key_fn, alive_fn), kInvalidVertex);
}

TEST(LazyMaxBucketQueueTest, SkipsDeadEntries) {
  std::vector<uint32_t> keys{1, 2, 3};
  std::vector<uint8_t> alive{1, 0, 1};
  LazyMaxBucketQueue q(keys);
  auto key_fn = [&](Vertex v) { return keys[v]; };
  auto alive_fn = [&](Vertex v) { return alive[v] != 0; };
  EXPECT_EQ(q.PopMax(key_fn, alive_fn), 2u);
  EXPECT_EQ(q.PopMax(key_fn, alive_fn), 0u);
  EXPECT_EQ(q.PopMax(key_fn, alive_fn), kInvalidVertex);
}

TEST(LazyMaxBucketQueueTest, EmptyUniverse) {
  std::vector<uint32_t> keys;
  LazyMaxBucketQueue q(keys);
  auto key_fn = [](Vertex) { return 0u; };
  auto alive_fn = [](Vertex) { return true; };
  EXPECT_EQ(q.PopMax(key_fn, alive_fn), kInvalidVertex);
}

}  // namespace
}  // namespace rpmis
