#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"

namespace rpmis {
namespace {

TEST(IoTest, ReadEdgeListWithCommentsAndRemapping) {
  std::istringstream in(
      "# comment\n"
      "% another comment\n"
      "10 20\n"
      "20 30\n"
      "\n"
      "10 30\n");
  Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.NumVertices(), 3u);  // ids 10, 20, 30 remapped densely
  EXPECT_EQ(g.NumEdges(), 3u);
}

TEST(IoTest, ReadEdgeListRejectsGarbage) {
  std::istringstream in("1 x\n");
  EXPECT_THROW(ReadEdgeList(in), std::runtime_error);
}

TEST(IoTest, EdgeListRoundTrip) {
  Graph g = ErdosRenyiGnm(30, 60, /*seed=*/2);
  std::stringstream buf;
  WriteEdgeList(g, buf);
  Graph h = ReadEdgeList(buf);
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
  // Vertex ids are written in increasing order and remapped in order of
  // first appearance, which may permute isolated-free graphs; edge count
  // plus degree multiset is a robust invariant.
  std::vector<uint32_t> dg, dh;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) > 0) dg.push_back(g.Degree(v));
  }
  for (Vertex v = 0; v < h.NumVertices(); ++v) dh.push_back(h.Degree(v));
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
}

TEST(IoTest, DimacsRoundTrip) {
  Graph g = ErdosRenyiGnm(25, 50, /*seed=*/3);
  std::stringstream buf;
  WriteDimacs(g, buf);
  Graph h = ReadDimacs(buf);
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
  EXPECT_EQ(h.CollectEdges(), g.CollectEdges());
}

TEST(IoTest, DimacsPreservesIsolatedVertices) {
  Graph g = Graph::FromEdges(5, std::vector<Edge>{{0, 1}});
  std::stringstream buf;
  WriteDimacs(g, buf);
  Graph h = ReadDimacs(buf);
  EXPECT_EQ(h.NumVertices(), 5u);
}

TEST(IoTest, DimacsRejectsBadEdges) {
  std::istringstream in("p edge 3 1\ne 0 2\n");  // 0 is invalid (1-based)
  EXPECT_THROW(ReadDimacs(in), std::runtime_error);
  std::istringstream in2("e 1 2\n");  // edge before problem line
  EXPECT_THROW(ReadDimacs(in2), std::runtime_error);
}

TEST(IoTest, MetisRoundTrip) {
  Graph g = ErdosRenyiGnm(20, 40, /*seed=*/4);
  std::stringstream buf;
  WriteMetis(g, buf);
  Graph h = ReadMetis(buf);
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
  EXPECT_EQ(h.CollectEdges(), g.CollectEdges());
}

TEST(IoTest, MetisRejectsTruncated) {
  std::istringstream in("3 2\n2\n");  // declares 3 vertices, provides 1 line
  EXPECT_THROW(ReadMetis(in), std::runtime_error);
}

TEST(IoTest, FileRoundTrip) {
  Graph g = CycleGraph(12);
  const std::string path = ::testing::TempDir() + "/rpmis_io_test.txt";
  WriteEdgeListFile(g, path);
  Graph h = ReadEdgeListFile(path);
  EXPECT_EQ(h.NumEdges(), 12u);
  EXPECT_THROW(ReadEdgeListFile("/nonexistent/rpmis"), std::runtime_error);
}

TEST(IoTest, BinaryRoundTrip) {
  Graph g = ErdosRenyiGnm(500, 2000, /*seed=*/12);
  std::stringstream buf;
  WriteBinary(g, buf);
  Graph h = ReadBinary(buf);
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
  EXPECT_EQ(h.CollectEdges(), g.CollectEdges());
}

TEST(IoTest, BinaryRejectsCorruption) {
  std::istringstream junk("not a graph at all");
  EXPECT_THROW(ReadBinary(junk), std::runtime_error);
  Graph g = CycleGraph(6);
  std::stringstream buf;
  WriteBinary(g, buf);
  std::string payload = buf.str();
  std::istringstream truncated(payload.substr(0, payload.size() / 2));
  EXPECT_THROW(ReadBinary(truncated), std::runtime_error);
}

TEST(IoTest, BinaryFileRoundTrip) {
  Graph g = GridGraph(6, 7);
  const std::string path = ::testing::TempDir() + "/rpmis_io_test.rpmi";
  WriteBinaryFile(g, path);
  Graph h = ReadBinaryFile(path);
  EXPECT_EQ(h.CollectEdges(), g.CollectEdges());
}

}  // namespace
}  // namespace rpmis
