#include "graph/io.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/generators.h"

namespace rpmis {
namespace {

TEST(IoTest, ReadEdgeListWithCommentsAndRemapping) {
  std::istringstream in(
      "# comment\n"
      "% another comment\n"
      "10 20\n"
      "20 30\n"
      "\n"
      "10 30\n");
  Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.NumVertices(), 3u);  // ids 10, 20, 30 remapped densely
  EXPECT_EQ(g.NumEdges(), 3u);
}

TEST(IoTest, ReadEdgeListRejectsGarbage) {
  std::istringstream in("1 x\n");
  EXPECT_THROW(ReadEdgeList(in), std::runtime_error);
}

TEST(IoTest, EdgeListRoundTrip) {
  Graph g = ErdosRenyiGnm(30, 60, /*seed=*/2);
  std::stringstream buf;
  WriteEdgeList(g, buf);
  Graph h = ReadEdgeList(buf);
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
  // Vertex ids are written in increasing order and remapped in order of
  // first appearance, which may permute isolated-free graphs; edge count
  // plus degree multiset is a robust invariant.
  std::vector<uint32_t> dg, dh;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) > 0) dg.push_back(g.Degree(v));
  }
  for (Vertex v = 0; v < h.NumVertices(); ++v) dh.push_back(h.Degree(v));
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
}

TEST(IoTest, DimacsRoundTrip) {
  Graph g = ErdosRenyiGnm(25, 50, /*seed=*/3);
  std::stringstream buf;
  WriteDimacs(g, buf);
  Graph h = ReadDimacs(buf);
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
  EXPECT_EQ(h.CollectEdges(), g.CollectEdges());
}

TEST(IoTest, DimacsPreservesIsolatedVertices) {
  Graph g = Graph::FromEdges(5, std::vector<Edge>{{0, 1}});
  std::stringstream buf;
  WriteDimacs(g, buf);
  Graph h = ReadDimacs(buf);
  EXPECT_EQ(h.NumVertices(), 5u);
}

TEST(IoTest, DimacsRejectsBadEdges) {
  std::istringstream in("p edge 3 1\ne 0 2\n");  // 0 is invalid (1-based)
  EXPECT_THROW(ReadDimacs(in), std::runtime_error);
  std::istringstream in2("e 1 2\n");  // edge before problem line
  EXPECT_THROW(ReadDimacs(in2), std::runtime_error);
}

TEST(IoTest, MetisRoundTrip) {
  Graph g = ErdosRenyiGnm(20, 40, /*seed=*/4);
  std::stringstream buf;
  WriteMetis(g, buf);
  Graph h = ReadMetis(buf);
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
  EXPECT_EQ(h.CollectEdges(), g.CollectEdges());
}

TEST(IoTest, MetisRejectsTruncated) {
  std::istringstream in("3 2\n2\n");  // declares 3 vertices, provides 1 line
  EXPECT_THROW(ReadMetis(in), std::runtime_error);
}

TEST(IoTest, FileRoundTrip) {
  Graph g = CycleGraph(12);
  const std::string path = ::testing::TempDir() + "/rpmis_io_test.txt";
  WriteEdgeListFile(g, path);
  Graph h = ReadEdgeListFile(path);
  EXPECT_EQ(h.NumEdges(), 12u);
  EXPECT_THROW(ReadEdgeListFile("/nonexistent/rpmis"), std::runtime_error);
}

TEST(IoTest, BinaryRoundTrip) {
  Graph g = ErdosRenyiGnm(500, 2000, /*seed=*/12);
  std::stringstream buf;
  WriteBinary(g, buf);
  Graph h = ReadBinary(buf);
  EXPECT_EQ(h.NumVertices(), g.NumVertices());
  EXPECT_EQ(h.CollectEdges(), g.CollectEdges());
}

TEST(IoTest, BinaryRejectsCorruption) {
  std::istringstream junk("not a graph at all");
  EXPECT_THROW(ReadBinary(junk), std::runtime_error);
  Graph g = CycleGraph(6);
  std::stringstream buf;
  WriteBinary(g, buf);
  std::string payload = buf.str();
  std::istringstream truncated(payload.substr(0, payload.size() / 2));
  EXPECT_THROW(ReadBinary(truncated), std::runtime_error);
}

TEST(IoTest, BinaryFileRoundTrip) {
  Graph g = GridGraph(6, 7);
  const std::string path = ::testing::TempDir() + "/rpmis_io_test.rpmi";
  WriteBinaryFile(g, path);
  Graph h = ReadBinaryFile(path);
  EXPECT_EQ(h.CollectEdges(), g.CollectEdges());
}

// ---- hardened error handling (fast + legacy paths) ----------------------

/// Runs `fn`, which must throw std::runtime_error, and returns the message.
template <typename Fn>
std::string CaptureError(Fn&& fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::runtime_error";
  return "";
}

TEST(IoTest, EdgeListRejectsTrailingGarbageWithLineNumber) {
  const std::string text =
      "# header\n"
      "1 2\n"
      "3 4 junk\n";
  const std::string legacy = CaptureError([&] {
    std::istringstream in(text);
    ReadEdgeList(in);
  });
  EXPECT_NE(legacy.find("trailing garbage"), std::string::npos) << legacy;
  EXPECT_NE(legacy.find("line 3"), std::string::npos) << legacy;

  const std::string fast = CaptureError([&] { ParseEdgeList(text); });
  EXPECT_NE(fast.find("trailing garbage"), std::string::npos) << fast;
  EXPECT_NE(fast.find("line 3"), std::string::npos) << fast;
}

TEST(IoTest, FastEdgeListMatchesLegacyNumbering) {
  const std::string text =
      "# comment\n"
      "% another\n"
      "10 20\n"
      "\n"
      "20 30\n"
      "10 30\n";
  std::istringstream in(text);
  Graph legacy = ReadEdgeList(in);
  Graph fast = ParseEdgeList(text);
  EXPECT_EQ(fast.NumVertices(), legacy.NumVertices());
  EXPECT_EQ(fast.CollectEdges(), legacy.CollectEdges());
}

TEST(IoTest, FastEdgeListHandlesCrlf) {
  Graph g = ParseEdgeList("1 2\r\n2 3\r\n# c\r\n\r\n3 1\r\n");
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
}

TEST(IoTest, FastEdgeListMultiChunkMatchesSerialAndReportsGlobalLine) {
  // Build a >4 MB path graph so the parallel scanner actually splits the
  // buffer into several chunks (chunk floor is 1 MB).
  setenv("RPMIS_THREADS", "4", 1);
  constexpr size_t kLines = 400000;
  std::string text;
  text.reserve(kLines * 16);
  for (size_t i = 0; i < kLines; ++i) {
    text += std::to_string(i + 100000);
    text += ' ';
    text += std::to_string(i + 100001);
    text += '\n';
  }
  ASSERT_GT(text.size(), size_t{4} << 20);
  Graph g = ParseEdgeList(text);
  EXPECT_EQ(g.NumVertices(), kLines + 1);
  EXPECT_EQ(g.NumEdges(), kLines);

  // An error deep in a late chunk must still report its file-global line.
  const std::string bad = text + "7 8 oops\n";
  const std::string msg = CaptureError([&] { ParseEdgeList(bad); });
  EXPECT_NE(msg.find("line " + std::to_string(kLines + 1)), std::string::npos)
      << msg;
  unsetenv("RPMIS_THREADS");
}

TEST(IoTest, DimacsRejectsTrailingGarbage) {
  const std::string on_edge = CaptureError([&] {
    std::istringstream in("p edge 3 1\ne 1 2 junk\n");
    ReadDimacs(in);
  });
  EXPECT_NE(on_edge.find("line 2"), std::string::npos) << on_edge;
  const std::string on_header = CaptureError([&] {
    std::istringstream in("p edge 3 1 junk\ne 1 2\n");
    ReadDimacs(in);
  });
  EXPECT_NE(on_header.find("problem line"), std::string::npos) << on_header;
}

TEST(IoTest, DimacsRejectsHeaderCountMismatch) {
  const std::string msg = CaptureError([&] {
    std::istringstream in("p edge 3 2\ne 1 2\n");
    ReadDimacs(in);
  });
  EXPECT_NE(msg.find("header declares 2"), std::string::npos) << msg;
}

TEST(IoTest, DimacsHostileHeaderDoesNotPreallocate) {
  // A tiny file whose header claims ~1e14 edges: the reserve is capped by
  // the file size, so this must throw a mismatch error instead of dying
  // on a giant allocation.
  const std::string msg = CaptureError([&] {
    std::istringstream in("p edge 4 98765432109876\ne 1 2\n");
    ReadDimacs(in);
  });
  EXPECT_NE(msg.find("header declares"), std::string::npos) << msg;
}

TEST(IoTest, MetisRejectsHeaderCountMismatch) {
  const std::string msg = CaptureError([&] {
    std::istringstream in("3 2\n2\n1\n\n");  // 2 entries, header wants 4
    ReadMetis(in);
  });
  EXPECT_NE(msg.find("header declares 2"), std::string::npos) << msg;
}

TEST(IoTest, MetisHostileHeaderDoesNotPreallocate) {
  const std::string msg = CaptureError([&] {
    std::istringstream in("2 99999999999999\n2\n1\n");
    ReadMetis(in);
  });
  EXPECT_NE(msg.find("header declares"), std::string::npos) << msg;
}

TEST(IoTest, MetisRejectsBadNeighbour) {
  for (const char* text : {"2 1\n3\n1\n", "2 1\n0\n1\n"}) {
    const std::string msg = CaptureError([&] {
      std::istringstream in(text);
      ReadMetis(in);
    });
    EXPECT_NE(msg.find("neighbour for vertex 1"), std::string::npos) << msg;
  }
}

TEST(IoTest, MetisBlankLineIsIsolatedVertex) {
  std::istringstream in("3 1\n2\n1\n\n");
  Graph g = ReadMetis(in);
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(2), 0u);
}

TEST(IoTest, MetisRejectsWeightedFormat) {
  std::istringstream in("2 1 1\n2 1\n1 2\n");
  const std::string msg = CaptureError([&] { ReadMetis(in); });
  EXPECT_NE(msg.find("weighted"), std::string::npos) << msg;
}

// ---- binary format hardening --------------------------------------------

/// Assembles a raw RPMI payload; fields are NOT validated, so tests can
/// craft corrupt files.
std::string RawBinary(uint64_t n, uint64_t m,
                      const std::vector<uint64_t>& offsets,
                      const std::vector<uint32_t>& neighbors) {
  std::string s;
  const uint32_t version = 1;
  const auto put = [&s](const void* p, size_t k) {
    s.append(static_cast<const char*>(p), k);
  };
  s.append("RPMI", 4);
  put(&version, 4);
  put(&n, 8);
  put(&m, 8);
  put(offsets.data(), offsets.size() * sizeof(uint64_t));
  put(neighbors.data(), neighbors.size() * sizeof(uint32_t));
  return s;
}

Graph ReadRaw(const std::string& payload) {
  std::istringstream in(payload);
  return ReadBinary(in);
}

TEST(IoTest, BinaryRejectsTruncationNamingVertex) {
  std::stringstream buf;
  WriteBinary(CycleGraph(6), buf);
  const std::string payload = buf.str();
  const std::string msg = CaptureError(
      [&] { ReadRaw(payload.substr(0, payload.size() - 4)); });
  EXPECT_NE(msg.find("neighbour data for vertex"), std::string::npos) << msg;
}

TEST(IoTest, BinaryRejectsHostileVertexCountUpFront) {
  // Header claims 4e9 vertices in a 24-byte file: the offset table alone
  // would be 32 GB, so the up-front length check must fire.
  const std::string msg = CaptureError(
      [&] { ReadRaw(RawBinary(4000000000ull, 0, {}, {})); });
  EXPECT_NE(msg.find("declares 4000000000 vertices"), std::string::npos) << msg;
}

TEST(IoTest, BinaryRejectsTrailingBytes) {
  std::stringstream buf;
  WriteBinary(CycleGraph(6), buf);
  const std::string msg =
      CaptureError([&] { ReadRaw(buf.str() + "xx"); });
  EXPECT_NE(msg.find("2 trailing bytes"), std::string::npos) << msg;
}

TEST(IoTest, BinaryRejectsStructuralCorruption) {
  // Asymmetric: v0 -> 1 but N(1) = {2}.
  EXPECT_NE(CaptureError([&] {
              ReadRaw(RawBinary(3, 1, {0, 1, 2, 2}, {1, 2}));
            }).find("not symmetric"),
            std::string::npos);
  // Unsorted adjacency list at v0.
  EXPECT_NE(CaptureError([&] {
              ReadRaw(RawBinary(3, 2, {0, 2, 3, 4}, {2, 1, 0, 0}));
            }).find("not sorted"),
            std::string::npos);
  // Self-loop.
  EXPECT_NE(CaptureError([&] {
              ReadRaw(RawBinary(2, 1, {0, 1, 2}, {0, 0}));
            }).find("self-loop at vertex 0"),
            std::string::npos);
  // Out-of-range neighbour names both the value and the vertex.
  EXPECT_NE(CaptureError([&] {
              ReadRaw(RawBinary(2, 1, {0, 1, 2}, {5, 0}));
            }).find("neighbour 5 at vertex 0"),
            std::string::npos);
  // Non-monotone offsets (vertex 0's slice is kept clean so the offset
  // check is the first to fire).
  EXPECT_NE(CaptureError([&] {
              ReadRaw(RawBinary(3, 1, {0, 2, 1, 2}, {1, 2}));
            }).find("offsets at vertex 1"),
            std::string::npos);
}

// ---- LoadGraphFile: format sniffing + sidecar cache ----------------------

TEST(IoTest, GuessGraphFormatByExtension) {
  EXPECT_EQ(GuessGraphFormat("a/b/x.txt"), GraphFormat::kEdgeList);
  EXPECT_EQ(GuessGraphFormat("x.edges"), GraphFormat::kEdgeList);
  EXPECT_EQ(GuessGraphFormat("x.DIMACS"), GraphFormat::kDimacs);
  EXPECT_EQ(GuessGraphFormat("x.col"), GraphFormat::kDimacs);
  EXPECT_EQ(GuessGraphFormat("x.clq"), GraphFormat::kDimacs);
  EXPECT_EQ(GuessGraphFormat("x.graph"), GraphFormat::kMetis);
  EXPECT_EQ(GuessGraphFormat("x.metis"), GraphFormat::kMetis);
  EXPECT_EQ(GuessGraphFormat("x.rpmi"), GraphFormat::kBinary);
  EXPECT_EQ(GuessGraphFormat("x.bin"), GraphFormat::kBinary);
}

TEST(IoTest, LoadGraphFileSniffsDimacs) {
  const std::string path = ::testing::TempDir() + "/rpmis_sniff.dimacs";
  {
    std::ofstream out(path);
    WriteDimacs(CycleGraph(7), out);
  }
  LoadOptions opts;
  opts.use_cache = false;
  Graph g = LoadGraphFile(path, opts);
  EXPECT_EQ(g.NumVertices(), 7u);
  EXPECT_EQ(g.NumEdges(), 7u);
  std::filesystem::remove(path);
}

TEST(IoTest, LoadGraphFileWritesAndUsesCache) {
  namespace fs = std::filesystem;
  const std::string path = ::testing::TempDir() + "/rpmis_cache_test.txt";
  const std::string cache = GraphCachePath(path);
  fs::remove(path);
  fs::remove(cache);

  WriteEdgeListFile(CycleGraph(8), path);
  EXPECT_EQ(LoadGraphFile(path).NumEdges(), 8u);
  ASSERT_TRUE(fs::exists(cache)) << "sidecar cache not written";

  // Replace the sidecar with a different graph. It is fresher than the
  // source, so the loader must serve it — proving the cache is consulted.
  WriteBinaryFile(CycleGraph(5), cache);
  EXPECT_EQ(LoadGraphFile(path).NumEdges(), 5u);

  // Touching the source invalidates the sidecar: the file is reparsed and
  // the cache rewritten.
  fs::last_write_time(path,
                      fs::last_write_time(cache) + std::chrono::seconds(2));
  EXPECT_EQ(LoadGraphFile(path).NumEdges(), 8u);
  EXPECT_EQ(LoadGraphFile(path).NumEdges(), 8u);

  // A corrupt (but fresh) sidecar is ignored and regenerated, not fatal.
  {
    std::ofstream junk(cache, std::ios::trunc);
    junk << "junk";
  }
  fs::last_write_time(cache,
                      fs::last_write_time(path) + std::chrono::seconds(2));
  EXPECT_EQ(LoadGraphFile(path).NumEdges(), 8u);

  fs::remove(path);
  fs::remove(cache);
}

TEST(IoTest, LoadGraphFileHonoursNoCache) {
  namespace fs = std::filesystem;
  const std::string path = ::testing::TempDir() + "/rpmis_nocache_test.txt";
  const std::string cache = GraphCachePath(path);
  fs::remove(path);
  fs::remove(cache);
  WriteEdgeListFile(CycleGraph(4), path);
  LoadOptions opts;
  opts.use_cache = false;
  EXPECT_EQ(LoadGraphFile(path, opts).NumEdges(), 4u);
  EXPECT_FALSE(fs::exists(cache));
  fs::remove(path);
}

}  // namespace
}  // namespace rpmis
