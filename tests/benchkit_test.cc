#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "benchkit/datasets.h"
#include "benchkit/run.h"
#include "benchkit/table.h"
#include "graph/algorithms.h"
#include "mis/near_linear.h"

namespace rpmis {
namespace {

TEST(DatasetsTest, SuiteShape) {
  EXPECT_EQ(AllDatasets().size(), 20u);
  EXPECT_EQ(EasyDatasets().size(), 12u);
  EXPECT_EQ(HardDatasets().size(), 8u);
  EXPECT_EQ(DatasetByName("GrQc").paper_n, 5242u);
  EXPECT_TRUE(DatasetByName("it-2004").hard);
}

TEST(DatasetsTest, GeneratorsAreDeterministic) {
  const auto& spec = DatasetByName("GrQc");
  Graph a = spec.make();
  Graph b = spec.make();
  EXPECT_EQ(a.CollectEdges(), b.CollectEdges());
}

TEST(DatasetsTest, EasyInstancesArePowerLawLike) {
  // The reducing-peeling premise: plenty of degree-<=2 vertices.
  for (const auto& spec : EasyDatasets()) {
    Graph g = spec.make();
    DegreeStats s = ComputeDegreeStats(g);
    EXPECT_GT(static_cast<double>(s.num_degree_le2), 0.05 * g.NumVertices())
        << spec.name;
    EXPECT_GT(s.max_degree, 4 * s.avg_degree) << spec.name;
  }
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Graph", "n", "m"});
  t.AddRow({"GrQc", "5,242", "14,484"});
  t.AddRow({"x", "1", "2"});
  std::ostringstream out;
  t.Print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| Graph"), std::string::npos);
  EXPECT_NE(s.find("5,242"), std::string::npos);
  // All lines the same length.
  std::istringstream lines(s);
  std::string line, first;
  std::getline(lines, first);
  while (std::getline(lines, line)) EXPECT_EQ(line.size(), first.size());
}

TEST(FormattersTest, Counts) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

TEST(FormattersTest, SecondsAndKb) {
  EXPECT_EQ(FormatSeconds(0.5), "500.0ms");
  EXPECT_EQ(FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(FormatKb(512), "512KB");
  EXPECT_EQ(FormatKb(2048), "2.0MB");
  EXPECT_EQ(FormatPercent(0.99895), "99.895%");
}

TEST(RunTest, RssReadersWork) {
  EXPECT_GT(PeakRssKb(), 0u);
  EXPECT_GT(CurrentRssKb(), 0u);
}

TEST(RunTest, MeasureInChildReturnsPayload) {
  ChildMeasurement m = MeasureInChild([](uint64_t payload[4]) {
    // Allocate ~8MB so the RSS delta is visible.
    std::vector<uint64_t> big(1 << 20, 1);
    payload[0] = big[123] + 41;
    payload[1] = 7;
  });
  ASSERT_TRUE(m.ok);
  EXPECT_EQ(m.payload[0], 42u);
  EXPECT_EQ(m.payload[1], 7u);
  EXPECT_GE(m.seconds, 0.0);
  EXPECT_GT(m.peak_rss_delta_kb, 1000u);
}

TEST(RunTest, MeasureInChildReturnsChildRusage) {
  // The child's own CPU and fault accounting rides back on the pipe so
  // run records can attribute resources to the measured process, not the
  // parent harness.
  ChildMeasurement m = MeasureInChild([](uint64_t payload[4]) {
    // Enough work to register on the 4ms-granularity rusage clocks, and a
    // fresh allocation so the child takes minor faults of its own.
    std::vector<uint64_t> big(1 << 21, 1);
    uint64_t sink = 0;
    for (uint64_t i = 0; i < 80'000'000; ++i) sink += i ^ big[i % big.size()];
    payload[0] = sink != 0 ? 1 : 2;
  });
  ASSERT_TRUE(m.ok);
  EXPECT_GT(m.utime_seconds + m.stime_seconds, 0.0);
  EXPECT_GT(m.minor_faults, 0u);
  EXPECT_TRUE(m.rss_available);
}

TEST(RunTest, MeasureInChildZeroesRusageOnFailure) {
  ChildMeasurement m = MeasureInChild([](uint64_t payload[4]) {
    payload[0] = 1;
    _exit(9);
  });
  EXPECT_FALSE(m.ok);
  EXPECT_EQ(m.utime_seconds, 0.0);
  EXPECT_EQ(m.stime_seconds, 0.0);
  EXPECT_EQ(m.minor_faults, 0u);
  EXPECT_EQ(m.major_faults, 0u);
}

TEST(RunTest, RssReadersReportUnavailability) {
  // Hardened containers can make /proc/self/status unreadable; the Try
  // readers must say so explicitly instead of returning a silent 0.
  setenv("RPMIS_PROC_STATUS_PATH", "/nonexistent/status", 1);
  EXPECT_FALSE(TryPeakRssKb().has_value());
  EXPECT_FALSE(TryCurrentRssKb().has_value());
  // The logging fallbacks degrade to 0, never garbage.
  EXPECT_EQ(PeakRssKb(), 0u);
  EXPECT_EQ(CurrentRssKb(), 0u);
  unsetenv("RPMIS_PROC_STATUS_PATH");
  ASSERT_TRUE(TryPeakRssKb().has_value());
  EXPECT_GT(*TryPeakRssKb(), 0u);
  ASSERT_TRUE(TryCurrentRssKb().has_value());
}

TEST(RunTest, MeasureInChildReportsNonzeroExit) {
  // Regression: a child that dies after filling the payload must yield
  // ok = false with a zeroed payload, never partial data.
  ChildMeasurement m = MeasureInChild([](uint64_t payload[4]) {
    payload[0] = 99;
    _exit(3);
  });
  EXPECT_FALSE(m.ok);
  for (uint64_t v : m.payload) EXPECT_EQ(v, 0u);
  EXPECT_EQ(m.peak_rss_delta_kb, 0u);
}

TEST(RunTest, MeasureInChildReportsSignalledChild) {
  ChildMeasurement m = MeasureInChild([](uint64_t payload[4]) {
    payload[1] = 7;
    raise(SIGKILL);
  });
  EXPECT_FALSE(m.ok);
  for (uint64_t v : m.payload) EXPECT_EQ(v, 0u);
}

TEST(RunTest, MeasureInChildInProcessFallbackReportsOk) {
  // Force the degraded no-fork path and check it honours the same
  // contract as the forked path: ok = true with the payload filled.
  setenv("RPMIS_MEASURE_IN_PROCESS", "1", 1);
  ChildMeasurement m = MeasureInChild([](uint64_t payload[4]) {
    payload[0] = 42;
    payload[3] = 7;
  });
  unsetenv("RPMIS_MEASURE_IN_PROCESS");
  ASSERT_TRUE(m.ok);
  EXPECT_EQ(m.payload[0], 42u);
  EXPECT_EQ(m.payload[3], 7u);
  EXPECT_GE(m.seconds, 0.0);
}

TEST(RunTest, MeasureInChildInProcessFallbackNeverReturnsPartialPayload) {
  // Regression: a body that throws mid-fill used to leave the payload
  // half-written with ok unset but the fields dirty. The fallback must
  // behave like a crashed child: ok = false, everything zeroed, and the
  // exception must not escape to the caller.
  setenv("RPMIS_MEASURE_IN_PROCESS", "1", 1);
  ChildMeasurement m = MeasureInChild([](uint64_t payload[4]) {
    payload[0] = 99;
    payload[1] = 100;
    throw std::runtime_error("solver blew up");
  });
  unsetenv("RPMIS_MEASURE_IN_PROCESS");
  EXPECT_FALSE(m.ok);
  for (uint64_t v : m.payload) EXPECT_EQ(v, 0u);
  EXPECT_EQ(m.peak_rss_delta_kb, 0u);
  EXPECT_EQ(m.seconds, 0.0);
}

TEST(RunTest, MeasureInChildLeavesNoZombies) {
  (void)MeasureInChild([](uint64_t payload[4]) { payload[0] = 1; });
  (void)MeasureInChild([](uint64_t[4]) { _exit(7); });
  (void)MeasureInChild([](uint64_t[4]) { raise(SIGSEGV); });
  // Every child must have been reaped, in success and failure branches
  // alike: with no outstanding children, waitpid reports ECHILD.
  int status = 0;
  errno = 0;
  const pid_t r = waitpid(-1, &status, WNOHANG);
  EXPECT_EQ(r, -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(DatasetsTest, HardInstancesResistKernelization) {
  // The defining property of the hard suite: a surviving kernel at the
  // first peel, so local search has real work (Figures 10/15).
  const DatasetSpec& spec = DatasetByName("cnr-2000");
  Graph g = spec.make();
  MisSolution nl = RunNearLinear(g);
  EXPECT_GT(nl.kernel_vertices, 1000u);
  EXPECT_GT(nl.rules.peels, 0u);
  EXPECT_FALSE(nl.provably_maximum);
}

}  // namespace
}  // namespace rpmis
