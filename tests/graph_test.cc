#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace rpmis {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
}

TEST(GraphTest, FromEdgesBasic) {
  Graph g = Graph::FromEdges(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, DropsSelfLoopsAndDuplicates) {
  Graph g = Graph::FromEdges(
      3, std::vector<Edge>{{0, 0}, {0, 1}, {1, 0}, {0, 1}, {1, 2}, {2, 2}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 1u);
}

TEST(GraphTest, NeighborsAreSorted) {
  Graph g = Graph::FromEdges(5, std::vector<Edge>{{4, 2}, {2, 0}, {2, 3}, {2, 1}});
  auto nb = g.Neighbors(2);
  ASSERT_EQ(nb.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(GraphTest, IsolatedVertices) {
  Graph g = Graph::FromEdges(6, std::vector<Edge>{{0, 1}});
  EXPECT_EQ(g.NumVertices(), 6u);
  EXPECT_EQ(g.Degree(5), 0u);
  EXPECT_TRUE(g.Neighbors(5).empty());
}

TEST(GraphTest, CollectEdgesRoundTrip) {
  Graph g = ErdosRenyiGnm(50, 120, /*seed=*/7);
  auto edges = g.CollectEdges();
  EXPECT_EQ(edges.size(), g.NumEdges());
  Graph g2 = Graph::FromEdges(g.NumVertices(), edges);
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  for (const auto& [u, v] : edges) {
    EXPECT_LT(u, v);
    EXPECT_TRUE(g2.HasEdge(u, v));
  }
}

TEST(GraphTest, EdgeIdsAreConsistent) {
  Graph g = ErdosRenyiGnm(30, 60, /*seed=*/3);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    auto nb = g.Neighbors(v);
    for (size_t i = 0; i < nb.size(); ++i) {
      EXPECT_EQ(g.EdgeTarget(g.EdgeBegin(v) + i), nb[i]);
    }
    EXPECT_EQ(g.EdgeEnd(v) - g.EdgeBegin(v), g.Degree(v));
  }
}

TEST(GraphTest, InducedSubgraph) {
  // Path 0-1-2-3-4; take {0, 2, 3}: only edge 2-3 survives.
  Graph g = PathGraph(5);
  std::vector<Vertex> subset{0, 2, 3};
  std::vector<Vertex> map;
  Graph sub = g.InducedSubgraph(subset, &map);
  EXPECT_EQ(sub.NumVertices(), 3u);
  EXPECT_EQ(sub.NumEdges(), 1u);
  EXPECT_EQ(map[0], 0u);
  EXPECT_EQ(map[1], kInvalidVertex);
  EXPECT_TRUE(sub.HasEdge(map[2], map[3]));
}

TEST(GraphTest, MaxDegreeStar) {
  Graph g = StarGraph(9);
  EXPECT_EQ(g.MaxDegree(), 9u);
  EXPECT_EQ(g.NumEdges(), 9u);
}

TEST(GraphBuilderTest, BuildMatchesFromEdges) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(3, 2);
  b.AddEdge(1, 1);  // dropped
  Graph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(2, 3));
  // Builder is reusable.
  b.AddEdge(0, 3);
  Graph g2 = b.Build();
  EXPECT_EQ(g2.NumEdges(), 3u);
}

}  // namespace
}  // namespace rpmis
