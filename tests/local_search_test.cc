#include <gtest/gtest.h>

#include "baselines/du.h"
#include "exact/brute_force.h"
#include "graph/generators.h"
#include "localsearch/arw.h"
#include "localsearch/boosted.h"
#include "localsearch/online_mis.h"
#include "localsearch/redumis.h"
#include "mis/verify.h"
#include "test_util.h"

namespace rpmis {
namespace {

ArwOptions FastArw(uint64_t seed) {
  ArwOptions o;
  o.time_limit_seconds = 0.2;
  o.seed = seed;
  return o;
}

TEST(ArwTest, ImprovesEmptyInitialToMaximal) {
  Graph g = ErdosRenyiGnm(100, 250, /*seed=*/1);
  ArwResult r = RunArw(g, std::vector<uint8_t>(100, 0), FastArw(1));
  EXPECT_TRUE(IsMaximalIndependentSet(g, r.in_set));
  EXPECT_GT(r.size, 0u);
  EXPECT_FALSE(r.history.empty());
}

TEST(ArwTest, NeverShrinksTheIncumbent) {
  Graph g = ChungLuPowerLaw(500, 2.2, 4.0, /*seed=*/2);
  MisSolution du = RunDU(g);
  ArwResult r = RunArw(g, du.in_set, FastArw(2));
  EXPECT_GE(r.size, du.size);
  for (size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_GT(r.history[i].size, r.history[i - 1].size);
  }
}

TEST(ArwTest, FindsOptimaOnSmallGraphs) {
  // (1,2)-swaps plus perturbation should find alpha on easy instances.
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = ErdosRenyiGnm(20, 40, seed);
    ArwOptions o = FastArw(seed);
    o.max_iterations = 2000;
    ArwResult r = RunArw(g, std::vector<uint8_t>(20, 0), o);
    EXPECT_EQ(r.size, BruteForceAlpha(g)) << "seed " << seed;
  }
}

TEST(ArwTest, OneTwoSwapFiresOnTightTriangleFan) {
  // Solution = {centre}; two non-adjacent 1-tight neighbours exist, so
  // the first local-search pass must grow the solution.
  Graph g = StarGraph(4);
  std::vector<uint8_t> initial(5, 0);
  initial[0] = 1;  // the hub
  ArwOptions o = FastArw(3);
  o.max_iterations = 0;  // local search only
  ArwResult r = RunArw(g, initial, o);
  EXPECT_EQ(r.size, 4u);  // all leaves
}

TEST(ArwTest, RespectsIterationBudget) {
  Graph g = CycleGraph(50);
  ArwOptions o = FastArw(4);
  o.max_iterations = 7;
  ArwResult r = RunArw(g, std::vector<uint8_t>(50, 0), o);
  EXPECT_EQ(r.iterations, 7u);
}

TEST(OnlineMisTest, ValidAndAtLeastDu) {
  Graph g = ChungLuPowerLaw(2000, 2.1, 4.0, /*seed=*/7);
  OnlineMisOptions o;
  o.time_limit_seconds = 0.2;
  ArwResult r = RunOnlineMis(g, o);
  EXPECT_TRUE(IsMaximalIndependentSet(g, r.in_set));
  EXPECT_GE(r.size, RunDU(g).size);
}

TEST(ReduMisTest, ValidAndStrong) {
  Graph g = ChungLuPowerLaw(2000, 2.1, 4.0, /*seed=*/8);
  ReduMisOptions o;
  o.time_limit_seconds = 0.3;
  ArwResult r = RunReduMis(g, o);
  EXPECT_TRUE(IsMaximalIndependentSet(g, r.in_set));
  // Full kernelization alone should essentially solve this power-law
  // instance; require at least DU quality plus slack.
  EXPECT_GE(r.size, RunDU(g).size);
}

class BoostedTest : public ::testing::TestWithParam<BoostKind> {};

TEST_P(BoostedTest, LiftedSolutionsAreValidAndAtLeastBase) {
  for (uint64_t seed : {11ULL, 12ULL}) {
    Graph g = ChungLuPowerLaw(3000, 2.0, 6.0, seed);
    BoostedOptions o;
    o.time_limit_seconds = 0.2;
    o.seed = seed;
    BoostedResult r = RunBoostedArw(g, GetParam(), o);
    EXPECT_TRUE(IsMaximalIndependentSet(g, r.in_set));
    EXPECT_GE(r.size, r.base.size);
    EXPECT_FALSE(r.history.empty());
    // Kernel must be (much) smaller than the graph.
    EXPECT_LT(r.kernel_vertices, g.NumVertices());
  }
}

TEST_P(BoostedTest, WorksWhenKernelIsEmpty) {
  // Trees kernelize away entirely: the boosted run must degrade cleanly
  // to the base algorithm's (optimal) answer.
  Graph g = BinaryTree(63);
  BoostedOptions o;
  o.time_limit_seconds = 0.05;
  BoostedResult r = RunBoostedArw(g, GetParam(), o);
  EXPECT_EQ(r.size, BruteForceAlpha(g));
  EXPECT_EQ(r.kernel_vertices, 0u);
}

TEST_P(BoostedTest, DenseKernelGetsImproved) {
  // A graph whose kernel survives: random 3-regular-ish Gnm.
  Graph g = ErdosRenyiGnm(500, 1500, /*seed=*/13);
  BoostedOptions o;
  o.time_limit_seconds = 0.3;
  BoostedResult r = RunBoostedArw(g, GetParam(), o);
  EXPECT_TRUE(IsMaximalIndependentSet(g, r.in_set));
  EXPECT_GT(r.kernel_vertices, 0u);
  EXPECT_GE(r.size, r.base.size);
}

TEST(ArwTest, ExclusionMaskIsRespected) {
  // OnlineMIS-style cutting: excluded vertices must never be inserted by
  // the search, even when free. Star hub excluded, leaves empty start:
  // the leaves join, the hub cannot.
  Graph g = StarGraph(6);
  ArwOptions o = FastArw(21);
  o.max_iterations = 50;
  o.excluded.assign(7, 0);
  o.excluded[0] = 1;  // the hub
  ArwResult r = RunArw(g, std::vector<uint8_t>(7, 0), o);
  EXPECT_EQ(r.in_set[0], 0);
  EXPECT_EQ(r.size, 6u);

  // Conversely, excluding all the leaves forces the hub.
  ArwOptions o2 = FastArw(22);
  o2.max_iterations = 50;
  o2.excluded.assign(7, 1);
  o2.excluded[0] = 0;
  ArwResult r2 = RunArw(g, std::vector<uint8_t>(7, 0), o2);
  EXPECT_EQ(r2.in_set[0], 1);
  EXPECT_EQ(r2.size, 1u);
}

TEST(ArwTest, ExcludedInitialVerticesAreKept) {
  // An excluded vertex present in the INITIAL solution stays eligible;
  // exclusion only bars (re)insertion.
  Graph g = PathGraph(3);
  std::vector<uint8_t> initial{0, 1, 0};  // middle vertex in
  ArwOptions o = FastArw(23);
  o.max_iterations = 0;
  o.excluded.assign(3, 1);
  ArwResult r = RunArw(g, initial, o);
  EXPECT_EQ(r.in_set[1], 1);
  EXPECT_EQ(r.size, 1u);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, BoostedTest,
                         ::testing::Values(BoostKind::kLinearTime,
                                           BoostKind::kNearLinear),
                         [](const auto& info) {
                           return info.param == BoostKind::kLinearTime
                                      ? std::string("ARW_LT")
                                      : std::string("ARW_NL");
                         });

}  // namespace
}  // namespace rpmis
