// JSONL run-record tests: the serialize/validate/read-back triangle the
// convergence-from-JSONL recipe (EXPERIMENTS.md) depends on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchkit/record.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/resource.h"
#include "obs/validate.h"

namespace rpmis {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

RunRecord SampleRecord() {
  RunRecord r = MakeRunRecord("record_test", "nearlinear", "toy", 42);
  r.args = {"--fast", "--trace=t.json"};
  r.AddNumber("time.wall_seconds", 0.125);
  r.AddNumber("solution.size", 17.0);
  r.AddString("config", "unit-test");

  obs::MetricsRegistry metrics;
  metrics.Add("rules.degree_one", 3);
  metrics.Set("solution.size", 17.0);
  r.metrics = metrics.Snapshot();

  obs::ProgressSample s1;
  s1.seconds = 0.01;
  s1.events = 100;
  s1.live_vertices = 50;
  s1.solution_size = 5;
  s1.label = "nearlinear.core";
  obs::ProgressSample s2;  // most fields absent: must round-trip as absent
  s2.seconds = 0.02;
  s2.events = 200;
  s2.solution_size = 9;
  s2.label = "arw";
  r.samples = {s1, s2};

  obs::ResourceUsage res;
  res.utime_seconds = 0.1;
  res.minor_faults = 12;
  res.vm_hwm_available = true;
  res.vm_hwm_kb = 4096;
  r.resource = res;
  return r;
}

TEST(RecordTest, EnvelopeIsSelfDescribing) {
  const RunRecord r = MakeRunRecord("record_test", "bdone", "d", 7);
  EXPECT_EQ(r.bench, "record_test");
  EXPECT_EQ(r.algorithm, "bdone");
  EXPECT_EQ(r.seed, 7u);
  EXPECT_GE(r.threads, 1u);
  EXPECT_NE(BuildFlagsString(), nullptr);
  EXPECT_STRNE(BuildFlagsString(), "");
  // The compiled-in flags ride along in serialized form.
  EXPECT_NE(FormatRunRecord(r).find(BuildFlagsString()), std::string::npos);
}

TEST(RecordTest, FormattedRecordPassesValidator) {
  const std::string line = FormatRunRecord(SampleRecord());
  const obs::ValidationResult v = obs::ValidateRunRecords(line + "\n");
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.num_events, 1u);
}

TEST(RecordTest, ValidatorRejectsBrokenLines) {
  EXPECT_FALSE(obs::ValidateRunRecords("not json\n").ok);
  EXPECT_FALSE(obs::ValidateRunRecords("{\"schema\":1}\n").ok);
  // One bad line poisons the stream even when the rest is fine.
  const std::string good = FormatRunRecord(SampleRecord());
  EXPECT_FALSE(obs::ValidateRunRecords(good + "\n{}\n").ok);
  // Blank lines are tolerated (append-friendly files).
  const obs::ValidationResult v =
      obs::ValidateRunRecords(good + "\n\n" + good + "\n");
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.num_events, 2u);
}

TEST(RecordTest, WriterAppendsAndSamplesRoundTrip) {
  const std::string path = TempPath("rpmis_record_test.jsonl");
  fs::remove(path);
  {
    RunRecordWriter writer(path);
    writer.Write(SampleRecord());
    RunRecord other = MakeRunRecord("record_test", "arw", "toy", 43);
    obs::ProgressSample s;
    s.seconds = 1.5;
    s.events = 999;
    s.solution_size = 21;
    s.label = "arw";
    other.samples = {s};
    writer.Write(other);
    EXPECT_TRUE(writer.ok());
  }
  const obs::ValidationResult v = obs::ValidateRunRecords(ReadAll(path));
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.num_events, 2u);

  // All samples in file order.
  const auto all = ReadProgressSamples(path);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].label, "nearlinear.core");
  EXPECT_EQ(all[0].solution_size, 5u);
  EXPECT_EQ(all[0].live_vertices, 50u);
  // Fields that were absent on write must read back as absent, not 0.
  EXPECT_EQ(all[1].live_vertices, obs::kProgressFieldAbsent);
  EXPECT_EQ(all[1].upper_bound, obs::kProgressFieldAbsent);
  EXPECT_EQ(all[1].solution_size, 9u);

  // Filtered by algorithm: only the second record's samples.
  const auto arw = ReadProgressSamples(path, "arw");
  ASSERT_EQ(arw.size(), 1u);
  EXPECT_EQ(arw[0].solution_size, 21u);
  EXPECT_DOUBLE_EQ(arw[0].seconds, 1.5);

  fs::remove(path);
}

TEST(RecordTest, WriterReportsFailuresStickily) {
  RunRecordWriter writer("/nonexistent-dir/rpmis_record_test.jsonl");
  writer.Write(SampleRecord());
  EXPECT_FALSE(writer.ok());
  writer.Write(SampleRecord());
  EXPECT_FALSE(writer.ok());
}

TEST(RecordTest, ReadProgressSamplesOnMissingFileIsEmpty) {
  EXPECT_TRUE(ReadProgressSamples(TempPath("rpmis_no_such_file.jsonl")).empty());
}

}  // namespace
}  // namespace rpmis
