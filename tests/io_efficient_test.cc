#include "mis/io_efficient.h"

#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "graph/generators.h"
#include "mis/bdone.h"
#include "mis/verify.h"
#include "test_util.h"

namespace rpmis {
namespace {

IoEfficientResult RunInMemory(const Graph& g) {
  InMemoryEdgeStream stream(g);
  return RunIoEfficientBDOne(g.NumVertices(), stream);
}

TEST(IoEfficientTest, ValidMaximalOnFixtures) {
  for (const Graph& g :
       {PathGraph(10), CycleGraph(9), StarGraph(6), CompleteGraph(5),
        GridGraph(4, 4), BinaryTree(31), testing::PaperFigure1(),
        testing::PaperFigure2(), testing::PaperFigure5()}) {
    IoEfficientResult r = RunInMemory(g);
    EXPECT_TRUE(IsMaximalIndependentSet(g, r.solution.in_set));
    if (g.NumVertices() <= 40) {
      EXPECT_LE(r.solution.size, BruteForceAlpha(g));
      EXPECT_GE(r.solution.UpperBound(), BruteForceAlpha(g));
    }
  }
}

TEST(IoEfficientTest, SolvesForestsExactlyWithCertificate) {
  Graph g = BinaryTree(127);
  IoEfficientResult r = RunInMemory(g);
  EXPECT_EQ(r.solution.rules.peels, 0u);
  EXPECT_TRUE(r.solution.provably_maximum);
  // In-memory BDOne also certifies forests; two certificates must agree.
  MisSolution mem = RunBDOne(g);
  ASSERT_TRUE(mem.provably_maximum);
  EXPECT_EQ(r.solution.size, mem.size);
}

TEST(IoEfficientTest, MatchesBDOneQualityModelOnPowerLaw) {
  // Streaming BDOne applies the same rules as in-memory BDOne, so sizes
  // land within a whisker (ordering differences only).
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = ChungLuPowerLaw(20000, 2.1, 4.0, seed);
    IoEfficientResult r = RunInMemory(g);
    MisSolution mem = RunBDOne(g);
    EXPECT_TRUE(IsMaximalIndependentSet(g, r.solution.in_set));
    const double ratio =
        static_cast<double>(r.solution.size) / static_cast<double>(mem.size);
    EXPECT_GT(ratio, 0.995) << "seed " << seed;
    EXPECT_LT(ratio, 1.005) << "seed " << seed;
  }
}

TEST(IoEfficientTest, PassCountsAreModest) {
  // The semi-external model's cost is passes * m; on power-law inputs the
  // cascade depth stays manageable.
  Graph g = ChungLuPowerLaw(30000, 2.1, 4.0, /*seed=*/9);
  IoEfficientResult r = RunInMemory(g);
  EXPECT_GT(r.reduction_passes, 1u);
  EXPECT_LT(r.reduction_passes, 2000u);
  EXPECT_LT(r.extension_passes, 50u);
}

TEST(IoEfficientTest, FileStreamMatchesInMemoryStream) {
  Graph g = ErdosRenyiGnm(500, 1000, /*seed=*/4);
  const std::string path = ::testing::TempDir() + "/rpmis_stream_test.bin";
  WriteEdgeStreamFile(g, path);
  FileEdgeStream file_stream(path);
  IoEfficientResult from_file = RunIoEfficientBDOne(g.NumVertices(), file_stream);
  IoEfficientResult from_mem = RunInMemory(g);
  EXPECT_EQ(from_file.solution.in_set, from_mem.solution.in_set);
  EXPECT_EQ(from_file.reduction_passes, from_mem.reduction_passes);
}

TEST(IoEfficientTest, FileStreamRejectsMissingFile) {
  EXPECT_THROW(FileEdgeStream("/nonexistent/rpmis_stream"), std::runtime_error);
}

TEST(IoEfficientTest, EmptyAndEdgelessGraphs) {
  Graph empty;
  InMemoryEdgeStream s0(empty);
  EXPECT_EQ(RunIoEfficientBDOne(0, s0).solution.size, 0u);

  Graph isolated = Graph::FromEdges(7, std::vector<Edge>{});
  InMemoryEdgeStream s1(isolated);
  IoEfficientResult r = RunIoEfficientBDOne(7, s1);
  EXPECT_EQ(r.solution.size, 7u);
  EXPECT_TRUE(r.solution.provably_maximum);
}

TEST(IoEfficientTest, UpperBoundHoldsUnderPeeling) {
  // A clique forces peeling; Theorem 6.1 must still hold.
  Graph g = CompleteGraph(12);
  IoEfficientResult r = RunInMemory(g);
  EXPECT_EQ(r.solution.size, 1u);
  EXPECT_GE(r.solution.UpperBound(), 1u);
  EXPECT_GT(r.solution.rules.peels, 0u);
}

}  // namespace
}  // namespace rpmis
