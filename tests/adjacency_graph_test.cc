#include "graph/adjacency_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "support/random.h"

namespace rpmis {
namespace {

std::set<Vertex> NeighborSet(const AdjacencyGraph& g, Vertex v) {
  auto n = g.NeighborsOf(v);
  return {n.begin(), n.end()};
}

TEST(AdjacencyGraphTest, MirrorsInitialGraph) {
  Graph g = ErdosRenyiGnm(40, 100, /*seed=*/1);
  AdjacencyGraph dyn(g);
  EXPECT_EQ(dyn.NumAliveVertices(), g.NumVertices());
  EXPECT_EQ(dyn.NumAliveEdges(), g.NumEdges());
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(dyn.Degree(v), g.Degree(v));
    auto nb = g.Neighbors(v);
    EXPECT_EQ(NeighborSet(dyn, v), std::set<Vertex>(nb.begin(), nb.end()));
  }
}

TEST(AdjacencyGraphTest, RemoveVertexUpdatesBothSides) {
  Graph g = Graph::FromEdges(4, std::vector<Edge>{{0, 1}, {0, 2}, {1, 2}, {2, 3}});
  AdjacencyGraph dyn(g);
  std::vector<Vertex> touched;
  dyn.RemoveVertex(2, &touched);
  EXPECT_FALSE(dyn.IsAlive(2));
  EXPECT_EQ(dyn.NumAliveEdges(), 1u);
  EXPECT_EQ(dyn.Degree(0), 1u);
  EXPECT_EQ(dyn.Degree(1), 1u);
  EXPECT_EQ(dyn.Degree(3), 0u);
  std::sort(touched.begin(), touched.end());
  EXPECT_EQ(touched, (std::vector<Vertex>{0, 1, 3}));
  EXPECT_TRUE(dyn.HasEdge(0, 1));
  EXPECT_FALSE(dyn.HasEdge(0, 2));
}

TEST(AdjacencyGraphTest, ContractMergesNeighborhoods) {
  // 0-1, 0-2, 1-3, 2-3, 2-4. Contract 1 into 2:
  // N(2) becomes {0, 3, 4}; edge (1,3) re-points; duplicate (x,2) drops.
  Graph g =
      Graph::FromEdges(5, std::vector<Edge>{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 4}});
  AdjacencyGraph dyn(g);
  std::vector<Vertex> touched;
  dyn.ContractInto(1, 2, &touched);
  EXPECT_FALSE(dyn.IsAlive(1));
  EXPECT_EQ(NeighborSet(dyn, 2), (std::set<Vertex>{0, 3, 4}));
  EXPECT_EQ(dyn.Degree(2), 3u);
  EXPECT_EQ(dyn.Degree(0), 1u);  // lost the duplicate edge to 1
  EXPECT_EQ(dyn.Degree(3), 1u);  // edge re-pointed, degree unchanged
  EXPECT_EQ(dyn.NumAliveEdges(), 3u);
}

TEST(AdjacencyGraphTest, ContractRemovesEdgeBetweenPair) {
  Graph g = Graph::FromEdges(3, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}});
  AdjacencyGraph dyn(g);
  dyn.ContractInto(0, 1, nullptr);
  EXPECT_EQ(NeighborSet(dyn, 1), (std::set<Vertex>{2}));
  EXPECT_EQ(dyn.Degree(2), 1u);
  EXPECT_EQ(dyn.NumAliveEdges(), 1u);
}

// Randomized model check: a long random sequence of removals and
// contractions must agree with a naive set-based reference model.
TEST(AdjacencyGraphTest, RandomOperationsMatchReferenceModel) {
  const Vertex n = 60;
  Graph g = ErdosRenyiGnm(n, 180, /*seed=*/99);
  AdjacencyGraph dyn(g);
  std::vector<std::set<Vertex>> model(n);
  for (Vertex v = 0; v < n; ++v) {
    auto nb = g.Neighbors(v);
    model[v] = {nb.begin(), nb.end()};
  }
  std::vector<uint8_t> alive(n, 1);
  Rng rng(123);
  for (int step = 0; step < 50; ++step) {
    // Pick two distinct alive vertices.
    std::vector<Vertex> pool;
    for (Vertex v = 0; v < n; ++v) {
      if (alive[v]) pool.push_back(v);
    }
    if (pool.size() < 2) break;
    const Vertex a = pool[rng.NextBounded(pool.size())];
    Vertex b = a;
    while (b == a) b = pool[rng.NextBounded(pool.size())];

    if (rng.NextBool(0.5)) {
      dyn.RemoveVertex(a, nullptr);
      alive[a] = 0;
      for (Vertex w : model[a]) model[w].erase(a);
      model[a].clear();
    } else {
      dyn.ContractInto(a, b, nullptr);
      alive[a] = 0;
      for (Vertex w : model[a]) {
        model[w].erase(a);
        if (w != b) {
          model[w].insert(b);
          model[b].insert(w);
        }
      }
      model[a].clear();
      model[b].erase(a);
    }
    uint64_t model_edges = 0;
    for (Vertex v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      ASSERT_EQ(dyn.Degree(v), model[v].size()) << "vertex " << v;
      ASSERT_EQ(NeighborSet(dyn, v), model[v]) << "vertex " << v;
      model_edges += model[v].size();
    }
    ASSERT_EQ(dyn.NumAliveEdges(), model_edges / 2);
  }
}

TEST(AdjacencyGraphTest, CollectAliveEdges) {
  Graph g = CycleGraph(5);
  AdjacencyGraph dyn(g);
  dyn.RemoveVertex(0, nullptr);
  auto edges = dyn.CollectAliveEdges();
  EXPECT_EQ(edges.size(), 3u);
  for (const auto& [u, v] : edges) {
    EXPECT_NE(u, 0u);
    EXPECT_NE(v, 0u);
  }
}

}  // namespace
}  // namespace rpmis
