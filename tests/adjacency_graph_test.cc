#include "graph/adjacency_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "support/random.h"

namespace rpmis {
namespace {

std::set<Vertex> NeighborSet(const AdjacencyGraph& g, Vertex v) {
  auto n = g.NeighborsOf(v);
  return {n.begin(), n.end()};
}

TEST(AdjacencyGraphTest, MirrorsInitialGraph) {
  Graph g = ErdosRenyiGnm(40, 100, /*seed=*/1);
  AdjacencyGraph dyn(g);
  EXPECT_EQ(dyn.NumAliveVertices(), g.NumVertices());
  EXPECT_EQ(dyn.NumAliveEdges(), g.NumEdges());
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(dyn.Degree(v), g.Degree(v));
    auto nb = g.Neighbors(v);
    EXPECT_EQ(NeighborSet(dyn, v), std::set<Vertex>(nb.begin(), nb.end()));
  }
}

TEST(AdjacencyGraphTest, RemoveVertexUpdatesBothSides) {
  Graph g = Graph::FromEdges(4, std::vector<Edge>{{0, 1}, {0, 2}, {1, 2}, {2, 3}});
  AdjacencyGraph dyn(g);
  std::vector<Vertex> touched;
  dyn.RemoveVertex(2, &touched);
  EXPECT_FALSE(dyn.IsAlive(2));
  EXPECT_EQ(dyn.NumAliveEdges(), 1u);
  EXPECT_EQ(dyn.Degree(0), 1u);
  EXPECT_EQ(dyn.Degree(1), 1u);
  EXPECT_EQ(dyn.Degree(3), 0u);
  std::sort(touched.begin(), touched.end());
  EXPECT_EQ(touched, (std::vector<Vertex>{0, 1, 3}));
  EXPECT_TRUE(dyn.HasEdge(0, 1));
  EXPECT_FALSE(dyn.HasEdge(0, 2));
}

TEST(AdjacencyGraphTest, ContractMergesNeighborhoods) {
  // 0-1, 0-2, 1-3, 2-3, 2-4. Contract 1 into 2:
  // N(2) becomes {0, 3, 4}; edge (1,3) re-points; duplicate (x,2) drops.
  Graph g =
      Graph::FromEdges(5, std::vector<Edge>{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 4}});
  AdjacencyGraph dyn(g);
  std::vector<Vertex> touched;
  dyn.ContractInto(1, 2, &touched);
  EXPECT_FALSE(dyn.IsAlive(1));
  EXPECT_EQ(NeighborSet(dyn, 2), (std::set<Vertex>{0, 3, 4}));
  EXPECT_EQ(dyn.Degree(2), 3u);
  EXPECT_EQ(dyn.Degree(0), 1u);  // lost the duplicate edge to 1
  EXPECT_EQ(dyn.Degree(3), 1u);  // edge re-pointed, degree unchanged
  EXPECT_EQ(dyn.NumAliveEdges(), 3u);
}

TEST(AdjacencyGraphTest, ContractRemovesEdgeBetweenPair) {
  Graph g = Graph::FromEdges(3, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}});
  AdjacencyGraph dyn(g);
  dyn.ContractInto(0, 1, nullptr);
  EXPECT_EQ(NeighborSet(dyn, 1), (std::set<Vertex>{2}));
  EXPECT_EQ(dyn.Degree(2), 1u);
  EXPECT_EQ(dyn.NumAliveEdges(), 1u);
}

// Randomized model check: a long random sequence of removals and
// contractions must agree with a naive set-based reference model.
TEST(AdjacencyGraphTest, RandomOperationsMatchReferenceModel) {
  const Vertex n = 60;
  Graph g = ErdosRenyiGnm(n, 180, /*seed=*/99);
  AdjacencyGraph dyn(g);
  std::vector<std::set<Vertex>> model(n);
  for (Vertex v = 0; v < n; ++v) {
    auto nb = g.Neighbors(v);
    model[v] = {nb.begin(), nb.end()};
  }
  std::vector<uint8_t> alive(n, 1);
  Rng rng(123);
  for (int step = 0; step < 50; ++step) {
    // Pick two distinct alive vertices.
    std::vector<Vertex> pool;
    for (Vertex v = 0; v < n; ++v) {
      if (alive[v]) pool.push_back(v);
    }
    if (pool.size() < 2) break;
    const Vertex a = pool[rng.NextBounded(pool.size())];
    Vertex b = a;
    while (b == a) b = pool[rng.NextBounded(pool.size())];

    if (rng.NextBool(0.5)) {
      dyn.RemoveVertex(a, nullptr);
      alive[a] = 0;
      for (Vertex w : model[a]) model[w].erase(a);
      model[a].clear();
    } else {
      dyn.ContractInto(a, b, nullptr);
      alive[a] = 0;
      for (Vertex w : model[a]) {
        model[w].erase(a);
        if (w != b) {
          model[w].insert(b);
          model[b].insert(w);
        }
      }
      model[a].clear();
      model[b].erase(a);
    }
    uint64_t model_edges = 0;
    for (Vertex v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      ASSERT_EQ(dyn.Degree(v), model[v].size()) << "vertex " << v;
      ASSERT_EQ(NeighborSet(dyn, v), model[v]) << "vertex " << v;
      model_edges += model[v].size();
    }
    ASSERT_EQ(dyn.NumAliveEdges(), model_edges / 2);
  }
}

TEST(AdjacencyGraphTest, InsertEdgeBasics) {
  Graph g = Graph::FromEdges(4, std::vector<Edge>{{0, 1}});
  AdjacencyGraph dyn(g);
  EXPECT_TRUE(dyn.InsertEdge(1, 2));
  EXPECT_TRUE(dyn.HasEdge(1, 2));
  EXPECT_TRUE(dyn.HasEdge(2, 1));
  EXPECT_EQ(dyn.Degree(1), 2u);
  EXPECT_EQ(dyn.Degree(2), 1u);
  EXPECT_EQ(dyn.NumAliveEdges(), 2u);
  // Duplicate insert is a no-op in either direction.
  EXPECT_FALSE(dyn.InsertEdge(1, 2));
  EXPECT_FALSE(dyn.InsertEdge(2, 1));
  EXPECT_EQ(dyn.NumAliveEdges(), 2u);
}

TEST(AdjacencyGraphTest, RemoveEdgeUnlinksBothSides) {
  Graph g = Graph::FromEdges(3, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}});
  AdjacencyGraph dyn(g);
  EXPECT_TRUE(dyn.RemoveEdge(0, 1));
  EXPECT_FALSE(dyn.HasEdge(0, 1));
  EXPECT_FALSE(dyn.HasEdge(1, 0));
  EXPECT_EQ(dyn.Degree(0), 1u);
  EXPECT_EQ(dyn.Degree(1), 1u);
  EXPECT_EQ(dyn.NumAliveEdges(), 2u);
  EXPECT_FALSE(dyn.RemoveEdge(0, 1));  // already gone
  // The freed half-edge pair is recycled by the next insertion.
  EXPECT_TRUE(dyn.InsertEdge(0, 1));
  EXPECT_EQ(NeighborSet(dyn, 0), (std::set<Vertex>{1, 2}));
  EXPECT_EQ(dyn.NumAliveEdges(), 3u);
}

TEST(AdjacencyGraphTest, InsertEdgeRevivesDeletedEndpoints) {
  Graph g = Graph::FromEdges(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  AdjacencyGraph dyn(g);
  dyn.RemoveVertex(1, nullptr);
  EXPECT_FALSE(dyn.IsAlive(1));
  EXPECT_TRUE(dyn.InsertEdge(1, 3));
  EXPECT_TRUE(dyn.IsAlive(1));
  EXPECT_EQ(NeighborSet(dyn, 1), (std::set<Vertex>{3}));
  EXPECT_EQ(NeighborSet(dyn, 3), (std::set<Vertex>{1, 2}));
  EXPECT_EQ(dyn.NumAliveVertices(), 4u);
  EXPECT_EQ(dyn.NumAliveEdges(), 2u);
}

TEST(AdjacencyGraphTest, InsertEdgeAfterContract) {
  // Contract 1 into 2, then wire an edge back onto the contracted-away id:
  // 1 must come back as an isolated vertex plus the new edge.
  Graph g =
      Graph::FromEdges(5, std::vector<Edge>{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 4}});
  AdjacencyGraph dyn(g);
  dyn.ContractInto(1, 2, nullptr);
  EXPECT_FALSE(dyn.IsAlive(1));
  EXPECT_TRUE(dyn.InsertEdge(1, 4));
  EXPECT_TRUE(dyn.IsAlive(1));
  EXPECT_EQ(NeighborSet(dyn, 1), (std::set<Vertex>{4}));
  EXPECT_EQ(NeighborSet(dyn, 4), (std::set<Vertex>{1, 2}));
  // The contraction result is untouched.
  EXPECT_EQ(NeighborSet(dyn, 2), (std::set<Vertex>{0, 3, 4}));
}

TEST(AdjacencyGraphTest, AddVertexGrowsUniverse) {
  Graph g = Graph::FromEdges(2, std::vector<Edge>{{0, 1}});
  AdjacencyGraph dyn(g);
  const Vertex id = dyn.AddVertex();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(dyn.NumVertices(), 3u);
  EXPECT_TRUE(dyn.IsAlive(id));
  EXPECT_EQ(dyn.Degree(id), 0u);
  EXPECT_TRUE(dyn.InsertEdge(id, 0));
  EXPECT_EQ(NeighborSet(dyn, id), (std::set<Vertex>{0}));
  EXPECT_EQ(dyn.NumAliveEdges(), 2u);
}

// Randomized model check over the full mutation vocabulary: removals,
// contractions, edge inserts/deletes, and vertex additions against a
// set-based reference model.
TEST(AdjacencyGraphTest, RandomMutationsMatchReferenceModel) {
  Graph g = ErdosRenyiGnm(40, 80, /*seed=*/7);
  AdjacencyGraph dyn(g);
  std::vector<std::set<Vertex>> model(g.NumVertices());
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    auto nb = g.Neighbors(v);
    model[v] = {nb.begin(), nb.end()};
  }
  std::vector<uint8_t> alive(g.NumVertices(), 1);
  Rng rng(2024);
  for (int step = 0; step < 300; ++step) {
    const Vertex n = static_cast<Vertex>(model.size());
    const Vertex a = static_cast<Vertex>(rng.NextBounded(n));
    Vertex b = a;
    while (b == a) b = static_cast<Vertex>(rng.NextBounded(n));
    switch (rng.NextBounded(5)) {
      case 0: {  // insert edge (revives dead endpoints)
        const bool fresh = model[a].insert(b).second;
        model[b].insert(a);
        alive[a] = alive[b] = 1;
        EXPECT_EQ(dyn.InsertEdge(a, b), fresh);
        break;
      }
      case 1: {  // remove edge
        const bool present = alive[a] && alive[b] && model[a].count(b) != 0;
        EXPECT_EQ(dyn.RemoveEdge(a, b), present);
        model[a].erase(b);
        model[b].erase(a);
        break;
      }
      case 2: {  // remove vertex
        if (!alive[a]) break;
        dyn.RemoveVertex(a, nullptr);
        alive[a] = 0;
        for (Vertex w : model[a]) model[w].erase(a);
        model[a].clear();
        break;
      }
      case 3: {  // add vertex
        const Vertex id = dyn.AddVertex();
        EXPECT_EQ(id, n);
        model.emplace_back();
        alive.push_back(1);
        break;
      }
      case 4: {  // contract a into b (both must be alive)
        if (!alive[a] || !alive[b]) break;
        dyn.ContractInto(a, b, nullptr);
        alive[a] = 0;
        for (Vertex w : model[a]) {
          model[w].erase(a);
          if (w != b) {
            model[w].insert(b);
            model[b].insert(w);
          }
        }
        model[a].clear();
        model[b].erase(a);
        break;
      }
    }
    ASSERT_EQ(dyn.NumVertices(), model.size());
    uint64_t model_edges = 0;
    for (Vertex v = 0; v < model.size(); ++v) {
      ASSERT_EQ(dyn.IsAlive(v), alive[v] != 0) << "vertex " << v;
      if (!alive[v]) continue;
      ASSERT_EQ(dyn.Degree(v), model[v].size()) << "vertex " << v;
      ASSERT_EQ(NeighborSet(dyn, v), model[v]) << "vertex " << v;
      model_edges += model[v].size();
    }
    ASSERT_EQ(dyn.NumAliveEdges(), model_edges / 2);
  }
}

TEST(AdjacencyGraphTest, CollectAliveEdges) {
  Graph g = CycleGraph(5);
  AdjacencyGraph dyn(g);
  dyn.RemoveVertex(0, nullptr);
  auto edges = dyn.CollectAliveEdges();
  EXPECT_EQ(edges.size(), 3u);
  for (const auto& [u, v] : edges) {
    EXPECT_NE(u, 0u);
    EXPECT_NE(v, 0u);
  }
}

}  // namespace
}  // namespace rpmis
