// Cross-algorithm property tests for the four Reducing-Peeling algorithms.
//
// Invariants checked on a parameterized sweep of generators/sizes/seeds:
//   * the output is a valid MAXIMAL independent set of the input;
//   * on brute-forceable graphs the size never exceeds alpha;
//   * Theorem 6.1: size + |R| is an upper bound on alpha;
//   * provably_maximum  =>  size == alpha;
//   * a zero peel count certifies optimality (kernelization solved it).
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "exact/brute_force.h"
#include "exact/vc_solver.h"
#include "graph/generators.h"
#include "mis/bdone.h"
#include "mis/bdtwo.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"
#include "mis/verify.h"
#include "test_util.h"

namespace rpmis {
namespace {

using AlgoFn = std::function<MisSolution(const Graph&)>;

struct AlgoCase {
  std::string name;
  AlgoFn run;
};

const AlgoCase kAlgos[] = {
    {"BDOne", [](const Graph& g) { return RunBDOne(g); }},
    {"BDTwo", [](const Graph& g) { return RunBDTwo(g); }},
    {"LinearTime", [](const Graph& g) { return RunLinearTime(g); }},
    {"NearLinear", [](const Graph& g) { return RunNearLinear(g); }},
    {"NearLinearNoPrepass",
     [](const Graph& g) {
       NearLinearOptions opts;
       opts.one_pass_dominance = false;
       opts.lp_reduction = false;
       return RunNearLinear(g, nullptr, opts);
     }},
};

struct GraphCase {
  std::string name;
  std::function<Graph(uint64_t seed)> make;
  bool brute_forceable;
};

const GraphCase kGraphs[] = {
    {"Empty", [](uint64_t) { return Graph::FromEdges(7, std::vector<Edge>{}); }, true},
    {"SingleEdge", [](uint64_t) { return PathGraph(2); }, true},
    {"Path9", [](uint64_t) { return PathGraph(9); }, true},
    {"Path10", [](uint64_t) { return PathGraph(10); }, true},
    {"Cycle9", [](uint64_t) { return CycleGraph(9); }, true},
    {"Cycle12", [](uint64_t) { return CycleGraph(12); }, true},
    {"Star", [](uint64_t) { return StarGraph(8); }, true},
    {"K6", [](uint64_t) { return CompleteGraph(6); }, true},
    {"K33", [](uint64_t) { return CompleteBipartite(3, 3); }, true},
    {"Grid4x5", [](uint64_t) { return GridGraph(4, 5); }, true},
    {"Tree", [](uint64_t) { return BinaryTree(25); }, true},
    {"Fig1", [](uint64_t) { return testing::PaperFigure1(); }, true},
    {"Fig1Mod", [](uint64_t) { return testing::PaperFigure1Modified(); }, true},
    {"Fig2", [](uint64_t) { return testing::PaperFigure2(); }, true},
    {"Fig5", [](uint64_t) { return testing::PaperFigure5(); }, true},
    {"SparseGnm", [](uint64_t s) { return ErdosRenyiGnm(24, 26, s); }, true},
    {"MediumGnm", [](uint64_t s) { return ErdosRenyiGnm(22, 44, s); }, true},
    {"DenseGnm", [](uint64_t s) { return ErdosRenyiGnm(18, 70, s); }, true},
    {"Gadget", [](uint64_t) { return Theorem31Gadget(8); }, true},
    {"PowerLawSmall", [](uint64_t s) { return ChungLuPowerLaw(30, 2.2, 3.0, s); }, true},
    {"PowerLawLarge",
     [](uint64_t s) { return ChungLuPowerLaw(5000, 2.1, 5.0, s); },
     false},
    {"GnmLarge", [](uint64_t s) { return ErdosRenyiGnm(4000, 6000, s); }, false},
    {"BaLarge", [](uint64_t s) { return BarabasiAlbert(3000, 2, s); }, false},
    {"RMatLarge", [](uint64_t s) { return RMat(11, 12000, 0.57, 0.19, 0.19, s); }, false},
};

struct Combo {
  size_t algo;
  size_t graph;
  uint64_t seed;
};

class ReducingPeelingProperty : public ::testing::TestWithParam<Combo> {};

TEST_P(ReducingPeelingProperty, Invariants) {
  const Combo c = GetParam();
  const AlgoCase& algo = kAlgos[c.algo];
  const GraphCase& gc = kGraphs[c.graph];
  Graph g = gc.make(c.seed);
  MisSolution sol = algo.run(g);

  ASSERT_EQ(sol.in_set.size(), g.NumVertices());
  EXPECT_TRUE(IsMaximalIndependentSet(g, sol.in_set))
      << algo.name << " on " << gc.name;
  uint64_t counted = 0;
  for (uint8_t f : sol.in_set) counted += f;
  EXPECT_EQ(counted, sol.size);
  EXPECT_GE(sol.UpperBound(), sol.size);

  if (gc.brute_forceable && g.NumVertices() <= 40) {
    const uint64_t alpha = BruteForceAlpha(g);
    EXPECT_LE(sol.size, alpha) << algo.name << " on " << gc.name;
    EXPECT_GE(sol.UpperBound(), alpha)
        << algo.name << " on " << gc.name << " (Theorem 6.1)";
    if (sol.provably_maximum) {
      EXPECT_EQ(sol.size, alpha)
          << algo.name << " claimed maximum on " << gc.name;
    }
    if (sol.rules.peels == 0) {
      EXPECT_TRUE(sol.provably_maximum);
      EXPECT_EQ(sol.size, alpha);
    }
  }
}

std::vector<Combo> MakeCombos() {
  std::vector<Combo> out;
  for (size_t a = 0; a < std::size(kAlgos); ++a) {
    for (size_t gi = 0; gi < std::size(kGraphs); ++gi) {
      for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        out.push_back({a, gi, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllGraphs, ReducingPeelingProperty,
    ::testing::ValuesIn(MakeCombos()), [](const auto& info) {
      const Combo& c = info.param;
      return kAlgos[c.algo].name + "_" + kGraphs[c.graph].name + "_s" +
             std::to_string(c.seed);
    });

// Exactness on structured families where kernelization alone should finish:
// trees, paths, cycles and sparse power-law graphs must be solved without
// any peeling by the degree-two-capable algorithms.
TEST(ReducingPeelingExactness, TreesSolvedWithoutPeeling) {
  for (auto n : {15u, 63u, 127u}) {
    Graph g = BinaryTree(n);
    for (size_t a = 1; a < std::size(kAlgos); ++a) {  // all but BDOne
      MisSolution sol = kAlgos[a].run(g);
      EXPECT_EQ(sol.rules.peels, 0u) << kAlgos[a].name << " n=" << n;
      EXPECT_TRUE(sol.provably_maximum);
    }
  }
}

TEST(ReducingPeelingExactness, BDOneSolvesTreesToo) {
  // Degree-one reduction alone kernelizes any forest.
  Graph g = BinaryTree(127);
  MisSolution sol = RunBDOne(g);
  EXPECT_EQ(sol.rules.peels, 0u);
  EXPECT_TRUE(sol.provably_maximum);
}

TEST(ReducingPeelingExactness, CyclesSolvedExactly) {
  for (auto n : {5u, 6u, 11u, 20u}) {
    Graph g = CycleGraph(n);
    for (const auto& algo : {kAlgos[2], kAlgos[3]}) {  // LinearTime, NearLinear
      MisSolution sol = algo.run(g);
      EXPECT_EQ(sol.size, n / 2) << algo.name << " C_" << n;
      EXPECT_TRUE(sol.provably_maximum) << algo.name << " C_" << n;
    }
  }
}

TEST(ReducingPeelingExactness, LongInducedPathsViaCase3And5) {
  // Two hubs joined by many long paths: exercises path cases 3 and 5
  // (odd/even, attachments non-adjacent) deeply.
  for (uint32_t path_len : {3u, 4u, 5u, 6u}) {
    GraphBuilder b(2 + 4 * path_len);
    Vertex next = 2;
    for (int p = 0; p < 4; ++p) {
      Vertex prev = 0;
      for (uint32_t i = 0; i < path_len; ++i) {
        b.AddEdge(prev, next);
        prev = next++;
      }
      b.AddEdge(prev, 1);
    }
    Graph g = b.Build();
    const uint64_t alpha = BruteForceAlpha(g);
    for (const auto& algo : {kAlgos[2], kAlgos[3]}) {
      MisSolution sol = algo.run(g);
      EXPECT_TRUE(IsMaximalIndependentSet(g, sol.in_set));
      EXPECT_EQ(sol.size, alpha) << algo.name << " len=" << path_len;
    }
  }
}

// Regression: chained path reductions through REWIRED (virtual) edges must
// keep the deferred-replay guarantees. A replay that consults the original
// adjacency instead of the at-removal partners loses the alternating half
// and produces a certified-but-not-maximum solution (found on Chung-Lu
// graphs at n ~ 3000; the certificates are cross-checked against the
// exact solver here).
TEST(ReducingPeelingExactness, CertificatesHoldOnMidSizePowerLaw) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = ChungLuPowerLaw(3000, 2.3, 8.1, seed);
    VcSolverOptions vo;
    vo.time_limit_seconds = 10;
    const VcSolverResult exact = SolveExactMis(g, vo);
    if (!exact.proven_optimal) continue;
    for (size_t a = 0; a < std::size(kAlgos); ++a) {
      MisSolution sol = kAlgos[a].run(g);
      EXPECT_LE(sol.size, exact.size) << kAlgos[a].name << " seed " << seed;
      if (sol.provably_maximum) {
        EXPECT_EQ(sol.size, exact.size)
            << kAlgos[a].name << " certified a non-maximum set, seed " << seed;
      }
    }
  }
}

TEST(ReducingPeelingExactness, CertificatesHoldOnMidSizeRandom) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = ErdosRenyiGnm(5000, 6000, seed + 77);
    VcSolverOptions vo;
    vo.time_limit_seconds = 10;
    const VcSolverResult exact = SolveExactMis(g, vo);
    if (!exact.proven_optimal) continue;
    for (size_t a = 0; a < std::size(kAlgos); ++a) {
      MisSolution sol = kAlgos[a].run(g);
      if (sol.provably_maximum) {
        EXPECT_EQ(sol.size, exact.size) << kAlgos[a].name << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace rpmis
