// Compaction-engine tests: renaming primitives, byte-identical
// differential runs (compaction on at several thresholds vs off) for all
// four Table-1 algorithms and the kernelizer, serial-vs-parallel
// OnePassDominance equivalence, and the O(n + m) total-work regression
// guarding against quadratic re-mapping.
#include "mis/compaction.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "localsearch/boosted.h"
#include "mis/bdone.h"
#include "mis/bdtwo.h"
#include "mis/kernelizer.h"
#include "mis/linear_time.h"
#include "mis/lp_reduction.h"
#include "mis/near_linear.h"
#include "mis/solution.h"
#include "mis/verify.h"
#include "test_util.h"

namespace rpmis {
namespace {

using ::rpmis::testing::PaperFigure1;
using ::rpmis::testing::PaperFigure1Modified;
using ::rpmis::testing::PaperFigure2;
using ::rpmis::testing::PaperFigure5;

// Pins RPMIS_THREADS for a scope and restores the previous value.
class ScopedThreads {
 public:
  explicit ScopedThreads(const char* value) {
    const char* old = std::getenv("RPMIS_THREADS");
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    setenv("RPMIS_THREADS", value, 1);
  }
  ~ScopedThreads() {
    if (had_value_) {
      setenv("RPMIS_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("RPMIS_THREADS");
    }
  }

 private:
  std::string saved_;
  bool had_value_ = false;
};

// ---------------------------------------------------------------------------
// Renaming primitives.

TEST(CompactionPrimitives, BuildRenamingIsMonotone) {
  const std::vector<uint8_t> keep = {1, 0, 1, 1, 0, 0, 1};
  const VertexRenaming ren = BuildRenaming(keep);
  EXPECT_EQ(ren.kept, (std::vector<Vertex>{0, 2, 3, 6}));
  EXPECT_EQ(ren.to_new[0], 0u);
  EXPECT_EQ(ren.to_new[1], kInvalidVertex);
  EXPECT_EQ(ren.to_new[2], 1u);
  EXPECT_EQ(ren.to_new[3], 2u);
  EXPECT_EQ(ren.to_new[6], 3u);
}

TEST(CompactionPrimitives, ComposeToOrigStacks) {
  // First layer: identity over 6, keep {0,2,4,5}; second: keep {1,3} of 4.
  std::vector<Vertex> to_orig(6);
  std::iota(to_orig.begin(), to_orig.end(), Vertex{0});
  const VertexRenaming first = BuildRenaming(std::vector<uint8_t>{1, 0, 1, 0, 1, 1});
  ComposeToOrig(first, &to_orig);
  EXPECT_EQ(to_orig, (std::vector<Vertex>{0, 2, 4, 5}));
  const VertexRenaming second = BuildRenaming(std::vector<uint8_t>{0, 1, 0, 1});
  ComposeToOrig(second, &to_orig);
  EXPECT_EQ(to_orig, (std::vector<Vertex>{2, 5}));
}

TEST(CompactionPrimitives, RemapWorklistPreservesOrderDropsDead) {
  const VertexRenaming ren = BuildRenaming(std::vector<uint8_t>{1, 0, 1, 1});
  std::vector<Vertex> wl = {3, 1, 0, 2, 1, 3};
  RemapWorklist(ren, &wl);
  EXPECT_EQ(wl, (std::vector<Vertex>{2, 0, 1, 2}));
}

TEST(CompactionPrimitives, CompactCsrPreservesSlotOrder) {
  // 0 - 1 - 2 - 3 plus chord 0-2; drop vertex 1.
  const Graph g = Graph::FromEdges(
      4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  const VertexRenaming ren = BuildRenaming(std::vector<uint8_t>{1, 0, 1, 1});
  std::vector<uint64_t> offsets;
  std::vector<Vertex> adj;
  CompactionStats stats;
  CompactCsr(ren, g.RawOffsets(), g.RawNeighbors(), &offsets, &adj, nullptr,
             &stats);
  ASSERT_EQ(offsets.size(), 4u);
  // New 0 = old 0: neighbours were {1, 2}; slot for dead 1 dropped.
  EXPECT_EQ(adj[offsets[0]], 1u);
  EXPECT_EQ(offsets[1] - offsets[0], 1u);
  // New 1 = old 2: neighbours were {0, 1, 3} -> {0, 2} in new ids.
  EXPECT_EQ(offsets[2] - offsets[1], 2u);
  EXPECT_EQ(adj[offsets[1]], 0u);
  EXPECT_EQ(adj[offsets[1] + 1], 2u);
  // New 2 = old 3: neighbour {2} -> {1}.
  EXPECT_EQ(offsets[3] - offsets[2], 1u);
  EXPECT_EQ(adj[offsets[2]], 1u);
  EXPECT_EQ(stats.vertices_scanned, 4u);
  // Only kept vertices' lists are walked: deg(0) + deg(2) + deg(3).
  EXPECT_EQ(stats.slots_scanned, 6u);
  EXPECT_EQ(stats.vertices_kept, 3u);
  EXPECT_EQ(stats.slots_kept, 4u);
}

// ---------------------------------------------------------------------------
// Differential: compaction on (three thresholds) vs off, all algorithms.

void ExpectIdenticalModuloCompaction(const MisSolution& on,
                                     const MisSolution& off,
                                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(on.in_set, off.in_set);
  EXPECT_EQ(on.size, off.size);
  EXPECT_EQ(on.peeled, off.peeled);
  EXPECT_EQ(on.residual_peeled, off.residual_peeled);
  EXPECT_EQ(on.kernel_vertices, off.kernel_vertices);
  EXPECT_EQ(on.kernel_edges, off.kernel_edges);
  EXPECT_EQ(on.provably_maximum, off.provably_maximum);
  EXPECT_EQ(on.rules.degree_zero, off.rules.degree_zero);
  EXPECT_EQ(on.rules.degree_one, off.rules.degree_one);
  EXPECT_EQ(on.rules.degree_two_isolation, off.rules.degree_two_isolation);
  EXPECT_EQ(on.rules.degree_two_folding, off.rules.degree_two_folding);
  EXPECT_EQ(on.rules.degree_two_path, off.rules.degree_two_path);
  EXPECT_EQ(on.rules.dominance, off.rules.dominance);
  EXPECT_EQ(on.rules.one_pass_dominance, off.rules.one_pass_dominance);
  EXPECT_EQ(on.rules.lp, off.rules.lp);
  EXPECT_EQ(on.rules.peels, off.rules.peels);
  EXPECT_EQ(off.compaction.compactions, 0u);
}

std::vector<std::pair<std::string, Graph>> DifferentialGraphs() {
  std::vector<std::pair<std::string, Graph>> graphs;
  graphs.emplace_back("fig1", PaperFigure1());
  graphs.emplace_back("fig1mod", PaperFigure1Modified());
  graphs.emplace_back("fig2", PaperFigure2());
  graphs.emplace_back("fig5", PaperFigure5());
  graphs.emplace_back("er-3k", ErdosRenyiGnm(3000, 9000, 7));
  graphs.emplace_back("er-sparse", ErdosRenyiGnm(2000, 2000, 11));
  graphs.emplace_back("powerlaw", ChungLuPowerLaw(5000, 2.5, 6.0, 13));
  graphs.emplace_back("plcore", PowerLawWithCore(4000, 2.5, 6.0, 100, 20.0, 17));
  return graphs;
}

constexpr double kThresholds[] = {0.9, 0.5, 0.1};

CompactionOptions Aggressive(double threshold) {
  CompactionOptions copts;
  copts.enabled = true;
  copts.threshold = threshold;
  copts.min_vertices = 1;
  return copts;
}

TEST(CompactionDifferential, BDOne) {
  for (const auto& [name, g] : DifferentialGraphs()) {
    const MisSolution off = RunBDOne(g, nullptr, {.compaction = {.enabled = false}});
    EXPECT_TRUE(IsMaximalIndependentSet(g, off.in_set));
    for (double t : kThresholds) {
      const MisSolution on =
          RunBDOne(g, nullptr, {.compaction = Aggressive(t)});
      ExpectIdenticalModuloCompaction(on, off,
                                      name + " t=" + std::to_string(t));
      if (g.NumVertices() >= 1000 && t >= 0.9) {
        EXPECT_GT(on.compaction.compactions, 0u) << name;
      }
    }
  }
}

TEST(CompactionDifferential, BDTwo) {
  for (const auto& [name, g] : DifferentialGraphs()) {
    const MisSolution off = RunBDTwo(g, {.compaction = {.enabled = false}});
    EXPECT_TRUE(IsMaximalIndependentSet(g, off.in_set));
    for (double t : kThresholds) {
      const MisSolution on = RunBDTwo(g, {.compaction = Aggressive(t)});
      ExpectIdenticalModuloCompaction(on, off,
                                      name + " t=" + std::to_string(t));
    }
  }
}

TEST(CompactionDifferential, LinearTime) {
  for (const auto& [name, g] : DifferentialGraphs()) {
    const MisSolution off =
        RunLinearTime(g, nullptr, {.compaction = {.enabled = false}});
    EXPECT_TRUE(IsMaximalIndependentSet(g, off.in_set));
    for (double t : kThresholds) {
      const MisSolution on =
          RunLinearTime(g, nullptr, {.compaction = Aggressive(t)});
      ExpectIdenticalModuloCompaction(on, off,
                                      name + " t=" + std::to_string(t));
    }
  }
}

TEST(CompactionDifferential, NearLinear) {
  for (const auto& [name, g] : DifferentialGraphs()) {
    NearLinearOptions off_opts;
    off_opts.compaction.enabled = false;
    const MisSolution off = RunNearLinear(g, nullptr, off_opts);
    EXPECT_TRUE(IsMaximalIndependentSet(g, off.in_set));
    for (double t : kThresholds) {
      NearLinearOptions on_opts;
      on_opts.compaction = Aggressive(t);
      const MisSolution on = RunNearLinear(g, nullptr, on_opts);
      ExpectIdenticalModuloCompaction(on, off,
                                      name + " t=" + std::to_string(t));
    }
  }
}

// NearLinear with the prepasses ablated exercises the main loop (and its
// mid-run rebuilds) on the full instance rather than the prepass kernel.
TEST(CompactionDifferential, NearLinearCoreOnly) {
  const Graph g = ChungLuPowerLaw(5000, 2.5, 6.0, 19);
  NearLinearOptions off_opts;
  off_opts.one_pass_dominance = false;
  off_opts.lp_reduction = false;
  off_opts.compaction.enabled = false;
  const MisSolution off = RunNearLinear(g, nullptr, off_opts);
  for (double t : kThresholds) {
    NearLinearOptions on_opts = off_opts;
    on_opts.compaction = Aggressive(t);
    const MisSolution on = RunNearLinear(g, nullptr, on_opts);
    ExpectIdenticalModuloCompaction(on, off, "t=" + std::to_string(t));
    if (t >= 0.9) {
      EXPECT_GT(on.compaction.compactions, 0u);
    }
  }
}

TEST(CompactionDifferential, Kernelizer) {
  for (const auto& [name, g] : DifferentialGraphs()) {
    SCOPED_TRACE(name);
    KernelizerOptions off_opts;
    off_opts.compaction.enabled = false;
    Kernelizer off(g, off_opts);
    off.Run();
    for (double t : kThresholds) {
      SCOPED_TRACE(t);
      KernelizerOptions on_opts;
      on_opts.compaction = Aggressive(t);
      Kernelizer on(g, on_opts);
      on.Run();
      EXPECT_EQ(on.AlphaOffset(), off.AlphaOffset());
      EXPECT_EQ(on.KernelToOrig(), off.KernelToOrig());
      ASSERT_EQ(on.Kernel().NumVertices(), off.Kernel().NumVertices());
      EXPECT_EQ(on.Kernel().NumEdges(), off.Kernel().NumEdges());
      for (Vertex v = 0; v < on.Kernel().NumVertices(); ++v) {
        const auto na = on.Kernel().Neighbors(v);
        const auto nb = off.Kernel().Neighbors(v);
        ASSERT_EQ(na.size(), nb.size());
        EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin()));
      }
      // Lift an arbitrary kernel IS through both op logs.
      std::vector<uint8_t> kis(on.Kernel().NumVertices(), 0);
      for (Vertex v = 0; v < on.Kernel().NumVertices(); ++v) {
        bool free = true;
        for (Vertex w : on.Kernel().Neighbors(v)) {
          if (w < v && kis[w]) {
            free = false;
            break;
          }
        }
        kis[v] = free;
      }
      EXPECT_EQ(on.Lift(kis), off.Lift(kis));
      EXPECT_EQ(off.Compaction().compactions, 0u);
    }
  }
}

// Regression: an aggressive threshold fires a compaction on nearly every
// worklist iteration, and RemapWorklist may drop the worklist's remaining
// (all-dead) entries — the pop that follows must notice the list went
// empty instead of reading past the end of the freed buffer. G(100, 220)
// seed 11 at threshold 0.9 is a known trigger (originally surfaced as a
// heap-buffer-overflow through the exact solver's per-node kernelization);
// the surrounding seed sweep keeps coverage if reduction details shift.
TEST(CompactionDifferential, KernelizerWorklistEmptiedByCompaction) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    SCOPED_TRACE(seed);
    const Graph g = ErdosRenyiGnm(100, 220, seed);
    KernelizerOptions off_opts;
    off_opts.compaction.enabled = false;
    Kernelizer off(g, off_opts);
    off.Run();
    for (double t : {1.0, 0.9, 0.5}) {
      SCOPED_TRACE(t);
      KernelizerOptions on_opts;
      on_opts.compaction = Aggressive(t);
      Kernelizer on(g, on_opts);
      on.Run();
      EXPECT_EQ(on.AlphaOffset(), off.AlphaOffset());
      EXPECT_EQ(on.KernelToOrig(), off.KernelToOrig());
      EXPECT_EQ(on.Kernel().NumVertices(), off.Kernel().NumVertices());
      EXPECT_EQ(on.Kernel().NumEdges(), off.Kernel().NumEdges());
    }
  }
}

// ---------------------------------------------------------------------------
// Serial-vs-parallel OnePassDominance (and the parallel LP edge build that
// NearLinear's prepass uses) must be byte-identical at any thread count.

struct DominanceRun {
  std::vector<uint8_t> alive;
  std::vector<uint32_t> deg;
  std::vector<uint8_t> in_set;
  uint64_t removed = 0;
};

DominanceRun RunDominance(const Graph& g) {
  DominanceRun r;
  const Vertex n = g.NumVertices();
  r.alive.assign(n, 1);
  r.deg.resize(n);
  r.in_set.assign(n, 0);
  for (Vertex v = 0; v < n; ++v) r.deg[v] = g.Degree(v);
  DominanceScratch scratch;
  r.removed = OnePassDominance(g, r.alive, r.deg, r.in_set, scratch);
  return r;
}

TEST(ParallelDominance, ByteIdenticalAcrossThreadCounts) {
  const Graph graphs[] = {ErdosRenyiGnm(6000, 30000, 3),
                          ChungLuPowerLaw(8000, 2.5, 8.0, 5),
                          PowerLawWithCore(5000, 2.5, 6.0, 200, 20.0, 9)};
  for (const Graph& g : graphs) {
    DominanceRun serial;
    {
      ScopedThreads pin("1");
      serial = RunDominance(g);
    }
    EXPECT_GT(serial.removed, 0u);
    for (const char* threads : {"2", "8"}) {
      ScopedThreads pin(threads);
      const DominanceRun parallel = RunDominance(g);
      EXPECT_EQ(parallel.removed, serial.removed) << threads;
      EXPECT_EQ(parallel.alive, serial.alive) << threads;
      EXPECT_EQ(parallel.deg, serial.deg) << threads;
      EXPECT_EQ(parallel.in_set, serial.in_set) << threads;
    }
  }
}

TEST(ParallelLpReduction, ByteIdenticalAcrossThreadCounts) {
  // Parallel level-synchronous BFS inside Hopcroft–Karp must leave every
  // LP-reduction output — matching size, include/exclude sets — identical
  // to the serial pass (dist[] is canonical regardless of expansion order).
  const Graph graphs[] = {ErdosRenyiGnm(6000, 30000, 13),
                          ChungLuPowerLaw(8000, 2.5, 8.0, 15),
                          PowerLawWithCore(5000, 2.5, 6.0, 200, 20.0, 19)};
  for (const Graph& g : graphs) {
    LpReduction serial;
    {
      ScopedThreads pin("1");
      serial = SolveLpReduction(g);
    }
    EXPECT_GT(serial.matching, 0u);
    for (const char* threads : {"2", "8"}) {
      ScopedThreads pin(threads);
      const LpReduction parallel = SolveLpReduction(g);
      EXPECT_EQ(parallel.matching, serial.matching) << threads;
      EXPECT_EQ(parallel.include, serial.include) << threads;
      EXPECT_EQ(parallel.exclude, serial.exclude) << threads;
      EXPECT_EQ(parallel.num_include, serial.num_include) << threads;
      EXPECT_EQ(parallel.num_exclude, serial.num_exclude) << threads;
      EXPECT_EQ(parallel.num_half, serial.num_half) << threads;
    }
  }
}

TEST(ParallelDominance, ScratchReuseAcrossInstances) {
  // One scratch across differently-sized graphs must not change results.
  DominanceScratch scratch;
  const Graph big = ErdosRenyiGnm(4000, 16000, 21);
  const Graph small = ErdosRenyiGnm(500, 2000, 23);
  for (const Graph* g : {&big, &small, &big}) {
    DominanceRun fresh = RunDominance(*g);
    DominanceRun reused;
    const Vertex n = g->NumVertices();
    reused.alive.assign(n, 1);
    reused.deg.resize(n);
    reused.in_set.assign(n, 0);
    for (Vertex v = 0; v < n; ++v) reused.deg[v] = g->Degree(v);
    reused.removed =
        OnePassDominance(*g, reused.alive, reused.deg, reused.in_set, scratch);
    EXPECT_EQ(reused.removed, fresh.removed);
    EXPECT_EQ(reused.alive, fresh.alive);
    EXPECT_EQ(reused.in_set, fresh.in_set);
  }
}

TEST(ParallelDominance, NearLinearEndToEndAcrossThreadCounts) {
  const Graph g = ChungLuPowerLaw(10000, 2.5, 8.0, 29);
  MisSolution serial;
  {
    ScopedThreads pin("1");
    serial = RunNearLinear(g);
  }
  for (const char* threads : {"2", "8"}) {
    ScopedThreads pin(threads);
    const MisSolution parallel = RunNearLinear(g);
    EXPECT_EQ(parallel.in_set, serial.in_set) << threads;
    EXPECT_EQ(parallel.rules.one_pass_dominance,
              serial.rules.one_pass_dominance)
        << threads;
    EXPECT_EQ(parallel.rules.lp, serial.rules.lp) << threads;
  }
}

// ---------------------------------------------------------------------------
// Total-work regression: under geometric thresholds the rebuilds' own work
// stays O(n + m) for the whole run — no quadratic re-mapping.

TEST(CompactionWork, TotalRebuildWorkIsLinear) {
  const Vertex n = 100000;
  const uint64_t m = 300000;
  const Graph g = ErdosRenyiGnm(n, m, 31);
  BDOneOptions opts;
  opts.compaction.threshold = 0.5;
  opts.compaction.min_vertices = 1;
  const MisSolution sol = RunBDOne(g, nullptr, opts);
  EXPECT_GE(sol.compaction.compactions, 3u);
  // Each rebuild scans the previous build, and active counts halve between
  // builds, so the sums form (at worst) a geometric series: a small
  // constant times the instance size bounds them. 4x leaves slack for the
  // first full-size rebuild plus rounding; a quadratic regression would
  // overshoot by orders of magnitude.
  EXPECT_LE(sol.compaction.vertices_scanned, 4u * static_cast<uint64_t>(n));
  EXPECT_LE(sol.compaction.slots_scanned, 4u * 2u * m);
  EXPECT_LT(sol.compaction.vertices_kept, sol.compaction.vertices_scanned);
}

// Aggressive-threshold smoke across every consumer on one graph: catches
// mapping bugs in seconds without the 10M-edge bench.
TEST(CompactionWork, AggressiveSmokeAllAlgorithms) {
  const Graph g = ChungLuPowerLaw(3000, 2.5, 6.0, 37);
  const CompactionOptions copts = Aggressive(0.95);
  const MisSolution a = RunBDOne(g, nullptr, {.compaction = copts});
  EXPECT_TRUE(IsMaximalIndependentSet(g, a.in_set));
  const MisSolution b = RunBDTwo(g, {.compaction = copts});
  EXPECT_TRUE(IsMaximalIndependentSet(g, b.in_set));
  const MisSolution c = RunLinearTime(g, nullptr, {.compaction = copts});
  EXPECT_TRUE(IsMaximalIndependentSet(g, c.in_set));
  NearLinearOptions nl;
  nl.compaction = copts;
  const MisSolution d = RunNearLinear(g, nullptr, nl);
  EXPECT_TRUE(IsMaximalIndependentSet(g, d.in_set));
  KernelizerOptions ko;
  ko.compaction = copts;
  Kernelizer k(g, ko);
  k.Run();
  const std::vector<uint8_t> lifted =
      k.Lift(std::vector<uint8_t>(k.Kernel().NumVertices(), 0));
  EXPECT_TRUE(IsIndependentSet(g, lifted));
}

// ARW boosted by a compacting solver must see the exact same kernel (and
// base solution) as the non-compacting run: the snapshot is extracted from
// the compacted working graph, and the mapping stack makes that lossless.
TEST(CompactionDifferential, BoostedArwKernelSnapshot) {
  const Graph g = ChungLuPowerLaw(4000, 2.5, 6.0, 23);
  for (const BoostKind kind : {BoostKind::kLinearTime, BoostKind::kNearLinear}) {
    BoostedOptions on;
    on.time_limit_seconds = 0.02;
    on.compaction = Aggressive(0.9);
    BoostedOptions off = on;
    off.compaction.enabled = false;
    const BoostedResult a = RunBoostedArw(g, kind, on);
    const BoostedResult b = RunBoostedArw(g, kind, off);
    EXPECT_EQ(a.base.in_set, b.base.in_set);
    EXPECT_EQ(a.base.size, b.base.size);
    EXPECT_EQ(a.kernel_vertices, b.kernel_vertices);
    EXPECT_EQ(a.kernel_edges, b.kernel_edges);
    EXPECT_GT(a.base.compaction.compactions, 0u);
    EXPECT_EQ(b.base.compaction.compactions, 0u);
    EXPECT_TRUE(IsMaximalIndependentSet(g, a.in_set));
    EXPECT_TRUE(IsMaximalIndependentSet(g, b.in_set));
  }
}

}  // namespace
}  // namespace rpmis
