// Provenance-trace tests: recording must never perturb the solve, and
// the projections (PeeledMask/DeferredMask) must agree with the rule
// counters the solvers already report. The dynamic engine (src/dynamic)
// builds its eviction heuristic on these projections.
#include "mis/reduction_trace.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "mis/kernelizer.h"
#include "mis/linear_time.h"
#include "mis/verify.h"
#include "test_util.h"

namespace rpmis {
namespace {

TEST(ReductionTraceTest, RecordingDoesNotChangeTheSolution) {
  const Graph g = ChungLuPowerLaw(3000, 2.5, 6.0, /*seed=*/5);
  const MisSolution plain = RunLinearTime(g);

  ReductionTrace trace;
  LinearTimeOptions options;
  options.trace = &trace;
  const MisSolution traced = RunLinearTime(g, nullptr, options);

  EXPECT_EQ(plain.size, traced.size);
  EXPECT_EQ(plain.in_set, traced.in_set);
  EXPECT_FALSE(trace.Empty());
}

TEST(ReductionTraceTest, PeeledMaskMatchesPeelCounter) {
  const Graph g = ErdosRenyiGnp(1000, 8.0 / 1000.0, /*seed=*/3);
  ReductionTrace trace;
  LinearTimeOptions options;
  options.trace = &trace;
  const MisSolution sol = RunLinearTime(g, nullptr, options);
  ASSERT_GT(sol.rules.peels, 0u);  // dense enough that peeling fires

  EXPECT_EQ(trace.CountRule(ReductionRule::kPeel), sol.rules.peels);
  const std::vector<uint8_t> peeled = trace.PeeledMask(g.NumVertices());
  uint64_t flagged = 0;
  for (uint8_t f : peeled) flagged += f;
  EXPECT_EQ(flagged, sol.rules.peels);
}

TEST(ReductionTraceTest, DeferredMaskCoversPathReplays) {
  // A bare path falls to degree-one reductions, so anchor a degree-two
  // path between two K4s: case 3 of Lemma 4.1 defers the in-path
  // membership decisions (same family as path_reduction_cases_test).
  GraphBuilder b(8 + 5);
  for (Vertex i = 0; i < 4; ++i) {
    for (Vertex j = i + 1; j < 4; ++j) {
      b.AddEdge(i, j);
      b.AddEdge(4 + i, 4 + j);
    }
  }
  Vertex prev = 0;
  for (Vertex i = 0; i < 5; ++i) {
    b.AddEdge(prev, 8 + i);
    prev = 8 + i;
  }
  b.AddEdge(prev, 4);
  const Graph g = b.Build();

  ReductionTrace trace;
  LinearTimeOptions options;
  options.trace = &trace;
  const MisSolution sol = RunLinearTime(g, nullptr, options);
  EXPECT_TRUE(IsMaximalIndependentSet(g, sol.in_set));
  ASSERT_GT(trace.CountRule(ReductionRule::kPathDefer), 0u);

  const std::vector<uint8_t> deferred = trace.DeferredMask(g.NumVertices());
  uint64_t flagged = 0;
  for (uint8_t f : deferred) flagged += f;
  EXPECT_EQ(flagged, trace.CountRule(ReductionRule::kPathDefer));
  // Only interior path vertices can carry a deferral flag.
  for (Vertex v = 0; v < 8; ++v) EXPECT_EQ(deferred[v], 0) << v;
}

TEST(ReductionTraceTest, KernelizerExportReplaysItsOps) {
  const Graph g = rpmis::testing::PaperFigure1();
  Kernelizer kernelizer(g);
  kernelizer.Run();

  ReductionTrace trace;
  kernelizer.ExportTrace(&trace);
  // Figure 1 kernelizes to empty, so every decision is in the log and
  // includes must match the lifted solution's fixed vertices.
  EXPECT_FALSE(trace.Empty());
  for (const ReductionEvent& e : trace.Events()) {
    EXPECT_LT(e.v, g.NumVertices());
    switch (e.rule) {
      case ReductionRule::kInclude:
      case ReductionRule::kExclude:
      case ReductionRule::kFold:
      case ReductionRule::kTwinFoldPair:
      case ReductionRule::kTwinFoldMembers:
        break;
      default:
        ADD_FAILURE() << "unexpected LinearTime rule in kernelizer export";
    }
  }
}

TEST(ReductionTraceTest, ClearAndReserveBehave) {
  ReductionTrace trace;
  trace.Reserve(8);
  trace.Append(ReductionRule::kPeel, 3);
  trace.Append(ReductionRule::kPathDefer, 1, 0, 2);
  EXPECT_EQ(trace.Events().size(), 2u);
  EXPECT_EQ(trace.Events()[1].a, 0u);
  EXPECT_EQ(trace.Events()[1].b, 2u);
  trace.Clear();
  EXPECT_TRUE(trace.Empty());
  EXPECT_EQ(trace.CountRule(ReductionRule::kPeel), 0u);
}

}  // namespace
}  // namespace rpmis
