#include "dynamic/update.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "graph/generators.h"

namespace rpmis {
namespace {

TEST(UpdateStreamTest, ParsesEveryOperation) {
  std::istringstream in(
      "# comment line\n"
      "ae 0 5\n"
      "\n"
      "de 3 4\n"
      "av 1 2 7\n"
      "av\n"
      "dv 9\n");
  const auto updates = ParseUpdateStream(in);
  ASSERT_EQ(updates.size(), 5u);
  EXPECT_EQ(updates[0].kind, UpdateKind::kInsertEdge);
  EXPECT_EQ(updates[0].u, 0u);
  EXPECT_EQ(updates[0].v, 5u);
  EXPECT_EQ(updates[1].kind, UpdateKind::kDeleteEdge);
  EXPECT_EQ(updates[2].kind, UpdateKind::kInsertVertex);
  EXPECT_EQ(updates[2].neighbors, (std::vector<Vertex>{1, 2, 7}));
  EXPECT_EQ(updates[3].kind, UpdateKind::kInsertVertex);
  EXPECT_TRUE(updates[3].neighbors.empty());
  EXPECT_EQ(updates[4].kind, UpdateKind::kDeleteVertex);
  EXPECT_EQ(updates[4].u, 9u);
}

TEST(UpdateStreamTest, ErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    std::istringstream in(text);
    try {
      ParseUpdateStream(in);
      FAIL() << "expected a parse error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("ae 0\n", "line 1");
  expect_error("# ok\nxx 1 2\n", "line 2");
  expect_error("de 1 2 3\n", "trailing");
  expect_error("ae 1 1\n", "self-loop");
  expect_error("dv -4\n", "vertex id");
  expect_error("ae 0 99999999999\n", "out of range");
}

TEST(UpdateStreamTest, FormatParseRoundTrip) {
  std::vector<GraphUpdate> updates;
  updates.push_back(GraphUpdate::InsertEdge(3, 11));
  updates.push_back(GraphUpdate::DeleteEdge(0, 2));
  updates.push_back(GraphUpdate::InsertVertex({5, 6}));
  updates.push_back(GraphUpdate::InsertVertex({}));
  updates.push_back(GraphUpdate::DeleteVertex(7));

  std::ostringstream out;
  WriteUpdateStream(out, updates);
  std::istringstream in(out.str());
  const auto parsed = ParseUpdateStream(in);
  ASSERT_EQ(parsed.size(), updates.size());
  for (size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, updates[i].kind) << "update " << i;
    EXPECT_EQ(parsed[i].u, updates[i].u) << "update " << i;
    EXPECT_EQ(parsed[i].v, updates[i].v) << "update " << i;
    EXPECT_EQ(parsed[i].neighbors, updates[i].neighbors) << "update " << i;
  }
}

// Replays a random stream against a reference model and checks every
// update's stated precondition holds at its point in the stream.
TEST(UpdateStreamTest, RandomStreamIsValidByConstruction) {
  const Graph g = ErdosRenyiGnp(60, 0.08, /*seed=*/5);
  const auto updates = RandomUpdateStream(g, 400, /*seed=*/17);
  ASSERT_EQ(updates.size(), 400u);

  std::vector<std::vector<uint8_t>> adj(
      g.NumVertices(), std::vector<uint8_t>(g.NumVertices(), 0));
  const auto has = [&](Vertex a, Vertex b) { return adj[a][b] != 0; };
  const auto set = [&](Vertex a, Vertex b, uint8_t val) {
    adj[a][b] = adj[b][a] = val;
  };
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (Vertex w : g.Neighbors(v)) adj[v][w] = 1;
  }
  std::vector<uint8_t> alive(g.NumVertices(), 1);

  size_t seen_kinds[4] = {0, 0, 0, 0};
  for (const GraphUpdate& u : updates) {
    ++seen_kinds[static_cast<int>(u.kind)];
    switch (u.kind) {
      case UpdateKind::kInsertEdge:
        ASSERT_TRUE(alive[u.u] && alive[u.v]);
        ASSERT_FALSE(has(u.u, u.v));
        set(u.u, u.v, 1);
        break;
      case UpdateKind::kDeleteEdge:
        ASSERT_TRUE(alive[u.u] && alive[u.v]);
        ASSERT_TRUE(has(u.u, u.v));
        set(u.u, u.v, 0);
        break;
      case UpdateKind::kInsertVertex: {
        const Vertex id = static_cast<Vertex>(alive.size());
        for (auto& row : adj) row.push_back(0);
        adj.emplace_back(alive.size() + 1, 0);
        alive.push_back(1);
        for (Vertex w : u.neighbors) {
          ASSERT_LT(w, id);
          ASSERT_TRUE(alive[w]);
          set(id, w, 1);
        }
        break;
      }
      case UpdateKind::kDeleteVertex:
        ASSERT_TRUE(alive[u.u]);
        alive[u.u] = 0;
        for (Vertex w = 0; w < adj.size(); ++w) set(u.u, w, 0);
        break;
    }
  }
  // The default weights exercise every operation kind on a graph this size.
  EXPECT_GT(seen_kinds[0], 0u);
  EXPECT_GT(seen_kinds[1], 0u);
  EXPECT_GT(seen_kinds[2], 0u);
  EXPECT_GT(seen_kinds[3], 0u);
}

TEST(UpdateStreamTest, RandomStreamIsDeterministic) {
  const Graph g = ErdosRenyiGnp(40, 0.1, /*seed=*/3);
  const auto a = RandomUpdateStream(g, 100, /*seed=*/9);
  const auto b = RandomUpdateStream(g, 100, /*seed=*/9);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(FormatUpdate(a[i]), FormatUpdate(b[i])) << "update " << i;
  }
}

}  // namespace
}  // namespace rpmis
