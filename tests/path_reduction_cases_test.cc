// Case-by-case tests for the degree-two path reductions (Lemma 4.1),
// each on a purpose-built graph where exactly that case fires first, with
// exactness verified against brute force and alpha arithmetic checked per
// the lemma's statements.
#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "graph/generators.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"
#include "mis/verify.h"

namespace rpmis {
namespace {

void ExpectExact(const Graph& g, const char* what) {
  const uint64_t alpha = BruteForceAlpha(g);
  MisSolution lt = RunLinearTime(g);
  EXPECT_TRUE(IsMaximalIndependentSet(g, lt.in_set)) << what;
  EXPECT_EQ(lt.size, alpha) << "LinearTime on " << what;
  MisSolution nl = RunNearLinear(g);
  EXPECT_EQ(nl.size, alpha) << "NearLinear on " << what;
}

// Helper: two "anchors" of degree >= 3 built from a K4 each, joined by a
// degree-two path of the requested length. Anchor A uses vertices 0..3
// (0 is the attachment v), anchor B uses 4..7 (4 is w).
Graph PathBetweenAnchors(uint32_t path_len, bool vw_edge) {
  GraphBuilder b(8 + path_len);
  for (Vertex i = 0; i < 4; ++i) {
    for (Vertex j = i + 1; j < 4; ++j) {
      b.AddEdge(i, j);
      b.AddEdge(4 + i, 4 + j);
    }
  }
  if (vw_edge) b.AddEdge(0, 4);
  Vertex prev = 0;
  for (uint32_t i = 0; i < path_len; ++i) {
    b.AddEdge(prev, 8 + i);
    prev = 8 + i;
  }
  b.AddEdge(prev, 4);
  return b.Build();
}

TEST(PathReductionCases, DegreeTwoCycle) {
  // A lone cycle plus a far-away clique: alpha = floor(c/2) + 1.
  for (uint32_t c : {3u, 4u, 7u, 10u}) {
    GraphBuilder b(c + 4);
    for (Vertex i = 0; i < c; ++i) b.AddEdge(i, (i + 1) % c);
    for (Vertex i = 0; i < 4; ++i) {
      for (Vertex j = i + 1; j < 4; ++j) b.AddEdge(c + i, c + j);
    }
    Graph g = b.Build();
    MisSolution sol = RunLinearTime(g);
    // The cycle resolves exactly by the cycle rule; the K4 needs peeling
    // (so no certificate), but its contribution of 1 is still forced.
    EXPECT_EQ(sol.size, c / 2 + 1) << "cycle " << c;
    EXPECT_GE(sol.UpperBound(), sol.size);
  }
}

TEST(PathReductionCases, Case1CommonAttachment) {
  // v == w: a degree-two path looping back to the same anchor vertex.
  GraphBuilder b(8);
  for (Vertex i = 0; i < 4; ++i) {
    for (Vertex j = i + 1; j < 4; ++j) b.AddEdge(i, j);
  }
  b.AddEdge(0, 4);
  b.AddEdge(4, 5);
  b.AddEdge(5, 6);
  b.AddEdge(6, 7);
  b.AddEdge(7, 0);  // back to vertex 0
  Graph g = b.Build();
  MisSolution sol = RunLinearTime(g);
  EXPECT_EQ(sol.size, BruteForceAlpha(g));
  EXPECT_GE(sol.rules.degree_two_path, 1u);
  EXPECT_TRUE(sol.provably_maximum);
}

TEST(PathReductionCases, Case2OddAdjacentAttachments) {
  for (uint32_t len : {1u, 3u, 5u}) {
    Graph g = PathBetweenAnchors(len, /*vw_edge=*/true);
    ExpectExact(g, "case 2");
    // Lemma: alpha(G) = alpha(G \ {v, w}) + ceil(len/2) for this family.
    MisSolution sol = RunLinearTime(g);
    EXPECT_TRUE(sol.provably_maximum) << len;
  }
}

TEST(PathReductionCases, Case3OddNonAdjacentAttachments) {
  for (uint32_t len : {3u, 5u, 7u}) {
    Graph g = PathBetweenAnchors(len, /*vw_edge=*/false);
    ExpectExact(g, "case 3");
  }
}

TEST(PathReductionCases, Case4EvenAdjacentAttachments) {
  for (uint32_t len : {2u, 4u, 6u}) {
    Graph g = PathBetweenAnchors(len, /*vw_edge=*/true);
    ExpectExact(g, "case 4");
  }
}

TEST(PathReductionCases, Case5EvenNonAdjacentAttachments) {
  for (uint32_t len : {2u, 4u, 6u}) {
    Graph g = PathBetweenAnchors(len, /*vw_edge=*/false);
    ExpectExact(g, "case 5");
  }
}

TEST(PathReductionCases, AlphaArithmeticAcrossLengths) {
  // Lemma 4.1's alpha bookkeeping: for the anchor family, adding two more
  // path vertices raises alpha by exactly one.
  for (bool vw_edge : {false, true}) {
    for (uint32_t len = 1; len + 2 <= 9; ++len) {
      const uint64_t a1 = BruteForceAlpha(PathBetweenAnchors(len, vw_edge));
      const uint64_t a2 = BruteForceAlpha(PathBetweenAnchors(len + 2, vw_edge));
      EXPECT_EQ(a2, a1 + 1) << "len " << len << " vw " << vw_edge;
    }
  }
}

TEST(PathReductionCases, ChainedRewiresStayExact) {
  // The regression shape behind the deferred-replay fix: spokes of
  // degree-two paths between MANY anchors arranged in a ring, so case-3/5
  // rewires create virtual edges that later path reductions consume.
  for (uint32_t spoke : {2u, 3u}) {
    const uint32_t anchors = 5;
    GraphBuilder b(anchors + anchors * spoke);
    Vertex next = anchors;
    for (uint32_t a = 0; a < anchors; ++a) {
      Vertex prev = a;
      for (uint32_t i = 0; i < spoke; ++i) {
        b.AddEdge(prev, next);
        prev = next++;
      }
      b.AddEdge(prev, (a + 1) % anchors);
    }
    Graph g = b.Build();
    const uint64_t alpha = BruteForceAlpha(g);
    for (const MisSolution& sol : {RunLinearTime(g), RunNearLinear(g)}) {
      EXPECT_TRUE(IsMaximalIndependentSet(g, sol.in_set));
      if (sol.provably_maximum) {
        EXPECT_EQ(sol.size, alpha) << "spoke " << spoke;
      } else {
        EXPECT_LE(sol.size, alpha);
        EXPECT_GE(sol.UpperBound(), alpha);
      }
    }
  }
}

TEST(PathReductionCases, SingletonDismissalIsNotForgotten) {
  // A degree-two vertex between two non-adjacent degree-3 anchors is
  // dismissed once; the instance must still be solved exactly when later
  // reductions re-expose it.
  Graph g = PathBetweenAnchors(1, /*vw_edge=*/false);
  ExpectExact(g, "singleton");
}

}  // namespace
}  // namespace rpmis
