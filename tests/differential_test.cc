// Cross-algorithm differential tests at scales beyond brute force: every
// algorithm's size must sit inside the envelope defined by the others'
// certificates and upper bounds, and the paper's quality ordering must
// hold in aggregate.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/du.h"
#include "baselines/greedy.h"
#include "baselines/semi_external.h"
#include "exact/vc_solver.h"
#include "graph/generators.h"
#include "localsearch/arw.h"
#include "mis/bdone.h"
#include "mis/bdtwo.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"
#include "mis/upper_bounds.h"
#include "mis/verify.h"

namespace rpmis {
namespace {

struct AllResults {
  MisSolution greedy, du, semie, bdone, bdtwo, lt, nl;
};

AllResults RunAll(const Graph& g) {
  AllResults r;
  r.greedy = RunGreedy(g);
  r.du = RunDU(g);
  r.semie = RunSemiE(g);
  r.bdone = RunBDOne(g);
  r.bdtwo = RunBDTwo(g);
  r.lt = RunLinearTime(g);
  r.nl = RunNearLinear(g);
  return r;
}

TEST(DifferentialTest, CertificatesAgreeAcrossAlgorithms) {
  // If ANY algorithm certifies optimality, every other size is <= it and
  // every Theorem 6.1 / existing upper bound is >= it.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = ChungLuPowerLaw(20000, 2.0 + 0.1 * seed, 4.0, seed);
    AllResults r = RunAll(g);
    const MisSolution* all[] = {&r.greedy, &r.du,    &r.semie, &r.bdone,
                                &r.bdtwo,  &r.lt,    &r.nl};
    uint64_t certified = 0;
    for (const MisSolution* s : all) {
      if (s->provably_maximum) certified = std::max(certified, s->size);
    }
    if (certified == 0) continue;
    for (const MisSolution* s : all) {
      EXPECT_LE(s->size, certified) << "seed " << seed;
    }
    // Theorem 6.1 bounds only exist for the Reducing-Peeling algorithms
    // (the baselines never peel and carry no certificate machinery).
    for (const MisSolution* s : {&r.bdone, &r.bdtwo, &r.lt, &r.nl}) {
      EXPECT_GE(s->UpperBound(), certified) << "seed " << seed;
    }
    EXPECT_GE(BestExistingUpperBound(g), certified);
  }
}

TEST(DifferentialTest, QualityOrderingInAggregate) {
  // Over a batch of power-law instances, the paper's ordering must hold
  // in total: Greedy < DU <= BDOne <= LinearTime <= max(BDTwo, NearLinear).
  uint64_t greedy = 0, du = 0, bdone = 0, lt = 0, best_deg2 = 0;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = ChungLuPowerLaw(15000, 2.1, 5.0, 1000 + seed);
    AllResults r = RunAll(g);
    greedy += r.greedy.size;
    du += r.du.size;
    bdone += r.bdone.size;
    lt += r.lt.size;
    best_deg2 += std::max(r.bdtwo.size, r.nl.size);
  }
  EXPECT_LT(greedy, du);
  EXPECT_LE(du, bdone);
  EXPECT_LE(bdone, lt);
  EXPECT_LE(lt, best_deg2);
}

TEST(DifferentialTest, ArwNeverBeatsAnUpperBound) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = PowerLawWithCore(8000, 2.1, 6.0, 1500, 6.0, seed);
    MisSolution nl = RunNearLinear(g);
    ArwOptions o;
    o.time_limit_seconds = 0.3;
    o.seed = seed;
    ArwResult arw = RunArw(g, nl.in_set, o);
    EXPECT_GE(arw.size, nl.size);
    EXPECT_LE(arw.size, nl.UpperBound()) << "Theorem 6.1 violated";
    EXPECT_LE(arw.size, BestExistingUpperBound(g));
    EXPECT_TRUE(IsMaximalIndependentSet(g, arw.in_set));
  }
}

TEST(DifferentialTest, ExactSolverDominatesHeuristicsWhenProven) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = ErdosRenyiGnm(50000, 55000, seed);
    VcSolverOptions vo;
    vo.time_limit_seconds = 20;
    VcSolverResult ex = SolveExactMis(g, vo);
    if (!ex.proven_optimal) continue;
    AllResults r = RunAll(g);
    for (const MisSolution* s :
         {&r.greedy, &r.du, &r.semie, &r.bdone, &r.bdtwo, &r.lt, &r.nl}) {
      EXPECT_LE(s->size, ex.size) << "seed " << seed;
    }
    EXPECT_LE(ex.size, r.nl.UpperBound());
  }
}

TEST(DifferentialTest, PlantedCoreInstancesResistKernelization) {
  // The dataset-suite premise: a planted core keeps NearLinear from
  // certifying, while the pure power-law variant dissolves.
  Graph pure = ChungLuPowerLaw(30000, 2.1, 6.0, 5);
  Graph cored = PowerLawWithCore(30000, 2.1, 6.0, 6000, 6.0, 5);
  MisSolution pure_nl = RunNearLinear(pure);
  MisSolution cored_nl = RunNearLinear(cored);
  EXPECT_EQ(pure_nl.kernel_vertices, 0u);
  EXPECT_GT(cored_nl.kernel_vertices, 500u);
  EXPECT_GT(cored_nl.rules.peels, 0u);
  EXPECT_FALSE(cored_nl.provably_maximum);
}

}  // namespace
}  // namespace rpmis
