#include "exact/brute_force.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "mis/verify.h"
#include "test_util.h"

namespace rpmis {
namespace {

TEST(BruteForceTest, KnownAlphas) {
  EXPECT_EQ(BruteForceAlpha(PathGraph(1)), 1u);
  EXPECT_EQ(BruteForceAlpha(PathGraph(7)), 4u);    // ceil(7/2)
  EXPECT_EQ(BruteForceAlpha(CycleGraph(7)), 3u);   // floor(7/2)
  EXPECT_EQ(BruteForceAlpha(CycleGraph(8)), 4u);
  EXPECT_EQ(BruteForceAlpha(CompleteGraph(9)), 1u);
  EXPECT_EQ(BruteForceAlpha(CompleteBipartite(3, 6)), 6u);
  EXPECT_EQ(BruteForceAlpha(StarGraph(5)), 5u);
  EXPECT_EQ(BruteForceAlpha(GridGraph(3, 3)), 5u);
}

TEST(BruteForceTest, PaperFigureAlphas) {
  EXPECT_EQ(BruteForceAlpha(testing::PaperFigure1()), 5u);
  EXPECT_EQ(BruteForceAlpha(testing::PaperFigure2()), 3u);
  EXPECT_EQ(BruteForceAlpha(testing::PaperFigure5()), 4u);
}

TEST(BruteForceTest, MisIsValidAndOptimal) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = ErdosRenyiGnm(18, 36, seed);
    const uint64_t alpha = BruteForceAlpha(g);
    auto mis = BruteForceMis(g);
    EXPECT_TRUE(IsIndependentSet(g, mis));
    uint64_t size = 0;
    for (uint8_t f : mis) size += f;
    EXPECT_EQ(size, alpha);
  }
}

TEST(BruteForceTest, EdgelessGraphTakesAll) {
  Graph g = Graph::FromEdges(12, std::vector<Edge>{});
  EXPECT_EQ(BruteForceAlpha(g), 12u);
}

}  // namespace
}  // namespace rpmis
