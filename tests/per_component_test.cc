#include "mis/per_component.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "exact/brute_force.h"
#include "graph/generators.h"
#include "mis/bdone.h"
#include "mis/bdtwo.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"
#include "mis/verify.h"
#include "support/timer.h"

namespace rpmis {
namespace {

// Pins RPMIS_THREADS for a scope and restores the previous value.
class ScopedThreads {
 public:
  explicit ScopedThreads(const char* value) {
    const char* old = std::getenv("RPMIS_THREADS");
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    setenv("RPMIS_THREADS", value, 1);
  }
  ~ScopedThreads() {
    if (had_value_) {
      setenv("RPMIS_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("RPMIS_THREADS");
    }
  }

 private:
  std::string saved_;
  bool had_value_ = false;
};

void ExpectIdenticalSolutions(const MisSolution& a, const MisSolution& b) {
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.size, b.size);
  EXPECT_EQ(a.peeled, b.peeled);
  EXPECT_EQ(a.residual_peeled, b.residual_peeled);
  EXPECT_EQ(a.kernel_vertices, b.kernel_vertices);
  EXPECT_EQ(a.kernel_edges, b.kernel_edges);
  EXPECT_EQ(a.provably_maximum, b.provably_maximum);
  EXPECT_EQ(a.rules.degree_zero, b.rules.degree_zero);
  EXPECT_EQ(a.rules.degree_one, b.rules.degree_one);
  EXPECT_EQ(a.rules.degree_two_isolation, b.rules.degree_two_isolation);
  EXPECT_EQ(a.rules.degree_two_folding, b.rules.degree_two_folding);
  EXPECT_EQ(a.rules.degree_two_path, b.rules.degree_two_path);
  EXPECT_EQ(a.rules.dominance, b.rules.dominance);
  EXPECT_EQ(a.rules.one_pass_dominance, b.rules.one_pass_dominance);
  EXPECT_EQ(a.rules.lp, b.rules.lp);
  EXPECT_EQ(a.rules.twin, b.rules.twin);
  EXPECT_EQ(a.rules.unconfined, b.rules.unconfined);
  EXPECT_EQ(a.rules.peels, b.rules.peels);
}

// `count` disjoint k-cliques.
Graph ScatteredCliques(Vertex count, Vertex k) {
  GraphBuilder b(count * k);
  for (Vertex c = 0; c < count; ++c) {
    const Vertex base = c * k;
    for (Vertex i = 0; i < k; ++i) {
      for (Vertex j = i + 1; j < k; ++j) b.AddEdge(base + i, base + j);
    }
  }
  return b.Build();
}

// Cycles (pure 2-cores), paths, and small cliques mixed in one graph.
Graph TwoCoreMixture() {
  GraphBuilder b(9 + 6 + 4 + 11 + 2);
  Vertex base = 0;
  for (Vertex i = 0; i < 9; ++i) b.AddEdge(base + i, base + (i + 1) % 9);  // C9
  base += 9;
  for (Vertex i = 0; i + 1 < 6; ++i) b.AddEdge(base + i, base + i + 1);  // P6
  base += 6;
  for (Vertex i = 0; i < 4; ++i) {
    for (Vertex j = i + 1; j < 4; ++j) b.AddEdge(base + i, base + j);  // K4
  }
  base += 4;
  for (Vertex i = 0; i < 11; ++i) b.AddEdge(base + i, base + (i + 1) % 11);  // C11
  return b.Build();  // + 2 isolated vertices
}

Graph DisjointUnion() {
  // Cycle(7) + Path(5) + K5 + two isolated vertices.
  GraphBuilder b(7 + 5 + 5 + 2);
  for (Vertex i = 0; i < 7; ++i) b.AddEdge(i, (i + 1) % 7);
  for (Vertex i = 0; i + 1 < 5; ++i) b.AddEdge(7 + i, 7 + i + 1);
  for (Vertex i = 0; i < 5; ++i) {
    for (Vertex j = i + 1; j < 5; ++j) b.AddEdge(12 + i, 12 + j);
  }
  return b.Build();
}

TEST(PerComponentTest, MergesValidSolutions) {
  Graph g = DisjointUnion();
  MisSolution sol =
      RunPerComponent(g, [](const Graph& sub) { return RunLinearTime(sub); });
  EXPECT_TRUE(IsMaximalIndependentSet(g, sol.in_set));
  // alpha = 3 (C7) + 3 (P5) + 1 (K5) + 2 isolated = 9.
  EXPECT_EQ(BruteForceAlpha(g), 9u);
  EXPECT_LE(sol.size, 9u);
  EXPECT_GE(sol.UpperBound(), 9u);
}

TEST(PerComponentTest, CertificateIsConjunction) {
  // All components reducible => certified; add a K5 (peel needed) and the
  // certificate must vanish while sizes still merge.
  GraphBuilder easy(12);
  for (Vertex i = 0; i + 1 < 6; ++i) easy.AddEdge(i, i + 1);       // path
  for (Vertex i = 6; i + 1 < 12; ++i) easy.AddEdge(i, i + 1);      // path
  MisSolution certified = RunPerComponent(
      easy.Build(), [](const Graph& sub) { return RunLinearTime(sub); });
  EXPECT_TRUE(certified.provably_maximum);

  MisSolution mixed = RunPerComponent(
      DisjointUnion(), [](const Graph& sub) { return RunBDOne(sub); });
  EXPECT_FALSE(mixed.provably_maximum);  // the K5 component peels
  EXPECT_GT(mixed.rules.peels, 0u);
}

TEST(PerComponentTest, MatchesWholeGraphRunOnRandomForest) {
  // Forests: both whole-graph and per-component runs are exact, so sizes
  // agree; counters add up consistently.
  Graph g = ErdosRenyiGnm(4000, 2000, /*seed=*/3);  // subcritical: a forest-ish
  MisSolution whole = RunNearLinear(g);
  MisSolution split =
      RunPerComponent(g, [](const Graph& sub) { return RunNearLinear(sub); });
  EXPECT_TRUE(IsMaximalIndependentSet(g, split.in_set));
  if (whole.provably_maximum && split.provably_maximum) {
    EXPECT_EQ(whole.size, split.size);
  }
}

TEST(PerComponentTest, EmptyGraph) {
  Graph g = Graph::FromEdges(5, std::vector<Edge>{});
  MisSolution sol =
      RunPerComponent(g, [](const Graph& sub) { return RunLinearTime(sub); });
  EXPECT_EQ(sol.size, 5u);
  EXPECT_TRUE(sol.provably_maximum);
}

TEST(PerComponentTest, ManyTinyComponentsRunInLinearTime) {
  // Regression for the quadratic extraction: 100k two-vertex components.
  // The old path built a size-n renaming array per component (~2e10 writes
  // here — minutes); the O(n + m) path is a few tens of milliseconds. The
  // bound is deliberately loose for slow CI machines while staying orders
  // of magnitude below the quadratic regime.
  const Vertex pairs = 100000;
  std::vector<Edge> edges;
  edges.reserve(pairs);
  for (Vertex i = 0; i < pairs; ++i) edges.emplace_back(2 * i, 2 * i + 1);
  Graph g = Graph::FromEdges(2 * pairs, edges);

  Timer t;
  MisSolution sol =
      RunPerComponent(g, [](const Graph& sub) { return RunLinearTime(sub); });
  EXPECT_LT(t.Seconds(), 10.0);
  EXPECT_EQ(sol.size, pairs);  // one endpoint per edge
  EXPECT_TRUE(sol.provably_maximum);
  EXPECT_TRUE(IsMaximalIndependentSet(g, sol.in_set));
}

TEST(PerComponentParallelTest, ByteIdenticalToSerialAcrossThreadCounts) {
  const struct {
    const char* name;
    Graph graph;
  } instances[] = {
      {"forest", ErdosRenyiGnm(4000, 2000, /*seed=*/3)},
      {"cliques", ScatteredCliques(40, 5)},
      {"two-core-mixture", TwoCoreMixture()},
      {"disjoint-union", DisjointUnion()},
  };
  const std::function<MisSolution(const Graph&)> algos[] = {
      [](const Graph& sub) { return RunBDOne(sub); },
      [](const Graph& sub) { return RunBDTwo(sub); },
      [](const Graph& sub) { return RunLinearTime(sub); },
      [](const Graph& sub) { return RunNearLinear(sub); },
  };
  for (const auto& inst : instances) {
    SCOPED_TRACE(inst.name);
    for (size_t a = 0; a < std::size(algos); ++a) {
      SCOPED_TRACE("algo " + std::to_string(a));
      const MisSolution serial = RunPerComponent(inst.graph, algos[a]);
      EXPECT_TRUE(IsMaximalIndependentSet(inst.graph, serial.in_set));
      for (const char* threads : {"1", "2", "8"}) {
        SCOPED_TRACE(std::string("threads ") + threads);
        ScopedThreads scoped(threads);
        const MisSolution parallel =
            RunPerComponentParallel(inst.graph, algos[a]);
        ExpectIdenticalSolutions(serial, parallel);
      }
    }
  }
}

TEST(PerComponentParallelTest, AgreesWithWholeGraphSolveWhenCertified) {
  // Per-component and whole-graph runs both certify on reducible inputs;
  // the certified sizes must agree (both are alpha).
  const Graph graphs[] = {ErdosRenyiGnm(4000, 2000, /*seed=*/3),
                          TwoCoreMixture()};
  for (const Graph& g : graphs) {
    const MisSolution whole = RunNearLinear(g);
    ScopedThreads scoped("8");
    const MisSolution split = RunPerComponentParallel(
        g, [](const Graph& sub) { return RunNearLinear(sub); });
    EXPECT_TRUE(IsMaximalIndependentSet(g, split.in_set));
    EXPECT_EQ(whole.provably_maximum, split.provably_maximum);
    if (whole.provably_maximum) {
      EXPECT_EQ(whole.size, split.size);
    }
  }
}

TEST(PerComponentParallelTest, SolverEntryPointsMatchSerialRunner) {
  Graph g = DisjointUnion();
  ScopedThreads scoped("8");
  const PerComponentOptions parallel{.parallel = true};
  ExpectIdenticalSolutions(RunBDOnePerComponent(g),
                           RunBDOnePerComponent(g, parallel));
  ExpectIdenticalSolutions(RunBDTwoPerComponent(g),
                           RunBDTwoPerComponent(g, parallel));
  ExpectIdenticalSolutions(RunLinearTimePerComponent(g),
                           RunLinearTimePerComponent(g, parallel));
  ExpectIdenticalSolutions(RunNearLinearPerComponent(g),
                           RunNearLinearPerComponent(g, parallel));
}

TEST(PerComponentParallelTest, PropagatesLowestComponentError) {
  // Components in id order (= order of smallest vertex): an edge (2
  // vertices), a P4 (4 vertices), a triangle (3 vertices). The algorithm
  // fails on every component with >= 3 vertices; the error surfaced must
  // be the lowest component id's (the P4), whatever the schedule — match
  // the ingest runner's deterministic first-error contract.
  GraphBuilder b(9);
  b.AddEdge(0, 1);
  for (Vertex i = 2; i < 5; ++i) b.AddEdge(i, i + 1);
  b.AddEdge(6, 7);
  b.AddEdge(7, 8);
  b.AddEdge(6, 8);
  Graph g = b.Build();

  ScopedThreads scoped("8");
  for (int repeat = 0; repeat < 20; ++repeat) {
    try {
      RunPerComponentParallel(g, [](const Graph& sub) -> MisSolution {
        if (sub.NumVertices() >= 3) {
          throw std::runtime_error("failed on component of size " +
                                   std::to_string(sub.NumVertices()));
        }
        return RunLinearTime(sub);
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "failed on component of size 4");
    }
  }
}

}  // namespace
}  // namespace rpmis
