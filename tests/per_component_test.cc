#include "mis/per_component.h"

#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "graph/generators.h"
#include "mis/bdone.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"
#include "mis/verify.h"

namespace rpmis {
namespace {

Graph DisjointUnion() {
  // Cycle(7) + Path(5) + K5 + two isolated vertices.
  GraphBuilder b(7 + 5 + 5 + 2);
  for (Vertex i = 0; i < 7; ++i) b.AddEdge(i, (i + 1) % 7);
  for (Vertex i = 0; i + 1 < 5; ++i) b.AddEdge(7 + i, 7 + i + 1);
  for (Vertex i = 0; i < 5; ++i) {
    for (Vertex j = i + 1; j < 5; ++j) b.AddEdge(12 + i, 12 + j);
  }
  return b.Build();
}

TEST(PerComponentTest, MergesValidSolutions) {
  Graph g = DisjointUnion();
  MisSolution sol =
      RunPerComponent(g, [](const Graph& sub) { return RunLinearTime(sub); });
  EXPECT_TRUE(IsMaximalIndependentSet(g, sol.in_set));
  // alpha = 3 (C7) + 3 (P5) + 1 (K5) + 2 isolated = 9.
  EXPECT_EQ(BruteForceAlpha(g), 9u);
  EXPECT_LE(sol.size, 9u);
  EXPECT_GE(sol.UpperBound(), 9u);
}

TEST(PerComponentTest, CertificateIsConjunction) {
  // All components reducible => certified; add a K5 (peel needed) and the
  // certificate must vanish while sizes still merge.
  GraphBuilder easy(12);
  for (Vertex i = 0; i + 1 < 6; ++i) easy.AddEdge(i, i + 1);       // path
  for (Vertex i = 6; i + 1 < 12; ++i) easy.AddEdge(i, i + 1);      // path
  MisSolution certified = RunPerComponent(
      easy.Build(), [](const Graph& sub) { return RunLinearTime(sub); });
  EXPECT_TRUE(certified.provably_maximum);

  MisSolution mixed = RunPerComponent(
      DisjointUnion(), [](const Graph& sub) { return RunBDOne(sub); });
  EXPECT_FALSE(mixed.provably_maximum);  // the K5 component peels
  EXPECT_GT(mixed.rules.peels, 0u);
}

TEST(PerComponentTest, MatchesWholeGraphRunOnRandomForest) {
  // Forests: both whole-graph and per-component runs are exact, so sizes
  // agree; counters add up consistently.
  Graph g = ErdosRenyiGnm(4000, 2000, /*seed=*/3);  // subcritical: a forest-ish
  MisSolution whole = RunNearLinear(g);
  MisSolution split =
      RunPerComponent(g, [](const Graph& sub) { return RunNearLinear(sub); });
  EXPECT_TRUE(IsMaximalIndependentSet(g, split.in_set));
  if (whole.provably_maximum && split.provably_maximum) {
    EXPECT_EQ(whole.size, split.size);
  }
}

TEST(PerComponentTest, EmptyGraph) {
  Graph g = Graph::FromEdges(5, std::vector<Edge>{});
  MisSolution sol =
      RunPerComponent(g, [](const Graph& sub) { return RunLinearTime(sub); });
  EXPECT_EQ(sol.size, 5u);
  EXPECT_TRUE(sol.provably_maximum);
}

}  // namespace
}  // namespace rpmis
