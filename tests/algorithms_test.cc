#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.h"

namespace rpmis {
namespace {

TEST(ConnectedComponentsTest, CountsComponents) {
  // Two triangles plus an isolated vertex.
  Graph g = Graph::FromEdges(
      7, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  ComponentInfo cc = ConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 3u);
  EXPECT_EQ(cc.component_id[0], cc.component_id[2]);
  EXPECT_NE(cc.component_id[0], cc.component_id[3]);
  EXPECT_EQ(cc.members.size(), 7u);
  EXPECT_EQ(cc.offsets.back(), 7u);
  // Members of each component carry that component's id.
  for (Vertex c = 0; c < cc.num_components; ++c) {
    for (uint64_t i = cc.offsets[c]; i < cc.offsets[c + 1]; ++i) {
      EXPECT_EQ(cc.component_id[cc.members[i]], c);
    }
  }
}

TEST(ConnectedComponentsTest, SingleComponent) {
  Graph g = CycleGraph(10);
  EXPECT_EQ(ConnectedComponents(g).num_components, 1u);
}

TEST(ConnectedComponentsTest, MembersAreSortedWithinEachComponent) {
  // The header contract ComponentExtractor relies on: each Members(c)
  // slice is in increasing vertex id order.
  Graph g = ErdosRenyiGnm(500, 260, /*seed=*/7);  // subcritical, many comps
  ComponentInfo cc = ConnectedComponents(g);
  EXPECT_GT(cc.num_components, 1u);
  for (Vertex c = 0; c < cc.num_components; ++c) {
    const auto members = cc.Members(c);
    for (size_t i = 1; i < members.size(); ++i) {
      EXPECT_LT(members[i - 1], members[i]);
    }
  }
}

TEST(ComponentExtractorTest, MatchesInducedSubgraph) {
  Graph g = ErdosRenyiGnm(300, 200, /*seed=*/11);
  const ComponentExtractor extractor(g);
  uint64_t total_vertices = 0, total_edges = 0;
  for (Vertex c = 0; c < extractor.NumComponents(); ++c) {
    const auto members = extractor.Members(c);
    const Graph sub = extractor.Extract(c);
    ASSERT_EQ(sub.NumVertices(), members.size());
    // Same graph as the generic (slow-path) InducedSubgraph.
    std::vector<Vertex> old_to_new;
    const Graph reference = g.InducedSubgraph(members, &old_to_new);
    EXPECT_EQ(sub.NumEdges(), reference.NumEdges());
    EXPECT_EQ(sub.CollectEdges(), reference.CollectEdges());
    // Local ids are slice positions.
    for (size_t i = 0; i < members.size(); ++i) {
      EXPECT_EQ(extractor.LocalId(members[i]), i);
      EXPECT_EQ(old_to_new[members[i]], i);
    }
    total_vertices += members.size();
    total_edges += sub.NumEdges();
  }
  EXPECT_EQ(total_vertices, g.NumVertices());
  EXPECT_EQ(total_edges, g.NumEdges());
}

TEST(ComponentExtractorTest, EmptyAndEdgelessGraphs) {
  const ComponentExtractor none(Graph{});
  EXPECT_EQ(none.NumComponents(), 0u);
  Graph isolated = Graph::FromEdges(3, std::vector<Edge>{});
  const ComponentExtractor three(isolated);
  ASSERT_EQ(three.NumComponents(), 3u);
  for (Vertex c = 0; c < 3; ++c) {
    const Graph sub = three.Extract(c);
    EXPECT_EQ(sub.NumVertices(), 1u);
    EXPECT_EQ(sub.NumEdges(), 0u);
  }
}

TEST(EdgeIdLimitTest, OverflowIsDiagnosable) {
  // 2^32-1 directed edges no longer fit 32-bit ids; the error must name
  // the offending count (the limit itself is unreachable with test-sized
  // graphs, hence the exposed checker).
  EXPECT_NO_THROW(CheckEdgeIdsFit32Bits((1ull << 32) - 2));
  try {
    CheckEdgeIdsFit32Bits(9876543210ull);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("9876543210"), std::string::npos) << what;
    EXPECT_NE(what.find("32-bit"), std::string::npos) << what;
  }
}

TEST(ReverseEdgeIndexTest, MirrorsAreInvolution) {
  Graph g = ErdosRenyiGnm(40, 120, /*seed=*/5);
  auto rev = ReverseEdgeIndex(g);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (uint64_t e = g.EdgeBegin(v); e < g.EdgeEnd(v); ++e) {
      const uint32_t r = rev[e];
      EXPECT_EQ(rev[r], e);
      EXPECT_EQ(g.EdgeTarget(r), v);
    }
  }
}

TEST(TriangleCountsTest, TriangleGraph) {
  Graph g = CompleteGraph(3);
  auto delta = EdgeTriangleCounts(g);
  for (uint32_t d : delta) EXPECT_EQ(d, 1u);
  EXPECT_EQ(CountTriangles(g), 1u);
}

TEST(TriangleCountsTest, CompleteGraphCounts) {
  // K5: every edge is in 3 triangles; total C(5,3) = 10.
  Graph g = CompleteGraph(5);
  auto delta = EdgeTriangleCounts(g);
  for (uint32_t d : delta) EXPECT_EQ(d, 3u);
  EXPECT_EQ(CountTriangles(g), 10u);
}

TEST(TriangleCountsTest, TriangleFreeGraph) {
  Graph g = CompleteBipartite(4, 5);
  EXPECT_EQ(CountTriangles(g), 0u);
  Graph p = PathGraph(20);
  EXPECT_EQ(CountTriangles(p), 0u);
}

TEST(TriangleCountsTest, MatchesBruteForceOnRandomGraph) {
  Graph g = ErdosRenyiGnm(30, 120, /*seed=*/11);
  auto delta = EdgeTriangleCounts(g);
  for (Vertex u = 0; u < g.NumVertices(); ++u) {
    auto un = g.Neighbors(u);
    for (size_t i = 0; i < un.size(); ++i) {
      const Vertex v = un[i];
      uint32_t expect = 0;
      for (Vertex w : un) {
        if (w != v && g.HasEdge(w, v)) ++expect;
      }
      EXPECT_EQ(delta[g.EdgeBegin(u) + i], expect) << u << "-" << v;
    }
  }
}

TEST(CoreDecompositionTest, CliqueCores) {
  Graph g = CompleteGraph(6);
  CoreDecomposition cd = ComputeCores(g);
  EXPECT_EQ(cd.degeneracy, 5u);
  for (uint32_t c : cd.core) EXPECT_EQ(c, 5u);
}

TEST(CoreDecompositionTest, TreeIsOneDegenerate) {
  Graph g = BinaryTree(31);
  CoreDecomposition cd = ComputeCores(g);
  EXPECT_EQ(cd.degeneracy, 1u);
  EXPECT_EQ(cd.order.size(), 31u);
}

TEST(CoreDecompositionTest, MixedCores) {
  // Triangle (2-core) with a pendant path (1-core).
  Graph g = Graph::FromEdges(5, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  CoreDecomposition cd = ComputeCores(g);
  EXPECT_EQ(cd.core[0], 2u);
  EXPECT_EQ(cd.core[1], 2u);
  EXPECT_EQ(cd.core[2], 2u);
  EXPECT_EQ(cd.core[3], 1u);
  EXPECT_EQ(cd.core[4], 1u);
}

TEST(DegreeStatsTest, Basic) {
  Graph g = StarGraph(4);
  DegreeStats s = ComputeDegreeStats(g);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 8.0 / 5.0);
  EXPECT_EQ(s.num_degree_le2, 4u);
}

TEST(DegreeHistogramTest, CountsMatch) {
  Graph g = StarGraph(5);
  auto h = DegreeHistogram(g);
  ASSERT_EQ(h.size(), 6u);
  EXPECT_EQ(h[1], 5u);
  EXPECT_EQ(h[5], 1u);
  uint64_t total = 0;
  for (uint64_t c : h) total += c;
  EXPECT_EQ(total, g.NumVertices());
}

TEST(ClusteringTest, Extremes) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(CompleteGraph(6)), 1.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(CompleteBipartite(3, 4)), 0.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(PathGraph(5)), 0.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(Graph()), 0.0);
}

TEST(ClusteringTest, TriangleWithTail) {
  // Triangle + pendant: 1 triangle, wedges = 1+1+3+0 = 5 -> 3/5.
  Graph g = Graph::FromEdges(4, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 3.0 / 5.0);
}

TEST(ClusteringTest, PlantedCoreAddsTriangles) {
  // The global coefficient is dominated by hub wedges, so compare raw
  // triangle counts: the planted cliques must add a visible surplus.
  Graph pure = ChungLuPowerLaw(20000, 2.1, 6.0, 3);
  Graph cored = PowerLawWithCore(20000, 2.1, 6.0, 4000, 6.0, 3);
  EXPECT_GT(CountTriangles(cored), CountTriangles(pure) + 500);
}

}  // namespace
}  // namespace rpmis
