#include "dynamic/engine.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.h"
#include "mis/linear_time.h"
#include "mis/verify.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace rpmis {
namespace {

// Audits the engine after an update and returns the failure reason.
::testing::AssertionResult Sound(const DynamicMisEngine& engine) {
  std::string why;
  if (engine.CheckInvariants(&why)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << why;
}

// From-scratch solve of the engine's current alive-induced graph.
MisSolution ScratchSolve(const DynamicMisEngine& engine) {
  std::vector<Vertex> alive;
  for (Vertex v = 0; v < engine.NumVertices(); ++v) {
    if (engine.Exists(v)) alive.push_back(v);
  }
  return RunLinearTime(engine.CurrentGraph().InducedSubgraph(alive));
}

TEST(DynamicEngineTest, AdoptsInitialSolve) {
  const Graph g = rpmis::testing::PaperFigure5();
  DynamicMisEngine engine(g);
  const MisSolution scratch = RunLinearTime(g);
  EXPECT_EQ(engine.Size(), scratch.size);
  EXPECT_EQ(engine.UpperBound(), scratch.UpperBound());
  EXPECT_TRUE(Sound(engine));
  EXPECT_TRUE(VerifyMis(g, engine.Selector()));
}

TEST(DynamicEngineTest, InsertEdgeBetweenSetMembersEvictsOne) {
  // Path 0-1-2: LinearTime selects {0, 2}. Inserting (0, 2) must evict
  // one endpoint and keep a valid maximal set.
  const Graph g = Graph::FromEdges(3, std::vector<Edge>{{0, 1}, {1, 2}});
  DynamicMisEngine engine(g);
  ASSERT_TRUE(engine.InSet(0));
  ASSERT_TRUE(engine.InSet(2));
  const UpdateOutcome out = engine.Apply(GraphUpdate::InsertEdge(0, 2));
  EXPECT_TRUE(Sound(engine));
  EXPECT_EQ(engine.stats().evictions, 1u);
  EXPECT_EQ(out.size_delta, -1);
  EXPECT_EQ(engine.Size(), 1u);
  EXPECT_NE(engine.InSet(0), engine.InSet(2));
}

TEST(DynamicEngineTest, InsertEdgeBetweenOutsidersIsCheap) {
  // Star around 1 plus 3-4: {0, 2} covers the triangle's... here
  // {0, 2, 3} or similar; inserting an edge between two OUT vertices
  // never changes the set.
  const Graph g =
      Graph::FromEdges(5, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  DynamicMisEngine engine(g);
  Vertex a = kInvalidVertex, b = kInvalidVertex;
  for (Vertex v = 0; v < 5; ++v) {
    if (!engine.InSet(v)) (a == kInvalidVertex ? a : b) = v;
  }
  ASSERT_NE(b, kInvalidVertex);
  const uint64_t before = engine.Size();
  const UpdateOutcome out = engine.Apply(GraphUpdate::InsertEdge(a, b));
  EXPECT_TRUE(Sound(engine));
  EXPECT_EQ(out.cone, 0u);
  EXPECT_EQ(engine.Size(), before);
}

TEST(DynamicEngineTest, DeleteEdgeFreesAndRepairs) {
  // Path 0-1-2-3: set {0, 2} or {0, 3}... LinearTime picks a maximal set;
  // deleting the edge that blocks an OUT vertex must re-include it.
  const Graph g = Graph::FromEdges(2, std::vector<Edge>{{0, 1}});
  DynamicMisEngine engine(g);
  ASSERT_EQ(engine.Size(), 1u);
  engine.Apply(GraphUpdate::DeleteEdge(0, 1));
  EXPECT_TRUE(Sound(engine));
  EXPECT_EQ(engine.Size(), 2u);  // both isolated now
  EXPECT_GE(engine.UpperBound(), 2u);
}

TEST(DynamicEngineTest, InsertVertexJoinsWhenFree) {
  const Graph g = Graph::FromEdges(2, std::vector<Edge>{{0, 1}});
  DynamicMisEngine engine(g);
  // New vertex adjacent to both: blocked iff one endpoint is in the set.
  engine.Apply(GraphUpdate::InsertVertex({0, 1}));
  EXPECT_TRUE(Sound(engine));
  EXPECT_EQ(engine.NumVertices(), 3u);
  EXPECT_FALSE(engine.InSet(2));
  // An isolated insertion always joins.
  engine.Apply(GraphUpdate::InsertVertex({}));
  EXPECT_TRUE(Sound(engine));
  EXPECT_TRUE(engine.InSet(3));
}

TEST(DynamicEngineTest, DeleteVertexRepairsAroundTheHole) {
  // Star: center 0 with leaves 1..4; the set is the leaves. Deleting a
  // leaf leaves the rest; deleting the center after that is a no-op for
  // the set (it was OUT).
  const Graph g = Graph::FromEdges(
      5, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  DynamicMisEngine engine(g);
  ASSERT_EQ(engine.Size(), 4u);
  engine.Apply(GraphUpdate::DeleteVertex(1));
  EXPECT_TRUE(Sound(engine));
  EXPECT_EQ(engine.Size(), 3u);
  EXPECT_FALSE(engine.Exists(1));
  // Deleting the blocked center frees nobody (leaves are all IN).
  engine.Apply(GraphUpdate::DeleteVertex(0));
  EXPECT_TRUE(Sound(engine));
  EXPECT_EQ(engine.Size(), 3u);
}

TEST(DynamicEngineTest, DeleteSetMemberFreesItsCone) {
  // Star again: deleting the center when it IS the set (single edge 0-1
  // graph where 0 in set) re-includes the freed neighbour.
  const Graph g = Graph::FromEdges(2, std::vector<Edge>{{0, 1}});
  DynamicMisEngine engine(g);
  const Vertex member = engine.InSet(0) ? 0 : 1;
  const Vertex other = member == 0 ? 1 : 0;
  engine.Apply(GraphUpdate::DeleteVertex(member));
  EXPECT_TRUE(Sound(engine));
  EXPECT_TRUE(engine.InSet(other));
  EXPECT_EQ(engine.Size(), 1u);
}

TEST(DynamicEngineTest, NoopsAreCountedNotApplied) {
  const Graph g = Graph::FromEdges(3, std::vector<Edge>{{0, 1}});
  DynamicMisEngine engine(g);
  engine.Apply(GraphUpdate::InsertEdge(0, 1));   // already present
  engine.Apply(GraphUpdate::DeleteEdge(0, 2));   // absent
  engine.Apply(GraphUpdate::DeleteVertex(2));
  engine.Apply(GraphUpdate::DeleteVertex(2));    // already dead
  EXPECT_EQ(engine.stats().noops, 3u);
  EXPECT_TRUE(Sound(engine));
}

TEST(DynamicEngineTest, OutOfRangeIdsThrow) {
  const Graph g = Graph::FromEdges(3, std::vector<Edge>{{0, 1}});
  DynamicMisEngine engine(g);
  EXPECT_THROW(engine.Apply(GraphUpdate::InsertEdge(0, 3)), std::out_of_range);
  EXPECT_THROW(engine.Apply(GraphUpdate::DeleteEdge(9, 0)), std::out_of_range);
  EXPECT_THROW(engine.Apply(GraphUpdate::DeleteVertex(3)), std::out_of_range);
  EXPECT_THROW(engine.Apply(GraphUpdate::InsertVertex({5})), std::out_of_range);
  EXPECT_THROW(engine.Apply(GraphUpdate::InsertEdge(1, 1)),
               std::invalid_argument);
  EXPECT_TRUE(Sound(engine));
}

TEST(DynamicEngineTest, InsertEdgeRevivesDeadEndpoint) {
  const Graph g = Graph::FromEdges(3, std::vector<Edge>{{0, 1}, {1, 2}});
  DynamicMisEngine engine(g);
  engine.Apply(GraphUpdate::DeleteVertex(0));
  ASSERT_FALSE(engine.Exists(0));
  engine.Apply(GraphUpdate::InsertEdge(0, 2));
  EXPECT_TRUE(engine.Exists(0));
  EXPECT_TRUE(Sound(engine));
}

TEST(DynamicEngineTest, ComponentFallbackOnHugeCone) {
  // A tiny cone budget forces the component path: deleting the center of
  // a big star frees every leaf at once.
  const Vertex leaves = 64;
  std::vector<Edge> edges;
  for (Vertex i = 1; i <= leaves; ++i) edges.emplace_back(0, i);
  const Graph g = Graph::FromEdges(leaves + 1, edges);
  DynamicPolicy policy;
  policy.min_cone = 4;
  policy.cone_fraction = 0.0;
  DynamicMisEngine engine(g, policy);
  // The set is the leaves; delete them until the center flips in, then
  // delete the center to free the remaining leaves in one shot.
  ASSERT_EQ(engine.Size(), leaves);
  for (Vertex i = 1; i <= leaves; ++i) {
    engine.Apply(GraphUpdate::DeleteEdge(0, i));
    ASSERT_TRUE(Sound(engine));
  }
  EXPECT_GT(engine.stats().component_fallbacks +
                engine.stats().included_by_reduction,
            0u);
  EXPECT_EQ(engine.Size(), leaves + 1);  // all isolated now
}

TEST(DynamicEngineTest, ForceResolveTightensTheBound) {
  const Graph g = ErdosRenyiGnp(300, 0.02, /*seed=*/11);
  DynamicMisEngine engine(g);
  const auto stream = RandomUpdateStream(g, 200, /*seed=*/4);
  engine.ApplyUpdates(stream);
  ASSERT_TRUE(Sound(engine));
  const uint64_t resolves_before = engine.stats().full_resolves;
  engine.ForceResolve();
  EXPECT_EQ(engine.stats().full_resolves, resolves_before + 1);
  EXPECT_TRUE(Sound(engine));
  // Right after a re-solve: scratch <= α <= maintained upper bound, and
  // the gap to the bound is the solver's own residual.
  const MisSolution scratch = ScratchSolve(engine);
  EXPECT_GE(engine.UpperBound(), scratch.size);
}

TEST(DynamicEngineTest, LatencyHistogramAndMetrics) {
  const Graph g = ErdosRenyiGnp(200, 0.03, /*seed=*/8);
  DynamicMisEngine engine(g);
  engine.ApplyUpdates(RandomUpdateStream(g, 50, /*seed=*/2));
  EXPECT_EQ(engine.stats().latency.Count(), 50u);
  EXPECT_GT(engine.stats().latency.SumSeconds(), 0.0);

  obs::MetricsRegistry metrics;
  engine.PublishMetrics(metrics);
  EXPECT_EQ(metrics.Counter("dynamic.update_latency.count"), 50u);
  const uint64_t updates = metrics.Counter("dynamic.updates.insert_edge") +
                           metrics.Counter("dynamic.updates.delete_edge") +
                           metrics.Counter("dynamic.updates.insert_vertex") +
                           metrics.Counter("dynamic.updates.delete_vertex");
  EXPECT_EQ(updates, 50u);
  EXPECT_EQ(metrics.Gauge("dynamic.set.size"),
            static_cast<double>(engine.Size()));
}

TEST(DynamicEngineTest, EvictionPrefersPeeledProvenance) {
  // Two triangles joined at 2-3 force LinearTime to peel; whichever
  // endpoints an inserted in-set edge hits, the engine must stay sound
  // and prefer undoing peel decisions (observable as evictions without
  // quality collapse on repeat).
  const Graph g = ErdosRenyiGnp(400, 0.05, /*seed=*/21);
  DynamicMisEngine engine(g);
  const auto stream = RandomUpdateStream(g, 300, /*seed=*/13);
  engine.ApplyUpdates(stream);
  EXPECT_TRUE(Sound(engine));
  EXPECT_GE(static_cast<double>(engine.Size()),
            0.95 * static_cast<double>(ScratchSolve(engine).size));
}

}  // namespace
}  // namespace rpmis
