// Randomized differential acceptance tests for the dynamic-update engine
// (ISSUE 5): over >= 10 random 1k-update streams on G(n,p) and Chung-Lu
// graphs, the maintained set must be independent and maximal at EVERY
// step and within 1% of a from-scratch LinearTime solve. The full-check
// harness lives in dynamic/differential.h; scripts/check_dynamic.sh
// re-runs this binary at RPMIS_THREADS=8 and the ASan suite covers it
// via scripts/check_sanitize.sh.
#include "dynamic/differential.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace rpmis {
namespace {

DifferentialOptions AcceptanceOptions() {
  DifferentialOptions options;
  options.check_every = 1;
  options.min_ratio = 0.99;
  return options;
}

void RunAcceptanceStream(const Graph& g, uint64_t stream_seed,
                         const DifferentialOptions& options) {
  const auto updates = RandomUpdateStream(g, 1000, stream_seed);
  const DifferentialReport report =
      RunDifferentialStream(g, updates, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.updates_applied, 1000u);
  EXPECT_EQ(report.steps_checked, 1000u);
}

TEST(DynamicDifferentialTest, GnpStreams) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = ErdosRenyiGnp(2000, 2.0 / 2000.0, /*seed=*/seed);
    RunAcceptanceStream(g, /*stream_seed=*/100 + seed, AcceptanceOptions());
  }
}

TEST(DynamicDifferentialTest, ChungLuStreams) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = ChungLuPowerLaw(2000, 3.0, 4.0, /*seed=*/seed);
    RunAcceptanceStream(g, /*stream_seed=*/200 + seed, AcceptanceOptions());
  }
}

TEST(DynamicDifferentialTest, EdgeHeavyStream) {
  const Graph g = ErdosRenyiGnp(1500, 3.0 / 1500.0, /*seed=*/42);
  StreamOptions stream;
  stream.insert_vertex_weight = 0.0;
  stream.delete_vertex_weight = 0.0;
  const auto updates = RandomUpdateStream(g, 1000, /*seed=*/300, stream);
  const DifferentialReport report =
      RunDifferentialStream(g, updates, AcceptanceOptions());
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// The parallel-resolve configuration must maintain the same guarantees;
// an aggressive quality gate makes full re-solves actually fire, which
// is what scripts/check_dynamic.sh runs under RPMIS_THREADS=8 (and the
// TSan component script exercises for races).
TEST(DynamicDifferentialTest, ParallelResolveStream) {
  const Graph g = ChungLuPowerLaw(2000, 3.5, 5.0, /*seed=*/9);
  DifferentialOptions options = AcceptanceOptions();
  options.policy.parallel_resolve = true;
  options.policy.min_slack = 2;
  options.policy.max_gap = 0.0;
  options.policy.min_cone = 32;
  options.policy.cone_fraction = 0.0;
  const auto updates = RandomUpdateStream(g, 1000, /*seed=*/400);
  const DifferentialReport report = RunDifferentialStream(g, updates, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Tiny graphs hit the degenerate corners (empty graphs, single vertices,
// everything deleted then re-inserted). A percentage bound is meaningless
// when the optimum is 3 vertices, so this stream forces aggressive full
// re-solves and judges quality by absolute gap instead: never more than
// one vertex behind from-scratch.
TEST(DynamicDifferentialTest, TinyGraphTortureStream) {
  const Graph g = ErdosRenyiGnp(12, 0.3, /*seed=*/3);
  StreamOptions stream;
  stream.insert_vertex_weight = 1.0;
  stream.delete_vertex_weight = 1.0;
  const auto updates = RandomUpdateStream(g, 500, /*seed=*/77, stream);
  DifferentialOptions options = AcceptanceOptions();
  options.abs_slack = 1;
  options.policy.min_slack = 0;
  options.policy.max_gap = 0.0;
  const DifferentialReport report =
      RunDifferentialStream(g, updates, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace rpmis
