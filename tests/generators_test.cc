#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"

namespace rpmis {
namespace {

TEST(GeneratorsTest, DeterministicFixtures) {
  EXPECT_EQ(PathGraph(10).NumEdges(), 9u);
  EXPECT_EQ(CycleGraph(10).NumEdges(), 10u);
  EXPECT_EQ(CompleteGraph(6).NumEdges(), 15u);
  EXPECT_EQ(CompleteBipartite(3, 4).NumEdges(), 12u);
  EXPECT_EQ(StarGraph(7).NumEdges(), 7u);
  EXPECT_EQ(GridGraph(4, 5).NumEdges(), 4u * 4 + 5u * 3);
  EXPECT_EQ(BinaryTree(15).NumEdges(), 14u);
}

TEST(GeneratorsTest, GnmExactEdgeCount) {
  Graph g = ErdosRenyiGnm(100, 250, /*seed=*/1);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 250u);
}

TEST(GeneratorsTest, GnmIsDeterministicPerSeed) {
  Graph a = ErdosRenyiGnm(50, 100, 7);
  Graph b = ErdosRenyiGnm(50, 100, 7);
  Graph c = ErdosRenyiGnm(50, 100, 8);
  EXPECT_EQ(a.CollectEdges(), b.CollectEdges());
  EXPECT_NE(a.CollectEdges(), c.CollectEdges());
}

TEST(GeneratorsTest, GnmCapsAtCompleteGraph) {
  Graph g = ErdosRenyiGnm(5, 1000, 1);
  EXPECT_EQ(g.NumEdges(), 10u);
}

TEST(GeneratorsTest, GnpExpectedDensity) {
  const Vertex n = 400;
  const double p = 0.01;
  Graph g = ErdosRenyiGnp(n, p, /*seed=*/3);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_GT(g.NumEdges(), expected * 0.7);
  EXPECT_LT(g.NumEdges(), expected * 1.3);
}

TEST(GeneratorsTest, GnpEdgesAreValid) {
  Graph g = ErdosRenyiGnp(50, 0.05, 9);
  for (const auto& [u, v] : g.CollectEdges()) {
    EXPECT_LT(u, v);
    EXPECT_LT(v, 50u);
  }
}

TEST(GeneratorsTest, ChungLuHitsTargetAverageDegree) {
  Graph g = ChungLuPowerLaw(20000, /*beta=*/2.2, /*avg_degree=*/8.0, /*seed=*/4);
  EXPECT_GT(g.AverageDegree(), 5.0);
  EXPECT_LT(g.AverageDegree(), 11.0);
}

TEST(GeneratorsTest, ChungLuIsPowerLawShaped) {
  // A power-law graph has many low-degree vertices and a heavy tail: the
  // share of degree-<=2 vertices should dominate, and the max degree
  // should far exceed the average.
  Graph g = ChungLuPowerLaw(20000, 2.0, 6.0, /*seed=*/5);
  DegreeStats s = ComputeDegreeStats(g);
  EXPECT_GT(static_cast<double>(s.num_degree_le2), 0.2 * g.NumVertices());
  EXPECT_GT(s.max_degree, 10 * s.avg_degree);
}

TEST(GeneratorsTest, BarabasiAlbertDegrees) {
  Graph g = BarabasiAlbert(2000, 3, /*seed=*/6);
  EXPECT_EQ(g.NumVertices(), 2000u);
  // Each of the n - m0 - 1 arrivals adds m edges (some may collapse).
  EXPECT_GT(g.NumEdges(), 5000u);
  EXPECT_LE(g.NumEdges(), 3u * 2000u);
  // Preferential attachment yields a hub far above the average degree.
  EXPECT_GT(g.MaxDegree(), 30u);
}

TEST(GeneratorsTest, RMatShape) {
  Graph g = RMat(12, 40000, 0.57, 0.19, 0.19, /*seed=*/8);
  EXPECT_EQ(g.NumVertices(), 4096u);
  EXPECT_GT(g.NumEdges(), 20000u);  // duplicates collapse
  EXPECT_GT(g.MaxDegree(), 5 * g.AverageDegree());
}

TEST(GeneratorsTest, Theorem31GadgetShape) {
  // From the Theorem 3.1 proof: with third-layer width k the gadget has
  // 2 + 2k + k + (k-1) vertices and (17/2)k - 3 edges.
  for (Vertex k : {4u, 8u, 16u, 64u}) {
    Graph g = Theorem31Gadget(k);
    EXPECT_EQ(g.NumVertices(), 4 * k + 1) << k;
    EXPECT_EQ(g.NumEdges(), 17 * k / 2 - 3) << k;
    // Round-1 triggers have degree 2; nothing has degree 1.
    DegreeStats s = ComputeDegreeStats(g);
    EXPECT_EQ(s.min_degree, 2u);
  }
}

}  // namespace
}  // namespace rpmis
