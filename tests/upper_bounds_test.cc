#include "mis/upper_bounds.h"

#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "graph/generators.h"
#include "mis/near_linear.h"
#include "test_util.h"

namespace rpmis {
namespace {

TEST(CliqueCoverBoundTest, ExactOnCliquesAndBipartite) {
  EXPECT_EQ(CliqueCoverBound(CompleteGraph(7)), 1u);
  // K_{a,b}: best clique partition uses edges: max(a,b) cliques needed.
  EXPECT_EQ(CliqueCoverBound(CompleteBipartite(3, 5)), 5u);
  EXPECT_EQ(CliqueCoverBound(PathGraph(6)), 3u);  // 3 edges as cliques
}

TEST(CycleCoverBoundTest, ExactOnCycles) {
  EXPECT_EQ(CycleCoverBound(CycleGraph(5)), 2u);
  EXPECT_EQ(CycleCoverBound(CycleGraph(8)), 4u);
  // Forests have no cycles: bound degenerates to n.
  EXPECT_EQ(CycleCoverBound(BinaryTree(7)), 7u);
}

TEST(UpperBoundsTest, AllBoundsDominateAlpha) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = ErdosRenyiGnm(26, 50, seed);
    const uint64_t alpha = BruteForceAlpha(g);
    EXPECT_GE(CliqueCoverBound(g), alpha) << seed;
    EXPECT_GE(LpUpperBound(g), alpha) << seed;
    EXPECT_GE(CycleCoverBound(g), alpha) << seed;
    EXPECT_GE(BestExistingUpperBound(g), alpha) << seed;
  }
}

TEST(UpperBoundsTest, PaperFigures) {
  for (const Graph& g : {testing::PaperFigure1(), testing::PaperFigure2(),
                         testing::PaperFigure5()}) {
    EXPECT_GE(BestExistingUpperBound(g), BruteForceAlpha(g));
  }
}

TEST(UpperBoundsTest, Theorem61BoundIsValidAndOftenTighter) {
  // NearLinear's free |I| + |R| bound must dominate alpha; on power-law
  // graphs it is typically at least as tight as the existing bounds
  // (Table 7's comparison).
  Graph g = ChungLuPowerLaw(5000, 2.1, 4.0, /*seed=*/3);
  MisSolution sol = RunNearLinear(g);
  EXPECT_GE(sol.UpperBound(), sol.size);
  EXPECT_LE(sol.UpperBound(), BestExistingUpperBound(g) + 5);
}

TEST(UpperBoundsTest, CertifiedInstancesHaveTightBound) {
  // When NearLinear certifies optimality (R empty), the Theorem 6.1 bound
  // equals alpha exactly.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = ChungLuPowerLaw(60, 2.3, 2.5, seed);
    MisSolution sol = RunNearLinear(g);
    if (sol.provably_maximum && g.NumVertices() <= 64) {
      EXPECT_EQ(sol.UpperBound(), BruteForceAlpha(g)) << seed;
    }
  }
}

}  // namespace
}  // namespace rpmis
