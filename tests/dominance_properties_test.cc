// Properties of the dominance reduction proven in Appendix A.3:
//   * Lemma 5.2: v dominates u  iff  delta(v,u) = d(v) - 1;
//   * the isolated-vertex / degree-one / degree-two-isolation rules are
//     special cases of dominance;
//   * Lemma A.1 (order-obliviousness): if v dom u and u dom w, then v dom
//     w, and still after removing u;
//   * mutual dominance exists (Figure 14) and removing either side is
//     exact.
#include <gtest/gtest.h>

#include "exact/brute_force.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "support/random.h"

namespace rpmis {
namespace {

// Reference dominance: v dominates u iff (v,u) in E and N(v)\{u} ⊆ N(u).
bool Dominates(const Graph& g, Vertex v, Vertex u) {
  if (!g.HasEdge(v, u)) return false;
  for (Vertex x : g.Neighbors(v)) {
    if (x != u && !g.HasEdge(x, u)) return false;
  }
  return true;
}

TEST(DominanceTest, Lemma52TriangleCountCharacterization) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = ErdosRenyiGnm(40, 160, seed);
    auto delta = EdgeTriangleCounts(g);
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      auto nb = g.Neighbors(v);
      for (size_t i = 0; i < nb.size(); ++i) {
        const bool by_counts = delta[g.EdgeBegin(v) + i] == g.Degree(v) - 1;
        EXPECT_EQ(by_counts, Dominates(g, v, nb[i]))
            << v << " -> " << nb[i] << " seed " << seed;
      }
    }
  }
}

TEST(DominanceTest, CapturesDegreeOneReduction) {
  // Degree-one u with neighbour v: u dominates v.
  Graph g = Graph::FromEdges(4, std::vector<Edge>{{0, 1}, {1, 2}, {1, 3}});
  EXPECT_TRUE(Dominates(g, 0, 1));
}

TEST(DominanceTest, CapturesIsolatedVertexReduction) {
  // u whose neighbourhood is a clique (Figure 13(a)): u dominates every
  // neighbour.
  Graph g = Graph::FromEdges(
      5, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {1, 4}});
  for (Vertex v : {1u, 2u, 3u}) EXPECT_TRUE(Dominates(g, 0, v));
}

TEST(DominanceTest, CapturesDegreeTwoIsolation) {
  // Degree-two u with adjacent neighbours v, w: u dominates both.
  Graph g = Graph::FromEdges(5, std::vector<Edge>{{0, 1}, {0, 2}, {1, 2},
                                                  {1, 3}, {2, 4}});
  EXPECT_TRUE(Dominates(g, 0, 1));
  EXPECT_TRUE(Dominates(g, 0, 2));
}

TEST(DominanceTest, DegreeThreeConfigurations) {
  // Figure 13(b): deg-3 u with a triangle among its neighbours dominates
  // all three. Figure 13(c): two edges -> u dominates the middle one.
  Graph b = Graph::FromEdges(
      6, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
                           {1, 4}, {2, 5}});
  for (Vertex v : {1u, 2u, 3u}) EXPECT_TRUE(Dominates(b, 0, v));

  Graph c = Graph::FromEdges(
      7, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3},
                           {1, 4}, {3, 5}, {2, 6}});
  EXPECT_TRUE(Dominates(c, 0, 2));   // the middle neighbour
  EXPECT_FALSE(Dominates(c, 0, 1));  // the outer ones are not dominated
  EXPECT_FALSE(Dominates(c, 0, 3));
}

TEST(DominanceTest, LemmaA1Transitivity) {
  uint64_t verified = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    // Dense graphs so chains v dom u dom w actually occur.
    Graph g = ErdosRenyiGnm(12, 52, seed);
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      for (Vertex u : g.Neighbors(v)) {
        if (!Dominates(g, v, u)) continue;
        for (Vertex w : g.Neighbors(u)) {
          if (w == v || !Dominates(g, u, w)) continue;
          // Lemma A.1: v must dominate w...
          EXPECT_TRUE(Dominates(g, v, w)) << v << "," << u << "," << w;
          // ...and still after removing u.
          std::vector<Vertex> rest;
          std::vector<Vertex> map;
          for (Vertex x = 0; x < g.NumVertices(); ++x) {
            if (x != u) rest.push_back(x);
          }
          Graph without = g.InducedSubgraph(rest, &map);
          EXPECT_TRUE(Dominates(without, map[v], map[w]));
          ++verified;
        }
      }
    }
  }
  EXPECT_GT(verified, 5u) << "fixture too sparse to exercise the lemma";
}

TEST(DominanceTest, MutualDominanceIsExactEitherWay) {
  // Figure 14 shape: twins u, v adjacent with identical closed
  // neighbourhoods dominate each other; removing either preserves alpha.
  Graph g = Graph::FromEdges(
      6, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 4}, {3, 5}});
  ASSERT_TRUE(Dominates(g, 0, 1));
  ASSERT_TRUE(Dominates(g, 1, 0));
  const uint64_t alpha = BruteForceAlpha(g);
  for (Vertex drop : {0u, 1u}) {
    std::vector<Vertex> rest;
    for (Vertex x = 0; x < g.NumVertices(); ++x) {
      if (x != drop) rest.push_back(x);
    }
    EXPECT_EQ(BruteForceAlpha(g.InducedSubgraph(rest)), alpha);
  }
}

TEST(DominanceTest, RemovingDominatedPreservesAlpha) {
  // Property form of Lemma 5.1 on random graphs.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = ErdosRenyiGnm(20, 70, seed);
    const uint64_t alpha = BruteForceAlpha(g);
    for (Vertex u = 0; u < g.NumVertices(); ++u) {
      bool dominated = false;
      for (Vertex v : g.Neighbors(u)) {
        if (Dominates(g, v, u)) dominated = true;
      }
      if (!dominated) continue;
      std::vector<Vertex> rest;
      for (Vertex x = 0; x < g.NumVertices(); ++x) {
        if (x != u) rest.push_back(x);
      }
      EXPECT_EQ(BruteForceAlpha(g.InducedSubgraph(rest)), alpha)
          << "removing dominated " << u << " changed alpha, seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rpmis
