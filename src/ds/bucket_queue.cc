#include "ds/bucket_queue.h"

namespace rpmis {

BucketQueue::BucketQueue(Vertex n, uint32_t max_key)
    : bucket_head_(static_cast<size_t>(max_key) + 1, kNil),
      prev_(n, kNil),
      next_(n, kNil),
      key_(n, 0),
      in_queue_(n, 0),
      min_bound_(max_key),
      max_bound_(0) {}

BucketQueue BucketQueue::FromKeys(std::span<const uint32_t> keys, uint32_t max_key) {
  BucketQueue q(static_cast<Vertex>(keys.size()), max_key);
  for (Vertex v = 0; v < keys.size(); ++v) q.Insert(v, keys[v]);
  return q;
}

void BucketQueue::LinkFront(Vertex v, uint32_t key) {
  RPMIS_DASSERT(key < bucket_head_.size());
  key_[v] = key;
  prev_[v] = kNil;
  next_[v] = bucket_head_[key];
  if (bucket_head_[key] != kNil) prev_[bucket_head_[key]] = v;
  bucket_head_[key] = v;
  if (key < min_bound_) min_bound_ = key;
  if (key > max_bound_) max_bound_ = key;
}

void BucketQueue::UnlinkNode(Vertex v) {
  if (prev_[v] != kNil) {
    next_[prev_[v]] = next_[v];
  } else {
    RPMIS_DASSERT(bucket_head_[key_[v]] == v);
    bucket_head_[key_[v]] = next_[v];
  }
  if (next_[v] != kNil) prev_[next_[v]] = prev_[v];
}

void BucketQueue::Insert(Vertex v, uint32_t key) {
  RPMIS_ASSERT(!Contains(v));
  LinkFront(v, key);
  in_queue_[v] = 1;
  ++size_;
}

void BucketQueue::Remove(Vertex v) {
  RPMIS_ASSERT(Contains(v));
  UnlinkNode(v);
  in_queue_[v] = 0;
  --size_;
}

void BucketQueue::Update(Vertex v, uint32_t key) {
  RPMIS_ASSERT(Contains(v));
  if (key_[v] == key) return;
  UnlinkNode(v);
  LinkFront(v, key);
}

void BucketQueue::SettleMin() {
  RPMIS_ASSERT(!Empty());
  while (bucket_head_[min_bound_] == kNil) ++min_bound_;
}

void BucketQueue::SettleMax() {
  RPMIS_ASSERT(!Empty());
  while (bucket_head_[max_bound_] == kNil) --max_bound_;
}

uint32_t BucketQueue::MinKey() {
  SettleMin();
  return min_bound_;
}

uint32_t BucketQueue::MaxKey() {
  SettleMax();
  return max_bound_;
}

Vertex BucketQueue::PopMin() {
  SettleMin();
  const Vertex v = bucket_head_[min_bound_];
  Remove(v);
  return v;
}

Vertex BucketQueue::PopMax() {
  SettleMax();
  const Vertex v = bucket_head_[max_bound_];
  Remove(v);
  return v;
}

LazyMaxBucketQueue::LazyMaxBucketQueue(std::span<const uint32_t> keys)
    : next_(keys.size(), kInvalidVertex), max_bound_(0) {
  uint32_t max_key = 0;
  for (uint32_t k : keys) max_key = std::max(max_key, k);
  bucket_head_.assign(static_cast<size_t>(max_key) + 1, kInvalidVertex);
  for (Vertex v = 0; v < keys.size(); ++v) {
    next_[v] = bucket_head_[keys[v]];
    bucket_head_[keys[v]] = v;
  }
  max_bound_ = max_key;
  if (keys.empty()) max_bound_ = kNoBucket;
}

}  // namespace rpmis
