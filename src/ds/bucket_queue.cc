#include "ds/bucket_queue.h"

#include <algorithm>

namespace rpmis {

BucketQueue::BucketQueue(Vertex n, uint32_t max_key)
    : bucket_head_(static_cast<size_t>(max_key) + 1, kNil),
      prev_(n, kNil),
      next_(n, kNil),
      key_(n, 0),
      in_queue_(n, 0),
      min_bound_(max_key),
      max_bound_(0) {}

BucketQueue BucketQueue::FromKeys(std::span<const uint32_t> keys, uint32_t max_key) {
  BucketQueue q(static_cast<Vertex>(keys.size()), max_key);
  for (Vertex v = 0; v < keys.size(); ++v) q.Insert(v, keys[v]);
  return q;
}

void BucketQueue::LinkFront(Vertex v, uint32_t key) {
  RPMIS_DASSERT(key < bucket_head_.size());
  key_[v] = key;
  prev_[v] = kNil;
  next_[v] = bucket_head_[key];
  if (bucket_head_[key] != kNil) prev_[bucket_head_[key]] = v;
  bucket_head_[key] = v;
  if (key < min_bound_) min_bound_ = key;
  if (key > max_bound_) max_bound_ = key;
}

void BucketQueue::UnlinkNode(Vertex v) {
  if (prev_[v] != kNil) {
    next_[prev_[v]] = next_[v];
  } else {
    RPMIS_DASSERT(bucket_head_[key_[v]] == v);
    bucket_head_[key_[v]] = next_[v];
  }
  if (next_[v] != kNil) prev_[next_[v]] = prev_[v];
}

void BucketQueue::Insert(Vertex v, uint32_t key) {
  RPMIS_ASSERT(!Contains(v));
  LinkFront(v, key);
  in_queue_[v] = 1;
  ++size_;
}

void BucketQueue::Remove(Vertex v) {
  RPMIS_ASSERT(Contains(v));
  UnlinkNode(v);
  in_queue_[v] = 0;
  --size_;
}

void BucketQueue::Update(Vertex v, uint32_t key) {
  RPMIS_ASSERT(Contains(v));
  if (key_[v] == key) return;
  UnlinkNode(v);
  LinkFront(v, key);
}

void BucketQueue::SettleMin() {
  RPMIS_ASSERT(!Empty());
  while (bucket_head_[min_bound_] == kNil) ++min_bound_;
}

void BucketQueue::SettleMax() {
  RPMIS_ASSERT(!Empty());
  while (bucket_head_[max_bound_] == kNil) --max_bound_;
}

uint32_t BucketQueue::MinKey() {
  SettleMin();
  return min_bound_;
}

uint32_t BucketQueue::MaxKey() {
  SettleMax();
  return max_bound_;
}

Vertex BucketQueue::PopMin() {
  SettleMin();
  const Vertex v = bucket_head_[min_bound_];
  Remove(v);
  return v;
}

Vertex BucketQueue::PopMax() {
  SettleMax();
  const Vertex v = bucket_head_[max_bound_];
  Remove(v);
  return v;
}

void BucketQueue::Compact(Vertex new_n, std::span<const Vertex> to_new,
                          uint32_t new_max_key) {
  std::vector<Vertex> new_head(static_cast<size_t>(new_max_key) + 1, kNil);
  std::vector<Vertex> new_prev(new_n, kNil);
  std::vector<Vertex> new_next(new_n, kNil);
  std::vector<uint32_t> new_key(new_n, 0);
  std::vector<uint8_t> new_in_queue(new_n, 0);
  if (size_ > 0) {
    // All entries sit in [min_bound_, max_bound_] (the bounds bracket the
    // true extremes by the Insert/Update invariants).
    for (uint32_t k = min_bound_; k <= max_bound_; ++k) {
      Vertex tail = kNil;
      for (Vertex v = bucket_head_[k]; v != kNil; v = next_[v]) {
        const Vertex nv = to_new[v];
        RPMIS_ASSERT_MSG(nv != kInvalidVertex && k <= new_max_key,
                         "queue entry dropped by compaction");
        if (tail == kNil) {
          new_head[k] = nv;
        } else {
          new_next[tail] = nv;
        }
        new_prev[nv] = tail;
        new_key[nv] = k;
        new_in_queue[nv] = 1;
        tail = nv;
      }
    }
  }
  bucket_head_ = std::move(new_head);
  prev_ = std::move(new_prev);
  next_ = std::move(new_next);
  key_ = std::move(new_key);
  in_queue_ = std::move(new_in_queue);
  min_bound_ = std::min(min_bound_, new_max_key);
  max_bound_ = std::min(max_bound_, new_max_key);
}

LazyMaxBucketQueue::LazyMaxBucketQueue(std::span<const uint32_t> keys)
    : next_(keys.size(), kInvalidVertex), max_bound_(0) {
  uint32_t max_key = 0;
  for (uint32_t k : keys) max_key = std::max(max_key, k);
  bucket_head_.assign(static_cast<size_t>(max_key) + 1, kInvalidVertex);
  for (Vertex v = 0; v < keys.size(); ++v) {
    next_[v] = bucket_head_[keys[v]];
    bucket_head_[keys[v]] = v;
  }
  max_bound_ = max_key;
  if (keys.empty()) max_bound_ = kNoBucket;
}

void LazyMaxBucketQueue::Compact(Vertex new_n, std::span<const Vertex> to_new) {
  std::vector<Vertex> new_next(new_n, kInvalidVertex);
  // Keys never grow, so every entry sits at or below max_bound_ and the
  // bucket array can shrink with the queue.
  const size_t buckets =
      max_bound_ == kNoBucket ? 0 : static_cast<size_t>(max_bound_) + 1;
  for (size_t k = 0; k < buckets; ++k) {
    Vertex head = kInvalidVertex;
    Vertex tail = kInvalidVertex;
    for (Vertex v = bucket_head_[k]; v != kInvalidVertex; v = next_[v]) {
      const Vertex nv = to_new[v];
      if (nv == kInvalidVertex) continue;  // dead; a pop would discard it
      if (tail == kInvalidVertex) {
        head = nv;
      } else {
        new_next[tail] = nv;
      }
      tail = nv;
    }
    bucket_head_[k] = head;
  }
  bucket_head_.resize(buckets);
  next_ = std::move(new_next);
}

}  // namespace rpmis
