// Bin-sort priority structures keyed by vertex degree (§3.2 of the paper).
//
// Degrees are integers in [0, n], so a bucket per degree value gives O(1)
// updates and amortized O(n) extraction over a whole run:
//
//  * BucketQueue        — doubly-linked, eagerly updated; supports PopMin
//                         and PopMax even when keys *increase* (BDTwo's
//                         contractions can grow degrees), plus arbitrary
//                         Remove. Used by BDTwo, DU and SemiE.
//  * LazyMaxBucketQueue — the paper's optimized variant: singly-linked
//                         (2n space), entries carry a possibly stale key
//                         and are sifted down lazily at pop time. Valid
//                         whenever keys only decrease, which holds for
//                         BDOne / LinearTime / NearLinear peeling.
#ifndef RPMIS_DS_BUCKET_QUEUE_H_
#define RPMIS_DS_BUCKET_QUEUE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "support/assert.h"

namespace rpmis {

/// Doubly-linked bucket priority queue over vertices [0, n) with integer
/// keys in [0, max_key]. All operations O(1) except the pops, which advance
/// a cached bound pointer (amortized O(max_key) over a run of monotone
/// pops, O(1) otherwise).
class BucketQueue {
 public:
  /// Creates an empty queue able to hold vertices [0, n) with keys
  /// in [0, max_key].
  BucketQueue(Vertex n, uint32_t max_key);

  /// Builds a queue containing all of [0, keys.size()) with the given keys.
  static BucketQueue FromKeys(std::span<const uint32_t> keys, uint32_t max_key);

  bool Empty() const { return size_ == 0; }
  Vertex Size() const { return size_; }
  bool Contains(Vertex v) const { return in_queue_[v] != 0; }
  uint32_t KeyOf(Vertex v) const { return key_[v]; }

  void Insert(Vertex v, uint32_t key);
  void Remove(Vertex v);

  /// Changes v's key (v must be in the queue). Works for both increases
  /// and decreases.
  void Update(Vertex v, uint32_t key);

  /// Removes and returns a vertex with the minimum / maximum key.
  /// The queue must be non-empty.
  Vertex PopMin();
  Vertex PopMax();

  /// Rebuilds the queue over the renamed universe [0, new_n) with key
  /// range [0, new_max_key]. Every contained vertex must survive the
  /// renaming with its key <= new_max_key. Bucket-internal order is
  /// preserved exactly, so the pop sequence is unchanged.
  void Compact(Vertex new_n, std::span<const Vertex> to_new,
               uint32_t new_max_key);

  /// Current minimum / maximum key (queue must be non-empty).
  uint32_t MinKey();
  uint32_t MaxKey();

 private:
  static constexpr Vertex kNil = kInvalidVertex;

  void LinkFront(Vertex v, uint32_t key);
  void UnlinkNode(Vertex v);
  void SettleMin();
  void SettleMax();

  std::vector<Vertex> bucket_head_;  // per key
  std::vector<Vertex> prev_, next_;  // per vertex
  std::vector<uint32_t> key_;
  std::vector<uint8_t> in_queue_;
  uint32_t min_bound_;  // <= true min of any contained key
  uint32_t max_bound_;  // >= true max of any contained key
  Vertex size_ = 0;
};

/// Singly-linked lazy max-queue (the paper's peeling structure).
///
/// Keys may go stale: the structure records the key a vertex had when it
/// was (re)inserted. At pop time the caller supplies the *current* key and
/// liveness through callbacks; a popped entry whose key shrank is silently
/// reinserted in its true bucket, and dead entries are discarded. Correct
/// as long as true keys never exceed their recorded values, i.e. keys are
/// non-increasing over time.
class LazyMaxBucketQueue {
 public:
  /// Builds the queue holding every vertex in [0, keys.size()).
  explicit LazyMaxBucketQueue(std::span<const uint32_t> keys);

  /// Pops the vertex with the (lazily maintained) maximum current key.
  /// `current_key(v)` -> uint32_t, `alive(v)` -> bool. Returns
  /// kInvalidVertex when no alive entry remains.
  template <typename KeyFn, typename AliveFn>
  Vertex PopMax(KeyFn current_key, AliveFn alive) {
    while (true) {
      while (max_bound_ != kNoBucket && bucket_head_[max_bound_] == kInvalidVertex) {
        if (max_bound_ == 0) {
          max_bound_ = kNoBucket;
          break;
        }
        --max_bound_;
      }
      if (max_bound_ == kNoBucket) return kInvalidVertex;
      const Vertex v = bucket_head_[max_bound_];
      bucket_head_[max_bound_] = next_[v];
      if (!alive(v)) continue;
      const uint32_t key = current_key(v);
      RPMIS_DASSERT(key <= max_bound_);
      if (key == max_bound_) return v;
      // Stale entry: sift down to its true bucket (lazy update).
      next_[v] = bucket_head_[key];
      bucket_head_[key] = v;
    }
  }

  /// Rebuilds the queue over the renamed universe [0, new_n): entries
  /// whose vertex maps to kInvalidVertex are discarded now — exactly the
  /// entries a later PopMax would have skipped as dead. Surviving entries
  /// keep their bucket (stale entries stay stale) and their position, so
  /// the pop sequence is unchanged. Keys only decrease, so the bucket
  /// array also shrinks to the settled upper bound.
  void Compact(Vertex new_n, std::span<const Vertex> to_new);

 private:
  static constexpr uint32_t kNoBucket = static_cast<uint32_t>(-1);

  std::vector<Vertex> bucket_head_;
  std::vector<Vertex> next_;
  uint32_t max_bound_;
};

}  // namespace rpmis

#endif  // RPMIS_DS_BUCKET_QUEUE_H_
