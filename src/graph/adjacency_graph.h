// Dynamic adjacency-list graph with mutual edge references.
//
// This is the 6m + O(n) representation of §3.3: every undirected edge is a
// pair of half-edges that reference each other ("twin"), each threaded into
// a doubly-linked per-vertex list. It supports the two operations BDTwo
// needs that CSR cannot provide: O(deg) vertex deletion that also unlinks
// the mirror entries, and vertex contraction (degree-two folding) which can
// *grow* a neighbourhood. For the dynamic-update engine (src/dynamic) it
// additionally supports O(deg) single-edge insertion/deletion over a
// free-list of dead half-edge slots, and vertex-universe growth.
#ifndef RPMIS_GRAPH_ADJACENCY_GRAPH_H_
#define RPMIS_GRAPH_ADJACENCY_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "support/fast_set.h"

namespace rpmis {

/// Mutable undirected graph over a growable vertex universe [0, n).
/// Vertices can be removed and contracted; edges can also be *inserted*:
/// dead half-edge slots (from removals/contractions) are recycled through
/// a free list before the pool grows, so a workload that deletes as much
/// as it inserts stays within the initial 6m + O(n) footprint.
class AdjacencyGraph {
 public:
  explicit AdjacencyGraph(const Graph& g);

  Vertex NumVertices() const { return static_cast<Vertex>(head_.size()); }

  /// Number of remaining (alive) vertices.
  Vertex NumAliveVertices() const { return alive_count_; }

  /// Number of remaining undirected edges.
  uint64_t NumAliveEdges() const { return alive_edges_; }

  bool IsAlive(Vertex v) const { return alive_[v] != 0; }
  uint32_t Degree(Vertex v) const { return degree_[v]; }

  /// Calls `fn(w)` for every current neighbour w of v.
  template <typename Fn>
  void ForEachNeighbor(Vertex v, Fn fn) const {
    for (uint32_t h = head_[v]; h != kNilHalf; h = half_[h].next) fn(half_[h].to);
  }

  /// Collects the current neighbours of v into a vector (test/debug aid).
  std::vector<Vertex> NeighborsOf(Vertex v) const;

  /// True iff edge (u, v) currently exists. O(min(deg(u), deg(v))).
  bool HasEdge(Vertex u, Vertex v) const;

  /// Removes v and all incident edges. Every surviving neighbour whose
  /// degree changed is appended to `touched` (if non-null).
  void RemoveVertex(Vertex v, std::vector<Vertex>* touched);

  /// Contracts v into w (both alive, v != w): afterwards w's neighbourhood
  /// is (N(v) ∪ N(w)) \ {v, w} and v is gone. Vertices whose degree changed
  /// (including w) are appended to `touched`.
  void ContractInto(Vertex v, Vertex w, std::vector<Vertex>* touched);

  /// Inserts the edge (u, v), u != v. Dead endpoints (previously removed
  /// or contracted away) are revived as isolated vertices first. Returns
  /// false (and changes nothing beyond the revivals) if the edge already
  /// exists. O(min(deg(u), deg(v))).
  bool InsertEdge(Vertex u, Vertex v);

  /// Removes the single edge (u, v) if present; returns whether it was.
  /// The freed half-edge pair is recycled by later insertions. O(deg).
  bool RemoveEdge(Vertex u, Vertex v);

  /// Appends a new isolated alive vertex and returns its id.
  Vertex AddVertex();

  /// Marks a dead vertex alive again (as an isolated vertex). No-op for
  /// alive vertices.
  void ReviveVertex(Vertex v);

  /// Snapshot of the remaining graph as an edge list over original ids.
  std::vector<Edge> CollectAliveEdges() const;

  /// Rebuilds the structure over the renamed universe [0, new_n): vertices
  /// mapping to kInvalidVertex are dropped (they must be dead or isolated,
  /// so no surviving half-edge references them), the half-edge pool shrinks
  /// to the alive edges, and every kept vertex's neighbour ORDER is
  /// preserved — iteration behaves exactly as before the rebuild.
  void Compact(Vertex new_n, std::span<const Vertex> to_new);

 private:
  static constexpr uint32_t kNilHalf = static_cast<uint32_t>(-1);

  struct HalfEdge {
    Vertex to;       // target vertex
    uint32_t twin;   // index of the opposite half-edge
    uint32_t prev;   // previous half-edge in the source vertex's list
    uint32_t next;   // next half-edge in the source vertex's list
  };

  // Unlinks half-edge h from the list of vertex `owner`.
  void Unlink(Vertex owner, uint32_t h);
  // Pushes half-edge h to the front of `owner`'s list.
  void PushFront(Vertex owner, uint32_t h);
  // Pops a recycled half-edge slot, or grows the pool.
  uint32_t AllocHalf();

  std::vector<HalfEdge> half_;
  std::vector<uint32_t> free_halves_;  // dead slots available for reuse
  std::vector<uint32_t> head_;     // first half-edge per vertex (kNilHalf if none)
  std::vector<uint32_t> degree_;
  std::vector<uint8_t> alive_;
  Vertex alive_count_ = 0;
  uint64_t alive_edges_ = 0;
  FastSet scratch_;
};

}  // namespace rpmis

#endif  // RPMIS_GRAPH_ADJACENCY_GRAPH_H_
