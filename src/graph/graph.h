// Immutable CSR graph: the primary in-memory representation.
//
// Matches §2 of the paper ("Graph Representation"): the adjacency arrays of
// all vertices live in one flat array of 2m entries plus n+1 offsets, i.e.
// 2m + O(n) integers. All four Reducing-Peeling algorithms run directly on
// this structure with tombstone deletion; only BDTwo (which contracts
// vertices) needs the dynamic AdjacencyGraph.
#ifndef RPMIS_GRAPH_GRAPH_H_
#define RPMIS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "support/assert.h"

namespace rpmis {

/// Vertex identifier. Graphs in this library are limited to 2^32-2 vertices.
using Vertex = uint32_t;

/// Sentinel for "no vertex".
inline constexpr Vertex kInvalidVertex = static_cast<Vertex>(-1);

/// An undirected edge as an (unordered) pair of endpoints.
using Edge = std::pair<Vertex, Vertex>;

/// Immutable undirected simple graph in compressed-sparse-row form.
///
/// Neighbour lists are sorted, self-loop free, and duplicate free. The
/// number of *undirected* edges is NumEdges(); the flat adjacency array has
/// 2 * NumEdges() entries.
class Graph {
 public:
  /// Empty graph.
  Graph() : offsets_(1, 0) {}

  /// Builds a graph with `n` vertices from an undirected edge list.
  /// Self-loops are dropped and duplicate edges collapsed. Dispatches to
  /// the parallel build for large inputs when NumThreads() > 1; the
  /// resulting CSR (offsets and neighbour array) is byte-identical to the
  /// serial build regardless of thread count.
  static Graph FromEdges(Vertex n, std::span<const Edge> edges);
  static Graph FromEdges(Vertex n, const std::vector<Edge>& edges) {
    return FromEdges(n, std::span<const Edge>(edges));
  }

  /// The reference single-threaded two-pass counting-sort build.
  static Graph FromEdgesSerial(Vertex n, std::span<const Edge> edges);

  /// The multi-threaded build: per-thread degree counting into shared
  /// atomic counters, prefix-sum placement through atomic cursors, then
  /// parallel per-vertex sort/dedup/compaction. Safe (and deterministic)
  /// at any thread count including 1; exposed for tests and benchmarks.
  static Graph FromEdgesParallel(Vertex n, std::span<const Edge> edges);

  /// Adopts an already-normalized CSR: `offsets` has n+1 entries starting
  /// at 0 and ending at neighbors.size(), and every adjacency slice is
  /// strictly increasing, self-loop free, and symmetric. The caller is
  /// responsible for those invariants (graph/io validates untrusted files
  /// before calling this); only the array shape is asserted here.
  static Graph FromCsr(std::vector<uint64_t> offsets,
                       std::vector<Vertex> neighbors);

  Vertex NumVertices() const { return static_cast<Vertex>(offsets_.size() - 1); }
  uint64_t NumEdges() const { return neighbors_.size() / 2; }

  uint32_t Degree(Vertex v) const {
    RPMIS_DASSERT(v < NumVertices());
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbour list of `v`.
  std::span<const Vertex> Neighbors(Vertex v) const {
    RPMIS_DASSERT(v < NumVertices());
    return {neighbors_.data() + offsets_[v], neighbors_.data() + offsets_[v + 1]};
  }

  /// Offset of v's adjacency slice in the flat neighbour array; the
  /// directed edge id of (v, Neighbors(v)[i]) is EdgeBegin(v) + i.
  uint64_t EdgeBegin(Vertex v) const { return offsets_[v]; }
  uint64_t EdgeEnd(Vertex v) const { return offsets_[v + 1]; }

  /// Target of the directed edge with id `e`.
  Vertex EdgeTarget(uint64_t e) const { return neighbors_[e]; }

  /// True iff the edge (u, v) exists. O(log deg) via binary search on the
  /// smaller endpoint's list.
  bool HasEdge(Vertex u, Vertex v) const;

  /// Maximum vertex degree (0 for the empty graph).
  uint32_t MaxDegree() const;

  /// Average degree 2m/n (0 for the empty graph).
  double AverageDegree() const {
    return NumVertices() == 0 ? 0.0
                              : 2.0 * static_cast<double>(NumEdges()) / NumVertices();
  }

  /// The raw CSR arrays (n + 1 offsets, 2m flat neighbour entries). For
  /// solvers that maintain a compacted working copy of the adjacency
  /// (mis/compaction.h) and start with a zero-copy view of the input.
  std::span<const uint64_t> RawOffsets() const { return offsets_; }
  std::span<const Vertex> RawNeighbors() const { return neighbors_; }

  /// All undirected edges with u < v, in sorted order.
  std::vector<Edge> CollectEdges() const;

  /// Induced subgraph on `vertices`; `old_to_new` (optional out) receives
  /// the vertex renaming (kInvalidVertex for dropped vertices).
  Graph InducedSubgraph(std::span<const Vertex> vertices,
                        std::vector<Vertex>* old_to_new = nullptr) const;

 private:
  friend class GraphBuilder;

  std::vector<uint64_t> offsets_;   // n + 1
  std::vector<Vertex> neighbors_;   // 2m, sorted per vertex
};

/// Incremental builder for Graph. Accepts edges in any order, in either
/// direction, with duplicates and self-loops; Build() normalizes.
class GraphBuilder {
 public:
  explicit GraphBuilder(Vertex n) : n_(n) {}

  Vertex NumVertices() const { return n_; }

  void AddEdge(Vertex u, Vertex v) {
    RPMIS_ASSERT(u < n_ && v < n_);
    edges_.emplace_back(u, v);
  }

  void Reserve(size_t m) { edges_.reserve(m); }

  /// Normalizes and produces the CSR graph. The builder keeps its edges and
  /// can continue to be used afterwards.
  Graph Build() const { return Graph::FromEdges(n_, edges_); }

 private:
  Vertex n_;
  std::vector<Edge> edges_;
};

}  // namespace rpmis

#endif  // RPMIS_GRAPH_GRAPH_H_
