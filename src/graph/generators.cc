#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "support/random.h"

namespace rpmis {

Graph ErdosRenyiGnm(Vertex n, uint64_t m, uint64_t seed) {
  RPMIS_ASSERT(n >= 2 || m == 0);
  const uint64_t max_pairs =
      static_cast<uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_pairs);
  Rng rng(seed);
  std::unordered_set<uint64_t> used;
  used.reserve(m * 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  // Rejection sampling is fine while m is well below max_pairs, which is
  // the sparse regime this library targets.
  while (edges.size() < m) {
    Vertex u = static_cast<Vertex>(rng.NextBounded(n));
    Vertex v = static_cast<Vertex>(rng.NextBounded(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const uint64_t key = static_cast<uint64_t>(u) * n + v;
    if (used.insert(key).second) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(n, edges);
}

Graph ErdosRenyiGnp(Vertex n, double p, uint64_t seed) {
  RPMIS_ASSERT(p >= 0.0 && p <= 1.0);
  std::vector<Edge> edges;
  if (p <= 0.0 || n < 2) return Graph::FromEdges(n, edges);
  Rng rng(seed);
  if (p >= 1.0) return CompleteGraph(n);
  // Geometric skipping over the implicit pair sequence.
  const double log1mp = std::log1p(-p);
  uint64_t idx = 0;
  const uint64_t total = static_cast<uint64_t>(n) * (n - 1) / 2;
  while (true) {
    const double r = rng.NextDouble();
    const uint64_t skip =
        static_cast<uint64_t>(std::floor(std::log1p(-r) / log1mp));
    idx += skip;
    if (idx >= total) break;
    // Decode pair index -> (u, v) with u < v via the triangular layout.
    const double dn = static_cast<double>(n);
    Vertex u = static_cast<Vertex>(
        dn - 2 - std::floor(std::sqrt(-8.0 * static_cast<double>(idx) +
                                      4.0 * dn * (dn - 1) - 7) /
                                2.0 -
                            0.5));
    // Guard against floating point drift at the row boundaries.
    auto row_start = [&](Vertex r_) {
      return static_cast<uint64_t>(r_) * n - static_cast<uint64_t>(r_) * (r_ + 1) / 2;
    };
    while (u > 0 && row_start(u) > idx) --u;
    while (row_start(u + 1) <= idx) ++u;
    const Vertex v = static_cast<Vertex>(u + 1 + (idx - row_start(u)));
    edges.emplace_back(u, v);
    ++idx;
  }
  return Graph::FromEdges(n, edges);
}

Graph ChungLuPowerLaw(Vertex n, double beta, double avg_degree, uint64_t seed) {
  RPMIS_ASSERT(beta > 1.0);
  RPMIS_ASSERT(n >= 2);
  // Expected-degree weights with a Zipf-like tail: w_i = c (i + i0)^(-gamma)
  // where gamma = 1/(beta-1) yields degree distribution exponent beta.
  const double gamma = 1.0 / (beta - 1.0);
  const double i0 = 10.0;  // offset tames the largest hub
  std::vector<double> w(n);
  double sum = 0.0;
  for (Vertex i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i) + i0, -gamma);
    sum += w[i];
  }
  const double scale = avg_degree * static_cast<double>(n) / sum;
  double total = 0.0;
  for (Vertex i = 0; i < n; ++i) {
    w[i] *= scale;
    // Cap weights so p = w_i w_j / S stays a probability.
    total += w[i];
  }
  const double cap = std::sqrt(total);
  for (Vertex i = 0; i < n; ++i) w[i] = std::min(w[i], cap);

  // Weights are already sorted in decreasing order by construction.
  // Miller–Hagberg style edge skipping: expected O(n + m).
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(avg_degree * n / 2));
  const double s = total;
  for (Vertex i = 0; i + 1 < n; ++i) {
    Vertex j = i + 1;
    double p = std::min(w[i] * w[j] / s, 1.0);
    while (j < n && p > 0) {
      if (p < 1.0) {
        const double r = rng.NextDouble();
        const double skip = std::floor(std::log1p(-r) / std::log1p(-p));
        if (skip >= static_cast<double>(n - j)) break;
        j += static_cast<Vertex>(skip);
      }
      const double q = std::min(w[i] * w[j] / s, 1.0);
      if (rng.NextDouble() < q / p) edges.emplace_back(i, j);
      p = q;
      ++j;
    }
  }
  return Graph::FromEdges(n, edges);
}

Graph BarabasiAlbert(Vertex n, uint32_t edges_per_vertex, uint64_t seed) {
  RPMIS_ASSERT(edges_per_vertex >= 1);
  RPMIS_ASSERT(n > edges_per_vertex);
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * edges_per_vertex);
  // `targets` holds each endpoint once per incident edge, so uniform
  // sampling from it is degree-proportional sampling.
  std::vector<Vertex> targets;
  targets.reserve(2 * static_cast<size_t>(n) * edges_per_vertex);
  // Seed clique on the first edges_per_vertex + 1 vertices keeps early
  // degrees nonzero.
  for (Vertex u = 0; u <= edges_per_vertex; ++u) {
    for (Vertex v = u + 1; v <= edges_per_vertex; ++v) {
      edges.emplace_back(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  std::vector<Vertex> chosen;
  for (Vertex v = edges_per_vertex + 1; v < n; ++v) {
    chosen.clear();
    while (chosen.size() < edges_per_vertex) {
      const Vertex t = targets[rng.NextBounded(targets.size())];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (Vertex t : chosen) {
      edges.emplace_back(v, t);
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return Graph::FromEdges(n, edges);
}

Graph RMat(uint32_t scale, uint64_t m, double a, double b, double c, uint64_t seed) {
  RPMIS_ASSERT(scale >= 1 && scale < 32);
  RPMIS_ASSERT(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0);
  const Vertex n = static_cast<Vertex>(1u) << scale;
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    Vertex u = 0, v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(n, edges);
}

namespace {

// Adds a random dense core on a random subset of [0, n) to `edges`
// (duplicates collapse in Graph::FromEdges). Eighty percent of the core's
// edge budget is spent on uniform pair edges and the rest on small random
// CLIQUES (size 4-6): web/social cores are clustered, and near-clique
// neighbourhoods are what the dominance reduction (Lemma 5.2) feeds on.
void PlantCore(std::vector<Edge>* edges, Vertex n, Vertex core_n,
               double core_avg, Rng* rng) {
  RPMIS_ASSERT(core_n <= n && core_n >= 3);
  // Random subset via partial Fisher-Yates.
  std::vector<Vertex> ids(n);
  for (Vertex v = 0; v < n; ++v) ids[v] = v;
  for (Vertex i = 0; i < core_n; ++i) {
    const Vertex j = i + static_cast<Vertex>(rng->NextBounded(n - i));
    std::swap(ids[i], ids[j]);
  }
  const uint64_t core_m = static_cast<uint64_t>(core_n * core_avg / 2.0);
  const uint64_t pair_edges = core_m * 4 / 5;
  for (uint64_t e = 0; e < pair_edges; ++e) {
    const Vertex a = static_cast<Vertex>(rng->NextBounded(core_n));
    Vertex b = a;
    while (b == a) b = static_cast<Vertex>(rng->NextBounded(core_n));
    edges->emplace_back(ids[a], ids[b]);
  }
  uint64_t spent = pair_edges;
  std::vector<Vertex> members;
  while (spent < core_m) {
    const uint32_t q = 4 + static_cast<uint32_t>(rng->NextBounded(3));
    members.clear();
    while (members.size() < q) {
      const Vertex x = static_cast<Vertex>(rng->NextBounded(core_n));
      if (std::find(members.begin(), members.end(), x) == members.end()) {
        members.push_back(x);
      }
    }
    for (uint32_t i = 0; i < q; ++i) {
      for (uint32_t j = i + 1; j < q; ++j) {
        edges->emplace_back(ids[members[i]], ids[members[j]]);
      }
    }
    spent += static_cast<uint64_t>(q) * (q - 1) / 2;
  }
}

}  // namespace

Graph PowerLawWithCore(Vertex n, double beta, double avg_degree,
                       Vertex core_n, double core_avg_degree, uint64_t seed) {
  Graph base = ChungLuPowerLaw(n, beta, avg_degree, seed);
  std::vector<Edge> edges = base.CollectEdges();
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  PlantCore(&edges, n, core_n, core_avg_degree, &rng);
  return Graph::FromEdges(n, edges);
}

Graph RMatWithCore(uint32_t scale, uint64_t m, Vertex core_n,
                   double core_avg_degree, uint64_t seed) {
  Graph base = RMat(scale, m, 0.57, 0.19, 0.19, seed);
  std::vector<Edge> edges = base.CollectEdges();
  Rng rng(seed ^ 0x517cc1b727220a95ULL);
  PlantCore(&edges, base.NumVertices(), core_n, core_avg_degree, &rng);
  return Graph::FromEdges(base.NumVertices(), edges);
}

Graph PathGraph(Vertex n) {
  std::vector<Edge> edges;
  for (Vertex v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph::FromEdges(n, edges);
}

Graph CycleGraph(Vertex n) {
  RPMIS_ASSERT(n >= 3);
  std::vector<Edge> edges;
  for (Vertex v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  edges.emplace_back(n - 1, 0);
  return Graph::FromEdges(n, edges);
}

Graph CompleteGraph(Vertex n) {
  std::vector<Edge> edges;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(n, edges);
}

Graph CompleteBipartite(Vertex a, Vertex b) {
  std::vector<Edge> edges;
  for (Vertex u = 0; u < a; ++u) {
    for (Vertex v = 0; v < b; ++v) edges.emplace_back(u, a + v);
  }
  return Graph::FromEdges(a + b, edges);
}

Graph StarGraph(Vertex leaves) {
  std::vector<Edge> edges;
  for (Vertex v = 1; v <= leaves; ++v) edges.emplace_back(0, v);
  return Graph::FromEdges(leaves + 1, edges);
}

Graph GridGraph(Vertex rows, Vertex cols) {
  std::vector<Edge> edges;
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::FromEdges(rows * cols, edges);
}

Graph BinaryTree(Vertex n) {
  std::vector<Edge> edges;
  for (Vertex v = 1; v < n; ++v) edges.emplace_back(v, (v - 1) / 2);
  return Graph::FromEdges(n, edges);
}

Graph Theorem31Gadget(Vertex k) {
  RPMIS_ASSERT_MSG(k >= 2 && (k & (k - 1)) == 0, "k must be a power of two");
  // Layout (original ids):
  //   layer 1: t0, t1                              (2 vertices)
  //   layer 2: s_0 .. s_{2k-1}                     (2k vertices)
  //   layer 3: v_0 .. v_{k-1}                      (k vertices)
  //   layer 4: trigger vertices, rounds 1..log2(k) (k-1 vertices)
  std::vector<Edge> edges;
  const Vertex t0 = 0, t1 = 1;
  const Vertex s_base = 2;
  const Vertex v_base = s_base + 2 * k;
  Vertex next = v_base + k;

  // Layers 1-2: complete bipartite K_{2,2k}.
  for (Vertex i = 0; i < 2 * k; ++i) {
    edges.emplace_back(t0, s_base + i);
    edges.emplace_back(t1, s_base + i);
  }
  // Layer 3 -> layer 2: v_i touches s_{2i}, s_{2i+1}.
  for (Vertex i = 0; i < k; ++i) {
    edges.emplace_back(v_base + i, s_base + 2 * i);
    edges.emplace_back(v_base + i, s_base + 2 * i + 1);
  }
  // Layer 4, round 1: degree-2 triggers folding adjacent pairs (v_{2j}, v_{2j+1}).
  for (Vertex j = 0; 2 * j + 1 < k; ++j) {
    const Vertex u = next++;
    edges.emplace_back(u, v_base + 2 * j);
    edges.emplace_back(u, v_base + 2 * j + 1);
  }
  // Rounds r >= 2: degree-3 triggers. The trigger for block j of width 2^r
  // touches the last vertices of the two sub-blocks of the left half (which
  // the previous round merged into one supervertex) plus the last vertex of
  // the right half; after round r-1 it has degree 2 and folds the halves.
  for (Vertex width = 4; width <= k; width *= 2) {
    const Vertex half = width / 2;
    const Vertex quarter = width / 4;
    for (Vertex j = 0; (j + 1) * width <= k; ++j) {
      const Vertex base = j * width;
      const Vertex u = next++;
      edges.emplace_back(u, v_base + base + quarter - 1);       // left sub-block end
      edges.emplace_back(u, v_base + base + half - 1);          // left half end
      edges.emplace_back(u, v_base + base + width - 1);         // right half end
    }
  }
  return Graph::FromEdges(next, edges);
}

}  // namespace rpmis
