#include "graph/adjacency_graph.h"

#include <utility>

namespace rpmis {

AdjacencyGraph::AdjacencyGraph(const Graph& g)
    : head_(g.NumVertices(), kNilHalf),
      degree_(g.NumVertices(), 0),
      alive_(g.NumVertices(), 1),
      alive_count_(g.NumVertices()),
      alive_edges_(g.NumEdges()),
      scratch_(g.NumVertices()) {
  half_.resize(2 * g.NumEdges());
  // Lay out the two halves of each undirected edge consecutively so the
  // twin of half-edge h is h ^ 1.
  uint32_t next_half = 0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (Vertex w : g.Neighbors(v)) {
      if (v >= w) continue;
      const uint32_t hv = next_half++;
      const uint32_t hw = next_half++;
      half_[hv] = {w, hw, kNilHalf, kNilHalf};
      half_[hw] = {v, hv, kNilHalf, kNilHalf};
      PushFront(v, hv);
      PushFront(w, hw);
      ++degree_[v];
      ++degree_[w];
    }
  }
  RPMIS_ASSERT(next_half == half_.size());
}

void AdjacencyGraph::Unlink(Vertex owner, uint32_t h) {
  const HalfEdge& e = half_[h];
  if (e.prev != kNilHalf) {
    half_[e.prev].next = e.next;
  } else {
    RPMIS_DASSERT(head_[owner] == h);
    head_[owner] = e.next;
  }
  if (e.next != kNilHalf) half_[e.next].prev = e.prev;
}

void AdjacencyGraph::PushFront(Vertex owner, uint32_t h) {
  half_[h].prev = kNilHalf;
  half_[h].next = head_[owner];
  if (head_[owner] != kNilHalf) half_[head_[owner]].prev = h;
  head_[owner] = h;
}

std::vector<Vertex> AdjacencyGraph::NeighborsOf(Vertex v) const {
  std::vector<Vertex> out;
  out.reserve(degree_[v]);
  ForEachNeighbor(v, [&](Vertex w) { out.push_back(w); });
  return out;
}

bool AdjacencyGraph::HasEdge(Vertex u, Vertex v) const {
  if (degree_[u] > degree_[v]) std::swap(u, v);
  for (uint32_t h = head_[u]; h != kNilHalf; h = half_[h].next) {
    if (half_[h].to == v) return true;
  }
  return false;
}

void AdjacencyGraph::RemoveVertex(Vertex v, std::vector<Vertex>* touched) {
  RPMIS_ASSERT(IsAlive(v));
  for (uint32_t h = head_[v]; h != kNilHalf; h = half_[h].next) {
    const Vertex w = half_[h].to;
    Unlink(w, half_[h].twin);
    --degree_[w];
    --alive_edges_;
    free_halves_.push_back(h);
    free_halves_.push_back(half_[h].twin);
    if (touched != nullptr) touched->push_back(w);
  }
  head_[v] = kNilHalf;
  degree_[v] = 0;
  alive_[v] = 0;
  --alive_count_;
}

void AdjacencyGraph::ContractInto(Vertex v, Vertex w, std::vector<Vertex>* touched) {
  RPMIS_ASSERT(IsAlive(v) && IsAlive(w) && v != w);
  // Mark w's current neighbourhood for duplicate detection.
  scratch_.Clear();
  ForEachNeighbor(w, [&](Vertex x) { scratch_.Insert(x); });

  uint32_t h = head_[v];
  head_[v] = kNilHalf;
  while (h != kNilHalf) {
    const uint32_t next = half_[h].next;
    const Vertex x = half_[h].to;
    if (x == w) {
      // The edge (v, w) disappears with the contraction.
      Unlink(w, half_[h].twin);
      --degree_[w];
      --alive_edges_;
      free_halves_.push_back(h);
      free_halves_.push_back(half_[h].twin);
    } else if (scratch_.Contains(x)) {
      // (w, x) already exists: the moved edge would be parallel; drop it.
      Unlink(x, half_[h].twin);
      --degree_[x];
      --alive_edges_;
      free_halves_.push_back(h);
      free_halves_.push_back(half_[h].twin);
      if (touched != nullptr) touched->push_back(x);
    } else {
      // Re-point (x, v) to (x, w) and thread (v, x)'s half into w's list.
      half_[half_[h].twin].to = w;
      PushFront(w, h);
      ++degree_[w];
      scratch_.Insert(x);
    }
    h = next;
  }
  degree_[v] = 0;
  alive_[v] = 0;
  --alive_count_;
  if (touched != nullptr) touched->push_back(w);
}

void AdjacencyGraph::Compact(Vertex new_n, std::span<const Vertex> to_new) {
  std::vector<HalfEdge> new_half;
  new_half.reserve(2 * alive_edges_);
  std::vector<uint32_t> new_id(half_.size(), kNilHalf);
  std::vector<uint32_t> new_head(new_n, kNilHalf);
  std::vector<uint32_t> new_degree(new_n, 0);
  for (Vertex v = 0; v < NumVertices(); ++v) {
    const Vertex nv = to_new[v];
    if (nv == kInvalidVertex) {
      RPMIS_DASSERT(!IsAlive(v) || degree_[v] == 0);
      continue;
    }
    RPMIS_DASSERT(IsAlive(v));
    uint32_t tail = kNilHalf;
    for (uint32_t h = head_[v]; h != kNilHalf; h = half_[h].next) {
      const uint32_t nh = static_cast<uint32_t>(new_half.size());
      new_id[h] = nh;
      const Vertex target = to_new[half_[h].to];
      RPMIS_DASSERT(target != kInvalidVertex);
      // The twin still holds the OLD half-edge id; re-linked below once
      // every surviving half has its new id.
      new_half.push_back({target, half_[h].twin, tail, kNilHalf});
      if (tail == kNilHalf) {
        new_head[nv] = nh;
      } else {
        new_half[tail].next = nh;
      }
      tail = nh;
    }
    new_degree[nv] = degree_[v];
  }
  for (HalfEdge& e : new_half) {
    RPMIS_DASSERT(new_id[e.twin] != kNilHalf);
    e.twin = new_id[e.twin];
  }
  half_ = std::move(new_half);
  head_ = std::move(new_head);
  degree_ = std::move(new_degree);
  alive_.assign(new_n, 1);
  alive_count_ = new_n;
  free_halves_.clear();  // the rebuilt pool holds exactly the alive halves
  scratch_.Resize(new_n);
}

uint32_t AdjacencyGraph::AllocHalf() {
  if (!free_halves_.empty()) {
    const uint32_t h = free_halves_.back();
    free_halves_.pop_back();
    return h;
  }
  half_.push_back({});
  return static_cast<uint32_t>(half_.size() - 1);
}

bool AdjacencyGraph::InsertEdge(Vertex u, Vertex v) {
  RPMIS_ASSERT(u < NumVertices() && v < NumVertices() && u != v);
  ReviveVertex(u);
  ReviveVertex(v);
  if (HasEdge(u, v)) return false;
  const uint32_t hu = AllocHalf();
  const uint32_t hv = AllocHalf();
  half_[hu] = {v, hv, kNilHalf, kNilHalf};
  half_[hv] = {u, hu, kNilHalf, kNilHalf};
  PushFront(u, hu);
  PushFront(v, hv);
  ++degree_[u];
  ++degree_[v];
  ++alive_edges_;
  return true;
}

bool AdjacencyGraph::RemoveEdge(Vertex u, Vertex v) {
  RPMIS_ASSERT(u < NumVertices() && v < NumVertices() && u != v);
  if (!IsAlive(u) || !IsAlive(v)) return false;
  if (degree_[u] > degree_[v]) std::swap(u, v);
  for (uint32_t h = head_[u]; h != kNilHalf; h = half_[h].next) {
    if (half_[h].to != v) continue;
    Unlink(u, h);
    Unlink(v, half_[h].twin);
    --degree_[u];
    --degree_[v];
    --alive_edges_;
    free_halves_.push_back(h);
    free_halves_.push_back(half_[h].twin);
    return true;
  }
  return false;
}

Vertex AdjacencyGraph::AddVertex() {
  const Vertex v = NumVertices();
  head_.push_back(kNilHalf);
  degree_.push_back(0);
  alive_.push_back(1);
  ++alive_count_;
  scratch_.EnsureUniverse(head_.size());
  return v;
}

void AdjacencyGraph::ReviveVertex(Vertex v) {
  RPMIS_ASSERT(v < NumVertices());
  if (IsAlive(v)) return;
  RPMIS_DASSERT(head_[v] == kNilHalf && degree_[v] == 0);
  alive_[v] = 1;
  ++alive_count_;
}

std::vector<Edge> AdjacencyGraph::CollectAliveEdges() const {
  std::vector<Edge> out;
  out.reserve(alive_edges_);
  for (Vertex v = 0; v < NumVertices(); ++v) {
    if (!IsAlive(v)) continue;
    ForEachNeighbor(v, [&](Vertex w) {
      if (v < w) out.emplace_back(v, w);
    });
  }
  return out;
}

}  // namespace rpmis
