#include "graph/io.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "obs/obs.h"
#include "obs/trace.h"
#include "support/mmap_file.h"
#include "support/parallel.h"

namespace rpmis {

namespace {

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error("rpmis::io: " + what);
}

bool IsCommentOrBlank(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '#' || c == '%';
  }
  return true;  // blank
}

// ---- raw-buffer scanning primitives (the fast path) ---------------------

bool IsLineSpace(char c) { return c == ' ' || c == '\t' || c == '\r'; }

const char* SkipLineSpace(const char* p, const char* eol) {
  while (p < eol && IsLineSpace(*p)) ++p;
  return p;
}

const char* FindEol(const char* p, const char* end) {
  const void* nl = std::memchr(p, '\n', static_cast<size_t>(end - p));
  return nl == nullptr ? end : static_cast<const char*>(nl);
}

/// Parses one unsigned integer at `p`, advancing it past the digits.
/// Returns false on no digits or overflow.
bool ParseUint(const char*& p, const char* eol, uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(p, eol, out);
  if (ec != std::errc() || ptr == p) return false;
  p = ptr;
  return true;
}

// The per-edge-count caps used to bound `reserve` calls driven by file
// headers: a corrupt or hostile header must not be able to force an
// allocation larger than the file could possibly describe. The divisors
// are the minimum bytes one edge/entry can occupy in each format.
size_t DimacsReserveCap(size_t file_bytes) { return file_bytes / 6 + 16; }
size_t MetisReserveCap(size_t file_bytes) { return file_bytes / 2 + 16; }

// ---- edge lists ---------------------------------------------------------

struct EdgeListChunk {
  std::vector<std::pair<uint64_t, uint64_t>> raw;
  uint64_t max_id = 0;
  size_t lines = 0;       // lines scanned, including an erroring one
  std::string error;      // empty = clean scan
  size_t error_line = 0;  // 1-based within this chunk
};

void ScanEdgeListChunk(const char* p, const char* end, EdgeListChunk& out) {
  auto error = [&out](const char* what) {
    out.error = what;
    out.error_line = out.lines;
  };
  while (p < end) {
    const char* eol = FindEol(p, end);
    ++out.lines;
    const char* q = SkipLineSpace(p, eol);
    if (q == eol || *q == '#' || *q == '%') {
      p = eol + 1;
      continue;
    }
    uint64_t a = 0, b = 0;
    if (!ParseUint(q, eol, a)) return error("malformed edge");
    q = SkipLineSpace(q, eol);
    if (!ParseUint(q, eol, b)) return error("malformed edge");
    q = SkipLineSpace(q, eol);
    if (q != eol) return error("trailing garbage after edge");
    out.max_id = std::max(out.max_id, std::max(a, b));
    out.raw.emplace_back(a, b);
    p = eol + 1;
  }
}

}  // namespace

Graph ReadEdgeList(std::istream& in) {
  // Legacy line-at-a-time parser: kept as the simple reference for
  // arbitrary streams (and as the baseline bench_micro_io compares the
  // buffer parser against). Grammar matches ParseEdgeList.
  std::unordered_map<uint64_t, Vertex> remap;
  std::vector<Edge> edges;
  std::string line;
  auto intern = [&](uint64_t raw) {
    auto [it, inserted] = remap.emplace(raw, static_cast<Vertex>(remap.size()));
    (void)inserted;
    return it->second;
  };
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ls(line);
    uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) Fail("malformed edge at line " + std::to_string(line_no));
    std::string rest;
    if (ls >> rest) {
      Fail("trailing garbage after edge at line " + std::to_string(line_no));
    }
    edges.emplace_back(intern(a), intern(b));
  }
  return Graph::FromEdges(static_cast<Vertex>(remap.size()), edges);
}

Graph ParseEdgeList(std::string_view text) {
  const char* base = text.data();
  const char* end = base + text.size();

  // Chunk at newline boundaries; each chunk is scanned independently.
  constexpr size_t kMinChunkBytes = 1 << 20;
  const size_t chunks = std::clamp<size_t>(text.size() / kMinChunkBytes, 1,
                                           NumThreads());
  std::vector<const char*> bounds(chunks + 1);
  bounds[0] = base;
  bounds[chunks] = end;
  for (size_t k = 1; k < chunks; ++k) {
    const char* target = base + (text.size() / chunks) * k;
    const char* nl = FindEol(target, end);
    bounds[k] = nl == end ? end : nl + 1;
  }
  std::vector<EdgeListChunk> parts(chunks);
  RunParallel(chunks, [&](size_t k) {
    ScanEdgeListChunk(bounds[k], bounds[k + 1], parts[k]);
  });

  // Surface the first error in file order with its global line number.
  size_t lines_before = 0;
  size_t total = 0;
  uint64_t max_id = 0;
  for (const EdgeListChunk& part : parts) {
    if (!part.error.empty()) {
      Fail(part.error + " at line " +
           std::to_string(lines_before + part.error_line));
    }
    lines_before += part.lines;
    total += part.raw.size();
    max_id = std::max(max_id, part.max_id);
  }

  // Intern raw ids densely in order of first appearance — sequential so
  // the numbering is identical to the legacy reader. When the raw id
  // space is already near-dense (the common case for SNAP/LAW exports) a
  // flat array replaces the hash map.
  std::vector<Edge> edges;
  edges.reserve(total);
  Vertex next = 0;
  if (total > 0 && max_id < std::max<uint64_t>(size_t{1} << 20, 4 * total)) {
    std::vector<Vertex> map(max_id + 1, kInvalidVertex);
    for (const EdgeListChunk& part : parts) {
      for (const auto& [a, b] : part.raw) {
        if (map[a] == kInvalidVertex) map[a] = next++;
        if (map[b] == kInvalidVertex) map[b] = next++;
        edges.emplace_back(map[a], map[b]);
      }
    }
  } else {
    std::unordered_map<uint64_t, Vertex> remap;
    remap.reserve(total);
    auto intern = [&](uint64_t raw) {
      auto [it, inserted] = remap.emplace(raw, next);
      if (inserted) ++next;
      return it->second;
    };
    for (const EdgeListChunk& part : parts) {
      for (const auto& [a, b] : part.raw) {
        const Vertex u = intern(a);
        edges.emplace_back(u, intern(b));
      }
    }
  }
  return Graph::FromEdges(next, edges);
}

Graph ReadEdgeListFile(const std::string& path) {
  MmapFile file = MmapFile::Open(path);
  return ParseEdgeList(file.view());
}

namespace {

// ---- buffered text output ----------------------------------------------
// The writers format into one reused string flushed in megabyte blocks;
// with std::to_chars this is an order of magnitude faster than streaming
// each integer through operator<<.

class BufferedOut {
 public:
  explicit BufferedOut(std::ostream& out) : out_(out) {
    buf_.reserve(kFlushAt + 64);
  }
  ~BufferedOut() { Flush(); }

  void Ch(char c) {
    buf_.push_back(c);
    MaybeFlush();
  }
  void Str(std::string_view s) {
    buf_.append(s);
    MaybeFlush();
  }
  void U(uint64_t value) {
    char tmp[20];
    const auto r = std::to_chars(tmp, tmp + sizeof(tmp), value);
    buf_.append(tmp, r.ptr);
    MaybeFlush();
  }
  void Flush() {
    out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }

 private:
  static constexpr size_t kFlushAt = 1 << 20;
  void MaybeFlush() {
    if (buf_.size() >= kFlushAt) Flush();
  }

  std::ostream& out_;
  std::string buf_;
};

}  // namespace

void WriteEdgeList(const Graph& g, std::ostream& out) {
  BufferedOut b(out);
  b.Str("# rpmis edge list: ");
  b.U(g.NumVertices());
  b.Str(" vertices, ");
  b.U(g.NumEdges());
  b.Str(" edges\n");
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (Vertex w : g.Neighbors(v)) {
      if (v < w) {
        b.U(v);
        b.Ch(' ');
        b.U(w);
        b.Ch('\n');
      }
    }
  }
}

void WriteEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) Fail("cannot open " + path + " for writing");
  WriteEdgeList(g, out);
  out.flush();
  if (!out) Fail("write failed for " + path);
}

// ---- DIMACS -------------------------------------------------------------

Graph ParseDimacs(std::string_view text) {
  const char* p = text.data();
  const char* end = p + text.size();
  size_t line_no = 0;
  Vertex n = 0;
  uint64_t declared_m = 0;
  bool saw_problem = false;
  std::vector<Edge> edges;

  while (p < end) {
    const char* eol = FindEol(p, end);
    ++line_no;
    const char* q = SkipLineSpace(p, eol);
    if (q == eol) {
      p = eol + 1;
      continue;
    }
    const char kind = *q++;
    if (kind == 'p') {
      if (saw_problem) {
        Fail("duplicate DIMACS problem line at line " + std::to_string(line_no));
      }
      q = SkipLineSpace(q, eol);
      const char* fmt_begin = q;
      while (q < eol && !IsLineSpace(*q)) ++q;  // format token, e.g. "edge"
      uint64_t nn = 0, mm = 0;
      q = SkipLineSpace(q, eol);
      if (fmt_begin == q || !ParseUint(q, eol, nn)) Fail("bad DIMACS problem line");
      q = SkipLineSpace(q, eol);
      if (!ParseUint(q, eol, mm)) Fail("bad DIMACS problem line");
      q = SkipLineSpace(q, eol);
      if (q != eol) {
        Fail("trailing garbage in DIMACS problem line at line " +
             std::to_string(line_no));
      }
      if (nn > static_cast<uint64_t>(kInvalidVertex) - 1) {
        Fail("DIMACS vertex count exceeds supported range");
      }
      n = static_cast<Vertex>(nn);
      declared_m = mm;
      // Cap by what the file could physically contain so a hostile header
      // cannot trigger a huge allocation; the true count is validated at
      // the end of the parse.
      edges.reserve(std::min<uint64_t>(mm, DimacsReserveCap(text.size())));
      saw_problem = true;
    } else if (kind == 'e') {
      if (!saw_problem) Fail("DIMACS edge before problem line");
      q = SkipLineSpace(q, eol);
      uint64_t a = 0, b = 0;
      if (!ParseUint(q, eol, a)) {
        Fail("bad DIMACS edge at line " + std::to_string(line_no));
      }
      q = SkipLineSpace(q, eol);
      if (!ParseUint(q, eol, b)) {
        Fail("bad DIMACS edge at line " + std::to_string(line_no));
      }
      q = SkipLineSpace(q, eol);
      if (q != eol || a == 0 || b == 0 || a > n || b > n) {
        Fail("bad DIMACS edge at line " + std::to_string(line_no));
      }
      edges.emplace_back(static_cast<Vertex>(a - 1), static_cast<Vertex>(b - 1));
    }
    // 'c' and unknown kinds are comments/extensions: ignored.
    p = eol + 1;
  }
  if (!saw_problem) Fail("missing DIMACS problem line");
  if (edges.size() != declared_m) {
    Fail("DIMACS header declares " + std::to_string(declared_m) +
         " edges but file contains " + std::to_string(edges.size()));
  }
  return Graph::FromEdges(n, edges);
}

Graph ReadDimacs(std::istream& in) { return ParseDimacs(ReadStreamToString(in)); }

Graph ReadDimacsFile(const std::string& path) {
  MmapFile file = MmapFile::Open(path);
  return ParseDimacs(file.view());
}

void WriteDimacs(const Graph& g, std::ostream& out) {
  BufferedOut b(out);
  b.Str("p edge ");
  b.U(g.NumVertices());
  b.Ch(' ');
  b.U(g.NumEdges());
  b.Ch('\n');
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (Vertex w : g.Neighbors(v)) {
      if (v < w) {
        b.Str("e ");
        b.U(v + 1);
        b.Ch(' ');
        b.U(w + 1);
        b.Ch('\n');
      }
    }
  }
}

// ---- METIS --------------------------------------------------------------

Graph ParseMetis(std::string_view text) {
  const char* p = text.data();
  const char* end = p + text.size();
  size_t line_no = 0;

  // Header: n m [fmt], preceded by optional '%' comment lines.
  uint64_t n = 0, m = 0;
  bool have_header = false;
  while (p < end && !have_header) {
    const char* eol = FindEol(p, end);
    ++line_no;
    if (p < eol && *p == '%') {
      p = eol + 1;
      continue;
    }
    const char* q = SkipLineSpace(p, eol);
    if (!ParseUint(q, eol, n)) Fail("bad METIS header");
    q = SkipLineSpace(q, eol);
    if (!ParseUint(q, eol, m)) Fail("bad METIS header");
    q = SkipLineSpace(q, eol);
    if (q != eol) {
      uint64_t fmt = 0;
      if (!ParseUint(q, eol, fmt)) Fail("bad METIS header");
      if (fmt != 0) Fail("weighted METIS files are not supported");
      q = SkipLineSpace(q, eol);
      if (q != eol) Fail("trailing garbage in METIS header");
    }
    have_header = true;
    p = eol + 1;
  }
  if (!have_header) Fail("empty METIS file");
  if (n > static_cast<uint64_t>(kInvalidVertex) - 1) {
    Fail("METIS vertex count exceeds supported range");
  }

  std::vector<Edge> edges;
  // Each undirected edge appears once per endpoint's line: 2*m entries.
  // Cap by file size against hostile headers; validated below.
  const size_t cap = MetisReserveCap(text.size());
  edges.reserve(m < cap / 2 ? static_cast<size_t>(2 * m) : cap);
  uint64_t entries = 0;
  Vertex v = 0;
  while (v < n && p < end) {
    const char* eol = FindEol(p, end);
    ++line_no;
    if (p < eol && *p == '%') {
      p = eol + 1;
      continue;
    }
    const char* q = SkipLineSpace(p, eol);
    while (q < eol) {
      uint64_t w = 0;
      if (!ParseUint(q, eol, w) || w == 0 || w > n) {
        Fail("bad METIS neighbour for vertex " + std::to_string(v + 1) +
             " at line " + std::to_string(line_no));
      }
      edges.emplace_back(v, static_cast<Vertex>(w - 1));
      ++entries;
      q = SkipLineSpace(q, eol);
    }
    ++v;
    p = eol + 1;
  }
  if (v != n) {
    Fail("METIS file truncated: expected " + std::to_string(n) +
         " vertex lines, found " + std::to_string(v));
  }
  if (entries != 2 * m) {
    Fail("METIS header declares " + std::to_string(m) +
         " edges but adjacency lists contain " + std::to_string(entries) +
         " entries");
  }
  return Graph::FromEdges(static_cast<Vertex>(n), edges);
}

Graph ReadMetis(std::istream& in) { return ParseMetis(ReadStreamToString(in)); }

Graph ReadMetisFile(const std::string& path) {
  MmapFile file = MmapFile::Open(path);
  return ParseMetis(file.view());
}

void WriteMetis(const Graph& g, std::ostream& out) {
  BufferedOut b(out);
  b.U(g.NumVertices());
  b.Ch(' ');
  b.U(g.NumEdges());
  b.Ch('\n');
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    bool first = true;
    for (Vertex w : g.Neighbors(v)) {
      if (!first) b.Ch(' ');
      b.U(w + 1);
      first = false;
    }
    b.Ch('\n');
  }
}

// ---- binary CSR snapshot ------------------------------------------------

namespace {

constexpr char kBinaryMagic[4] = {'R', 'P', 'M', 'I'};
constexpr uint32_t kBinaryVersion = 1;
constexpr size_t kBinaryHeaderBytes = 4 + 4 + 8 + 8;

template <typename T>
T LoadRaw(const char* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

Graph ParseBinary(std::string_view bytes) {
  if (bytes.size() < kBinaryHeaderBytes) Fail("truncated binary graph header");
  const char* base = bytes.data();
  if (std::memcmp(base, kBinaryMagic, 4) != 0) Fail("bad binary graph magic");
  if (LoadRaw<uint32_t>(base + 4) != kBinaryVersion) {
    Fail("unsupported binary graph version");
  }
  const uint64_t n = LoadRaw<uint64_t>(base + 8);
  const uint64_t m = LoadRaw<uint64_t>(base + 16);
  if (n > static_cast<uint64_t>(kInvalidVertex) - 1) {
    Fail("binary graph vertex count exceeds supported range");
  }

  // Validate the payload length before touching any of it (a truncated
  // file must fail here, not after O(m) work).
  const size_t remaining = bytes.size() - kBinaryHeaderBytes;
  const uint64_t offsets_bytes = (n + 1) * sizeof(uint64_t);
  if (offsets_bytes > remaining) {
    Fail("truncated binary graph: header declares " + std::to_string(n) +
         " vertices but only " + std::to_string(remaining) +
         " payload bytes are present");
  }
  const uint64_t neighbor_budget = remaining - offsets_bytes;
  std::vector<uint64_t> offsets(n + 1);
  std::memcpy(offsets.data(), base + kBinaryHeaderBytes, offsets_bytes);
  if (m > neighbor_budget / (2 * sizeof(Vertex))) {
    // Neighbour section is short: name the first vertex whose adjacency
    // slice falls past the end of the file.
    const uint64_t available_words = neighbor_budget / sizeof(Vertex);
    uint64_t bad = n;
    for (uint64_t v = 0; v < n; ++v) {
      if (offsets[v + 1] > available_words) {
        bad = v;
        break;
      }
    }
    Fail("truncated binary graph: neighbour data for vertex " +
         std::to_string(bad) + " extends past end of file (header declares " +
         std::to_string(m) + " edges)");
  }
  const uint64_t neighbor_bytes = 2 * m * sizeof(Vertex);
  if (offsets_bytes + neighbor_bytes != remaining) {
    Fail("binary graph has " +
         std::to_string(remaining - offsets_bytes - neighbor_bytes) +
         " trailing bytes");
  }

  if (offsets[0] != 0) Fail("corrupt binary offsets: offsets[0] != 0");
  if (offsets[n] != 2 * m) {
    Fail("corrupt binary offsets: offsets[n] = " + std::to_string(offsets[n]) +
         ", expected 2m = " + std::to_string(2 * m));
  }
  std::vector<Vertex> neighbors(2 * m);
  std::memcpy(neighbors.data(), base + kBinaryHeaderBytes + offsets_bytes,
              neighbor_bytes);

  // Full structural validation (errors name the offending vertex), then
  // the arrays are adopted as-is — no re-sort, no FromEdges rebuild.
  constexpr size_t kVertexGrain = 1 << 14;
  ParallelChunks(0, n, kVertexGrain, [&](size_t vb, size_t ve) {
    for (size_t v = vb; v < ve; ++v) {
      if (offsets[v] > offsets[v + 1]) {
        Fail("corrupt binary offsets at vertex " + std::to_string(v));
      }
      for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        const Vertex w = neighbors[i];
        if (w >= n) {
          Fail("corrupt binary neighbour " + std::to_string(w) +
               " at vertex " + std::to_string(v));
        }
        if (w == v) Fail("binary graph has a self-loop at vertex " + std::to_string(v));
        if (i > offsets[v] && neighbors[i - 1] >= w) {
          Fail("binary adjacency list of vertex " + std::to_string(v) +
               " is not sorted and duplicate-free");
        }
      }
    }
  });
  // Symmetry in O(m): scanning v in ascending order, the occurrences of a
  // fixed w across adjacency lists arrive in ascending v — so they must
  // consume N(w) front to back exactly. Every entry is consumed once
  // (counts match by construction), so a single pass of cursor checks
  // proves {v : w in N(v)} == N(w) for all w.
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (uint64_t v = 0; v < n; ++v) {
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const Vertex w = neighbors[i];
      if (cursor[w] >= offsets[w + 1] || neighbors[cursor[w]] != v) {
        Fail("binary graph is not symmetric: edge (" + std::to_string(v) +
             ", " + std::to_string(w) + ") has no reverse entry");
      }
      ++cursor[w];
    }
  }
  return Graph::FromCsr(std::move(offsets), std::move(neighbors));
}

}  // namespace

void WriteBinary(const Graph& g, std::ostream& out) {
  const uint64_t n = g.NumVertices();
  const uint64_t m = g.NumEdges();
  out.write(kBinaryMagic, 4);
  out.write(reinterpret_cast<const char*>(&kBinaryVersion), sizeof(uint32_t));
  out.write(reinterpret_cast<const char*>(&n), sizeof(uint64_t));
  out.write(reinterpret_cast<const char*>(&m), sizeof(uint64_t));
  std::vector<uint64_t> offsets(n + 1);
  for (uint64_t v = 0; v < n; ++v) offsets[v] = g.EdgeBegin(static_cast<Vertex>(v));
  offsets[n] = 2 * m;
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));
  if (m > 0) {
    // Adjacency slices are contiguous in CSR order, so the whole
    // neighbour array can be emitted in one write.
    out.write(reinterpret_cast<const char*>(g.Neighbors(0).data()),
              static_cast<std::streamsize>(2 * m * sizeof(Vertex)));
  }
}

Graph ReadBinary(std::istream& in) { return ParseBinary(ReadStreamToString(in)); }

void WriteBinaryFile(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) Fail("cannot open " + path + " for writing");
  WriteBinary(g, out);
  out.flush();
  if (!out) Fail("write failed for " + path);
}

Graph ReadBinaryFile(const std::string& path) {
  MmapFile file = MmapFile::Open(path);
  return ParseBinary(file.view());
}

// ---- one-stop loader + sidecar cache ------------------------------------

GraphFormat GuessGraphFormat(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = base.find_last_of('.');
  if (dot == std::string::npos) return GraphFormat::kEdgeList;
  std::string ext = base.substr(dot + 1);
  for (char& c : ext) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (ext == "rpmi" || ext == "bin") return GraphFormat::kBinary;
  if (ext == "dimacs" || ext == "col" || ext == "clq") return GraphFormat::kDimacs;
  if (ext == "graph" || ext == "metis") return GraphFormat::kMetis;
  return GraphFormat::kEdgeList;
}

std::string GraphCachePath(const std::string& path) { return path + ".rpmi"; }

Graph LoadGraphFile(const std::string& path, const LoadOptions& options) {
  obs::TraceSpan span(obs::Trace(), "ingest.load_graph");
  namespace fs = std::filesystem;
  const GraphFormat format = options.format == GraphFormat::kAuto
                                 ? GuessGraphFormat(path)
                                 : options.format;
  if (format == GraphFormat::kBinary) return ReadBinaryFile(path);

  const std::string cache = GraphCachePath(path);
  if (options.use_cache) {
    std::error_code cache_ec, source_ec;
    const auto cache_time = fs::last_write_time(cache, cache_ec);
    const auto source_time = fs::last_write_time(path, source_ec);
    if (!cache_ec && !source_ec && cache_time >= source_time) {
      try {
        return ReadBinaryFile(cache);
      } catch (const std::exception&) {
        // Corrupt or incompatible cache: fall through and rebuild it.
      }
    }
  }

  MmapFile file = MmapFile::Open(path);
  Graph g;
  switch (format) {
    case GraphFormat::kEdgeList:
      g = ParseEdgeList(file.view());
      break;
    case GraphFormat::kDimacs:
      g = ParseDimacs(file.view());
      break;
    case GraphFormat::kMetis:
      g = ParseMetis(file.view());
      break;
    default:
      Fail("unsupported format for " + path);
  }

  if (options.use_cache) {
    // Best effort: a read-only directory simply skips the cache. Write to
    // a temp name and rename so readers never observe a partial cache.
    const std::string tmp = cache + ".tmp";
    std::error_code ec;
    try {
      WriteBinaryFile(g, tmp);
      fs::rename(tmp, cache, ec);
      if (ec) fs::remove(tmp, ec);
    } catch (const std::exception&) {
      fs::remove(tmp, ec);
    }
  }
  return g;
}

}  // namespace rpmis
