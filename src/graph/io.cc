#include "graph/io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace rpmis {

namespace {

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error("rpmis::io: " + what);
}

bool IsCommentOrBlank(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '#' || c == '%';
  }
  return true;  // blank
}

}  // namespace

Graph ReadEdgeList(std::istream& in) {
  std::unordered_map<uint64_t, Vertex> remap;
  std::vector<Edge> edges;
  std::string line;
  auto intern = [&](uint64_t raw) {
    auto [it, inserted] = remap.emplace(raw, static_cast<Vertex>(remap.size()));
    (void)inserted;
    return it->second;
  };
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ls(line);
    uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) Fail("malformed edge at line " + std::to_string(line_no));
    edges.emplace_back(intern(a), intern(b));
  }
  return Graph::FromEdges(static_cast<Vertex>(remap.size()), edges);
}

Graph ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) Fail("cannot open " + path);
  return ReadEdgeList(in);
}

void WriteEdgeList(const Graph& g, std::ostream& out) {
  out << "# rpmis edge list: " << g.NumVertices() << " vertices, "
      << g.NumEdges() << " edges\n";
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (Vertex w : g.Neighbors(v)) {
      if (v < w) out << v << ' ' << w << '\n';
    }
  }
}

void WriteEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) Fail("cannot open " + path + " for writing");
  WriteEdgeList(g, out);
}

Graph ReadDimacs(std::istream& in) {
  std::string line;
  Vertex n = 0;
  std::vector<Edge> edges;
  bool saw_problem = false;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'p') {
      std::string fmt;
      uint64_t nn = 0, mm = 0;
      if (!(ls >> fmt >> nn >> mm)) Fail("bad DIMACS problem line");
      n = static_cast<Vertex>(nn);
      edges.reserve(mm);
      saw_problem = true;
    } else if (kind == 'e') {
      if (!saw_problem) Fail("DIMACS edge before problem line");
      uint64_t a = 0, b = 0;
      if (!(ls >> a >> b) || a == 0 || b == 0 || a > n || b > n) {
        Fail("bad DIMACS edge at line " + std::to_string(line_no));
      }
      edges.emplace_back(static_cast<Vertex>(a - 1), static_cast<Vertex>(b - 1));
    }
  }
  if (!saw_problem) Fail("missing DIMACS problem line");
  return Graph::FromEdges(n, edges);
}

void WriteDimacs(const Graph& g, std::ostream& out) {
  out << "p edge " << g.NumVertices() << ' ' << g.NumEdges() << '\n';
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (Vertex w : g.Neighbors(v)) {
      if (v < w) out << "e " << (v + 1) << ' ' << (w + 1) << '\n';
    }
  }
}

Graph ReadMetis(std::istream& in) {
  std::string line;
  // Header: n m [fmt]
  do {
    if (!std::getline(in, line)) Fail("empty METIS file");
  } while (!line.empty() && line[0] == '%');
  std::istringstream hs(line);
  uint64_t n = 0, m = 0, fmt = 0;
  if (!(hs >> n >> m)) Fail("bad METIS header");
  if (hs >> fmt && fmt != 0) Fail("weighted METIS files are not supported");

  std::vector<Edge> edges;
  edges.reserve(m);
  Vertex v = 0;
  while (v < n && std::getline(in, line)) {
    if (!line.empty() && line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t w = 0;
    while (ls >> w) {
      if (w == 0 || w > n) Fail("bad METIS neighbour for vertex " + std::to_string(v + 1));
      edges.emplace_back(v, static_cast<Vertex>(w - 1));
    }
    ++v;
  }
  if (v != n) Fail("METIS file truncated");
  return Graph::FromEdges(static_cast<Vertex>(n), edges);
}

void WriteMetis(const Graph& g, std::ostream& out) {
  out << g.NumVertices() << ' ' << g.NumEdges() << '\n';
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    bool first = true;
    for (Vertex w : g.Neighbors(v)) {
      if (!first) out << ' ';
      out << (w + 1);
      first = false;
    }
    out << '\n';
  }
}

namespace {

constexpr char kBinaryMagic[4] = {'R', 'P', 'M', 'I'};
constexpr uint32_t kBinaryVersion = 1;

template <typename T>
void PutRaw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T GetRaw(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) Fail("truncated binary graph");
  return value;
}

}  // namespace

void WriteBinary(const Graph& g, std::ostream& out) {
  out.write(kBinaryMagic, 4);
  PutRaw(out, kBinaryVersion);
  PutRaw(out, static_cast<uint64_t>(g.NumVertices()));
  PutRaw(out, g.NumEdges());
  for (Vertex v = 0; v <= g.NumVertices(); ++v) {
    PutRaw(out, v == g.NumVertices() ? 2 * g.NumEdges() : g.EdgeBegin(v));
  }
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (Vertex w : g.Neighbors(v)) PutRaw(out, w);
  }
}

Graph ReadBinary(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kBinaryMagic, 4) != 0) {
    Fail("bad binary graph magic");
  }
  if (GetRaw<uint32_t>(in) != kBinaryVersion) Fail("unsupported version");
  const uint64_t n = GetRaw<uint64_t>(in);
  const uint64_t m = GetRaw<uint64_t>(in);
  std::vector<uint64_t> offsets(n + 1);
  for (uint64_t v = 0; v <= n; ++v) offsets[v] = GetRaw<uint64_t>(in);
  if (offsets[0] != 0 || offsets[n] != 2 * m) Fail("corrupt binary offsets");
  std::vector<Edge> edges;
  edges.reserve(m);
  for (uint64_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) Fail("corrupt binary offsets");
    for (uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const Vertex w = GetRaw<Vertex>(in);
      if (w >= n) Fail("corrupt binary neighbour");
      if (v < w) edges.emplace_back(static_cast<Vertex>(v), w);
    }
  }
  return Graph::FromEdges(static_cast<Vertex>(n), edges);
}

void WriteBinaryFile(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) Fail("cannot open " + path + " for writing");
  WriteBinary(g, out);
}

Graph ReadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) Fail("cannot open " + path);
  return ReadBinary(in);
}

}  // namespace rpmis
