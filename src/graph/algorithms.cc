#include "graph/algorithms.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "ds/bucket_queue.h"

namespace rpmis {

ComponentInfo ConnectedComponents(const Graph& g) {
  const Vertex n = g.NumVertices();
  ComponentInfo info;
  info.component_id.assign(n, kInvalidVertex);

  std::vector<Vertex> queue;
  queue.reserve(n);
  for (Vertex s = 0; s < n; ++s) {
    if (info.component_id[s] != kInvalidVertex) continue;
    const Vertex c = info.num_components++;
    info.component_id[s] = c;
    queue.push_back(s);
    size_t head = queue.size() - 1;
    while (head < queue.size()) {
      const Vertex v = queue[head++];
      for (Vertex w : g.Neighbors(v)) {
        if (info.component_id[w] == kInvalidVertex) {
          info.component_id[w] = c;
          queue.push_back(w);
        }
      }
    }
  }

  // Group members by component with a counting sort; scanning v in
  // increasing order is what makes each slice sorted (see the header
  // contract). The offsets array doubles as the placement cursor and is
  // shifted back afterwards, so no extra size-C scratch is needed.
  info.offsets.assign(static_cast<size_t>(info.num_components) + 1, 0);
  for (Vertex v = 0; v < n; ++v) ++info.offsets[info.component_id[v] + 1];
  for (size_t c = 1; c < info.offsets.size(); ++c) info.offsets[c] += info.offsets[c - 1];
  info.members.resize(n);
  for (Vertex v = 0; v < n; ++v) info.members[info.offsets[info.component_id[v]]++] = v;
  for (size_t c = info.offsets.size() - 1; c > 0; --c) info.offsets[c] = info.offsets[c - 1];
  info.offsets[0] = 0;
  return info;
}

ComponentExtractor::ComponentExtractor(const Graph& g, ComponentInfo cc)
    : g_(&g), cc_(std::move(cc)) {
  RPMIS_ASSERT(cc_.component_id.size() == g.NumVertices());
  local_id_.resize(g.NumVertices());
  for (Vertex c = 0; c < cc_.num_components; ++c) {
    const uint64_t begin = cc_.offsets[c];
    for (uint64_t i = begin; i < cc_.offsets[c + 1]; ++i) {
      local_id_[cc_.members[i]] = static_cast<Vertex>(i - begin);
    }
  }
}

Graph ComponentExtractor::Extract(Vertex c) const {
  const std::span<const Vertex> members = cc_.Members(c);
  std::vector<uint64_t> offsets(members.size() + 1);
  offsets[0] = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    offsets[i + 1] = offsets[i] + g_->Degree(members[i]);
  }
  std::vector<Vertex> neighbors;
  neighbors.reserve(offsets.back());
  // Every neighbour is in the same component, and the monotonic renaming
  // keeps each (sorted) adjacency slice sorted, so the arrays below are a
  // valid CSR as-is — no normalization pass.
  for (Vertex v : members) {
    for (Vertex w : g_->Neighbors(v)) neighbors.push_back(local_id_[w]);
  }
  return Graph::FromCsr(std::move(offsets), std::move(neighbors));
}

void CheckEdgeIdsFit32Bits(uint64_t directed_edges) {
  if (directed_edges >= static_cast<uint64_t>(kInvalidVertex)) {
    throw std::runtime_error(
        "rpmis::algorithms: graph too large for 32-bit edge ids (" +
        std::to_string(directed_edges) + " directed edges, limit " +
        std::to_string(static_cast<uint64_t>(kInvalidVertex) - 1) + ")");
  }
}

std::vector<uint32_t> ReverseEdgeIndex(const Graph& g) {
  const uint64_t directed = 2 * g.NumEdges();
  CheckEdgeIdsFit32Bits(directed);
  std::vector<uint32_t> rev(directed);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    const auto nb = g.Neighbors(v);
    for (size_t i = 0; i < nb.size(); ++i) {
      const Vertex w = nb[i];
      const auto wn = g.Neighbors(w);
      const auto it = std::lower_bound(wn.begin(), wn.end(), v);
      RPMIS_DASSERT(it != wn.end() && *it == v);
      rev[g.EdgeBegin(v) + i] =
          static_cast<uint32_t>(g.EdgeBegin(w) + (it - wn.begin()));
    }
  }
  return rev;
}

std::vector<uint32_t> EdgeTriangleCounts(const Graph& g) {
  const uint64_t directed = 2 * g.NumEdges();
  CheckEdgeIdsFit32Bits(directed);
  std::vector<uint32_t> delta(directed, 0);
  const std::vector<uint32_t> rev = ReverseEdgeIndex(g);
  for (Vertex u = 0; u < g.NumVertices(); ++u) {
    const auto un = g.Neighbors(u);
    for (size_t i = 0; i < un.size(); ++i) {
      const Vertex v = un[i];
      if (u > v) continue;  // count each undirected edge once
      // Sorted-merge intersection of N(u) and N(v).
      const auto vn = g.Neighbors(v);
      uint32_t count = 0;
      size_t a = 0, b = 0;
      while (a < un.size() && b < vn.size()) {
        if (un[a] < vn[b]) {
          ++a;
        } else if (un[a] > vn[b]) {
          ++b;
        } else {
          ++count;
          ++a;
          ++b;
        }
      }
      const uint64_t e = g.EdgeBegin(u) + i;
      delta[e] = count;
      delta[rev[e]] = count;
    }
  }
  return delta;
}

uint64_t CountTriangles(const Graph& g) {
  const std::vector<uint32_t> delta = EdgeTriangleCounts(g);
  uint64_t total = 0;
  for (uint32_t d : delta) total += d;
  // Each triangle is counted once per directed edge of its three edges.
  return total / 6;
}

CoreDecomposition ComputeCores(const Graph& g) {
  const Vertex n = g.NumVertices();
  CoreDecomposition out;
  out.core.assign(n, 0);
  out.order.reserve(n);
  if (n == 0) return out;

  std::vector<uint32_t> deg(n);
  for (Vertex v = 0; v < n; ++v) deg[v] = g.Degree(v);
  BucketQueue q = BucketQueue::FromKeys(deg, g.MaxDegree());
  uint32_t current = 0;
  while (!q.Empty()) {
    const uint32_t k = q.MinKey();
    current = std::max(current, k);
    const Vertex v = q.PopMin();
    out.core[v] = current;
    out.order.push_back(v);
    for (Vertex w : g.Neighbors(v)) {
      if (q.Contains(w) && q.KeyOf(w) > 0) q.Update(w, q.KeyOf(w) - 1);
    }
  }
  out.degeneracy = current;
  return out;
}

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats s;
  const Vertex n = g.NumVertices();
  if (n == 0) return s;
  s.min_degree = ~0u;
  for (Vertex v = 0; v < n; ++v) {
    const uint32_t d = g.Degree(v);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d <= 2) ++s.num_degree_le2;
  }
  s.avg_degree = g.AverageDegree();
  return s;
}

std::vector<uint64_t> DegreeHistogram(const Graph& g) {
  std::vector<uint64_t> histogram(g.NumVertices() == 0 ? 0 : g.MaxDegree() + 1, 0);
  for (Vertex v = 0; v < g.NumVertices(); ++v) ++histogram[g.Degree(v)];
  return histogram;
}

double GlobalClusteringCoefficient(const Graph& g) {
  uint64_t wedges = 0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    const uint64_t d = g.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) /
         static_cast<double>(wedges);
}

}  // namespace rpmis
