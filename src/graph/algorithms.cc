#include "graph/algorithms.h"

#include <algorithm>

#include "ds/bucket_queue.h"

namespace rpmis {

ComponentInfo ConnectedComponents(const Graph& g) {
  const Vertex n = g.NumVertices();
  ComponentInfo info;
  info.component_id.assign(n, kInvalidVertex);

  std::vector<Vertex> queue;
  queue.reserve(n);
  for (Vertex s = 0; s < n; ++s) {
    if (info.component_id[s] != kInvalidVertex) continue;
    const Vertex c = info.num_components++;
    info.component_id[s] = c;
    queue.push_back(s);
    size_t head = queue.size() - 1;
    while (head < queue.size()) {
      const Vertex v = queue[head++];
      for (Vertex w : g.Neighbors(v)) {
        if (info.component_id[w] == kInvalidVertex) {
          info.component_id[w] = c;
          queue.push_back(w);
        }
      }
    }
  }

  // Group members by component with a counting sort.
  info.offsets.assign(static_cast<size_t>(info.num_components) + 1, 0);
  for (Vertex v = 0; v < n; ++v) ++info.offsets[info.component_id[v] + 1];
  for (size_t c = 1; c < info.offsets.size(); ++c) info.offsets[c] += info.offsets[c - 1];
  info.members.resize(n);
  std::vector<uint64_t> cursor(info.offsets.begin(), info.offsets.end() - 1);
  for (Vertex v = 0; v < n; ++v) info.members[cursor[info.component_id[v]]++] = v;
  return info;
}

std::vector<uint32_t> ReverseEdgeIndex(const Graph& g) {
  const uint64_t directed = 2 * g.NumEdges();
  RPMIS_ASSERT_MSG(directed < static_cast<uint64_t>(kInvalidVertex),
                   "graph too large for 32-bit edge ids");
  std::vector<uint32_t> rev(directed);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    const auto nb = g.Neighbors(v);
    for (size_t i = 0; i < nb.size(); ++i) {
      const Vertex w = nb[i];
      const auto wn = g.Neighbors(w);
      const auto it = std::lower_bound(wn.begin(), wn.end(), v);
      RPMIS_DASSERT(it != wn.end() && *it == v);
      rev[g.EdgeBegin(v) + i] =
          static_cast<uint32_t>(g.EdgeBegin(w) + (it - wn.begin()));
    }
  }
  return rev;
}

std::vector<uint32_t> EdgeTriangleCounts(const Graph& g) {
  const uint64_t directed = 2 * g.NumEdges();
  RPMIS_ASSERT(directed < static_cast<uint64_t>(kInvalidVertex));
  std::vector<uint32_t> delta(directed, 0);
  const std::vector<uint32_t> rev = ReverseEdgeIndex(g);
  for (Vertex u = 0; u < g.NumVertices(); ++u) {
    const auto un = g.Neighbors(u);
    for (size_t i = 0; i < un.size(); ++i) {
      const Vertex v = un[i];
      if (u > v) continue;  // count each undirected edge once
      // Sorted-merge intersection of N(u) and N(v).
      const auto vn = g.Neighbors(v);
      uint32_t count = 0;
      size_t a = 0, b = 0;
      while (a < un.size() && b < vn.size()) {
        if (un[a] < vn[b]) {
          ++a;
        } else if (un[a] > vn[b]) {
          ++b;
        } else {
          ++count;
          ++a;
          ++b;
        }
      }
      const uint64_t e = g.EdgeBegin(u) + i;
      delta[e] = count;
      delta[rev[e]] = count;
    }
  }
  return delta;
}

uint64_t CountTriangles(const Graph& g) {
  const std::vector<uint32_t> delta = EdgeTriangleCounts(g);
  uint64_t total = 0;
  for (uint32_t d : delta) total += d;
  // Each triangle is counted once per directed edge of its three edges.
  return total / 6;
}

CoreDecomposition ComputeCores(const Graph& g) {
  const Vertex n = g.NumVertices();
  CoreDecomposition out;
  out.core.assign(n, 0);
  out.order.reserve(n);
  if (n == 0) return out;

  std::vector<uint32_t> deg(n);
  for (Vertex v = 0; v < n; ++v) deg[v] = g.Degree(v);
  BucketQueue q = BucketQueue::FromKeys(deg, g.MaxDegree());
  uint32_t current = 0;
  while (!q.Empty()) {
    const uint32_t k = q.MinKey();
    current = std::max(current, k);
    const Vertex v = q.PopMin();
    out.core[v] = current;
    out.order.push_back(v);
    for (Vertex w : g.Neighbors(v)) {
      if (q.Contains(w) && q.KeyOf(w) > 0) q.Update(w, q.KeyOf(w) - 1);
    }
  }
  out.degeneracy = current;
  return out;
}

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats s;
  const Vertex n = g.NumVertices();
  if (n == 0) return s;
  s.min_degree = ~0u;
  for (Vertex v = 0; v < n; ++v) {
    const uint32_t d = g.Degree(v);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d <= 2) ++s.num_degree_le2;
  }
  s.avg_degree = g.AverageDegree();
  return s;
}

std::vector<uint64_t> DegreeHistogram(const Graph& g) {
  std::vector<uint64_t> histogram(g.NumVertices() == 0 ? 0 : g.MaxDegree() + 1, 0);
  for (Vertex v = 0; v < g.NumVertices(); ++v) ++histogram[g.Degree(v)];
  return histogram;
}

double GlobalClusteringCoefficient(const Graph& g) {
  uint64_t wedges = 0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    const uint64_t d = g.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) /
         static_cast<double>(wedges);
}

}  // namespace rpmis
