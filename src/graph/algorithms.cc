#include "graph/algorithms.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "ds/bucket_queue.h"

namespace rpmis {

ComponentInfo ConnectedComponents(const Graph& g) {
  const Vertex n = g.NumVertices();
  ComponentInfo info;
  info.component_id.assign(n, kInvalidVertex);

  std::vector<Vertex> queue;
  queue.reserve(n);
  for (Vertex s = 0; s < n; ++s) {
    if (info.component_id[s] != kInvalidVertex) continue;
    const Vertex c = info.num_components++;
    info.component_id[s] = c;
    queue.push_back(s);
    size_t head = queue.size() - 1;
    while (head < queue.size()) {
      const Vertex v = queue[head++];
      for (Vertex w : g.Neighbors(v)) {
        if (info.component_id[w] == kInvalidVertex) {
          info.component_id[w] = c;
          queue.push_back(w);
        }
      }
    }
  }

  // Group members by component with a counting sort; scanning v in
  // increasing order is what makes each slice sorted (see the header
  // contract). The offsets array doubles as the placement cursor and is
  // shifted back afterwards, so no extra size-C scratch is needed.
  info.offsets.assign(static_cast<size_t>(info.num_components) + 1, 0);
  for (Vertex v = 0; v < n; ++v) ++info.offsets[info.component_id[v] + 1];
  for (size_t c = 1; c < info.offsets.size(); ++c) info.offsets[c] += info.offsets[c - 1];
  info.members.resize(n);
  for (Vertex v = 0; v < n; ++v) info.members[info.offsets[info.component_id[v]]++] = v;
  for (size_t c = info.offsets.size() - 1; c > 0; --c) info.offsets[c] = info.offsets[c - 1];
  info.offsets[0] = 0;
  return info;
}

ComponentExtractor::ComponentExtractor(const Graph& g, ComponentInfo cc)
    : g_(&g), cc_(std::move(cc)) {
  RPMIS_ASSERT(cc_.component_id.size() == g.NumVertices());
  local_id_.resize(g.NumVertices());
  for (Vertex c = 0; c < cc_.num_components; ++c) {
    const uint64_t begin = cc_.offsets[c];
    for (uint64_t i = begin; i < cc_.offsets[c + 1]; ++i) {
      local_id_[cc_.members[i]] = static_cast<Vertex>(i - begin);
    }
  }
}

Graph ComponentExtractor::Extract(Vertex c) const {
  const std::span<const Vertex> members = cc_.Members(c);
  std::vector<uint64_t> offsets(members.size() + 1);
  offsets[0] = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    offsets[i + 1] = offsets[i] + g_->Degree(members[i]);
  }
  std::vector<Vertex> neighbors;
  neighbors.reserve(offsets.back());
  // Every neighbour is in the same component, and the monotonic renaming
  // keeps each (sorted) adjacency slice sorted, so the arrays below are a
  // valid CSR as-is — no normalization pass.
  for (Vertex v : members) {
    for (Vertex w : g_->Neighbors(v)) neighbors.push_back(local_id_[w]);
  }
  return Graph::FromCsr(std::move(offsets), std::move(neighbors));
}

void CheckEdgeIdsFit32Bits(uint64_t directed_edges) {
  if (directed_edges >= static_cast<uint64_t>(kInvalidVertex)) {
    throw std::runtime_error(
        "rpmis::algorithms: graph too large for 32-bit edge ids (" +
        std::to_string(directed_edges) + " directed edges, limit " +
        std::to_string(static_cast<uint64_t>(kInvalidVertex) - 1) + ")");
  }
}

std::vector<uint32_t> ReverseEdgeIndex(const Graph& g) {
  const uint64_t directed = 2 * g.NumEdges();
  CheckEdgeIdsFit32Bits(directed);
  std::vector<uint32_t> rev(directed);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    const auto nb = g.Neighbors(v);
    for (size_t i = 0; i < nb.size(); ++i) {
      const Vertex w = nb[i];
      const auto wn = g.Neighbors(w);
      const auto it = std::lower_bound(wn.begin(), wn.end(), v);
      RPMIS_DASSERT(it != wn.end() && *it == v);
      rev[g.EdgeBegin(v) + i] =
          static_cast<uint32_t>(g.EdgeBegin(w) + (it - wn.begin()));
    }
  }
  return rev;
}

std::vector<uint32_t> EdgeTriangleCounts(const Graph& g) {
  const uint64_t directed = 2 * g.NumEdges();
  CheckEdgeIdsFit32Bits(directed);
  std::vector<uint32_t> delta(directed, 0);
  const std::vector<uint32_t> rev = ReverseEdgeIndex(g);
  const Vertex n = g.NumVertices();
  // plus_begin[v]: first slot of v whose neighbour id exceeds v, i.e. the
  // start of the "forward" sublist A+(v). Sorted adjacency makes A+ a
  // contiguous suffix.
  std::vector<uint64_t> plus_begin(n);
  for (Vertex v = 0; v < n; ++v) {
    const auto vn = g.Neighbors(v);
    plus_begin[v] =
        g.EdgeBegin(v) + (std::upper_bound(vn.begin(), vn.end(), v) - vn.begin());
  }
  // Forward triangle enumeration: every triangle {u < v < w} is discovered
  // exactly once — while merging the post-v suffix of N(u) against A+(v) for
  // the edge (u, v) — and credits all three of its edges (both directions
  // each). Per-edge totals therefore equal |N(u) ∩ N(v)| without ever
  // re-walking full adjacency lists.
  for (Vertex u = 0; u < n; ++u) {
    const uint64_t u_end = g.EdgeEnd(u);
    for (uint64_t e = plus_begin[u]; e < u_end; ++e) {
      const Vertex v = g.EdgeTarget(e);
      const uint64_t v_end = g.EdgeEnd(v);
      uint64_t a = e + 1;  // slots after v in N(u): ids > v
      uint64_t b = plus_begin[v];
      while (a < u_end && b < v_end) {
        const Vertex wa = g.EdgeTarget(a);
        const Vertex wb = g.EdgeTarget(b);
        if (wa < wb) {
          ++a;
        } else if (wa > wb) {
          ++b;
        } else {
          ++delta[e];
          ++delta[rev[e]];
          ++delta[a];
          ++delta[rev[a]];
          ++delta[b];
          ++delta[rev[b]];
          ++a;
          ++b;
        }
      }
    }
  }
  return delta;
}

uint64_t CountTriangles(const Graph& g) {
  const std::vector<uint32_t> delta = EdgeTriangleCounts(g);
  uint64_t total = 0;
  for (uint32_t d : delta) total += d;
  // Each triangle is counted once per directed edge of its three edges.
  return total / 6;
}

CoreDecomposition ComputeCores(const Graph& g) {
  const Vertex n = g.NumVertices();
  CoreDecomposition out;
  out.core.assign(n, 0);
  out.order.reserve(n);
  if (n == 0) return out;

  std::vector<uint32_t> deg(n);
  for (Vertex v = 0; v < n; ++v) deg[v] = g.Degree(v);
  BucketQueue q = BucketQueue::FromKeys(deg, g.MaxDegree());
  uint32_t current = 0;
  while (!q.Empty()) {
    const uint32_t k = q.MinKey();
    current = std::max(current, k);
    const Vertex v = q.PopMin();
    out.core[v] = current;
    out.order.push_back(v);
    for (Vertex w : g.Neighbors(v)) {
      if (q.Contains(w) && q.KeyOf(w) > 0) q.Update(w, q.KeyOf(w) - 1);
    }
  }
  out.degeneracy = current;
  return out;
}

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats s;
  const Vertex n = g.NumVertices();
  if (n == 0) return s;
  s.min_degree = ~0u;
  for (Vertex v = 0; v < n; ++v) {
    const uint32_t d = g.Degree(v);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d <= 2) ++s.num_degree_le2;
  }
  s.avg_degree = g.AverageDegree();
  return s;
}

std::vector<uint64_t> DegreeHistogram(const Graph& g) {
  std::vector<uint64_t> histogram(g.NumVertices() == 0 ? 0 : g.MaxDegree() + 1, 0);
  for (Vertex v = 0; v < g.NumVertices(); ++v) ++histogram[g.Degree(v)];
  return histogram;
}

double GlobalClusteringCoefficient(const Graph& g) {
  uint64_t wedges = 0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    const uint64_t d = g.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) /
         static_cast<double>(wedges);
}

}  // namespace rpmis
