#include "graph/graph.h"

#include <algorithm>
#include <atomic>

#include "support/parallel.h"

namespace rpmis {

namespace {

// Below this size the fixed costs of the parallel build (thread spawns,
// two atomic arrays) exceed any possible win.
constexpr size_t kParallelEdgeThreshold = 1 << 15;

}  // namespace

Graph Graph::FromEdges(Vertex n, std::span<const Edge> edges) {
  if (edges.size() >= kParallelEdgeThreshold && n > 0 && NumThreads() > 1) {
    return FromEdgesParallel(n, edges);
  }
  return FromEdgesSerial(n, edges);
}

Graph Graph::FromEdgesSerial(Vertex n, std::span<const Edge> edges) {
  Graph g;
  g.offsets_.assign(static_cast<size_t>(n) + 1, 0);

  // Count directed degrees, skipping self-loops. Duplicates are removed
  // after sorting, which wastes a little transient space but keeps the
  // build a simple two-pass counting sort (O(n + m)).
  for (const auto& [u, v] : edges) {
    RPMIS_ASSERT(u < n && v < n);
    if (u == v) continue;
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];

  g.neighbors_.resize(g.offsets_.back());
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    g.neighbors_[cursor[u]++] = v;
    g.neighbors_[cursor[v]++] = u;
  }

  // Sort each adjacency list and drop duplicates in place, then compact.
  std::vector<uint64_t> new_offsets(static_cast<size_t>(n) + 1, 0);
  uint64_t write = 0;
  for (Vertex v = 0; v < n; ++v) {
    const uint64_t begin = g.offsets_[v];
    const uint64_t end = g.offsets_[v + 1];
    std::sort(g.neighbors_.begin() + begin, g.neighbors_.begin() + end);
    uint64_t unique_end = begin;
    for (uint64_t i = begin; i < end; ++i) {
      if (i == begin || g.neighbors_[i] != g.neighbors_[i - 1]) {
        g.neighbors_[unique_end++] = g.neighbors_[i];
      }
    }
    // Compact towards `write` (always <= begin, so copies are safe).
    for (uint64_t i = begin; i < unique_end; ++i) {
      g.neighbors_[write + (i - begin)] = g.neighbors_[i];
    }
    new_offsets[v] = write;
    write += unique_end - begin;
  }
  new_offsets[n] = write;
  g.neighbors_.resize(write);
  g.neighbors_.shrink_to_fit();
  g.offsets_ = std::move(new_offsets);
  return g;
}

Graph Graph::FromEdgesParallel(Vertex n, std::span<const Edge> edges) {
  constexpr size_t kEdgeGrain = 1 << 16;
  constexpr size_t kVertexGrain = 1 << 14;
  const size_t num_vertices = n;

  // Pass 1: directed degrees. Relaxed atomics suffice — counts are only
  // combined at the ParallelChunks join, which is a full barrier.
  std::vector<std::atomic<uint64_t>> degree(num_vertices);
  ParallelChunks(0, edges.size(), kEdgeGrain, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      const auto& [u, v] = edges[i];
      RPMIS_ASSERT(u < n && v < n);
      if (u == v) continue;
      degree[u].fetch_add(1, std::memory_order_relaxed);
      degree[v].fetch_add(1, std::memory_order_relaxed);
    }
  });

  Graph g;
  g.offsets_.resize(num_vertices + 1);
  g.offsets_[0] = 0;
  for (size_t v = 0; v < num_vertices; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + degree[v].load(std::memory_order_relaxed);
  }

  // Pass 2: placement. Slots within one vertex's slice are claimed in
  // scheduling order, so the raw slice content is nondeterministic — the
  // sort below canonicalizes it (entries are plain vertex ids, so equal
  // elements are indistinguishable and the final CSR is unique).
  std::vector<std::atomic<uint64_t>> cursor(num_vertices);
  ParallelChunks(0, num_vertices, kVertexGrain, [&](size_t b, size_t e) {
    for (size_t v = b; v < e; ++v) {
      cursor[v].store(g.offsets_[v], std::memory_order_relaxed);
    }
  });
  g.neighbors_.resize(g.offsets_.back());
  ParallelChunks(0, edges.size(), kEdgeGrain, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      const auto& [u, v] = edges[i];
      if (u == v) continue;
      g.neighbors_[cursor[u].fetch_add(1, std::memory_order_relaxed)] = v;
      g.neighbors_[cursor[v].fetch_add(1, std::memory_order_relaxed)] = u;
    }
  });

  // Pass 3: per-vertex sort + dedup in place; unique counts land in the
  // (repurposed) degree array for the serial prefix sum.
  ParallelChunks(0, num_vertices, kVertexGrain, [&](size_t b, size_t e) {
    for (size_t v = b; v < e; ++v) {
      const uint64_t begin = g.offsets_[v];
      const uint64_t end = g.offsets_[v + 1];
      std::sort(g.neighbors_.begin() + begin, g.neighbors_.begin() + end);
      uint64_t unique_end = begin;
      for (uint64_t i = begin; i < end; ++i) {
        if (i == begin || g.neighbors_[i] != g.neighbors_[i - 1]) {
          g.neighbors_[unique_end++] = g.neighbors_[i];
        }
      }
      degree[v].store(unique_end - begin, std::memory_order_relaxed);
    }
  });

  std::vector<uint64_t> new_offsets(num_vertices + 1);
  new_offsets[0] = 0;
  for (size_t v = 0; v < num_vertices; ++v) {
    new_offsets[v + 1] = new_offsets[v] + degree[v].load(std::memory_order_relaxed);
  }

  // Pass 4: compact the deduplicated slices into their final positions.
  std::vector<Vertex> compacted(new_offsets.back());
  ParallelChunks(0, num_vertices, kVertexGrain, [&](size_t b, size_t e) {
    for (size_t v = b; v < e; ++v) {
      const uint64_t src = g.offsets_[v];
      const uint64_t dst = new_offsets[v];
      const uint64_t len = new_offsets[v + 1] - dst;
      std::copy_n(g.neighbors_.begin() + src, len, compacted.begin() + dst);
    }
  });
  g.neighbors_ = std::move(compacted);
  g.offsets_ = std::move(new_offsets);
  return g;
}

Graph Graph::FromCsr(std::vector<uint64_t> offsets,
                     std::vector<Vertex> neighbors) {
  RPMIS_ASSERT(!offsets.empty());
  RPMIS_ASSERT(offsets.front() == 0);
  RPMIS_ASSERT(offsets.back() == neighbors.size());
  Graph g;
  g.offsets_ = std::move(offsets);
  g.neighbors_ = std::move(neighbors);
  return g;
}

bool Graph::HasEdge(Vertex u, Vertex v) const {
  if (u >= NumVertices() || v >= NumVertices()) return false;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nb = Neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

uint32_t Graph::MaxDegree() const {
  uint32_t best = 0;
  for (Vertex v = 0; v < NumVertices(); ++v) best = std::max(best, Degree(v));
  return best;
}

std::vector<Edge> Graph::CollectEdges() const {
  std::vector<Edge> out;
  out.reserve(NumEdges());
  for (Vertex v = 0; v < NumVertices(); ++v) {
    for (Vertex w : Neighbors(v)) {
      if (v < w) out.emplace_back(v, w);
    }
  }
  return out;
}

Graph Graph::InducedSubgraph(std::span<const Vertex> vertices,
                             std::vector<Vertex>* old_to_new) const {
  std::vector<Vertex> map(NumVertices(), kInvalidVertex);
  Vertex next = 0;
  for (Vertex v : vertices) {
    RPMIS_ASSERT(v < NumVertices());
    RPMIS_ASSERT_MSG(map[v] == kInvalidVertex, "duplicate vertex in subset");
    map[v] = next++;
  }
  std::vector<Edge> edges;
  for (Vertex v : vertices) {
    for (Vertex w : Neighbors(v)) {
      if (map[w] != kInvalidVertex && v < w) edges.emplace_back(map[v], map[w]);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return FromEdges(next, edges);
}

}  // namespace rpmis
