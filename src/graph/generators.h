// Synthetic graph generators.
//
// These stand in for the paper's datasets (see DESIGN.md §4): Chung–Lu
// power-law graphs reproduce the PLR instances of Table 5 (the paper uses
// NetworkX power-law random graphs), G(n,m) reproduces the GTGraph random
// graphs of Table 6, Barabási–Albert and R-MAT provide power-law /
// web-crawl-shaped substitutes for the SNAP and LAW real graphs, and the
// deterministic families are test fixtures — including the Θ(n log n)
// adversarial family from the proof of Theorem 3.1.
#ifndef RPMIS_GRAPH_GENERATORS_H_
#define RPMIS_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace rpmis {

/// Erdős–Rényi G(n, m): exactly m distinct uniform random edges
/// (fewer if m exceeds the number of available pairs).
Graph ErdosRenyiGnm(Vertex n, uint64_t m, uint64_t seed);

/// Erdős–Rényi G(n, p): each pair independently with probability p.
/// Uses geometric skipping, O(n + m) expected. Intended for p = O(1/n).
Graph ErdosRenyiGnp(Vertex n, double p, uint64_t seed);

/// Chung–Lu power-law graph with exponent beta (> 1) and target average
/// degree. Expected degree of the i-th vertex follows w_i ∝ (i + i0)^(-1/(beta-1)),
/// scaled so the expected average degree matches `avg_degree`. This is the
/// PLR model of Table 5.
Graph ChungLuPowerLaw(Vertex n, double beta, double avg_degree, uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to degree.
Graph BarabasiAlbert(Vertex n, uint32_t edges_per_vertex, uint64_t seed);

/// R-MAT generator: 2^scale vertices, `m` sampled edges with quadrant
/// probabilities (a, b, c, implicit d = 1-a-b-c). Duplicates collapse, so
/// the final edge count is slightly below m. Web-crawl-shaped skew.
Graph RMat(uint32_t scale, uint64_t m, double a, double b, double c, uint64_t seed);

/// Chung–Lu power-law graph with a planted Erdős–Rényi core: `core_n`
/// randomly chosen vertices additionally receive a G(core_n, core_m) among
/// themselves, with core_m = core_n * core_avg_degree / 2. Models the
/// dense sub-communities that make real web/social graphs resist
/// kernelization (the paper's instances with non-empty kernels).
Graph PowerLawWithCore(Vertex n, double beta, double avg_degree,
                       Vertex core_n, double core_avg_degree, uint64_t seed);

/// R-MAT graph with a planted Erdős–Rényi core (see PowerLawWithCore).
Graph RMatWithCore(uint32_t scale, uint64_t m, Vertex core_n,
                   double core_avg_degree, uint64_t seed);

/// Deterministic fixtures.
Graph PathGraph(Vertex n);
Graph CycleGraph(Vertex n);
Graph CompleteGraph(Vertex n);
Graph CompleteBipartite(Vertex a, Vertex b);
Graph StarGraph(Vertex leaves);
Graph GridGraph(Vertex rows, Vertex cols);
/// Complete binary tree with n vertices (vertex 0 the root, children 2i+1, 2i+2).
Graph BinaryTree(Vertex n);

/// The adversarial four-layer family from the proof of Theorem 3.1: BDTwo's
/// degree-two folding performs Θ(k log k) work on it while the graph has
/// only Θ(k) edges. `k` must be a power of two (the third-layer width).
Graph Theorem31Gadget(Vertex k);

}  // namespace rpmis

#endif  // RPMIS_GRAPH_GENERATORS_H_
