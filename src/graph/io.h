// Graph readers/writers: whitespace edge lists (SNAP style), DIMACS,
// METIS, and a binary CSR snapshot.
//
// The paper's datasets come from SNAP and the Laboratory of Web
// Algorithmics; both distribute plain edge lists, which is the primary
// format here. DIMACS and METIS are provided for interoperability with
// MIS/VC solver ecosystems (KaMIS, VCSolver artifacts).
//
// Two ingest paths exist per text format:
//   * stream readers (ReadEdgeList & co.) — accept any std::istream; the
//     edge-list one is the legacy line-at-a-time parser kept as the
//     baseline the fast path is benchmarked against.
//   * buffer parsers (ParseEdgeList & co.) — scan a contiguous byte range
//     with std::from_chars; the *File readers mmap the input and use
//     these. The edge-list parser additionally splits the buffer at
//     newline boundaries and scans chunks in parallel (see
//     support/parallel.h; thread count via RPMIS_THREADS).
// Both paths enforce the same strict grammar (a malformed or
// trailing-garbage line is an error naming the 1-based line number) and
// produce identical graphs.
#ifndef RPMIS_GRAPH_IO_H_
#define RPMIS_GRAPH_IO_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/graph.h"

namespace rpmis {

/// Reads a whitespace-separated edge list ("u v" per line). Lines starting
/// with '#' or '%' are comments. Vertex ids are arbitrary non-negative
/// integers and are remapped densely in order of first appearance.
/// Throws std::runtime_error on malformed input, including any non-blank
/// trailing content after the second endpoint.
Graph ReadEdgeList(std::istream& in);
Graph ReadEdgeListFile(const std::string& path);

/// Fast-path edge-list parser over an in-memory buffer (parallel chunked
/// scan + std::from_chars). Same grammar and resulting graph as
/// ReadEdgeList.
Graph ParseEdgeList(std::string_view text);

/// Writes "u v" lines, one per undirected edge, with a '#' header.
void WriteEdgeList(const Graph& g, std::ostream& out);
void WriteEdgeListFile(const Graph& g, const std::string& path);

/// Reads a DIMACS clique/VC instance: "p edge n m" then "e u v" (1-based).
/// The edge count is validated against the header; mismatch is an error.
Graph ReadDimacs(std::istream& in);
Graph ReadDimacsFile(const std::string& path);
Graph ParseDimacs(std::string_view text);

/// Writes DIMACS "p edge" format.
void WriteDimacs(const Graph& g, std::ostream& out);

/// Reads a METIS graph file: header "n m [fmt]", then line i holds the
/// 1-based neighbours of vertex i. Only unweighted (fmt 0) files are
/// supported. The total adjacency entry count is validated against 2*m.
Graph ReadMetis(std::istream& in);
Graph ReadMetisFile(const std::string& path);
Graph ParseMetis(std::string_view text);

/// Writes METIS format.
void WriteMetis(const Graph& g, std::ostream& out);

/// Binary CSR snapshot ("RPMI" magic + version + n + m + offsets +
/// neighbours, little-endian): loads in O(read) with no text parsing, the
/// format to use for repeated experiments on big graphs. Reading fully
/// validates untrusted bytes — payload length up front, then offset
/// monotonicity, neighbour range/order, and adjacency symmetry (errors
/// name the offending vertex) — and adopts the arrays directly without a
/// rebuild.
void WriteBinary(const Graph& g, std::ostream& out);
Graph ReadBinary(std::istream& in);
void WriteBinaryFile(const Graph& g, const std::string& path);
Graph ReadBinaryFile(const std::string& path);

/// On-disk graph formats understood by LoadGraphFile.
enum class GraphFormat { kAuto, kEdgeList, kDimacs, kMetis, kBinary };

/// Format deduced from the file extension: .rpmi/.bin -> binary,
/// .dimacs/.col/.clq -> DIMACS, .graph/.metis -> METIS, anything else ->
/// edge list.
GraphFormat GuessGraphFormat(const std::string& path);

/// Sidecar cache location for a text graph file: `path` + ".rpmi".
std::string GraphCachePath(const std::string& path);

struct LoadOptions {
  GraphFormat format = GraphFormat::kAuto;
  /// When true (default), text loads transparently consult/maintain the
  /// sidecar binary cache: a cache at GraphCachePath(path) at least as new
  /// as the source is loaded instead of parsing; after a parse the cache
  /// is (best-effort, atomically via rename) rewritten. Delete the .rpmi
  /// sidecar or touch the source to invalidate by hand.
  bool use_cache = true;
};

/// One-stop file loader: sniffs the format (unless pinned in `options`),
/// mmaps and parses via the fast path, and maintains the binary sidecar
/// cache. Cache write failures (e.g. read-only directories) are silently
/// ignored; corrupt caches are discarded and rebuilt from the source.
Graph LoadGraphFile(const std::string& path, const LoadOptions& options = {});

}  // namespace rpmis

#endif  // RPMIS_GRAPH_IO_H_
