// Graph readers/writers: whitespace edge lists (SNAP style), DIMACS, METIS.
//
// The paper's datasets come from SNAP and the Laboratory of Web
// Algorithmics; both distribute plain edge lists, which is the primary
// format here. DIMACS and METIS are provided for interoperability with
// MIS/VC solver ecosystems (KaMIS, VCSolver artifacts).
#ifndef RPMIS_GRAPH_IO_H_
#define RPMIS_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace rpmis {

/// Reads a whitespace-separated edge list ("u v" per line). Lines starting
/// with '#' or '%' are comments. Vertex ids are arbitrary non-negative
/// integers and are remapped densely in order of first appearance.
/// Throws std::runtime_error on malformed input.
Graph ReadEdgeList(std::istream& in);
Graph ReadEdgeListFile(const std::string& path);

/// Writes "u v" lines, one per undirected edge, with a '#' header.
void WriteEdgeList(const Graph& g, std::ostream& out);
void WriteEdgeListFile(const Graph& g, const std::string& path);

/// Reads a DIMACS clique/VC instance: "p edge n m" then "e u v" (1-based).
Graph ReadDimacs(std::istream& in);

/// Writes DIMACS "p edge" format.
void WriteDimacs(const Graph& g, std::ostream& out);

/// Reads a METIS graph file: header "n m", then line i holds the 1-based
/// neighbours of vertex i. Only unweighted (fmt 0) files are supported.
Graph ReadMetis(std::istream& in);

/// Writes METIS format.
void WriteMetis(const Graph& g, std::ostream& out);

/// Binary CSR snapshot ("RPMI" magic + version + n + m + offsets +
/// neighbours, little-endian): loads in O(read) with no parsing, the
/// format to use for repeated experiments on big graphs.
void WriteBinary(const Graph& g, std::ostream& out);
Graph ReadBinary(std::istream& in);
void WriteBinaryFile(const Graph& g, const std::string& path);
Graph ReadBinaryFile(const std::string& path);

}  // namespace rpmis

#endif  // RPMIS_GRAPH_IO_H_
