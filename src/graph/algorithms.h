// Shared graph algorithms: connectivity, triangle counts, core numbers.
//
// These are the analytical substrates the paper's algorithms rely on:
// NearLinear (§5) maintains a triangle count per edge to test dominance in
// O(1); its one-pass prepass uses a degree ordering; the exact solver and
// the benchmark harness split graphs into connected components.
#ifndef RPMIS_GRAPH_ALGORITHMS_H_
#define RPMIS_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace rpmis {

/// Connected components labelling.
struct ComponentInfo {
  std::vector<Vertex> component_id;  // per vertex, in [0, num_components)
  Vertex num_components = 0;
  /// Vertices grouped by component, concatenated; component c occupies
  /// [offsets[c], offsets[c+1]). Within each component, members appear in
  /// increasing vertex id order (counting sort) — the renaming old id ->
  /// slice position is therefore monotonic, which keeps renamed adjacency
  /// lists sorted (ComponentExtractor relies on this).
  std::vector<Vertex> members;
  std::vector<uint64_t> offsets;

  /// View of component c's member list (no copy).
  std::span<const Vertex> Members(Vertex c) const {
    RPMIS_DASSERT(c < num_components);
    return {members.data() + offsets[c], members.data() + offsets[c + 1]};
  }
};

/// Computes connected components by a non-recursive BFS over one reusable
/// frontier. O(n + m), no per-component allocation.
ComponentInfo ConnectedComponents(const Graph& g);

/// Extracts the connected components of a graph as standalone graphs in
/// O(n_c + m_c) each (O(n + m) for all of them together): the old->new
/// renaming is one shared array filled once, and each component's CSR is
/// assembled directly — no per-component size-n scratch, no edge-list
/// round trip. Extract() is const and safe to call concurrently for
/// different (or equal) components, which is what RunPerComponentParallel
/// does.
class ComponentExtractor {
 public:
  /// Labels components and builds the shared renaming. O(n + m).
  explicit ComponentExtractor(const Graph& g)
      : ComponentExtractor(g, ConnectedComponents(g)) {}

  /// Reuses an existing labelling of exactly this graph.
  ComponentExtractor(const Graph& g, ComponentInfo cc);

  Vertex NumComponents() const { return cc_.num_components; }
  const ComponentInfo& Components() const { return cc_; }
  std::span<const Vertex> Members(Vertex c) const { return cc_.Members(c); }

  /// Position of v inside its component slice, i.e. v's id in Extract()'s
  /// output for component_id[v].
  Vertex LocalId(Vertex v) const { return local_id_[v]; }

  /// Builds component c as a standalone graph. Local ids preserve the
  /// relative order of the original ids (Members(c)[i] -> i).
  Graph Extract(Vertex c) const;

 private:
  const Graph* g_;
  ComponentInfo cc_;
  std::vector<Vertex> local_id_;  // old id -> position within its slice
};

/// Validates that a directed edge count fits the 32-bit edge ids used by
/// ReverseEdgeIndex / EdgeTriangleCounts (the paper's 4m-int space
/// budget). Throws std::runtime_error naming the offending count instead
/// of asserting, so callers feeding multi-billion-edge graphs get a
/// diagnosable failure. Exposed for tests (the limit itself is not
/// reachable with test-sized graphs).
void CheckEdgeIdsFit32Bits(uint64_t directed_edges);

/// Per-directed-edge reverse index: for the directed edge id e representing
/// (u, v), result[e] is the id of (v, u). O(m log Δ). Throws via
/// CheckEdgeIdsFit32Bits when the directed edge count exceeds 32 bits.
std::vector<uint32_t> ReverseEdgeIndex(const Graph& g);

/// Per-directed-edge triangle counts δ(u, v) = |N(u) ∩ N(v)| (Lemma 5.2).
/// Both directions of an edge carry the same count. Forward enumeration
/// over id-ordered adjacency suffixes: each triangle is discovered once at
/// its lowest-id edge and credits all three edges, so the merge cost is
/// O(sum over edges of d⁺(u) + d⁺(v)) — roughly a third of the naive
/// full-list merges on sparse graphs.
std::vector<uint32_t> EdgeTriangleCounts(const Graph& g);

/// Total number of triangles in the graph.
uint64_t CountTriangles(const Graph& g);

/// Core decomposition by min-degree peeling.
struct CoreDecomposition {
  std::vector<uint32_t> core;   // core number per vertex
  std::vector<Vertex> order;    // a degeneracy ordering
  uint32_t degeneracy = 0;      // max core number
};

/// Computes core numbers and a degeneracy ordering. O(n + m).
CoreDecomposition ComputeCores(const Graph& g);

/// Summary degree statistics (used by the Table 2 bench and DESIGN checks).
struct DegreeStats {
  uint32_t min_degree = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0.0;
  uint64_t num_degree_le2 = 0;  // vertices the exact reductions feed on
};

DegreeStats ComputeDegreeStats(const Graph& g);

/// Degree histogram: result[d] = number of vertices with degree d
/// (size = max degree + 1; empty for the empty graph).
std::vector<uint64_t> DegreeHistogram(const Graph& g);

/// Global clustering coefficient: 3 * #triangles / #wedges (0 if the
/// graph has no wedge). Planted-core instances have visibly higher values
/// than pure Chung-Lu graphs — the structure dominance feeds on.
double GlobalClusteringCoefficient(const Graph& g);

}  // namespace rpmis

#endif  // RPMIS_GRAPH_ALGORITHMS_H_
