// Shared graph algorithms: connectivity, triangle counts, core numbers.
//
// These are the analytical substrates the paper's algorithms rely on:
// NearLinear (§5) maintains a triangle count per edge to test dominance in
// O(1); its one-pass prepass uses a degree ordering; the exact solver and
// the benchmark harness split graphs into connected components.
#ifndef RPMIS_GRAPH_ALGORITHMS_H_
#define RPMIS_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace rpmis {

/// Connected components labelling.
struct ComponentInfo {
  std::vector<Vertex> component_id;  // per vertex, in [0, num_components)
  Vertex num_components = 0;
  /// Vertices grouped by component, concatenated; component c occupies
  /// [offsets[c], offsets[c+1]).
  std::vector<Vertex> members;
  std::vector<uint64_t> offsets;
};

/// Computes connected components by BFS. O(n + m).
ComponentInfo ConnectedComponents(const Graph& g);

/// Per-directed-edge reverse index: for the directed edge id e representing
/// (u, v), result[e] is the id of (v, u). O(m log Δ). Asserts that the
/// directed edge count fits in 32 bits (the paper's 4m-int space budget).
std::vector<uint32_t> ReverseEdgeIndex(const Graph& g);

/// Per-directed-edge triangle counts δ(u, v) = |N(u) ∩ N(v)| (Lemma 5.2).
/// Both directions of an edge carry the same count.
/// O(sum over edges of d(u) + d(v)) = O(m · Δ), O(m · a(G)) in practice.
std::vector<uint32_t> EdgeTriangleCounts(const Graph& g);

/// Total number of triangles in the graph.
uint64_t CountTriangles(const Graph& g);

/// Core decomposition by min-degree peeling.
struct CoreDecomposition {
  std::vector<uint32_t> core;   // core number per vertex
  std::vector<Vertex> order;    // a degeneracy ordering
  uint32_t degeneracy = 0;      // max core number
};

/// Computes core numbers and a degeneracy ordering. O(n + m).
CoreDecomposition ComputeCores(const Graph& g);

/// Summary degree statistics (used by the Table 2 bench and DESIGN checks).
struct DegreeStats {
  uint32_t min_degree = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0.0;
  uint64_t num_degree_le2 = 0;  // vertices the exact reductions feed on
};

DegreeStats ComputeDegreeStats(const Graph& g);

/// Degree histogram: result[d] = number of vertices with degree d
/// (size = max degree + 1; empty for the empty graph).
std::vector<uint64_t> DegreeHistogram(const Graph& g);

/// Global clustering coefficient: 3 * #triangles / #wedges (0 if the
/// graph has no wedge). Planted-core instances have visibly higher values
/// than pure Chung-Lu graphs — the structure dominance feeds on.
double GlobalClusteringCoefficient(const Graph& g);

}  // namespace rpmis

#endif  // RPMIS_GRAPH_ALGORITHMS_H_
