#include "mis/verify.h"

#include <string>

namespace rpmis {

bool VerifyMis(const Graph& g, const std::vector<uint8_t>& in_set,
               std::string* why) {
  if (in_set.size() != g.NumVertices()) {
    if (why != nullptr) {
      *why = "selector has " + std::to_string(in_set.size()) +
             " entries for a graph with " + std::to_string(g.NumVertices()) +
             " vertices";
    }
    return false;
  }
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    if (!in_set[v]) continue;
    for (Vertex w : g.Neighbors(v)) {
      if (in_set[w]) {
        if (why != nullptr) {
          *why = "not independent: edge (" + std::to_string(v) + ", " +
                 std::to_string(w) + ") has both endpoints selected";
        }
        return false;
      }
    }
  }
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    if (in_set[v]) continue;
    bool blocked = false;
    for (Vertex w : g.Neighbors(v)) {
      if (in_set[w]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      if (why != nullptr) {
        *why = "not maximal: vertex " + std::to_string(v) +
               " has no selected neighbour and could be added";
      }
      return false;
    }
  }
  return true;
}

bool IsIndependentSet(const Graph& g, const std::vector<uint8_t>& in_set) {
  if (in_set.size() != g.NumVertices()) return false;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    if (!in_set[v]) continue;
    for (Vertex w : g.Neighbors(v)) {
      if (in_set[w]) return false;
    }
  }
  return true;
}

bool IsMaximalIndependentSet(const Graph& g, const std::vector<uint8_t>& in_set) {
  if (!IsIndependentSet(g, in_set)) return false;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    if (in_set[v]) continue;
    bool blocked = false;
    for (Vertex w : g.Neighbors(v)) {
      if (in_set[w]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return false;
  }
  return true;
}

bool IsVertexCover(const Graph& g, const std::vector<uint8_t>& in_cover) {
  if (in_cover.size() != g.NumVertices()) return false;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (Vertex w : g.Neighbors(v)) {
      if (v < w && !in_cover[v] && !in_cover[w]) return false;
    }
  }
  return true;
}

std::vector<uint8_t> Complement(const std::vector<uint8_t>& selector) {
  std::vector<uint8_t> out(selector.size());
  for (size_t i = 0; i < selector.size(); ++i) out[i] = selector[i] ? 0 : 1;
  return out;
}

}  // namespace rpmis
