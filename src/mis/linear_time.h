// LinearTime (Algorithm 4): Reducing-Peeling with the degree-one reduction
// and the new degree-two PATH reductions (Lemma 4.1).
//
// O(m) time, 2m + O(n) space. Instead of folding single degree-two
// vertices (which needs a growable representation, see BDTwo), whole
// maximal degree-two paths/cycles are resolved at once:
//
//   cycle          : drop an arbitrary cycle vertex, rest unravels
//   case 1  v == w : drop the common attachment v
//   case 2  odd,  (v,w) in E : drop both attachments
//   case 3  odd,  (v,w) not in E : keep v_1, drop v_2..v_l, REWIRE (v_1,w)
//   case 4  even, (v,w) in E : drop the whole path
//   case 5  even, (v,w) not in E : drop the whole path, REWIRE (v,w)
//
// Rewiring overwrites existing adjacency slots in both directions, so the
// CSR copy never grows. Cases 3-5 defer the in-path membership decision by
// pushing the path onto a stack that is replayed (LIFO) at the end: a
// popped vertex joins I iff no neighbour is already in I, which realizes
// the alternating half guaranteed by Lemma 4.1.
#ifndef RPMIS_MIS_LINEAR_TIME_H_
#define RPMIS_MIS_LINEAR_TIME_H_

#include "graph/graph.h"
#include "mis/per_component.h"
#include "mis/reduction_trace.h"
#include "mis/solution.h"

namespace rpmis {

struct LinearTimeOptions {
  /// Mid-run alive-subgraph rebuilds (mis/compaction.h). Output is
  /// byte-identical with compaction disabled or at any threshold.
  CompactionOptions compaction;

  /// When non-null, receives the reduction provenance log (input-graph
  /// ids, see mis/reduction_trace.h). Recording never influences the
  /// solve; the solution is byte-identical with or without it.
  ReductionTrace* trace = nullptr;
};

/// Computes a maximal independent set of g with LinearTime. If `capture`
/// is non-null it receives the kernel right before the first peel.
MisSolution RunLinearTime(const Graph& g, KernelSnapshot* capture = nullptr,
                          const LinearTimeOptions& options = {});

/// Component-wise LinearTime: runs RunLinearTime on every connected
/// component independently (concurrently when opts.parallel) and merges.
/// Output is independent of the thread count.
MisSolution RunLinearTimePerComponent(const Graph& g,
                                      const PerComponentOptions& opts = {},
                                      const LinearTimeOptions& options = {});

}  // namespace rpmis

#endif  // RPMIS_MIS_LINEAR_TIME_H_
