#include "mis/per_component.h"

#include "graph/algorithms.h"

namespace rpmis {

namespace {

void AddCounters(const RuleCounters& from, RuleCounters* to) {
  to->degree_zero += from.degree_zero;
  to->degree_one += from.degree_one;
  to->degree_two_isolation += from.degree_two_isolation;
  to->degree_two_folding += from.degree_two_folding;
  to->degree_two_path += from.degree_two_path;
  to->dominance += from.dominance;
  to->one_pass_dominance += from.one_pass_dominance;
  to->lp += from.lp;
  to->twin += from.twin;
  to->unconfined += from.unconfined;
  to->peels += from.peels;
}

}  // namespace

MisSolution RunPerComponent(
    const Graph& g, const std::function<MisSolution(const Graph&)>& algo) {
  const ComponentInfo cc = ConnectedComponents(g);
  MisSolution merged;
  merged.in_set.assign(g.NumVertices(), 0);
  merged.provably_maximum = true;

  for (Vertex c = 0; c < cc.num_components; ++c) {
    std::vector<Vertex> members(cc.members.begin() + cc.offsets[c],
                                cc.members.begin() + cc.offsets[c + 1]);
    std::vector<Vertex> old_to_new;
    const Graph sub = g.InducedSubgraph(members, &old_to_new);
    const MisSolution part = algo(sub);
    for (Vertex m : members) {
      if (part.in_set[old_to_new[m]]) merged.in_set[m] = 1;
    }
    merged.size += part.size;
    merged.peeled += part.peeled;
    merged.residual_peeled += part.residual_peeled;
    merged.kernel_vertices += part.kernel_vertices;
    merged.kernel_edges += part.kernel_edges;
    merged.provably_maximum = merged.provably_maximum && part.provably_maximum;
    AddCounters(part.rules, &merged.rules);
  }
  return merged;
}

}  // namespace rpmis
