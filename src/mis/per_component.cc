#include "mis/per_component.h"

#include <algorithm>
#include <exception>
#include <numeric>
#include <vector>

#include "graph/algorithms.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "support/parallel.h"

namespace rpmis {

namespace {

// Span threshold: tracing every component of a shattered graph would
// bury the timeline in micro-spans; only substantial solves get one.
constexpr size_t kTraceComponentMinVertices = 1024;

// Scatters a component solution into the merged one. Local ids are slice
// positions (ComponentExtractor's contract), so part.in_set[i] belongs to
// members[i].
void MergePart(const MisSolution& part, std::span<const Vertex> members,
               MisSolution* merged) {
  RPMIS_ASSERT(part.in_set.size() == members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    if (part.in_set[i]) merged->in_set[members[i]] = 1;
  }
  merged->MergeStatsFrom(part);
}

}  // namespace

MisSolution RunPerComponent(
    const Graph& g, const std::function<MisSolution(const Graph&)>& algo) {
  const ComponentExtractor extractor(g);
  MisSolution merged;
  merged.in_set.assign(g.NumVertices(), 0);
  merged.provably_maximum = true;

  for (Vertex c = 0; c < extractor.NumComponents(); ++c) {
    obs::TraceSpan span(
        extractor.Members(c).size() >= kTraceComponentMinVertices
            ? obs::Trace()
            : nullptr,
        "component.solve");
    const MisSolution part = algo(extractor.Extract(c));
    MergePart(part, extractor.Members(c), &merged);
  }
  return merged;
}

MisSolution RunPerComponentParallel(
    const Graph& g, const std::function<MisSolution(const Graph&)>& algo) {
  // With one worker the schedule degenerates to ascending component ids,
  // which is exactly the serial runner (including its first-error
  // behaviour: the lowest failing component throws first) — skip the
  // per-component result slots and claim counter.
  if (NumThreads() <= 1) return RunPerComponent(g, algo);

  const ComponentExtractor extractor(g);
  const Vertex num_components = extractor.NumComponents();

  // Largest-first claim order: RunParallel hands out task indices in
  // increasing order, so sorting by descending size starts the heaviest
  // components before the long tail of tiny ones fills the idle slots
  // (classic LPT balancing). Ties break towards lower component ids,
  // keeping the schedule itself deterministic.
  std::vector<Vertex> order(num_components);
  std::iota(order.begin(), order.end(), Vertex{0});
  const auto& offsets = extractor.Components().offsets;
  std::sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    const uint64_t size_a = offsets[a + 1] - offsets[a];
    const uint64_t size_b = offsets[b + 1] - offsets[b];
    return size_a != size_b ? size_a > size_b : a < b;
  });

  // Solve into per-component slots; exceptions are parked per component
  // so the one from the lowest component id wins regardless of which
  // thread hit it first.
  std::vector<MisSolution> parts(num_components);
  std::vector<std::exception_ptr> errors(num_components);
  RunParallel(num_components, [&](size_t i) {
    const Vertex c = order[i];
    try {
      obs::TraceSpan span(
          extractor.Members(c).size() >= kTraceComponentMinVertices
              ? obs::Trace()
              : nullptr,
          "component.solve");
      parts[c] = algo(extractor.Extract(c));
    } catch (...) {
      errors[c] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Serial merge in component-id order: the result is a pure function of
  // the parts, so it is byte-identical to RunPerComponent's.
  MisSolution merged;
  merged.in_set.assign(g.NumVertices(), 0);
  merged.provably_maximum = true;
  for (Vertex c = 0; c < num_components; ++c) {
    MergePart(parts[c], extractor.Members(c), &merged);
  }
  return merged;
}

}  // namespace rpmis
