#include "mis/kernel_capture.h"

namespace rpmis::internal {

void BuildKernelSnapshot(const std::vector<uint8_t>& alive,
                         const std::vector<uint32_t>& deg,
                         const std::vector<uint8_t>& in_set,
                         const std::vector<Edge>& edges,
                         std::span<const DeferredDecision> deferred, KernelSnapshot* out) {
  const Vertex n = static_cast<Vertex>(alive.size());
  out->captured = true;
  out->orig_to_kernel.assign(n, kInvalidVertex);
  out->kernel_to_orig.clear();
  out->included.clear();
  out->deferred_stack.assign(deferred.begin(), deferred.end());
  for (Vertex v = 0; v < n; ++v) {
    if (in_set[v]) out->included.push_back(v);
    if (alive[v] && deg[v] > 0) {
      out->orig_to_kernel[v] = static_cast<Vertex>(out->kernel_to_orig.size());
      out->kernel_to_orig.push_back(v);
    }
  }
  std::vector<Edge> kernel_edges;
  kernel_edges.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    RPMIS_ASSERT(out->orig_to_kernel[u] != kInvalidVertex &&
                 out->orig_to_kernel[v] != kInvalidVertex);
    kernel_edges.emplace_back(out->orig_to_kernel[u], out->orig_to_kernel[v]);
  }
  out->kernel = Graph::FromEdges(static_cast<Vertex>(out->kernel_to_orig.size()),
                                 kernel_edges);
}

}  // namespace rpmis::internal
