// Full-rule kernelization in the style of Akiba–Iwata [1] / ReduMIS [28].
//
// Applies a configurable set of EXACT reduction rules to fixpoint and
// returns the kernel graph plus enough bookkeeping to lift any kernel
// solution back to the input graph:
//
//   degree-0/1      : isolated vertices join I; a pendant's neighbour dies
//   degree-2        : isolation (Lemma 2.2(1)) and folding (Lemma 2.2(2))
//   dominance       : v dominates u  =>  u dies (Lemma 5.1)
//   twin            : non-adjacent u, v with N(u) = N(v), |N| = 3. With
//                     an edge inside N(u): u, v join I and N(u) dies.
//                     Without: N(u) folds into one supervertex and
//                     alpha(G) = alpha(G') + 2 (lifted on reconstruction)
//   unconfined      : the Xiao–Nagamochi confinement test; an unconfined
//                     vertex dies
//   LP              : Nemhauser–Trotter persistency (lp_reduction.h)
//
// This module is deliberately the EXPENSIVE comparison point: the paper's
// Eval-III shows that computing this kernel ("KernelReduMIS") costs far
// more than LinearTime/NearLinear, which is what motivates their design.
#ifndef RPMIS_MIS_KERNELIZER_H_
#define RPMIS_MIS_KERNELIZER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "mis/compaction.h"
#include "mis/reduction_trace.h"
#include "mis/solution.h"

namespace rpmis {

struct KernelizerOptions {
  bool degree_one = true;   // also covers degree-0
  bool degree_two = true;   // isolation + folding
  bool dominance = true;
  bool twin = true;
  bool unconfined = true;
  bool lp = true;
  /// Mid-run rebuilds of the working adjacency (mis/compaction.h). The
  /// kernel, lift and rule counters are byte-identical with compaction
  /// disabled or at any threshold.
  CompactionOptions compaction;
};

/// One-shot kernelization engine. Construct, Run(), then read the kernel.
class Kernelizer {
 public:
  explicit Kernelizer(const Graph& g, const KernelizerOptions& options = {});

  /// Applies all enabled rules to fixpoint.
  void Run();

  /// The kernel graph (valid after Run()).
  const Graph& Kernel() const { return kernel_; }
  const std::vector<Vertex>& KernelToOrig() const { return kernel_to_orig_; }

  /// alpha(G) = AlphaOffset() + alpha(Kernel()).
  uint64_t AlphaOffset() const { return alpha_offset_; }

  const RuleCounters& Rules() const { return rules_; }

  /// Mid-run rebuild counters (all zero when compaction never fired).
  const CompactionStats& Compaction() const { return compaction_; }

  /// Lifts an independent set of the kernel to one of the input graph of
  /// size |kernel set| + AlphaOffset().
  std::vector<uint8_t> Lift(const std::vector<uint8_t>& kernel_in_set) const;

  /// Exports the replay log as a ReductionTrace: one event per recorded
  /// include/exclude/fold op, in application order, in input-graph ids
  /// (mis/reduction_trace.h documents the mapping).
  void ExportTrace(ReductionTrace* trace) const;

 private:
  enum class OpKind : uint8_t {
    kInclude,
    kExclude,
    kFold,             // degree-2 fold: a=u (dropped), b=merged, c=rep
    kTwinFoldPair,     // twin fold: a=u, b=v, c=rep; rep NOT in I => u,v in I
    kTwinFoldMembers,  // twin fold: a=n2, b=n3, c=rep; rep in I => a,b in I
  };
  struct Op {
    OpKind kind;
    Vertex a;
    Vertex b;
    Vertex c;
  };

  bool Alive(Vertex v) const { return alive_[v] != 0; }
  uint32_t Degree(Vertex v) const { return static_cast<uint32_t>(adj_[v].size()); }
  bool HasEdge(Vertex u, Vertex v) const;

  void Touch(Vertex v);
  void TouchNeighborhood(Vertex v);
  void ExcludeVertex(Vertex v);            // remove, no solution membership
  void IncludeVertex(Vertex v);            // take v, exclude N(v)
  void DetachFromNeighbors(Vertex v);

  bool TryDegreeRules(Vertex v);
  bool TryDominance(Vertex v);
  bool TryUnconfined(Vertex v);
  void FoldDegreeTwo(Vertex u, Vertex v, Vertex w);
  // Merges vertex b into a (b disappears; a's neighbourhood absorbs b's).
  void ContractInto(Vertex a, Vertex b);
  void FoldTwins(Vertex u, Vertex v);
  bool RunTwinPass();
  bool RunLpPass();
  void ProcessWorklist();
  // Renames the working state down to the alive vertices (ALL of them —
  // isolated alive vertices still owe their degree-zero rule application).
  // Ops record input ids, so the replay log needs no translation.
  void CompactState();

  const Graph* input_;
  KernelizerOptions options_;
  std::vector<std::vector<Vertex>> adj_;  // sorted alive adjacency
  std::vector<uint8_t> alive_;
  std::vector<Vertex> to_orig_;           // current id -> input id
  Vertex alive_count_ = 0;
  std::vector<uint8_t> in_worklist_;
  std::vector<Vertex> worklist_;
  std::vector<Op> ops_;                   // a/b/c are input ids
  uint64_t alpha_offset_ = 0;
  RuleCounters rules_;
  CompactionStats compaction_;
  CompactionPolicy policy_;

  Graph kernel_;
  std::vector<Vertex> kernel_to_orig_;
  std::vector<Vertex> orig_to_kernel_;
  bool ran_ = false;
};

}  // namespace rpmis

#endif  // RPMIS_MIS_KERNELIZER_H_
