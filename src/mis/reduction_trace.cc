#include "mis/reduction_trace.h"

namespace rpmis {

size_t ReductionTrace::CountRule(ReductionRule rule) const {
  size_t count = 0;
  for (const ReductionEvent& e : events_) {
    if (e.rule == rule) ++count;
  }
  return count;
}

std::vector<uint8_t> ReductionTrace::PeeledMask(Vertex n) const {
  std::vector<uint8_t> mask(n, 0);
  for (const ReductionEvent& e : events_) {
    if (e.rule == ReductionRule::kPeel && e.v < n) mask[e.v] = 1;
  }
  return mask;
}

std::vector<uint8_t> ReductionTrace::DeferredMask(Vertex n) const {
  std::vector<uint8_t> mask(n, 0);
  for (const ReductionEvent& e : events_) {
    if (e.rule == ReductionRule::kPathDefer && e.v < n) mask[e.v] = 1;
  }
  return mask;
}

}  // namespace rpmis
