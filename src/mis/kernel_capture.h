// Internal helper to materialize a KernelSnapshot (§6).
//
// Each Reducing-Peeling algorithm knows how to enumerate its surviving
// edges (BDOne reads the input CSR; LinearTime/NearLinear read their
// rewired adjacency copies); this helper does the shared renumbering work.
#ifndef RPMIS_MIS_KERNEL_CAPTURE_H_
#define RPMIS_MIS_KERNEL_CAPTURE_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "mis/solution.h"

namespace rpmis::internal {

/// Builds `out` from the algorithm state at the moment of the first peel.
/// `alive`/`deg` define kernel membership (alive with positive degree);
/// `edges` are the surviving edges in original ids; `in_set` gives the
/// vertices already fixed into I; `deferred` is the deferred-decision
/// stack so far, in push order.
void BuildKernelSnapshot(const std::vector<uint8_t>& alive,
                         const std::vector<uint32_t>& deg,
                         const std::vector<uint8_t>& in_set,
                         const std::vector<Edge>& edges,
                         std::span<const DeferredDecision> deferred, KernelSnapshot* out);

}  // namespace rpmis::internal

#endif  // RPMIS_MIS_KERNEL_CAPTURE_H_
