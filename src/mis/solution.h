// Solution and instrumentation types shared by every MIS algorithm.
#ifndef RPMIS_MIS_SOLUTION_H_
#define RPMIS_MIS_SOLUTION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "mis/compaction.h"

namespace rpmis {

/// Per-reduction-rule application counters (diagnostics for DESIGN.md's
/// ablations and the kernel benches).
struct RuleCounters {
  uint64_t degree_zero = 0;
  uint64_t degree_one = 0;
  uint64_t degree_two_isolation = 0;
  uint64_t degree_two_folding = 0;
  uint64_t degree_two_path = 0;   // Lemma 4.1 path/cycle applications
  uint64_t dominance = 0;
  uint64_t one_pass_dominance = 0;
  uint64_t lp = 0;                // vertices fixed by the LP reduction
  uint64_t twin = 0;
  uint64_t unconfined = 0;
  uint64_t peels = 0;             // inexact reductions (|F|)

  uint64_t TotalExact() const {
    return degree_zero + degree_one + degree_two_isolation + degree_two_folding +
           degree_two_path + dominance + one_pass_dominance + lp + twin + unconfined;
  }

  /// Field-wise accumulation (merging per-component runs).
  RuleCounters& operator+=(const RuleCounters& other);
};

/// A deferred degree-two-path membership decision (Lemma 4.1 cases 3-5).
/// `v` was removed with exactly two neighbours, `nb1`/`nb2` — possibly
/// REWIRED (virtual) edges, which encode the path constraints. On replay,
/// v joins I iff neither partner is in I. Replaying against these
/// at-removal partners (never the original adjacency, which misses
/// rewired edges) is what preserves the alternating-half guarantee when
/// path reductions chain through rewired edges.
struct DeferredDecision {
  Vertex v;
  Vertex nb1;
  Vertex nb2;
};

/// Kernel snapshot taken immediately before the first inexact reduction
/// (§6: the graph K on which boosted local search runs). If the algorithm
/// never peels, the snapshot is taken at termination and the kernel is
/// empty or edgeless.
struct KernelSnapshot {
  Graph kernel;                         // renumbered kernel graph
  std::vector<Vertex> kernel_to_orig;   // kernel id -> original id
  std::vector<Vertex> orig_to_kernel;   // original id -> kernel id or kInvalidVertex
  std::vector<Vertex> included;         // original ids already fixed into I
  /// Deferred decisions recorded up to the snapshot, in push order
  /// (original ids); replay in reverse (LIFO).
  std::vector<DeferredDecision> deferred_stack;
  bool captured = false;
};

/// Result of a (heuristic or exact) MIS computation.
struct MisSolution {
  std::vector<uint8_t> in_set;  // n flags
  uint64_t size = 0;

  /// Theorem 6.1 accounting: F = peeled vertices, R = F \ I.
  uint64_t peeled = 0;           // |F|
  uint64_t residual_peeled = 0;  // |R|

  /// α(G) <= size + residual_peeled (Theorem 6.1).
  uint64_t UpperBound() const { return size + residual_peeled; }

  /// True iff R was empty, i.e. the algorithm can certify I is maximum.
  bool provably_maximum = false;

  /// Remaining graph size at the moment of the first peel (kernel size).
  uint64_t kernel_vertices = 0;
  uint64_t kernel_edges = 0;

  RuleCounters rules;

  /// Mid-run subgraph rebuild counters (mis/compaction.h).
  CompactionStats compaction;

  /// Accumulates the scalar statistics of a partial solution (size, peel
  /// and kernel counts, rule counters; provably_maximum is ANDed).
  /// `in_set` is untouched — scattering membership flags needs the
  /// caller's vertex renaming. This is the one merge routine shared by
  /// every component-wise runner.
  void MergeStatsFrom(const MisSolution& part);

  /// Recomputes `size` from `in_set` (used after post-processing passes).
  void RecountSize() {
    size = 0;
    for (uint8_t f : in_set) size += f;
  }
};

/// Greedily extends `in_set` to a maximal independent set of g: every
/// vertex with no neighbour currently in the set is added, in increasing id
/// order. Returns the number of vertices added. This is Line 6 of
/// Algorithm 1 and also how temporarily peeled vertices re-enter I.
uint64_t ExtendToMaximal(const Graph& g, std::vector<uint8_t>& in_set);

/// Replays a deferred degree-two-path stack: pops in reverse push order
/// and adds each vertex iff neither at-removal partner is in the set.
/// Returns the number added.
uint64_t ReplayDeferredStack(std::span<const DeferredDecision> stack,
                             std::vector<uint8_t>& in_set);

}  // namespace rpmis

#endif  // RPMIS_MIS_SOLUTION_H_
