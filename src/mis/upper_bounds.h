// Upper bounds on the independence number (Table 7, and the exact
// solver's pruning bound).
//
// The paper compares its free Theorem 6.1 bound (|I| + |R|) against "the
// best existing upper bound in [1]": the minimum of a greedy clique-cover
// bound, the LP relaxation bound, and a cycle-cover bound, all computed on
// the input graph.
#ifndef RPMIS_MIS_UPPER_BOUNDS_H_
#define RPMIS_MIS_UPPER_BOUNDS_H_

#include <cstdint>

#include "graph/graph.h"

namespace rpmis {

/// Greedy clique cover: α(G) <= number of cliques in any partition of V
/// into cliques (each clique contributes at most one IS vertex). Vertices
/// are processed in degeneracy order and appended to the first compatible
/// clique.
uint64_t CliqueCoverBound(const Graph& g);

/// LP relaxation bound via Nemhauser–Trotter / bipartite matching.
uint64_t LpUpperBound(const Graph& g);

/// Cycle cover bound: a set of vertex-disjoint cycles C_1..C_k plus the
/// remaining vertices R gives α(G) <= Σ floor(|C_i|/2) + |R|.
/// Cycles are found greedily by DFS.
uint64_t CycleCoverBound(const Graph& g);

/// min(clique cover, LP, cycle cover) — the paper's "existing" bound.
uint64_t BestExistingUpperBound(const Graph& g);

}  // namespace rpmis

#endif  // RPMIS_MIS_UPPER_BOUNDS_H_
