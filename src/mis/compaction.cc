#include "mis/compaction.h"

#include "support/assert.h"
#include "support/parallel.h"

namespace rpmis {

namespace {

// Below this many kept vertices the parallel fan-out costs more than the
// fill; both passes run inline (still byte-identical — ParallelChunks is
// deterministic, this is purely a latency knob).
constexpr size_t kParallelGrain = 4096;

}  // namespace

CompactionStats& CompactionStats::operator+=(const CompactionStats& other) {
  compactions += other.compactions;
  vertices_scanned += other.vertices_scanned;
  slots_scanned += other.slots_scanned;
  vertices_kept += other.vertices_kept;
  slots_kept += other.slots_kept;
  return *this;
}

VertexRenaming BuildRenaming(std::span<const uint8_t> keep) {
  VertexRenaming renaming;
  const Vertex n = static_cast<Vertex>(keep.size());
  renaming.to_new.assign(n, kInvalidVertex);
  for (Vertex v = 0; v < n; ++v) {
    if (keep[v]) {
      renaming.to_new[v] = static_cast<Vertex>(renaming.kept.size());
      renaming.kept.push_back(v);
    }
  }
  return renaming;
}

void ComposeToOrig(const VertexRenaming& renaming, std::vector<Vertex>* to_orig) {
  std::vector<Vertex> composed(renaming.kept.size());
  for (size_t i = 0; i < renaming.kept.size(); ++i) {
    composed[i] = (*to_orig)[renaming.kept[i]];
  }
  *to_orig = std::move(composed);
}

void RemapWorklist(const VertexRenaming& renaming, std::vector<Vertex>* worklist) {
  size_t out = 0;
  for (size_t i = 0; i < worklist->size(); ++i) {
    const Vertex nv = renaming.to_new[(*worklist)[i]];
    if (nv != kInvalidVertex) (*worklist)[out++] = nv;
  }
  worklist->resize(out);
}

void CompactCsr(const VertexRenaming& renaming, std::span<const uint64_t> offsets,
                std::span<const Vertex> adj, std::vector<uint64_t>* new_offsets,
                std::vector<Vertex>* new_adj,
                std::vector<uint32_t>* old_slot_to_new, CompactionStats* stats) {
  const size_t new_n = renaming.kept.size();
  new_offsets->assign(new_n + 1, 0);
  // Pass 1: surviving-slot counts per kept vertex (independent reads).
  ParallelChunks(0, new_n, kParallelGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const Vertex v = renaming.kept[i];
      uint64_t count = 0;
      for (uint64_t s = offsets[v]; s < offsets[v + 1]; ++s) {
        if (renaming.to_new[adj[s]] != kInvalidVertex) ++count;
      }
      (*new_offsets)[i + 1] = count;
    }
  });
  for (size_t i = 1; i <= new_n; ++i) (*new_offsets)[i] += (*new_offsets)[i - 1];
  // Pass 2: fill disjoint slices.
  new_adj->resize((*new_offsets)[new_n]);
  if (old_slot_to_new != nullptr) {
    RPMIS_ASSERT(adj.size() <= static_cast<uint64_t>(kInvalidVertex));
    old_slot_to_new->resize(adj.size());
  }
  ParallelChunks(0, new_n, kParallelGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const Vertex v = renaming.kept[i];
      uint64_t pos = (*new_offsets)[i];
      for (uint64_t s = offsets[v]; s < offsets[v + 1]; ++s) {
        const Vertex target = renaming.to_new[adj[s]];
        if (target == kInvalidVertex) continue;
        (*new_adj)[pos] = target;
        if (old_slot_to_new != nullptr) {
          (*old_slot_to_new)[s] = static_cast<uint32_t>(pos);
        }
        ++pos;
      }
      RPMIS_DASSERT(pos == (*new_offsets)[i + 1]);
    }
  });
  if (stats != nullptr) {
    ++stats->compactions;
    stats->vertices_scanned += renaming.to_new.size();
    for (const Vertex v : renaming.kept) {
      stats->slots_scanned += offsets[v + 1] - offsets[v];
    }
    stats->vertices_kept += new_n;
    stats->slots_kept += new_adj->size();
  }
}

void BuildCompactEdges(const Graph& g, const VertexRenaming& renaming,
                       std::vector<Edge>* edges) {
  const size_t new_n = renaming.kept.size();
  std::vector<uint64_t> cursor(new_n + 1, 0);
  ParallelChunks(0, new_n, kParallelGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const Vertex v = renaming.kept[i];
      uint64_t count = 0;
      for (const Vertex w : g.Neighbors(v)) {
        if (v < w && renaming.to_new[w] != kInvalidVertex) ++count;
      }
      cursor[i + 1] = count;
    }
  });
  for (size_t i = 1; i <= new_n; ++i) cursor[i] += cursor[i - 1];
  edges->resize(cursor[new_n]);
  ParallelChunks(0, new_n, kParallelGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const Vertex v = renaming.kept[i];
      uint64_t pos = cursor[i];
      for (const Vertex w : g.Neighbors(v)) {
        if (v < w && renaming.to_new[w] != kInvalidVertex) {
          (*edges)[pos++] = {static_cast<Vertex>(i), renaming.to_new[w]};
        }
      }
    }
  });
}

void BuildCompactEdges(const std::vector<std::vector<Vertex>>& adj,
                       const VertexRenaming& renaming, std::vector<Edge>* edges) {
  const size_t new_n = renaming.kept.size();
  std::vector<uint64_t> cursor(new_n + 1, 0);
  ParallelChunks(0, new_n, kParallelGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const Vertex v = renaming.kept[i];
      uint64_t count = 0;
      for (const Vertex w : adj[v]) {
        if (v < w) ++count;
      }
      cursor[i + 1] = count;
    }
  });
  for (size_t i = 1; i <= new_n; ++i) cursor[i] += cursor[i - 1];
  edges->resize(cursor[new_n]);
  ParallelChunks(0, new_n, kParallelGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const Vertex v = renaming.kept[i];
      uint64_t pos = cursor[i];
      for (const Vertex w : adj[v]) {
        if (v < w) (*edges)[pos++] = {static_cast<Vertex>(i), renaming.to_new[w]};
      }
    }
  });
}

}  // namespace rpmis
