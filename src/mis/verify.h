// Solution checkers: independence, maximality, vertex-cover duality.
//
// Every test and every benchmark run validates its solutions through these
// before reporting a size; a heuristic that returns an invalid set must
// fail loudly, not score well.
#ifndef RPMIS_MIS_VERIFY_H_
#define RPMIS_MIS_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace rpmis {

/// True iff no edge of g has both endpoints selected.
bool IsIndependentSet(const Graph& g, const std::vector<uint8_t>& in_set);

/// Checks independence and maximality in one pass and, on failure, writes
/// a human-readable description of the first violation (selector length
/// mismatch, a violated edge, or an addable vertex) into `why` when
/// non-null. This is the library form of the checks mis_cli --verify and
/// the differential harness report through.
bool VerifyMis(const Graph& g, const std::vector<uint8_t>& in_set,
               std::string* why = nullptr);

/// True iff `in_set` is independent and no vertex can be added.
bool IsMaximalIndependentSet(const Graph& g, const std::vector<uint8_t>& in_set);

/// True iff every edge of g has at least one endpoint selected.
bool IsVertexCover(const Graph& g, const std::vector<uint8_t>& in_cover);

/// The complement selector (I <-> V \ I), for the MIS/MVC duality of §2.
std::vector<uint8_t> Complement(const std::vector<uint8_t>& selector);

}  // namespace rpmis

#endif  // RPMIS_MIS_VERIFY_H_
