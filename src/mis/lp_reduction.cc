#include "mis/lp_reduction.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <queue>

#include "support/parallel.h"

namespace rpmis {

namespace {

// CSR over the left side of a bipartite graph.
struct LeftCsr {
  std::vector<uint64_t> offsets;
  std::vector<Vertex> targets;

  LeftCsr(Vertex left, std::span<const Edge> cross) {
    offsets.assign(static_cast<size_t>(left) + 1, 0);
    for (const auto& [l, r] : cross) {
      (void)r;
      ++offsets[l + 1];
    }
    for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
    targets.resize(cross.size());
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& [l, r] : cross) targets[cursor[l]++] = r;
  }
};

constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max();

}  // namespace

uint64_t HopcroftKarpMatching(Vertex left, Vertex right,
                              std::span<const Edge> cross_edges,
                              std::vector<Vertex>* match_left,
                              std::vector<Vertex>* match_right) {
  LeftCsr csr(left, cross_edges);
  std::vector<Vertex> ml(left, kInvalidVertex);
  std::vector<Vertex> mr(right, kInvalidVertex);
  std::vector<uint32_t> dist(left);
  std::vector<Vertex> bfs_queue;
  bfs_queue.reserve(left);
  uint64_t matching = 0;

  // Greedy warm start roughly halves the number of phases in practice.
  for (Vertex l = 0; l < left; ++l) {
    for (uint64_t e = csr.offsets[l]; e < csr.offsets[l + 1]; ++e) {
      const Vertex r = csr.targets[e];
      if (mr[r] == kInvalidVertex) {
        ml[l] = r;
        mr[r] = l;
        ++matching;
        break;
      }
    }
  }

  // Layered BFS from free left vertices; true iff an augmenting path exists.
  // Only the level structure dist[] matters downstream (the augmenting DFS
  // is a separate, strictly in-order pass), and BFS distances are canonical
  // regardless of the order vertices inside one level are expanded. That
  // makes the level-synchronous parallel variant below byte-identical to
  // this serial loop.
  auto bfs_serial = [&]() {
    bfs_queue.clear();
    for (Vertex l = 0; l < left; ++l) {
      if (ml[l] == kInvalidVertex) {
        dist[l] = 0;
        bfs_queue.push_back(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool found = false;
    for (size_t head = 0; head < bfs_queue.size(); ++head) {
      const Vertex l = bfs_queue[head];
      for (uint64_t e = csr.offsets[l]; e < csr.offsets[l + 1]; ++e) {
        const Vertex r = csr.targets[e];
        const Vertex l2 = mr[r];
        if (l2 == kInvalidVertex) {
          found = true;
        } else if (dist[l2] == kInf) {
          dist[l2] = dist[l] + 1;
          bfs_queue.push_back(l2);
        }
      }
    }
    return found;
  };

  // Level-synchronous parallel BFS. Each level's frontier is expanded by
  // all threads; a vertex is claimed for the next level with a CAS on its
  // dist entry, so exactly one thread enqueues it. Which thread wins is
  // scheduling-dependent, but the claimed VALUE (level + 1) and therefore
  // the resulting dist[] array — the only BFS output the matching reads —
  // are identical to the serial pass.
  std::vector<std::vector<Vertex>> next_local;
  auto bfs_parallel = [&](size_t threads) {
    bfs_queue.clear();
    for (Vertex l = 0; l < left; ++l) {
      if (ml[l] == kInvalidVertex) {
        dist[l] = 0;
        bfs_queue.push_back(l);
      } else {
        dist[l] = kInf;
      }
    }
    next_local.assign(threads, {});
    std::vector<Vertex> frontier = bfs_queue;
    std::atomic<bool> found{false};
    uint32_t level = 0;
    while (!frontier.empty()) {
      const size_t chunk = (frontier.size() + threads - 1) / threads;
      RunParallel(threads, [&](size_t t) {
        std::vector<Vertex>& next = next_local[t];
        next.clear();
        const size_t lo = t * chunk;
        const size_t hi = std::min(frontier.size(), lo + chunk);
        for (size_t i = lo; i < hi; ++i) {
          const Vertex l = frontier[i];
          for (uint64_t e = csr.offsets[l]; e < csr.offsets[l + 1]; ++e) {
            const Vertex r = csr.targets[e];
            const Vertex l2 = mr[r];
            if (l2 == kInvalidVertex) {
              found.store(true, std::memory_order_relaxed);
            } else {
              uint32_t expect = kInf;
              if (std::atomic_ref<uint32_t>(dist[l2]).compare_exchange_strong(
                      expect, level + 1, std::memory_order_relaxed)) {
                next.push_back(l2);
              }
            }
          }
        }
      });
      frontier.clear();
      for (std::vector<Vertex>& local : next_local) {
        frontier.insert(frontier.end(), local.begin(), local.end());
      }
      ++level;
    }
    return found.load(std::memory_order_relaxed);
  };

  auto bfs = [&]() {
    const size_t threads = NumThreads();
    if (threads > 1 && left >= 2048) return bfs_parallel(threads);
    return bfs_serial();
  };

  // DFS along the layer structure, augmenting on success.
  auto dfs = [&](auto&& self, Vertex l) -> bool {
    for (uint64_t e = csr.offsets[l]; e < csr.offsets[l + 1]; ++e) {
      const Vertex r = csr.targets[e];
      const Vertex l2 = mr[r];
      if (l2 == kInvalidVertex || (dist[l2] == dist[l] + 1 && self(self, l2))) {
        ml[l] = r;
        mr[r] = l;
        return true;
      }
    }
    dist[l] = kInf;
    return false;
  };

  while (bfs()) {
    for (Vertex l = 0; l < left; ++l) {
      if (ml[l] == kInvalidVertex && dfs(dfs, l)) ++matching;
    }
  }

  if (match_left != nullptr) *match_left = std::move(ml);
  if (match_right != nullptr) *match_right = std::move(mr);
  return matching;
}

LpReduction SolveLpReduction(Vertex n, std::span<const Edge> edges) {
  // Bipartite double cover: each undirected edge (u, v) becomes the two
  // cross edges (u_L, v_R) and (v_L, u_R).
  std::vector<Edge> cross;
  cross.reserve(2 * edges.size());
  for (const auto& [u, v] : edges) {
    cross.emplace_back(u, v);
    cross.emplace_back(v, u);
  }
  std::vector<Vertex> ml, mr;
  LpReduction out;
  out.matching = HopcroftKarpMatching(n, n, cross, &ml, &mr);

  // König: Z = vertices alternately reachable from free LEFT vertices
  // (non-matching edge to the right, matching edge back to the left).
  // Min vertex cover of the double cover: (L \ Z_L) ∪ (R ∩ Z_R).
  std::vector<uint8_t> zl(n, 0), zr(n, 0);
  LeftCsr csr(n, cross);
  std::vector<Vertex> stack;
  for (Vertex l = 0; l < n; ++l) {
    if (ml[l] == kInvalidVertex && !zl[l]) {
      zl[l] = 1;
      stack.push_back(l);
    }
  }
  while (!stack.empty()) {
    const Vertex l = stack.back();
    stack.pop_back();
    for (uint64_t e = csr.offsets[l]; e < csr.offsets[l + 1]; ++e) {
      const Vertex r = csr.targets[e];
      if (zr[r]) continue;
      if (ml[l] == r) continue;  // only non-matching edges leave L
      zr[r] = 1;
      const Vertex l2 = mr[r];
      if (l2 != kInvalidVertex && !zl[l2]) {
        zl[l2] = 1;
        stack.push_back(l2);
      }
    }
  }

  out.include.assign(n, 0);
  out.exclude.assign(n, 0);
  for (Vertex v = 0; v < n; ++v) {
    const bool cover_l = !zl[v];       // v_L in cover
    const bool cover_r = zr[v];        // v_R in cover
    if (cover_l && cover_r) {
      out.exclude[v] = 1;  // y_v = 1  =>  x_v = 0
      ++out.num_exclude;
    } else if (!cover_l && !cover_r) {
      out.include[v] = 1;  // y_v = 0  =>  x_v = 1
      ++out.num_include;
    } else {
      ++out.num_half;
    }
  }
  return out;
}

LpReduction SolveLpReduction(const Graph& g) {
  return SolveLpReduction(g.NumVertices(), g.CollectEdges());
}

}  // namespace rpmis
