// Linear-programming (Nemhauser–Trotter) reduction (§5, [1]).
//
// The LP relaxation of MIS (max Σx_v, x_u + x_v <= 1, 0 <= x <= 1) has a
// half-integral optimum computable exactly from a maximum matching of the
// bipartite double cover B(G): every vertex appears once on each side and
// each edge (u,v) contributes (u_L, v_R) and (v_L, u_R). By König's
// theorem a minimum vertex cover of B gives y ∈ {0, ½, 1}^V with
// y_v = (1_{v_L∈C} + 1_{v_R∈C}) / 2, and x = 1 - y is LP-optimal.
// Nemhauser–Trotter persistency: some maximum independent set contains all
// x=1 vertices and no x=0 vertex, so both classes can be fixed.
//
// Matching is found with Hopcroft–Karp, O(m√n); in practice near-linear on
// the power-law graphs this library targets.
#ifndef RPMIS_MIS_LP_REDUCTION_H_
#define RPMIS_MIS_LP_REDUCTION_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace rpmis {

/// Outcome of one LP reduction pass over a graph on [0, n).
struct LpReduction {
  std::vector<uint8_t> include;  // x_v = 1: fix into the independent set
  std::vector<uint8_t> exclude;  // x_v = 0: fix out (a neighbour is taken)
  uint64_t num_include = 0;
  uint64_t num_exclude = 0;
  uint64_t num_half = 0;         // x_v = 1/2: stays in the kernel
  uint64_t matching = 0;         // maximum matching size of the double cover

  /// LP upper bound on α(G): floor(n - matching/2).
  uint64_t Bound(Vertex n) const { return n - (matching + 1) / 2; }
};

/// Solves the LP relaxation for the graph (n, edges) and classifies every
/// vertex. Self-loops/duplicates are not expected (come from Graph).
LpReduction SolveLpReduction(Vertex n, std::span<const Edge> edges);

/// Convenience overload for a whole Graph.
LpReduction SolveLpReduction(const Graph& g);

/// Maximum matching size of a bipartite graph with `left` x `right`
/// vertices and the given cross edges (first: left id, second: right id).
/// Exposed for testing and for the upper-bound module.
uint64_t HopcroftKarpMatching(Vertex left, Vertex right,
                              std::span<const Edge> cross_edges,
                              std::vector<Vertex>* match_left = nullptr,
                              std::vector<Vertex>* match_right = nullptr);

}  // namespace rpmis

#endif  // RPMIS_MIS_LP_REDUCTION_H_
