#include "mis/bdone.h"

#include "ds/bucket_queue.h"
#include "mis/kernel_capture.h"

namespace rpmis {

namespace {

// Snapshots the alive part of the graph into `capture`. BDOne never
// rewires edges, so an edge survives iff both endpoints are alive (with
// positive degree; edgeless alive vertices are already decided).
void CaptureKernel(const Graph& g, const std::vector<uint8_t>& alive,
                   const std::vector<uint32_t>& deg,
                   const std::vector<uint8_t>& in_set, KernelSnapshot* capture) {
  std::vector<Edge> edges;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    if (!alive[v] || deg[v] == 0) continue;
    for (Vertex w : g.Neighbors(v)) {
      if (v < w && alive[w] && deg[w] > 0) edges.emplace_back(v, w);
    }
  }
  internal::BuildKernelSnapshot(alive, deg, in_set, edges, {}, capture);
}

}  // namespace

MisSolution RunBDOne(const Graph& g, KernelSnapshot* capture) {
  const Vertex n = g.NumVertices();
  MisSolution sol;
  sol.in_set.assign(n, 0);

  std::vector<uint8_t> alive(n, 1);
  std::vector<uint8_t> peeled(n, 0);
  std::vector<uint32_t> deg(n);
  std::vector<Vertex> v1;  // degree-one worklist (may hold stale entries)
  for (Vertex v = 0; v < n; ++v) {
    deg[v] = g.Degree(v);
    if (deg[v] == 0) {
      sol.in_set[v] = 1;
      ++sol.rules.degree_zero;
    } else if (deg[v] == 1) {
      v1.push_back(v);
    }
  }
  LazyMaxBucketQueue peel_queue(deg);

  // Removes v from the graph: neighbours lose a degree; a neighbour
  // reaching degree 0 joins I (it is now isolated, hence safe to take).
  auto delete_vertex = [&](Vertex v) {
    RPMIS_DASSERT(alive[v]);
    alive[v] = 0;
    for (Vertex w : g.Neighbors(v)) {
      if (!alive[w]) continue;
      if (--deg[w] == 1) {
        v1.push_back(w);
      } else if (deg[w] == 0) {
        sol.in_set[w] = 1;
      }
    }
  };

  bool peeled_yet = false;
  while (true) {
    if (!v1.empty()) {
      const Vertex u = v1.back();
      v1.pop_back();
      if (!alive[u] || deg[u] != 1) continue;  // stale entry
      // Degree-one reduction: delete u's unique alive neighbour.
      Vertex nb = kInvalidVertex;
      for (Vertex w : g.Neighbors(u)) {
        if (alive[w]) {
          nb = w;
          break;
        }
      }
      RPMIS_DASSERT(nb != kInvalidVertex);
      delete_vertex(nb);
      ++sol.rules.degree_one;
      continue;
    }
    // Inexact reduction: peel the highest-degree vertex.
    const Vertex u = peel_queue.PopMax(
        [&](Vertex v) { return deg[v]; },
        [&](Vertex v) { return alive[v] && deg[v] >= 2; });
    if (u == kInvalidVertex) break;
    if (!peeled_yet) {
      peeled_yet = true;
      sol.kernel_vertices = 0;
      uint64_t kernel_edges2 = 0;
      for (Vertex v = 0; v < n; ++v) {
        if (alive[v] && deg[v] > 0) {
          ++sol.kernel_vertices;
          kernel_edges2 += deg[v];
        }
      }
      sol.kernel_edges = kernel_edges2 / 2;
      if (capture != nullptr) CaptureKernel(g, alive, deg, sol.in_set, capture);
    }
    peeled[u] = 1;
    ++sol.rules.peels;
    delete_vertex(u);
  }

  if (capture != nullptr && !peeled_yet) {
    CaptureKernel(g, alive, deg, sol.in_set, capture);  // empty kernel
  }

  ExtendToMaximal(g, sol.in_set);
  sol.RecountSize();
  sol.peeled = sol.rules.peels;
  for (Vertex v = 0; v < n; ++v) {
    if (peeled[v] && !sol.in_set[v]) ++sol.residual_peeled;
  }
  sol.provably_maximum = (sol.residual_peeled == 0);
  return sol;
}

MisSolution RunBDOnePerComponent(const Graph& g,
                                 const PerComponentOptions& opts) {
  const auto algo = [](const Graph& sub) { return RunBDOne(sub); };
  return opts.parallel ? RunPerComponentParallel(g, algo)
                       : RunPerComponent(g, algo);
}

}  // namespace rpmis
