#include "mis/bdone.h"

#include <numeric>

#include "ds/bucket_queue.h"
#include "mis/compaction.h"
#include "mis/kernel_capture.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace rpmis {

MisSolution RunBDOne(const Graph& g, KernelSnapshot* capture,
                     const BDOneOptions& options) {
  obs::TraceSpan algo_span(obs::Trace(), "bdone");
  const Vertex n = g.NumVertices();
  MisSolution sol;
  sol.in_set.assign(n, 0);
  uint64_t in_count = 0;  // running |I| for progress samples

  // Working CSR over the CURRENT vertex universe. Starts as a zero-copy
  // view of the input; after a compaction it views the owned rebuilt copy
  // (double-buffered so a rebuild can read its predecessor).
  std::span<const uint64_t> offsets = g.RawOffsets();
  std::span<const Vertex> adj = g.RawNeighbors();
  std::vector<uint64_t> own_offsets[2];
  std::vector<Vertex> own_adj[2];
  int buffer = 0;

  // Current id -> input id (identity until the first compaction). Decisions
  // (in_set, peeled) are always recorded in input ids.
  std::vector<Vertex> to_orig(n);
  std::iota(to_orig.begin(), to_orig.end(), Vertex{0});

  std::vector<uint8_t> alive(n, 1);
  std::vector<uint8_t> peeled(n, 0);  // input-id space
  std::vector<uint32_t> deg(n);
  std::vector<Vertex> v1;  // degree-one worklist (may hold stale entries)
  Vertex active = 0;       // # vertices with alive && deg > 0
  for (Vertex v = 0; v < n; ++v) {
    deg[v] = g.Degree(v);
    if (deg[v] == 0) {
      sol.in_set[v] = 1;
      ++in_count;
      ++sol.rules.degree_zero;
    } else {
      ++active;
      if (deg[v] == 1) v1.push_back(v);
    }
  }
  LazyMaxBucketQueue peel_queue(deg);
  CompactionPolicy policy(options.compaction, n);

  // Removes v from the graph: neighbours lose a degree; a neighbour
  // reaching degree 0 joins I (it is now isolated, hence safe to take).
  auto delete_vertex = [&](Vertex v) {
    RPMIS_DASSERT(alive[v] && deg[v] > 0);
    alive[v] = 0;
    --active;
    for (uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const Vertex w = adj[e];
      if (!alive[w]) continue;
      if (--deg[w] == 1) {
        v1.push_back(w);
      } else if (deg[w] == 0) {
        sol.in_set[to_orig[w]] = 1;
        ++in_count;
        --active;
      }
    }
  };

  // Rebuilds every per-vertex structure over the alive, still-undecided
  // subgraph. Renaming is monotone and slot order is preserved, so every
  // later scan sees the same neighbour sequence as without compaction and
  // the output is byte-identical.
  auto compact = [&]() {
    obs::TraceSpan span(obs::Trace(), "bdone.compact");
    const Vertex cur_n = static_cast<Vertex>(to_orig.size());
    std::vector<uint8_t> keep(cur_n);
    for (Vertex v = 0; v < cur_n; ++v) keep[v] = alive[v] && deg[v] > 0;
    VertexRenaming ren = BuildRenaming(keep);
    const Vertex new_n = static_cast<Vertex>(ren.kept.size());
    RPMIS_DASSERT(new_n == active);
    const int nb = buffer ^ 1;
    CompactCsr(ren, offsets, adj, &own_offsets[nb], &own_adj[nb],
               /*old_slot_to_new=*/nullptr, &sol.compaction);
    offsets = own_offsets[nb];
    adj = own_adj[nb];
    buffer = nb;
    std::vector<uint32_t> new_deg(new_n);
    for (Vertex i = 0; i < new_n; ++i) new_deg[i] = deg[ren.kept[i]];
    deg = std::move(new_deg);
    alive.assign(new_n, 1);
    ComposeToOrig(ren, &to_orig);
    RemapWorklist(ren, &v1);
    peel_queue.Compact(new_n, ren.to_new);
    policy.NoteRebuild(new_n);
  };

  // Snapshots the alive part of the graph (in input ids). BDOne never
  // rewires edges, so an edge survives iff both endpoints are alive (with
  // positive degree; edgeless alive vertices are already decided).
  auto capture_now = [&]() {
    std::vector<uint8_t> alive_o(n, 0);
    std::vector<uint32_t> deg_o(n, 0);
    const Vertex cur_n = static_cast<Vertex>(to_orig.size());
    for (Vertex v = 0; v < cur_n; ++v) {
      alive_o[to_orig[v]] = alive[v];
      deg_o[to_orig[v]] = deg[v];
    }
    std::vector<Edge> edges;
    for (Vertex v = 0; v < cur_n; ++v) {
      if (!alive[v] || deg[v] == 0) continue;
      for (uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        const Vertex w = adj[e];
        if (v < w && alive[w] && deg[w] > 0) {
          edges.emplace_back(to_orig[v], to_orig[w]);
        }
      }
    }
    internal::BuildKernelSnapshot(alive_o, deg_o, sol.in_set, edges, {},
                                  capture);
  };

  // Progress snapshot: O(live) edge recount, amortized by the stride.
  auto sample_progress = [&](obs::ProgressSampler* ps) {
    const Vertex cur_n = static_cast<Vertex>(to_orig.size());
    uint64_t deg_sum = 0;
    for (Vertex x = 0; x < cur_n; ++x) {
      if (alive[x]) deg_sum += deg[x];
    }
    obs::ProgressSample s;
    s.live_vertices = active;
    s.live_edges = deg_sum / 2;
    s.solution_size = in_count;
    s.upper_bound = in_count + active + sol.rules.peels;
    s.label = "bdone.core";
    ps->Record(std::move(s));
  };

  bool peeled_yet = false;
  {
  obs::TraceSpan core_span(obs::Trace(), "bdone.core");
  while (true) {
    if (auto* ps = obs::Progress(); ps != nullptr && ps->Due()) {
      sample_progress(ps);
    }
    if (policy.ShouldCompact(active)) compact();
    if (!v1.empty()) {
      const Vertex u = v1.back();
      v1.pop_back();
      if (!alive[u] || deg[u] != 1) continue;  // stale entry
      // Degree-one reduction: delete u's unique alive neighbour.
      Vertex nb = kInvalidVertex;
      for (uint64_t e = offsets[u]; e < offsets[u + 1]; ++e) {
        if (alive[adj[e]]) {
          nb = adj[e];
          break;
        }
      }
      RPMIS_DASSERT(nb != kInvalidVertex);
      delete_vertex(nb);
      ++sol.rules.degree_one;
      continue;
    }
    // Inexact reduction: peel the highest-degree vertex.
    const Vertex u = peel_queue.PopMax(
        [&](Vertex v) { return deg[v]; },
        [&](Vertex v) { return alive[v] && deg[v] >= 2; });
    if (u == kInvalidVertex) break;
    if (!peeled_yet) {
      peeled_yet = true;
      if (auto* t = obs::Trace()) t->Instant("bdone.first_peel");
      sol.kernel_vertices = active;
      uint64_t kernel_edges2 = 0;
      const Vertex cur_n = static_cast<Vertex>(to_orig.size());
      for (Vertex v = 0; v < cur_n; ++v) {
        if (alive[v]) kernel_edges2 += deg[v];
      }
      sol.kernel_edges = kernel_edges2 / 2;
      if (capture != nullptr) capture_now();
    }
    peeled[to_orig[u]] = 1;
    ++sol.rules.peels;
    delete_vertex(u);
  }
  }  // core_span

  if (capture != nullptr && !peeled_yet) {
    capture_now();  // empty kernel
  }

  ExtendToMaximal(g, sol.in_set);
  sol.RecountSize();
  sol.peeled = sol.rules.peels;
  for (Vertex v = 0; v < n; ++v) {
    if (peeled[v] && !sol.in_set[v]) ++sol.residual_peeled;
  }
  sol.provably_maximum = (sol.residual_peeled == 0);
  return sol;
}

MisSolution RunBDOnePerComponent(const Graph& g, const PerComponentOptions& opts,
                                 const BDOneOptions& options) {
  const auto algo = [options](const Graph& sub) {
    return RunBDOne(sub, nullptr, options);
  };
  return opts.parallel ? RunPerComponentParallel(g, algo)
                       : RunPerComponent(g, algo);
}

}  // namespace rpmis
