// Mid-run subgraph compaction for the tombstone solvers (the KaMIS-style
// "rebuild the kernel" trick).
//
// Every Reducing-Peeling solver deletes vertices logically (alive bitmap,
// cached degrees) while its scans keep streaming the ORIGINAL adjacency,
// so once half the graph is dead every pass still pays full-size memory
// traffic filtering corpses. The engine here rebuilds a compact CSR of the
// surviving subgraph whenever the active-vertex count drops below a
// configurable fraction of the last build (geometric thresholds => the
// total rebuild work is a constant factor of n + m).
//
// Renaming invariants (what keeps runs byte-identical to --no-compaction):
//  * the renaming is MONOTONE (kept vertices keep their relative order),
//    so every increasing-id scan, sorted adjacency list, and a < b edge
//    enumeration behaves exactly as before;
//  * per-vertex slot order is preserved, so "first alive neighbour" style
//    scans pick the same vertices;
//  * worklists/queues are remapped preserving their internal order, with
//    dead entries dropped eagerly — exactly the entries the lazy staleness
//    checks would have skipped.
//
// Decisions are mapped back losslessly by a stacked old->new layer: each
// solver keeps a `to_orig` array (current id -> input id) and composes it
// eagerly at every rebuild (new_to_orig[i] = to_orig[kept[i]]). The
// compositions sum to a geometric series, so the mapping stack costs
// O(n) total — no quadratic re-mapping.
#ifndef RPMIS_MIS_COMPACTION_H_
#define RPMIS_MIS_COMPACTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace rpmis {

struct CompactionOptions {
  /// Master switch (the CLI's --no-compaction sets this to false).
  bool enabled = true;
  /// Rebuild when active vertices < threshold * (size of last build).
  double threshold = 0.5;
  /// Never compact a working graph smaller than this (the rebuild would
  /// cost more than the scans it saves).
  Vertex min_vertices = 64;
};

/// Per-run compaction counters, surfaced through MisSolution / benchkit.
/// The *_scanned totals count work done by the rebuilds themselves (old
/// side), the *_kept totals what the rebuilds produced (new side); under
/// geometric thresholds both stay O(n + m) for the whole run.
struct CompactionStats {
  uint64_t compactions = 0;
  uint64_t vertices_scanned = 0;  // old-side vertices walked by rebuilds
  uint64_t slots_scanned = 0;     // old-side adjacency slots walked
  uint64_t vertices_kept = 0;     // new-side vertices produced
  uint64_t slots_kept = 0;        // new-side adjacency slots produced

  CompactionStats& operator+=(const CompactionStats& other);
};

/// The threshold policy: tracks the size of the last build and says when
/// the active count has decayed enough to pay for a rebuild.
class CompactionPolicy {
 public:
  CompactionPolicy(const CompactionOptions& options, Vertex initial_n)
      : options_(options), baseline_(initial_n) {}

  bool ShouldCompact(Vertex active) const {
    return options_.enabled && active > 0 && baseline_ >= options_.min_vertices &&
           static_cast<double>(active) <
               options_.threshold * static_cast<double>(baseline_);
  }

  void NoteRebuild(Vertex new_n) { baseline_ = new_n; }

 private:
  CompactionOptions options_;
  Vertex baseline_;
};

/// A monotone old->new renaming over one keep set.
struct VertexRenaming {
  std::vector<Vertex> to_new;  // old id -> new id, kInvalidVertex if dropped
  std::vector<Vertex> kept;    // new id -> old id, increasing in old id
};

/// Builds the renaming keeping exactly the vertices with keep[v] != 0.
VertexRenaming BuildRenaming(std::span<const uint8_t> keep);

/// Composes the mapping stack one level: to_orig becomes
/// new id -> original input id.
void ComposeToOrig(const VertexRenaming& renaming, std::vector<Vertex>* to_orig);

/// Renames a worklist in place, preserving order and dropping entries of
/// dropped vertices (the lazy staleness checks would skip those anyway).
void RemapWorklist(const VertexRenaming& renaming, std::vector<Vertex>* worklist);

/// Rebuilds a CSR restricted to the kept vertices: slots whose target was
/// dropped are discarded, per-vertex slot order is preserved. Filled in
/// parallel over support/parallel (disjoint output slices — byte-identical
/// at any RPMIS_THREADS). `old_slot_to_new`, when non-null, receives the
/// new slot id of every surviving old slot (entries of dropped slots are
/// untouched); it requires the old slot count to fit 32 bits. `stats`,
/// when non-null, accumulates the scan totals.
void CompactCsr(const VertexRenaming& renaming, std::span<const uint64_t> offsets,
                std::span<const Vertex> adj, std::vector<uint64_t>* new_offsets,
                std::vector<Vertex>* new_adj,
                std::vector<uint32_t>* old_slot_to_new, CompactionStats* stats);

/// Emits the renamed edge list {(to_new[v], to_new[w]) : v < w, both kept}
/// exactly as the serial nested loop over increasing v would, but counted
/// and filled in parallel. Shared by the LP-reduction prepasses.
void BuildCompactEdges(const Graph& g, const VertexRenaming& renaming,
                       std::vector<Edge>* edges);

/// Same, over a sorted adjacency-list representation whose lists contain
/// only kept vertices (the kernelizer's state).
void BuildCompactEdges(const std::vector<std::vector<Vertex>>& adj,
                       const VertexRenaming& renaming, std::vector<Edge>* edges);

}  // namespace rpmis

#endif  // RPMIS_MIS_COMPACTION_H_
