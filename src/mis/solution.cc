#include "mis/solution.h"

namespace rpmis {

uint64_t ExtendToMaximal(const Graph& g, std::vector<uint8_t>& in_set) {
  RPMIS_ASSERT(in_set.size() == g.NumVertices());
  uint64_t added = 0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    if (in_set[v]) continue;
    bool blocked = false;
    for (Vertex w : g.Neighbors(v)) {
      if (in_set[w]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      in_set[v] = 1;
      ++added;
    }
  }
  return added;
}

uint64_t ReplayDeferredStack(std::span<const DeferredDecision> stack,
                             std::vector<uint8_t>& in_set) {
  uint64_t added = 0;
  for (size_t i = stack.size(); i-- > 0;) {
    const DeferredDecision& d = stack[i];
    if (in_set[d.v]) continue;
    if (!in_set[d.nb1] && !in_set[d.nb2]) {
      in_set[d.v] = 1;
      ++added;
    }
  }
  return added;
}

}  // namespace rpmis
