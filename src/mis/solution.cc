#include "mis/solution.h"

namespace rpmis {

RuleCounters& RuleCounters::operator+=(const RuleCounters& other) {
  degree_zero += other.degree_zero;
  degree_one += other.degree_one;
  degree_two_isolation += other.degree_two_isolation;
  degree_two_folding += other.degree_two_folding;
  degree_two_path += other.degree_two_path;
  dominance += other.dominance;
  one_pass_dominance += other.one_pass_dominance;
  lp += other.lp;
  twin += other.twin;
  unconfined += other.unconfined;
  peels += other.peels;
  return *this;
}

void MisSolution::MergeStatsFrom(const MisSolution& part) {
  size += part.size;
  peeled += part.peeled;
  residual_peeled += part.residual_peeled;
  kernel_vertices += part.kernel_vertices;
  kernel_edges += part.kernel_edges;
  provably_maximum = provably_maximum && part.provably_maximum;
  rules += part.rules;
  compaction += part.compaction;
}

uint64_t ExtendToMaximal(const Graph& g, std::vector<uint8_t>& in_set) {
  RPMIS_ASSERT(in_set.size() == g.NumVertices());
  uint64_t added = 0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    if (in_set[v]) continue;
    bool blocked = false;
    for (Vertex w : g.Neighbors(v)) {
      if (in_set[w]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      in_set[v] = 1;
      ++added;
    }
  }
  return added;
}

uint64_t ReplayDeferredStack(std::span<const DeferredDecision> stack,
                             std::vector<uint8_t>& in_set) {
  uint64_t added = 0;
  for (size_t i = stack.size(); i-- > 0;) {
    const DeferredDecision& d = stack[i];
    if (in_set[d.v]) continue;
    if (!in_set[d.nb1] && !in_set[d.nb2]) {
      in_set[d.v] = 1;
      ++added;
    }
  }
  return added;
}

}  // namespace rpmis
