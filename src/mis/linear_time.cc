#include "mis/linear_time.h"

#include <algorithm>
#include <numeric>

#include "ds/bucket_queue.h"
#include "mis/compaction.h"
#include "mis/kernel_capture.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace rpmis {

namespace {

// Mutable adjacency view over a private copy of the CSR neighbour array.
// Entries can be overwritten (rewired); deleted endpoints are skipped via
// the alive bitmap, never physically removed — except by Compact(), which
// rebuilds the arrays over the surviving subgraph (dropping exactly the
// slots every scan would have skipped, in order, so scans behave
// identically afterwards).
struct MutableCsr {
  explicit MutableCsr(const Graph& g) : offsets(g.RawOffsets()) {
    const std::span<const Vertex> nbs = g.RawNeighbors();
    adj.assign(nbs.begin(), nbs.end());
  }

  uint64_t Begin(Vertex v) const { return offsets[v]; }
  uint64_t End(Vertex v) const { return offsets[v + 1]; }

  // Replaces the slot of `old_nb` in a's list with `new_nb`.
  void Rewire(Vertex a, Vertex old_nb, Vertex new_nb) {
    for (uint64_t e = Begin(a); e < End(a); ++e) {
      if (adj[e] == old_nb) {
        adj[e] = new_nb;
        return;
      }
    }
    RPMIS_ASSERT_MSG(false, "rewire target not found");
  }

  void Compact(const VertexRenaming& ren, CompactionStats* stats) {
    std::vector<uint64_t> new_offsets;
    std::vector<Vertex> new_adj;
    CompactCsr(ren, offsets, adj, &new_offsets, &new_adj,
               /*old_slot_to_new=*/nullptr, stats);
    own_offsets = std::move(new_offsets);
    offsets = own_offsets;
    adj = std::move(new_adj);
  }

  std::span<const uint64_t> offsets;  // input CSR, then own_offsets
  std::vector<uint64_t> own_offsets;
  std::vector<Vertex> adj;
};

}  // namespace

MisSolution RunLinearTime(const Graph& g, KernelSnapshot* capture,
                          const LinearTimeOptions& options) {
  obs::TraceSpan algo_span(obs::Trace(), "lineartime");
  const Vertex n = g.NumVertices();
  MisSolution sol;
  sol.in_set.assign(n, 0);
  uint64_t in_count = 0;  // running |I| for progress samples

  // Optional provenance log; all event ids are input ids (via to_orig).
  ReductionTrace* rtrace = options.trace;
  if (rtrace != nullptr) rtrace->Clear();

  MutableCsr csr(g);
  // Current id -> input id (identity until the first compaction). Decisions
  // (in_set, peeled, deferred) are always recorded in input ids.
  std::vector<Vertex> to_orig(n);
  std::iota(to_orig.begin(), to_orig.end(), Vertex{0});

  std::vector<uint8_t> alive(n, 1);
  std::vector<uint8_t> peeled(n, 0);       // input-id space
  std::vector<uint32_t> deg(n);
  std::vector<Vertex> v1, v2;              // worklists (may hold stale entries)
  std::vector<DeferredDecision> deferred;  // the stack S of Algorithm 4
  Vertex active = 0;                       // # vertices with alive && deg > 0
  for (Vertex v = 0; v < n; ++v) {
    deg[v] = g.Degree(v);
    if (deg[v] == 0) {
      sol.in_set[v] = 1;
      ++in_count;
      ++sol.rules.degree_zero;
      if (rtrace != nullptr) {
        rtrace->Append(ReductionRule::kDegreeZeroInclude, v);
      }
    } else {
      ++active;
      if (deg[v] == 1) {
        v1.push_back(v);
      } else if (deg[v] == 2) {
        v2.push_back(v);
      }
    }
  }
  LazyMaxBucketQueue peel_queue(deg);
  CompactionPolicy policy(options.compaction, n);

  auto first_alive_neighbor = [&](Vertex v) {
    for (uint64_t e = csr.Begin(v); e < csr.End(v); ++e) {
      if (alive[csr.adj[e]]) return csr.adj[e];
    }
    return kInvalidVertex;
  };

  // The alive neighbour of v other than `exclude` (v must have exactly two
  // alive neighbours).
  auto other_alive_neighbor = [&](Vertex v, Vertex exclude) {
    for (uint64_t e = csr.Begin(v); e < csr.End(v); ++e) {
      const Vertex w = csr.adj[e];
      if (alive[w] && w != exclude) return w;
    }
    return kInvalidVertex;
  };

  auto has_alive_edge = [&](Vertex a, Vertex b) {
    if (deg[a] > deg[b]) std::swap(a, b);
    for (uint64_t e = csr.Begin(a); e < csr.End(a); ++e) {
      if (csr.adj[e] == b) return alive[b] != 0;
    }
    return false;
  };

  // Generic vertex deletion with degree bookkeeping.
  auto delete_vertex = [&](Vertex v) {
    RPMIS_DASSERT(alive[v] && deg[v] > 0);
    alive[v] = 0;
    --active;
    for (uint64_t e = csr.Begin(v); e < csr.End(v); ++e) {
      const Vertex w = csr.adj[e];
      if (!alive[w]) continue;
      const uint32_t d = --deg[w];
      if (d == 1) {
        v1.push_back(w);
      } else if (d == 2) {
        v2.push_back(w);
      } else if (d == 0) {
        sol.in_set[to_orig[w]] = 1;
        ++in_count;
        --active;
        if (rtrace != nullptr) {
          rtrace->Append(ReductionRule::kDegreeZeroInclude, to_orig[w]);
        }
      }
    }
  };

  // Applies the degree-two path/cycle reductions to the maximal structure
  // containing u (u alive, deg == 2).
  auto degree_two_path_reduction = [&](Vertex u) {
    // Walk both directions from u while degree stays 2, collecting the
    // maximal degree-two path (or detecting a degree-two cycle).
    Vertex start[2];
    start[0] = first_alive_neighbor(u);
    start[1] = other_alive_neighbor(u, start[0]);
    RPMIS_DASSERT(start[0] != kInvalidVertex && start[1] != kInvalidVertex);
    std::vector<Vertex> side[2];
    bool is_cycle = false;
    Vertex attach[2] = {kInvalidVertex, kInvalidVertex};
    for (int dir = 0; dir < 2 && !is_cycle; ++dir) {
      Vertex prev = u;
      Vertex cur = start[dir];
      while (deg[cur] == 2) {
        if (cur == u) {
          is_cycle = true;
          break;
        }
        side[dir].push_back(cur);
        const Vertex next = other_alive_neighbor(cur, prev);
        RPMIS_DASSERT(next != kInvalidVertex);
        prev = cur;
        cur = next;
      }
      if (!is_cycle) attach[dir] = cur;
    }

    if (is_cycle) {
      ++sol.rules.degree_two_path;
      // Degree-two cycle: drop u; the rest unravels by degree-one steps.
      if (rtrace != nullptr) rtrace->Append(ReductionRule::kPathCycle, to_orig[u]);
      delete_vertex(u);
      return;
    }

    // path = v_1 .. v_l with attach[1] - v_1 ... u ... v_l - attach[0].
    std::vector<Vertex> path;
    path.reserve(side[0].size() + side[1].size() + 1);
    for (size_t i = side[1].size(); i-- > 0;) path.push_back(side[1][i]);
    path.push_back(u);
    path.insert(path.end(), side[0].begin(), side[0].end());
    const Vertex v = attach[1];
    const Vertex w = attach[0];
    RPMIS_DASSERT(v != kInvalidVertex && w != kInvalidVertex);
    const size_t l = path.size();

    if (v == w) {
      // Case 1: common attachment; exclude it, path unravels degree-one.
      ++sol.rules.degree_two_path;
      if (rtrace != nullptr) rtrace->Append(ReductionRule::kPathCommon, to_orig[v]);
      delete_vertex(v);
      return;
    }
    const bool vw_edge = has_alive_edge(v, w);
    if (l % 2 == 1) {
      if (vw_edge) {
        // Case 2: drop both attachments; path unravels degree-one.
        ++sol.rules.degree_two_path;
        if (rtrace != nullptr) {
          rtrace->Append(ReductionRule::kPathAttachments, to_orig[v], to_orig[w]);
        }
        delete_vertex(v);
        if (alive[w]) delete_vertex(w);
        return;
      }
      if (l == 1) {
        // Singleton path with non-adjacent degree->=3 attachments: the
        // path reductions do not apply (Appendix A.2). Checked once; the
        // vertex re-enters the worklist only if its surroundings change.
        return;
      }
      // Case 3: keep v_1, drop v_2..v_l, rewire (v_1, w); defer decisions
      // for v_2..v_l so pops run v_2, v_3, ..., v_l (v_1's side first).
      // Each deferred vertex records its at-removal partners, so chained
      // rewires keep constraining later replays.
      ++sol.rules.degree_two_path;
      for (size_t i = l; i-- > 1;) {
        deferred.push_back({to_orig[path[i]], to_orig[path[i - 1]],
                            i + 1 < l ? to_orig[path[i + 1]] : to_orig[w]});
        if (rtrace != nullptr) {
          const DeferredDecision& d = deferred.back();
          rtrace->Append(ReductionRule::kPathDefer, d.v, d.nb1, d.nb2);
        }
      }
      for (size_t i = 1; i < l; ++i) {
        alive[path[i]] = 0;
        deg[path[i]] = 0;
        --active;
      }
      csr.Rewire(path[0], path[1], w);
      csr.Rewire(w, path[l - 1], path[0]);
      // Degrees of v_1 and w are unchanged (one lost slot, one new slot).
      return;
    }
    // Even path: drop all of it; attachments each lose exactly one edge.
    // Defer decisions so pops run v_1, v_2, ..., v_l.
    ++sol.rules.degree_two_path;
    if (rtrace != nullptr) {
      rtrace->Append(ReductionRule::kPathEvenDrop, to_orig[v], to_orig[w]);
    }
    for (size_t i = l; i-- > 0;) {
      deferred.push_back({to_orig[path[i]],
                          i > 0 ? to_orig[path[i - 1]] : to_orig[v],
                          i + 1 < l ? to_orig[path[i + 1]] : to_orig[w]});
      if (rtrace != nullptr) {
        const DeferredDecision& d = deferred.back();
        rtrace->Append(ReductionRule::kPathDefer, d.v, d.nb1, d.nb2);
      }
    }
    for (size_t i = 0; i < l; ++i) {
      alive[path[i]] = 0;
      deg[path[i]] = 0;
      --active;
    }
    if (vw_edge) {
      // Case 4: no rewire; v and w lose a degree.
      for (Vertex x : {v, w}) {
        const uint32_t d = --deg[x];
        if (d == 1) {
          v1.push_back(x);
        } else if (d == 2) {
          v2.push_back(x);
        } else if (d == 0) {
          sol.in_set[to_orig[x]] = 1;
          ++in_count;
          --active;
        }
      }
    } else {
      // Case 5: rewire (v, w); degrees unchanged.
      csr.Rewire(v, path[0], w);
      csr.Rewire(w, path[l - 1], v);
    }
  };

  // Rebuilds every per-vertex structure over the alive, still-undecided
  // subgraph. Renaming is monotone and slot order is preserved, so every
  // later scan sees the same (alive) neighbour sequence as without
  // compaction and the output is byte-identical.
  auto compact = [&]() {
    obs::TraceSpan span(obs::Trace(), "lineartime.compact");
    const Vertex cur_n = static_cast<Vertex>(to_orig.size());
    std::vector<uint8_t> keep(cur_n);
    for (Vertex x = 0; x < cur_n; ++x) keep[x] = alive[x] && deg[x] > 0;
    VertexRenaming ren = BuildRenaming(keep);
    const Vertex new_n = static_cast<Vertex>(ren.kept.size());
    RPMIS_DASSERT(new_n == active);
    csr.Compact(ren, &sol.compaction);
    std::vector<uint32_t> new_deg(new_n);
    for (Vertex i = 0; i < new_n; ++i) new_deg[i] = deg[ren.kept[i]];
    deg = std::move(new_deg);
    alive.assign(new_n, 1);
    ComposeToOrig(ren, &to_orig);
    RemapWorklist(ren, &v1);
    RemapWorklist(ren, &v2);
    peel_queue.Compact(new_n, ren.to_new);
    policy.NoteRebuild(new_n);
  };

  bool peeled_yet = false;
  auto capture_now = [&]() {
    std::vector<uint8_t> alive_o(n, 0);
    std::vector<uint32_t> deg_o(n, 0);
    const Vertex cur_n = static_cast<Vertex>(to_orig.size());
    for (Vertex a = 0; a < cur_n; ++a) {
      alive_o[to_orig[a]] = alive[a];
      deg_o[to_orig[a]] = deg[a];
    }
    std::vector<Edge> edges;
    for (Vertex a = 0; a < cur_n; ++a) {
      if (!alive[a] || deg[a] == 0) continue;
      for (uint64_t e = csr.Begin(a); e < csr.End(a); ++e) {
        const Vertex b = csr.adj[e];
        if (a < b && alive[b] && deg[b] > 0) {
          edges.emplace_back(to_orig[a], to_orig[b]);
        }
      }
    }
    internal::BuildKernelSnapshot(alive_o, deg_o, sol.in_set, edges, deferred,
                                  capture);
  };

  // Progress snapshot: O(live) edge recount, amortized by the stride.
  auto sample_progress = [&](obs::ProgressSampler* ps) {
    const Vertex cur_n = static_cast<Vertex>(to_orig.size());
    uint64_t deg_sum = 0;
    for (Vertex x = 0; x < cur_n; ++x) {
      if (alive[x]) deg_sum += deg[x];
    }
    obs::ProgressSample s;
    s.live_vertices = active;
    s.live_edges = deg_sum / 2;
    s.solution_size = in_count;
    // Crude in-flight bound: everything still live, deferred, or peeled
    // so far may yet join I (DESIGN.md §8).
    s.upper_bound = in_count + active + deferred.size() + sol.rules.peels;
    s.label = "lineartime.core";
    ps->Record(std::move(s));
  };

  {
  obs::TraceSpan core_span(obs::Trace(), "lineartime.core");
  while (true) {
    if (auto* ps = obs::Progress(); ps != nullptr && ps->Due()) {
      sample_progress(ps);
    }
    if (policy.ShouldCompact(active)) compact();
    if (!v1.empty()) {
      const Vertex u = v1.back();
      v1.pop_back();
      if (!alive[u] || deg[u] != 1) continue;
      const Vertex nb = first_alive_neighbor(u);
      RPMIS_DASSERT(nb != kInvalidVertex);
      if (rtrace != nullptr) {
        rtrace->Append(ReductionRule::kDegreeOneExclude, to_orig[nb], to_orig[u]);
      }
      delete_vertex(nb);
      ++sol.rules.degree_one;
      continue;
    }
    if (!v2.empty()) {
      const Vertex u = v2.back();
      v2.pop_back();
      if (!alive[u] || deg[u] != 2) continue;
      // Singleton non-applicable structures are checked once and skipped:
      // both neighbours have degree >= 3 and are non-adjacent.
      degree_two_path_reduction(u);
      continue;
    }
    const Vertex u = peel_queue.PopMax(
        [&](Vertex x) { return deg[x]; },
        [&](Vertex x) { return alive[x] && deg[x] >= 2; });
    if (u == kInvalidVertex) break;
    if (!peeled_yet) {
      peeled_yet = true;
      if (auto* t = obs::Trace()) t->Instant("lineartime.first_peel");
      sol.kernel_vertices = active;
      const Vertex cur_n = static_cast<Vertex>(to_orig.size());
      for (Vertex x = 0; x < cur_n; ++x) {
        if (alive[x]) sol.kernel_edges += deg[x];
      }
      sol.kernel_edges /= 2;
      if (capture != nullptr) capture_now();
    }
    peeled[to_orig[u]] = 1;
    ++sol.rules.peels;
    if (rtrace != nullptr) rtrace->Append(ReductionRule::kPeel, to_orig[u]);
    delete_vertex(u);
  }
  }  // core_span
  if (capture != nullptr && !peeled_yet) capture_now();

  // Replay the deferred path decisions (LIFO), then the maximality pass
  // that also re-admits compatible peeled vertices (Lines 7-8 of Alg. 4).
  obs::TraceSpan finalize_span(obs::Trace(), "lineartime.finalize");
  ReplayDeferredStack(deferred, sol.in_set);
  ExtendToMaximal(g, sol.in_set);
  sol.RecountSize();
  sol.peeled = sol.rules.peels;
  for (Vertex x = 0; x < n; ++x) {
    if (peeled[x] && !sol.in_set[x]) ++sol.residual_peeled;
  }
  sol.provably_maximum = (sol.residual_peeled == 0);
  return sol;
}

MisSolution RunLinearTimePerComponent(const Graph& g,
                                      const PerComponentOptions& opts,
                                      const LinearTimeOptions& options) {
  LinearTimeOptions sub_options = options;
  // Component sub-solves run in renamed id spaces (and concurrently under
  // opts.parallel); a shared trace would interleave meaningless ids.
  sub_options.trace = nullptr;
  const auto algo = [sub_options](const Graph& sub) {
    return RunLinearTime(sub, nullptr, sub_options);
  };
  return opts.parallel ? RunPerComponentParallel(g, algo)
                       : RunPerComponent(g, algo);
}

}  // namespace rpmis
