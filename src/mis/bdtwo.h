// BDTwo (Algorithm 3): Reducing-Peeling with degree-one and degree-two
// VERTEX reductions (Lemma 2.2).
//
// Degree-two folding contracts {u, v, w} into a supervertex, which can
// grow neighbourhoods; BDTwo therefore runs on the dynamic AdjacencyGraph
// (6m + O(n) space) with an eagerly-updated doubly-linked bucket queue,
// and is Ω(m + n log n) / O(n·m) rather than linear (Theorem 3.1).
// Contractions are backtracked at the end to recover the solution.
#ifndef RPMIS_MIS_BDTWO_H_
#define RPMIS_MIS_BDTWO_H_

#include "graph/graph.h"
#include "mis/per_component.h"
#include "mis/solution.h"

namespace rpmis {

struct BDTwoOptions {
  /// Mid-run alive-subgraph rebuilds (mis/compaction.h). Output is
  /// byte-identical with compaction disabled or at any threshold.
  CompactionOptions compaction;
};

/// Computes a maximal independent set of g with BDTwo.
MisSolution RunBDTwo(const Graph& g, const BDTwoOptions& options = {});

/// Component-wise BDTwo: runs RunBDTwo on every connected component
/// independently (concurrently when opts.parallel) and merges. Output is
/// independent of the thread count. Particularly attractive for BDTwo,
/// whose 6m-space dynamic representation is then sized per component.
MisSolution RunBDTwoPerComponent(const Graph& g,
                                 const PerComponentOptions& opts = {},
                                 const BDTwoOptions& options = {});

}  // namespace rpmis

#endif  // RPMIS_MIS_BDTWO_H_
