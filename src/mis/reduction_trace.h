// Reduction provenance: an ordered log of which reduction rule fired on
// which vertices during a solve.
//
// The batch solvers decide vertices through chains of local rules; the
// order of the log and the vertices each event touches form a dependency
// DAG (event B depends on event A iff B touches a vertex A removed or
// rewired first). The dynamic-update engine (src/dynamic) consumes
// vertex-granular projections of this log — most importantly "was v
// decided by an exact rule or merely peeled" — to seed its per-vertex
// provenance, which steers which endpoint it evicts when an inserted edge
// lands inside the maintained set. Recording is optional and costs one
// null check when disabled (same discipline as the obs hooks).
#ifndef RPMIS_MIS_REDUCTION_TRACE_H_
#define RPMIS_MIS_REDUCTION_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace rpmis {

/// The rule behind one log entry. LinearTime emits the kDegree*/kPath*/
/// kPeel kinds; the Kernelizer export maps its replay ops onto the
/// kInclude/kExclude/kFold/kTwin* kinds.
enum class ReductionRule : uint8_t {
  // LinearTime core events.
  kDegreeZeroInclude,   // v joined I with no remaining neighbours
  kDegreeOneExclude,    // v removed as the neighbour of a pendant (a)
  kPathCycle,           // degree-two cycle: v dropped, cycle unravels
  kPathCommon,          // path case 1: common attachment v dropped
  kPathAttachments,     // path case 2: attachment v dropped ((v,w) edge)
  kPathEvenDrop,        // path case 4/5: whole even path dropped
  kPathDefer,           // v's membership deferred with partners (a, b)
  kPeel,                // inexact: max-degree v peeled out of the graph
  // Kernelizer export events.
  kInclude,             // v fixed into I (N(v) died)
  kExclude,             // v removed with no membership (dominance etc.)
  kFold,                // degree-two fold: v dropped, a merged into rep b
  kTwinFoldPair,        // twin fold: twins v, a folded under rep b
  kTwinFoldMembers,     // twin fold: members v, a folded under rep b
};

/// One rule application. `v` is the vertex the rule acted on; `a`/`b` are
/// the rule's partners when it has any (kInvalidVertex otherwise). All ids
/// are in the *input* graph's numbering regardless of mid-run compaction.
struct ReductionEvent {
  ReductionRule rule;
  Vertex v;
  Vertex a = kInvalidVertex;
  Vertex b = kInvalidVertex;
};

/// Append-only event log plus the projections consumers need.
class ReductionTrace {
 public:
  void Clear() { events_.clear(); }
  void Reserve(size_t n) { events_.reserve(n); }

  void Append(ReductionRule rule, Vertex v, Vertex a = kInvalidVertex,
              Vertex b = kInvalidVertex) {
    events_.push_back({rule, v, a, b});
  }

  const std::vector<ReductionEvent>& Events() const { return events_; }
  bool Empty() const { return events_.empty(); }

  size_t CountRule(ReductionRule rule) const;

  /// Per-vertex flag over universe [0, n): v was the subject of a kPeel
  /// event (peeled vertices that re-enter I during the maximality pass
  /// stay flagged — that is the point: they were not *proven* in).
  std::vector<uint8_t> PeeledMask(Vertex n) const;

  /// Per-vertex flag: v's membership was decided by a deferred path
  /// replay (kPathDefer), i.e. by an exact Lemma 4.1 application.
  std::vector<uint8_t> DeferredMask(Vertex n) const;

 private:
  std::vector<ReductionEvent> events_;
};

}  // namespace rpmis

#endif  // RPMIS_MIS_REDUCTION_TRACE_H_
