// BDOne (Algorithm 2): Reducing-Peeling with the degree-one reduction.
//
// O(m) time, 2m + O(n) space. Reducing applies Lemma 2.1 (for a degree-one
// vertex u, some maximum independent set contains u, so u's neighbour can
// be deleted); Peeling temporarily removes the highest-degree vertex using
// the lazy singly-linked bin-sort structure of §3.2.
#ifndef RPMIS_MIS_BDONE_H_
#define RPMIS_MIS_BDONE_H_

#include "graph/graph.h"
#include "mis/per_component.h"
#include "mis/solution.h"

namespace rpmis {

struct BDOneOptions {
  /// Mid-run alive-subgraph rebuilds (mis/compaction.h). Output is
  /// byte-identical with compaction disabled or at any threshold.
  CompactionOptions compaction;
};

/// Computes a maximal independent set of g with BDOne. If `capture` is
/// non-null it receives the kernel graph right before the first peel.
MisSolution RunBDOne(const Graph& g, KernelSnapshot* capture = nullptr,
                     const BDOneOptions& options = {});

/// Component-wise BDOne: runs RunBDOne on every connected component
/// independently (concurrently when opts.parallel) and merges. Output is
/// independent of the thread count.
MisSolution RunBDOnePerComponent(const Graph& g,
                                 const PerComponentOptions& opts = {},
                                 const BDOneOptions& options = {});

}  // namespace rpmis

#endif  // RPMIS_MIS_BDONE_H_
