#include "mis/near_linear.h"

#include <algorithm>
#include <numeric>

#include "ds/bucket_queue.h"
#include "graph/algorithms.h"
#include "mis/kernel_capture.h"
#include "mis/lp_reduction.h"
#include "support/fast_set.h"

namespace rpmis {

uint64_t OnePassDominance(const Graph& g, std::vector<uint8_t>& alive,
                          std::vector<uint32_t>& deg,
                          std::vector<uint8_t>& in_set) {
  const Vertex n = g.NumVertices();
  // Count-sort vertices by decreasing initial degree: high-degree vertices
  // are the likely dominated ones and removing them shrinks Δ.
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), 0);
  const uint32_t max_deg = g.MaxDegree();
  std::vector<uint32_t> bucket(max_deg + 2, 0);
  for (Vertex v = 0; v < n; ++v) ++bucket[max_deg - g.Degree(v) + 1];
  for (size_t i = 1; i < bucket.size(); ++i) bucket[i] += bucket[i - 1];
  for (Vertex v = 0; v < n; ++v) order[bucket[max_deg - g.Degree(v)]++] = v;

  FastSet mark(n);
  uint64_t removed = 0;
  for (Vertex u : order) {
    if (!alive[u] || deg[u] == 0) continue;
    mark.Clear();
    for (Vertex x : g.Neighbors(u)) {
      if (alive[x]) mark.Insert(x);
    }
    bool dominated = false;
    for (Vertex v : g.Neighbors(u)) {
      // v dominates u iff N(v) \ {u} ⊆ N(u); only candidates with
      // d(v) <= d(u) can succeed, which bounds the scan by min degrees.
      if (!alive[v] || deg[v] > deg[u]) continue;
      bool ok = true;
      for (Vertex w : g.Neighbors(v)) {
        if (w == u || !alive[w]) continue;
        if (!mark.Contains(w)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        dominated = true;
        break;
      }
    }
    if (!dominated) continue;
    alive[u] = 0;
    ++removed;
    for (Vertex x : g.Neighbors(u)) {
      if (!alive[x]) continue;
      if (--deg[x] == 0) in_set[x] = 1;
    }
  }
  return removed;
}

namespace {

// Directed-edge slot index into the flat adjacency array.
using Slot = uint32_t;
constexpr Slot kNoSlot = static_cast<Slot>(-1);

// The NearLinear main loop, operating on a compact kernel graph (the
// instance that remains after the exact prepasses).
class NearLinearCore {
 public:
  explicit NearLinearCore(const Graph& kg, MisSolution* sol)
      : kg_(kg),
        sol_(sol),
        n_(kg.NumVertices()),
        alive_(n_, 1),
        peeled_(n_, 0),
        in_set_(n_, 0),
        deg_(n_),
        mark_(n_),
        mark2_(n_) {
    adj_.reserve(2 * kg.NumEdges());
    for (Vertex v = 0; v < n_; ++v) {
      deg_[v] = kg.Degree(v);
      for (Vertex w : kg.Neighbors(v)) adj_.push_back(w);
      if (deg_[v] == 2) v2_.push_back(v);
    }
    delta_ = EdgeTriangleCounts(kg);
    rev_ = ReverseEdgeIndex(kg);
    // Initial dominated set: u dominates v  =>  v is dominated.
    for (Vertex u = 0; u < n_; ++u) {
      if (deg_[u] == 0) {
        in_set_[u] = 1;  // isolated kernel vertex (defensive; prepasses
                         // normally strip these)
        continue;
      }
      for (Slot e = Begin(u); e < End(u); ++e) {
        if (delta_[e] == deg_[u] - 1) dominated_.push_back(adj_[e]);
      }
    }
  }

  // Runs to completion. Returns the peel count.
  void Run(bool want_capture, KernelSnapshot* capture,
           const std::vector<Vertex>& kernel_to_orig,
           const std::vector<uint8_t>& pre_in_set_orig);

  const std::vector<uint8_t>& InSet() const { return in_set_; }
  const std::vector<uint8_t>& Peeled() const { return peeled_; }
  const std::vector<DeferredDecision>& Deferred() const { return deferred_; }
  const Graph& KernelGraph() const { return kg_; }

  /// Replays the deferred stack (partners are kernel-space ids).
  void ReplayDeferred() { ReplayDeferredStack(deferred_, in_set_); }

 private:
  Slot Begin(Vertex v) const { return static_cast<Slot>(kg_.EdgeBegin(v)); }
  Slot End(Vertex v) const { return static_cast<Slot>(kg_.EdgeEnd(v)); }

  // Rewires a's slot holding old_nb to new_nb; returns the slot.
  Slot Rewire(Vertex a, Vertex old_nb, Vertex new_nb) {
    for (Slot e = Begin(a); e < End(a); ++e) {
      if (adj_[e] == old_nb) {
        adj_[e] = new_nb;
        return e;
      }
    }
    RPMIS_ASSERT_MSG(false, "rewire target not found");
    return kNoSlot;
  }

  Vertex FirstAliveNeighbor(Vertex v) const {
    for (Slot e = Begin(v); e < End(v); ++e) {
      if (alive_[adj_[e]]) return adj_[e];
    }
    return kInvalidVertex;
  }

  Vertex OtherAliveNeighbor(Vertex v, Vertex exclude) const {
    for (Slot e = Begin(v); e < End(v); ++e) {
      const Vertex w = adj_[e];
      if (alive_[w] && w != exclude) return w;
    }
    return kInvalidVertex;
  }

  bool HasAliveEdge(Vertex a, Vertex b) const {
    if (deg_[a] > deg_[b]) std::swap(a, b);
    for (Slot e = Begin(a); e < End(a); ++e) {
      if (adj_[e] == b) return alive_[b] != 0;
    }
    return false;
  }

  // Screens every alive pair (v, x) incident to v for fresh dominance.
  void RescreenVertex(Vertex v) {
    if (!alive_[v]) return;
    for (Slot e = Begin(v); e < End(v); ++e) {
      const Vertex x = adj_[e];
      if (!alive_[x]) continue;
      if (deg_[v] >= 1 && delta_[e] == deg_[v] - 1) dominated_.push_back(x);
      if (deg_[x] >= 1 && delta_[e] == deg_[x] - 1) dominated_.push_back(v);
    }
  }

  void OnDegreeDecrease(Vertex w) {
    if (deg_[w] == 2) {
      v2_.push_back(w);
    } else if (deg_[w] == 0) {
      in_set_[w] = 1;
    }
    // Degree-one vertices need no explicit worklist: such a vertex
    // dominates its remaining neighbour, which the rescreen pass enqueues.
  }

  // Deletes x, maintaining degrees, triangle counts and the dominated set.
  void DeleteVertex(Vertex x) {
    RPMIS_DASSERT(alive_[x]);
    alive_[x] = 0;
    // Pass A: collect alive neighbours, update degrees.
    scratch_nbrs_.clear();
    for (Slot e = Begin(x); e < End(x); ++e) {
      const Vertex v = adj_[e];
      if (!alive_[v]) continue;
      scratch_nbrs_.push_back(v);
      --deg_[v];
      OnDegreeDecrease(v);
    }
    // Pass B: every triangle (x, v, w) loses x; decrement δ on (v, w).
    mark_.Clear();
    for (Vertex v : scratch_nbrs_) mark_.Insert(v);
    for (Vertex v : scratch_nbrs_) {
      for (Slot e = Begin(v); e < End(v); ++e) {
        const Vertex w = adj_[e];
        if (alive_[w] && mark_.Contains(w)) {
          RPMIS_DASSERT(delta_[e] > 0);
          --delta_[e];  // the mirror decrements when the loop reaches w
        }
      }
    }
    // Pass C: neighbours lost a degree, so they may newly dominate; their
    // two-hop neighbours may newly be dominated (§5 discussion).
    for (Vertex v : scratch_nbrs_) RescreenVertex(v);
  }

  void DegreeTwoPathReduction(Vertex u);
  void ApplyDominance();

  const Graph& kg_;
  MisSolution* sol_;
  Vertex n_;
  std::vector<Vertex> adj_;
  std::vector<uint32_t> delta_;
  std::vector<uint32_t> rev_;
  std::vector<uint8_t> alive_;
  std::vector<uint8_t> peeled_;
  std::vector<uint8_t> in_set_;
  std::vector<uint32_t> deg_;
  std::vector<Vertex> v2_;
  std::vector<Vertex> dominated_;
  std::vector<DeferredDecision> deferred_;
  std::vector<Vertex> scratch_nbrs_;
  FastSet mark_, mark2_;
};

void NearLinearCore::ApplyDominance() {
  const Vertex u = dominated_.back();
  dominated_.pop_back();
  if (!alive_[u] || deg_[u] == 0) return;
  // Re-verify: u may no longer be dominated (mutual dominance, §A.3).
  for (Slot e = Begin(u); e < End(u); ++e) {
    const Vertex v = adj_[e];
    if (!alive_[v]) continue;
    if (delta_[e] == deg_[v] - 1) {
      // v dominates u: remove u.
      DeleteVertex(u);
      ++sol_->rules.dominance;
      return;
    }
  }
}

void NearLinearCore::DegreeTwoPathReduction(Vertex u) {
  Vertex start[2];
  start[0] = FirstAliveNeighbor(u);
  start[1] = OtherAliveNeighbor(u, start[0]);
  RPMIS_DASSERT(start[0] != kInvalidVertex && start[1] != kInvalidVertex);
  std::vector<Vertex> side[2];
  bool is_cycle = false;
  Vertex attach[2] = {kInvalidVertex, kInvalidVertex};
  for (int dir = 0; dir < 2 && !is_cycle; ++dir) {
    Vertex prev = u;
    Vertex cur = start[dir];
    while (deg_[cur] == 2) {
      if (cur == u) {
        is_cycle = true;
        break;
      }
      side[dir].push_back(cur);
      const Vertex next = OtherAliveNeighbor(cur, prev);
      RPMIS_DASSERT(next != kInvalidVertex);
      prev = cur;
      cur = next;
    }
    if (!is_cycle) attach[dir] = cur;
  }

  if (is_cycle) {
    ++sol_->rules.degree_two_path;
    DeleteVertex(u);
    return;
  }

  std::vector<Vertex> path;
  path.reserve(side[0].size() + side[1].size() + 1);
  for (size_t i = side[1].size(); i-- > 0;) path.push_back(side[1][i]);
  path.push_back(u);
  path.insert(path.end(), side[0].begin(), side[0].end());
  const Vertex v = attach[1];
  const Vertex w = attach[0];
  const size_t l = path.size();

  if (v == w) {
    ++sol_->rules.degree_two_path;  // Case 1
    DeleteVertex(v);
    return;
  }
  const bool vw_edge = HasAliveEdge(v, w);
  if (l % 2 == 1) {
    if (vw_edge) {
      ++sol_->rules.degree_two_path;  // Case 2
      DeleteVertex(v);
      if (alive_[w]) DeleteVertex(w);
      return;
    }
    if (l == 1) return;  // not applicable (Appendix A.2); checked once
    // Case 3: keep v_1, drop v_2..v_l, rewire (v_1, w) with δ = 0.
    ++sol_->rules.degree_two_path;
    for (size_t i = l; i-- > 1;) {
      deferred_.push_back({path[i], path[i - 1], i + 1 < l ? path[i + 1] : w});
    }
    for (size_t i = 1; i < l; ++i) {
      alive_[path[i]] = 0;
      deg_[path[i]] = 0;
    }
    const Slot e1 = Rewire(path[0], path[1], w);
    const Slot e2 = Rewire(w, path[l - 1], path[0]);
    delta_[e1] = 0;
    delta_[e2] = 0;
    rev_[e1] = e2;
    rev_[e2] = e1;
    // Degrees of v_1 and w unchanged; no dominance can newly arise
    // (both endpoints of the fresh edge keep δ = 0 < deg - 1).
    return;
  }
  // Even path: drop all of it.
  ++sol_->rules.degree_two_path;
  for (size_t i = l; i-- > 0;) {
    deferred_.push_back(
        {path[i], i > 0 ? path[i - 1] : v, i + 1 < l ? path[i + 1] : w});
  }
  for (size_t i = 0; i < l; ++i) {
    alive_[path[i]] = 0;
    deg_[path[i]] = 0;
  }
  if (vw_edge) {
    // Case 4: v and w lose one degree; triangle counts are untouched, so
    // only their own "dominates a neighbour" status can flip.
    for (Vertex x : {v, w}) {
      --deg_[x];
      OnDegreeDecrease(x);
    }
    RescreenVertex(v);
    RescreenVertex(w);
  } else {
    // Case 5: rewire (v, w); degrees unchanged; every common neighbour x
    // gains the triangles (x, v, w), so δ(x,v) and δ(x,w) grow by one.
    const Slot e1 = Rewire(v, path[0], w);
    const Slot e2 = Rewire(w, path[l - 1], v);
    rev_[e1] = e2;
    rev_[e2] = e1;
    mark_.Clear();
    for (Slot e = Begin(w); e < End(w); ++e) {
      if (alive_[adj_[e]]) mark_.Insert(adj_[e]);
    }
    uint32_t common = 0;
    mark2_.Clear();
    for (Slot e = Begin(v); e < End(v); ++e) {
      const Vertex x = adj_[e];
      if (x == w || !alive_[x] || !mark_.Contains(x)) continue;
      ++common;
      ++delta_[e];
      ++delta_[rev_[e]];
      mark2_.Insert(x);
    }
    for (Slot e = Begin(w); e < End(w); ++e) {
      const Vertex x = adj_[e];
      if (alive_[x] && mark2_.Contains(x)) {
        ++delta_[e];
        ++delta_[rev_[e]];
      }
    }
    delta_[e1] = common;
    delta_[e2] = common;
    RescreenVertex(v);
    RescreenVertex(w);
  }
}

void NearLinearCore::Run(bool want_capture, KernelSnapshot* capture,
                         const std::vector<Vertex>& kernel_to_orig,
                         const std::vector<uint8_t>& pre_in_set_orig) {
  std::vector<uint32_t> keys(deg_.begin(), deg_.end());
  LazyMaxBucketQueue peel_queue(keys);
  bool peeled_yet = false;

  auto capture_now = [&]() {
    if (!want_capture) return;
    // Translate the kernel-space state into original ids and snapshot.
    const Vertex n_orig = static_cast<Vertex>(pre_in_set_orig.size());
    std::vector<uint8_t> alive_o(n_orig, 0);
    std::vector<uint32_t> deg_o(n_orig, 0);
    std::vector<uint8_t> in_o = pre_in_set_orig;
    for (Vertex k = 0; k < n_; ++k) {
      const Vertex o = kernel_to_orig[k];
      alive_o[o] = alive_[k];
      deg_o[o] = deg_[k];
      if (in_set_[k]) in_o[o] = 1;
    }
    std::vector<Edge> edges;
    for (Vertex a = 0; a < n_; ++a) {
      if (!alive_[a] || deg_[a] == 0) continue;
      for (Slot e = Begin(a); e < End(a); ++e) {
        const Vertex b = adj_[e];
        if (a < b && alive_[b] && deg_[b] > 0) {
          edges.emplace_back(kernel_to_orig[a], kernel_to_orig[b]);
        }
      }
    }
    std::vector<DeferredDecision> deferred_o(deferred_.size());
    for (size_t i = 0; i < deferred_.size(); ++i) {
      deferred_o[i] = {kernel_to_orig[deferred_[i].v],
                       kernel_to_orig[deferred_[i].nb1],
                       kernel_to_orig[deferred_[i].nb2]};
    }
    internal::BuildKernelSnapshot(alive_o, deg_o, in_o, edges, deferred_o, capture);
  };

  while (true) {
    if (!v2_.empty()) {
      const Vertex u = v2_.back();
      v2_.pop_back();
      if (!alive_[u] || deg_[u] != 2) continue;
      DegreeTwoPathReduction(u);
      continue;
    }
    if (!dominated_.empty()) {
      ApplyDominance();
      continue;
    }
    const Vertex u = peel_queue.PopMax(
        [&](Vertex x) { return deg_[x]; },
        [&](Vertex x) { return alive_[x] && deg_[x] >= 2; });
    if (u == kInvalidVertex) break;
    if (!peeled_yet) {
      peeled_yet = true;
      for (Vertex x = 0; x < n_; ++x) {
        if (alive_[x] && deg_[x] > 0) {
          ++sol_->kernel_vertices;
          sol_->kernel_edges += deg_[x];
        }
      }
      sol_->kernel_edges /= 2;
      capture_now();
    }
    peeled_[u] = 1;
    ++sol_->rules.peels;
    DeleteVertex(u);
  }
  if (!peeled_yet) capture_now();
}

}  // namespace

MisSolution RunNearLinear(const Graph& g, KernelSnapshot* capture,
                          const NearLinearOptions& options) {
  const Vertex n = g.NumVertices();
  MisSolution sol;
  sol.in_set.assign(n, 0);

  std::vector<uint8_t> alive(n, 1);
  std::vector<uint32_t> deg(n);
  for (Vertex v = 0; v < n; ++v) {
    deg[v] = g.Degree(v);
    if (deg[v] == 0) {
      sol.in_set[v] = 1;
      ++sol.rules.degree_zero;
    }
  }

  // Prepass 1: one-pass dominance, decreasing degree order (shrinks Δ).
  if (options.one_pass_dominance) {
    sol.rules.one_pass_dominance = OnePassDominance(g, alive, deg, sol.in_set);
  }

  // Prepass 2: Nemhauser–Trotter persistency on the surviving subgraph.
  if (options.lp_reduction) {
    std::vector<Vertex> ids;
    std::vector<Vertex> to_compact(n, kInvalidVertex);
    for (Vertex v = 0; v < n; ++v) {
      if (alive[v] && deg[v] > 0) {
        to_compact[v] = static_cast<Vertex>(ids.size());
        ids.push_back(v);
      }
    }
    std::vector<Edge> edges;
    for (Vertex v : ids) {
      for (Vertex w : g.Neighbors(v)) {
        if (v < w && to_compact[w] != kInvalidVertex) {
          edges.emplace_back(to_compact[v], to_compact[w]);
        }
      }
    }
    const LpReduction lp = SolveLpReduction(static_cast<Vertex>(ids.size()), edges);
    sol.rules.lp = lp.num_include + lp.num_exclude;
    for (Vertex c = 0; c < ids.size(); ++c) {
      const Vertex v = ids[c];
      if (lp.include[c]) {
        sol.in_set[v] = 1;
        alive[v] = 0;  // decided; drops out of the kernel
      } else if (lp.exclude[c]) {
        alive[v] = 0;
      }
    }
  }

  // Build the compact kernel instance for the main loop.
  std::vector<Vertex> kernel_to_orig;
  std::vector<Vertex> orig_to_kernel(n, kInvalidVertex);
  std::vector<Edge> kernel_edges;
  {
    // Recompute liveness-aware degrees after the prepasses.
    for (Vertex v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      uint32_t d = 0;
      for (Vertex w : g.Neighbors(v)) {
        if (alive[w]) ++d;
      }
      if (d == 0) {
        sol.in_set[v] = 1;  // isolated survivor joins I
      } else {
        orig_to_kernel[v] = static_cast<Vertex>(kernel_to_orig.size());
        kernel_to_orig.push_back(v);
      }
    }
    for (Vertex v : kernel_to_orig) {
      for (Vertex w : g.Neighbors(v)) {
        if (v < w && orig_to_kernel[w] != kInvalidVertex) {
          kernel_edges.emplace_back(orig_to_kernel[v], orig_to_kernel[w]);
        }
      }
    }
  }
  const Graph kernel = Graph::FromEdges(
      static_cast<Vertex>(kernel_to_orig.size()), kernel_edges);

  NearLinearCore core(kernel, &sol);
  core.Run(capture != nullptr, capture, kernel_to_orig, sol.in_set);

  // Deferred path decisions resolve inside the kernel space, then
  // everything maps back to original ids for the final maximality pass.
  core.ReplayDeferred();
  std::vector<uint8_t> peeled_orig(n, 0);
  for (Vertex k = 0; k < kernel.NumVertices(); ++k) {
    if (core.InSet()[k]) sol.in_set[kernel_to_orig[k]] = 1;
    if (core.Peeled()[k]) peeled_orig[kernel_to_orig[k]] = 1;
  }
  ExtendToMaximal(g, sol.in_set);
  sol.RecountSize();
  sol.peeled = sol.rules.peels;
  for (Vertex v = 0; v < n; ++v) {
    if (peeled_orig[v] && !sol.in_set[v]) ++sol.residual_peeled;
  }
  sol.provably_maximum = (sol.residual_peeled == 0);
  return sol;
}

MisSolution RunNearLinearPerComponent(const Graph& g,
                                      const PerComponentOptions& opts,
                                      const NearLinearOptions& options) {
  const auto algo = [options](const Graph& sub) {
    return RunNearLinear(sub, nullptr, options);
  };
  return opts.parallel ? RunPerComponentParallel(g, algo)
                       : RunPerComponent(g, algo);
}

}  // namespace rpmis
