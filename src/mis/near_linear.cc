#include "mis/near_linear.h"

#include <algorithm>
#include <numeric>

#include "ds/bucket_queue.h"
#include "graph/algorithms.h"
#include "mis/compaction.h"
#include "mis/kernel_capture.h"
#include "mis/lp_reduction.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "support/parallel.h"

namespace rpmis {

namespace {

// The exact dominance predicate of the one-pass prepass: true iff some
// alive neighbour v of u with d(v) <= d(u) satisfies N(v) \ {u} ⊆ N(u).
// Pure reader of (alive, deg); `mark` is caller-owned scratch.
bool DominatedBy(const Graph& g, const std::vector<uint8_t>& alive,
                 const std::vector<uint32_t>& deg, Vertex u, FastSet& mark) {
  mark.Clear();
  for (Vertex x : g.Neighbors(u)) {
    if (alive[x]) mark.Insert(x);
  }
  for (Vertex v : g.Neighbors(u)) {
    // v dominates u iff N(v) \ {u} ⊆ N(u); only candidates with
    // d(v) <= d(u) can succeed, which bounds the scan by min degrees.
    if (!alive[v] || deg[v] > deg[u]) continue;
    bool ok = true;
    for (Vertex w : g.Neighbors(v)) {
      if (w == u || !alive[w]) continue;
      if (!mark.Contains(w)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

// Removes u (known dominated): neighbours lose a degree, isolated ones
// join I. Shared by the serial and parallel finalize paths.
void RemoveDominated(const Graph& g, std::vector<uint8_t>& alive,
                     std::vector<uint32_t>& deg, std::vector<uint8_t>& in_set,
                     Vertex u) {
  alive[u] = 0;
  for (Vertex x : g.Neighbors(u)) {
    if (!alive[x]) continue;
    if (--deg[x] == 0) in_set[x] = 1;
  }
}

}  // namespace

uint64_t OnePassDominance(const Graph& g, std::vector<uint8_t>& alive,
                          std::vector<uint32_t>& deg,
                          std::vector<uint8_t>& in_set,
                          DominanceScratch& scratch) {
  const Vertex n = g.NumVertices();
  // Count-sort vertices by decreasing initial degree: high-degree vertices
  // are the likely dominated ones and removing them shrinks Δ. Degrees are
  // cached once (the sort needs each three times).
  scratch.order.resize(n);
  scratch.initial_deg.resize(n);
  uint32_t max_deg = 0;
  for (Vertex v = 0; v < n; ++v) {
    scratch.initial_deg[v] = g.Degree(v);
    max_deg = std::max(max_deg, scratch.initial_deg[v]);
  }
  scratch.bucket.assign(static_cast<size_t>(max_deg) + 2, 0);
  for (Vertex v = 0; v < n; ++v) ++scratch.bucket[max_deg - scratch.initial_deg[v] + 1];
  for (size_t i = 1; i < scratch.bucket.size(); ++i) {
    scratch.bucket[i] += scratch.bucket[i - 1];
  }
  for (Vertex v = 0; v < n; ++v) {
    scratch.order[scratch.bucket[max_deg - scratch.initial_deg[v]]++] = v;
  }

  const size_t threads = NumThreads();
  const bool parallel = threads > 1 && n >= 512;
  const size_t want_marks = parallel ? threads : 1;
  if (scratch.marks.size() < want_marks) scratch.marks.resize(want_marks);
  for (size_t t = 0; t < want_marks; ++t) {
    if (scratch.marks[t].Universe() < n) scratch.marks[t].Resize(n);
  }

  uint64_t removed = 0;
  if (!parallel) {
    FastSet& mark = scratch.marks[0];
    for (Vertex u : scratch.order) {
      if (!alive[u] || deg[u] == 0) continue;
      if (!DominatedBy(g, alive, deg, u, mark)) continue;
      ++removed;
      RemoveDominated(g, alive, deg, in_set, u);
    }
    return removed;
  }

  // Parallel variant, byte-identical to the serial loop above at any
  // thread count: the order is processed in blocks; within a block every
  // vertex is screened concurrently against the block-start state (pure
  // reads), then the block is finalized serially in order. A finalize
  // removal invalidates cached verdicts only within distance two, so the
  // serial pass recomputes a vertex iff it or one of its neighbours is
  // dirty — every state location the predicate reads (deg/alive of
  // N(u), alive of N(v) for v in N(u)) is covered by that test, so the
  // outcome matches the serial pass exactly.
  const Vertex block = static_cast<Vertex>(
      std::max<size_t>(8192, static_cast<size_t>(n) / 64));
  scratch.screened.resize(n);
  if (scratch.dirty.Universe() < n) scratch.dirty.Resize(n);
  FastSet& dirty = scratch.dirty;
  for (Vertex lo = 0; lo < n; lo += block) {
    const Vertex hi = std::min<Vertex>(n, lo + block);
    const size_t span = hi - lo;
    RunParallel(threads, [&](size_t t) {
      const Vertex b = lo + static_cast<Vertex>(span * t / threads);
      const Vertex e = lo + static_cast<Vertex>(span * (t + 1) / threads);
      FastSet& mark = scratch.marks[t];
      for (Vertex i = b; i < e; ++i) {
        const Vertex u = scratch.order[i];
        scratch.screened[i] = alive[u] && deg[u] > 0 &&
                              DominatedBy(g, alive, deg, u, mark);
      }
    });
    dirty.Clear();
    for (Vertex i = lo; i < hi; ++i) {
      const Vertex u = scratch.order[i];
      if (!alive[u] || deg[u] == 0) continue;
      bool stale = dirty.Contains(u);
      if (!stale) {
        for (Vertex x : g.Neighbors(u)) {
          if (dirty.Contains(x)) {
            stale = true;
            break;
          }
        }
      }
      const bool dominated =
          stale ? DominatedBy(g, alive, deg, u, scratch.marks[0])
                : scratch.screened[i] != 0;
      if (!dominated) continue;
      ++removed;
      dirty.Insert(u);
      for (Vertex x : g.Neighbors(u)) dirty.Insert(x);
      RemoveDominated(g, alive, deg, in_set, u);
    }
  }
  return removed;
}

uint64_t OnePassDominance(const Graph& g, std::vector<uint8_t>& alive,
                          std::vector<uint32_t>& deg,
                          std::vector<uint8_t>& in_set) {
  DominanceScratch scratch;
  return OnePassDominance(g, alive, deg, in_set, scratch);
}

namespace {

// Directed-edge slot index into the flat adjacency array.
using Slot = uint32_t;
constexpr Slot kNoSlot = static_cast<Slot>(-1);

// The NearLinear main loop, operating on a compact kernel graph (the
// instance that remains after the exact prepasses). Membership, peel and
// deferred-path decisions are recorded directly in INPUT ids (via
// `to_orig_`), which lets the loop rebuild its own vertex universe mid-run
// (Compact) without post-hoc translation.
class NearLinearCore {
 public:
  NearLinearCore(const Graph& kg, std::vector<Vertex> kernel_to_orig,
                 MisSolution* sol, std::vector<uint8_t>* peeled_orig,
                 const CompactionOptions& copts)
      : sol_(sol),
        peeled_orig_(peeled_orig),
        n_(kg.NumVertices()),
        to_orig_(std::move(kernel_to_orig)),
        offsets_(kg.RawOffsets()),
        alive_(n_, 1),
        deg_(n_),
        mark_(n_),
        mark2_(n_),
        policy_(copts, n_) {
    const std::span<const Vertex> nbs = kg.RawNeighbors();
    adj_.assign(nbs.begin(), nbs.end());
    for (Vertex v = 0; v < n_; ++v) {
      deg_[v] = kg.Degree(v);
      if (deg_[v] > 0) ++active_;
      if (deg_[v] == 2) v2_.push_back(v);
    }
    delta_ = EdgeTriangleCounts(kg);
    rev_ = ReverseEdgeIndex(kg);
    // Initial dominated set: u dominates v  =>  v is dominated.
    for (Vertex u = 0; u < n_; ++u) {
      if (deg_[u] == 0) {
        sol_->in_set[to_orig_[u]] = 1;  // isolated kernel vertex (defensive;
        ++in_count_;                    // prepasses normally strip these)
        continue;
      }
      for (Slot e = Begin(u); e < End(u); ++e) {
        if (delta_[e] == deg_[u] - 1) dominated_.push_back(adj_[e]);
      }
    }
  }

  // Runs to completion.
  void Run(bool want_capture, KernelSnapshot* capture);

  /// Replays the deferred stack (partners are input-space ids).
  void ReplayDeferred() { ReplayDeferredStack(deferred_, sol_->in_set); }

 private:
  Slot Begin(Vertex v) const { return static_cast<Slot>(offsets_[v]); }
  Slot End(Vertex v) const { return static_cast<Slot>(offsets_[v + 1]); }

  // Rewires a's slot holding old_nb to new_nb; returns the slot.
  Slot Rewire(Vertex a, Vertex old_nb, Vertex new_nb) {
    for (Slot e = Begin(a); e < End(a); ++e) {
      if (adj_[e] == old_nb) {
        adj_[e] = new_nb;
        return e;
      }
    }
    RPMIS_ASSERT_MSG(false, "rewire target not found");
    return kNoSlot;
  }

  Vertex FirstAliveNeighbor(Vertex v) const {
    for (Slot e = Begin(v); e < End(v); ++e) {
      if (alive_[adj_[e]]) return adj_[e];
    }
    return kInvalidVertex;
  }

  Vertex OtherAliveNeighbor(Vertex v, Vertex exclude) const {
    for (Slot e = Begin(v); e < End(v); ++e) {
      const Vertex w = adj_[e];
      if (alive_[w] && w != exclude) return w;
    }
    return kInvalidVertex;
  }

  bool HasAliveEdge(Vertex a, Vertex b) const {
    if (deg_[a] > deg_[b]) std::swap(a, b);
    for (Slot e = Begin(a); e < End(a); ++e) {
      if (adj_[e] == b) return alive_[b] != 0;
    }
    return false;
  }

  // Screens every alive pair (v, x) incident to v for fresh dominance.
  void RescreenVertex(Vertex v) {
    if (!alive_[v]) return;
    for (Slot e = Begin(v); e < End(v); ++e) {
      const Vertex x = adj_[e];
      if (!alive_[x]) continue;
      if (deg_[v] >= 1 && delta_[e] == deg_[v] - 1) dominated_.push_back(x);
      if (deg_[x] >= 1 && delta_[e] == deg_[x] - 1) dominated_.push_back(v);
    }
  }

  void OnDegreeDecrease(Vertex w) {
    if (deg_[w] == 2) {
      v2_.push_back(w);
    } else if (deg_[w] == 0) {
      sol_->in_set[to_orig_[w]] = 1;
      ++in_count_;
      --active_;
    }
    // Degree-one vertices need no explicit worklist: such a vertex
    // dominates its remaining neighbour, which the rescreen pass enqueues.
  }

  // Deletes x, maintaining degrees, triangle counts and the dominated set.
  void DeleteVertex(Vertex x) {
    RPMIS_DASSERT(alive_[x]);
    alive_[x] = 0;
    if (deg_[x] > 0) --active_;
    // Pass A: collect alive neighbours, update degrees.
    scratch_nbrs_.clear();
    for (Slot e = Begin(x); e < End(x); ++e) {
      const Vertex v = adj_[e];
      if (!alive_[v]) continue;
      scratch_nbrs_.push_back(v);
      --deg_[v];
      OnDegreeDecrease(v);
    }
    // Pass B: every triangle (x, v, w) loses x; decrement δ on (v, w).
    mark_.Clear();
    for (Vertex v : scratch_nbrs_) mark_.Insert(v);
    for (Vertex v : scratch_nbrs_) {
      for (Slot e = Begin(v); e < End(v); ++e) {
        const Vertex w = adj_[e];
        if (alive_[w] && mark_.Contains(w)) {
          RPMIS_DASSERT(delta_[e] > 0);
          --delta_[e];  // the mirror decrements when the loop reaches w
        }
      }
    }
    // Pass C: neighbours lost a degree, so they may newly dominate; their
    // two-hop neighbours may newly be dominated (§5 discussion).
    for (Vertex v : scratch_nbrs_) RescreenVertex(v);
  }

  void DegreeTwoPathReduction(Vertex u);
  void ApplyDominance();
  void Compact(LazyMaxBucketQueue& peel_queue);

  // Progress-sample snapshot: O(live) edge recount, amortized by the
  // sampler stride. `in_count_` tracks vertices this core decided into I;
  // `in_base_` is what the prepasses had decided before the core started.
  void SampleProgress(obs::ProgressSampler* ps) {
    uint64_t deg_sum = 0;
    for (Vertex v = 0; v < n_; ++v) {
      if (alive_[v]) deg_sum += deg_[v];
    }
    obs::ProgressSample s;
    s.live_vertices = active_;
    s.live_edges = deg_sum / 2;
    s.solution_size = in_base_ + in_count_;
    // Crude in-flight bound: everything still live, deferred, or peeled
    // so far may yet join I (DESIGN.md §8).
    s.upper_bound =
        s.solution_size + active_ + deferred_.size() + sol_->rules.peels;
    s.label = "nearlinear.core";
    ps->Record(std::move(s));
  }

  MisSolution* sol_;
  std::vector<uint8_t>* peeled_orig_;
  Vertex n_;
  std::vector<Vertex> to_orig_;        // current id -> input id
  std::span<const uint64_t> offsets_;  // kernel CSR, then own_offsets_
  std::vector<uint64_t> own_offsets_;
  std::vector<Vertex> adj_;
  std::vector<uint32_t> delta_;
  std::vector<uint32_t> rev_;
  std::vector<uint8_t> alive_;
  std::vector<uint32_t> deg_;
  std::vector<Vertex> v2_;
  std::vector<Vertex> dominated_;
  std::vector<DeferredDecision> deferred_;  // input-space ids
  std::vector<Vertex> scratch_nbrs_;
  FastSet mark_, mark2_;
  Vertex active_ = 0;  // # vertices with alive && deg > 0
  uint64_t in_base_ = 0;   // |I| decided before the core started
  uint64_t in_count_ = 0;  // vertices this core added to I
  CompactionPolicy policy_;
};

void NearLinearCore::ApplyDominance() {
  const Vertex u = dominated_.back();
  dominated_.pop_back();
  if (!alive_[u] || deg_[u] == 0) return;
  // Re-verify: u may no longer be dominated (mutual dominance, §A.3).
  for (Slot e = Begin(u); e < End(u); ++e) {
    const Vertex v = adj_[e];
    if (!alive_[v]) continue;
    if (delta_[e] == deg_[v] - 1) {
      // v dominates u: remove u.
      DeleteVertex(u);
      ++sol_->rules.dominance;
      return;
    }
  }
}

void NearLinearCore::DegreeTwoPathReduction(Vertex u) {
  Vertex start[2];
  start[0] = FirstAliveNeighbor(u);
  start[1] = OtherAliveNeighbor(u, start[0]);
  RPMIS_DASSERT(start[0] != kInvalidVertex && start[1] != kInvalidVertex);
  std::vector<Vertex> side[2];
  bool is_cycle = false;
  Vertex attach[2] = {kInvalidVertex, kInvalidVertex};
  for (int dir = 0; dir < 2 && !is_cycle; ++dir) {
    Vertex prev = u;
    Vertex cur = start[dir];
    while (deg_[cur] == 2) {
      if (cur == u) {
        is_cycle = true;
        break;
      }
      side[dir].push_back(cur);
      const Vertex next = OtherAliveNeighbor(cur, prev);
      RPMIS_DASSERT(next != kInvalidVertex);
      prev = cur;
      cur = next;
    }
    if (!is_cycle) attach[dir] = cur;
  }

  if (is_cycle) {
    ++sol_->rules.degree_two_path;
    DeleteVertex(u);
    return;
  }

  std::vector<Vertex> path;
  path.reserve(side[0].size() + side[1].size() + 1);
  for (size_t i = side[1].size(); i-- > 0;) path.push_back(side[1][i]);
  path.push_back(u);
  path.insert(path.end(), side[0].begin(), side[0].end());
  const Vertex v = attach[1];
  const Vertex w = attach[0];
  const size_t l = path.size();

  if (v == w) {
    ++sol_->rules.degree_two_path;  // Case 1
    DeleteVertex(v);
    return;
  }
  const bool vw_edge = HasAliveEdge(v, w);
  if (l % 2 == 1) {
    if (vw_edge) {
      ++sol_->rules.degree_two_path;  // Case 2
      DeleteVertex(v);
      if (alive_[w]) DeleteVertex(w);
      return;
    }
    if (l == 1) return;  // not applicable (Appendix A.2); checked once
    // Case 3: keep v_1, drop v_2..v_l, rewire (v_1, w) with δ = 0.
    ++sol_->rules.degree_two_path;
    for (size_t i = l; i-- > 1;) {
      deferred_.push_back({to_orig_[path[i]], to_orig_[path[i - 1]],
                           i + 1 < l ? to_orig_[path[i + 1]] : to_orig_[w]});
    }
    for (size_t i = 1; i < l; ++i) {
      alive_[path[i]] = 0;
      deg_[path[i]] = 0;
      --active_;
    }
    const Slot e1 = Rewire(path[0], path[1], w);
    const Slot e2 = Rewire(w, path[l - 1], path[0]);
    delta_[e1] = 0;
    delta_[e2] = 0;
    rev_[e1] = e2;
    rev_[e2] = e1;
    // Degrees of v_1 and w unchanged; no dominance can newly arise
    // (both endpoints of the fresh edge keep δ = 0 < deg - 1).
    return;
  }
  // Even path: drop all of it.
  ++sol_->rules.degree_two_path;
  for (size_t i = l; i-- > 0;) {
    deferred_.push_back({to_orig_[path[i]],
                         i > 0 ? to_orig_[path[i - 1]] : to_orig_[v],
                         i + 1 < l ? to_orig_[path[i + 1]] : to_orig_[w]});
  }
  for (size_t i = 0; i < l; ++i) {
    alive_[path[i]] = 0;
    deg_[path[i]] = 0;
    --active_;
  }
  if (vw_edge) {
    // Case 4: v and w lose one degree; triangle counts are untouched, so
    // only their own "dominates a neighbour" status can flip.
    for (Vertex x : {v, w}) {
      --deg_[x];
      OnDegreeDecrease(x);
    }
    RescreenVertex(v);
    RescreenVertex(w);
  } else {
    // Case 5: rewire (v, w); degrees unchanged; every common neighbour x
    // gains the triangles (x, v, w), so δ(x,v) and δ(x,w) grow by one.
    const Slot e1 = Rewire(v, path[0], w);
    const Slot e2 = Rewire(w, path[l - 1], v);
    rev_[e1] = e2;
    rev_[e2] = e1;
    mark_.Clear();
    for (Slot e = Begin(w); e < End(w); ++e) {
      if (alive_[adj_[e]]) mark_.Insert(adj_[e]);
    }
    uint32_t common = 0;
    mark2_.Clear();
    for (Slot e = Begin(v); e < End(v); ++e) {
      const Vertex x = adj_[e];
      if (x == w || !alive_[x] || !mark_.Contains(x)) continue;
      ++common;
      ++delta_[e];
      ++delta_[rev_[e]];
      mark2_.Insert(x);
    }
    for (Slot e = Begin(w); e < End(w); ++e) {
      const Vertex x = adj_[e];
      if (alive_[x] && mark2_.Contains(x)) {
        ++delta_[e];
        ++delta_[rev_[e]];
      }
    }
    delta_[e1] = common;
    delta_[e2] = common;
    RescreenVertex(v);
    RescreenVertex(w);
  }
}

// Rebuilds every per-vertex and per-slot structure over the alive,
// still-undecided subgraph. The renaming is monotone and per-vertex slot
// order is preserved, so every later scan (first-alive-neighbour walks,
// rewire lookups, a < b edge enumerations) sees the same sequence as
// without compaction — the run is byte-identical either way.
void NearLinearCore::Compact(LazyMaxBucketQueue& peel_queue) {
  obs::TraceSpan span(obs::Trace(), "nearlinear.compact");
  std::vector<uint8_t> keep(n_);
  for (Vertex u = 0; u < n_; ++u) keep[u] = alive_[u] && deg_[u] > 0;
  VertexRenaming ren = BuildRenaming(keep);
  const Vertex new_n = static_cast<Vertex>(ren.kept.size());
  RPMIS_DASSERT(new_n == active_);
  std::vector<uint64_t> new_offsets;
  std::vector<Vertex> new_adj;
  std::vector<uint32_t> slot_map;
  CompactCsr(ren, offsets_, adj_, &new_offsets, &new_adj, &slot_map,
             &sol_->compaction);
  // A slot survives iff its owner and target both survive; its reverse
  // slot has the same endpoints, so it survives too and the rev links can
  // be rebuilt by composition with the slot map.
  std::vector<uint32_t> new_delta(new_adj.size());
  std::vector<uint32_t> new_rev(new_adj.size());
  for (Vertex i = 0; i < new_n; ++i) {
    const Vertex v = ren.kept[i];
    for (uint64_t s = offsets_[v]; s < offsets_[v + 1]; ++s) {
      if (ren.to_new[adj_[s]] == kInvalidVertex) continue;
      new_delta[slot_map[s]] = delta_[s];
      new_rev[slot_map[s]] = slot_map[rev_[s]];
    }
  }
  own_offsets_ = std::move(new_offsets);
  offsets_ = own_offsets_;
  adj_ = std::move(new_adj);
  delta_ = std::move(new_delta);
  rev_ = std::move(new_rev);
  std::vector<uint32_t> new_deg(new_n);
  for (Vertex i = 0; i < new_n; ++i) new_deg[i] = deg_[ren.kept[i]];
  deg_ = std::move(new_deg);
  alive_.assign(new_n, 1);
  ComposeToOrig(ren, &to_orig_);
  RemapWorklist(ren, &v2_);
  RemapWorklist(ren, &dominated_);
  peel_queue.Compact(new_n, ren.to_new);
  mark_.Resize(new_n);
  mark2_.Resize(new_n);
  n_ = new_n;
  policy_.NoteRebuild(new_n);
}

void NearLinearCore::Run(bool want_capture, KernelSnapshot* capture) {
  obs::TraceSpan core_span(obs::Trace(), "nearlinear.core");
  if (obs::Progress() != nullptr) {
    // Baseline |I| for progress samples: prepass decisions, minus what the
    // constructor already attributed to this core.
    uint64_t total = 0;
    for (uint8_t f : sol_->in_set) total += f;
    in_base_ = total - in_count_;
  }
  std::vector<uint32_t> keys(deg_.begin(), deg_.end());
  LazyMaxBucketQueue peel_queue(keys);
  bool peeled_yet = false;

  auto capture_now = [&]() {
    if (!want_capture) return;
    // Translate the kernel-space state into input ids and snapshot.
    const Vertex n_orig = static_cast<Vertex>(sol_->in_set.size());
    std::vector<uint8_t> alive_o(n_orig, 0);
    std::vector<uint32_t> deg_o(n_orig, 0);
    for (Vertex k = 0; k < n_; ++k) {
      const Vertex o = to_orig_[k];
      alive_o[o] = alive_[k];
      deg_o[o] = deg_[k];
    }
    std::vector<Edge> edges;
    for (Vertex a = 0; a < n_; ++a) {
      if (!alive_[a] || deg_[a] == 0) continue;
      for (Slot e = Begin(a); e < End(a); ++e) {
        const Vertex b = adj_[e];
        if (a < b && alive_[b] && deg_[b] > 0) {
          edges.emplace_back(to_orig_[a], to_orig_[b]);
        }
      }
    }
    internal::BuildKernelSnapshot(alive_o, deg_o, sol_->in_set, edges,
                                  deferred_, capture);
  };

  while (true) {
    if (auto* ps = obs::Progress(); ps != nullptr && ps->Due()) {
      SampleProgress(ps);
    }
    if (policy_.ShouldCompact(active_)) Compact(peel_queue);
    if (!v2_.empty()) {
      const Vertex u = v2_.back();
      v2_.pop_back();
      if (!alive_[u] || deg_[u] != 2) continue;
      DegreeTwoPathReduction(u);
      continue;
    }
    if (!dominated_.empty()) {
      ApplyDominance();
      continue;
    }
    const Vertex u = peel_queue.PopMax(
        [&](Vertex x) { return deg_[x]; },
        [&](Vertex x) { return alive_[x] && deg_[x] >= 2; });
    if (u == kInvalidVertex) break;
    if (!peeled_yet) {
      peeled_yet = true;
      if (auto* t = obs::Trace()) t->Instant("nearlinear.first_peel");
      sol_->kernel_vertices = active_;
      for (Vertex x = 0; x < n_; ++x) {
        if (alive_[x]) sol_->kernel_edges += deg_[x];
      }
      sol_->kernel_edges /= 2;
      capture_now();
    }
    (*peeled_orig_)[to_orig_[u]] = 1;
    ++sol_->rules.peels;
    DeleteVertex(u);
  }
  if (!peeled_yet) capture_now();
}

}  // namespace

MisSolution RunNearLinear(const Graph& g, KernelSnapshot* capture,
                          const NearLinearOptions& options) {
  obs::TraceSpan algo_span(obs::Trace(), "nearlinear");
  const Vertex n = g.NumVertices();
  MisSolution sol;
  sol.in_set.assign(n, 0);

  std::vector<uint8_t> alive(n, 1);
  std::vector<uint32_t> deg(n);
  for (Vertex v = 0; v < n; ++v) {
    deg[v] = g.Degree(v);
    if (deg[v] == 0) {
      sol.in_set[v] = 1;
      ++sol.rules.degree_zero;
    }
  }

  // Prepass 1: one-pass dominance, decreasing degree order (shrinks Δ).
  if (options.one_pass_dominance) {
    obs::TraceSpan span(obs::Trace(), "nearlinear.prepass.dominance");
    DominanceScratch scratch;
    sol.rules.one_pass_dominance =
        OnePassDominance(g, alive, deg, sol.in_set, scratch);
  }

  // Prepass 2: Nemhauser–Trotter persistency on the surviving subgraph.
  if (options.lp_reduction) {
    obs::TraceSpan span(obs::Trace(), "nearlinear.prepass.lp");
    std::vector<uint8_t> keep(n);
    for (Vertex v = 0; v < n; ++v) keep[v] = alive[v] && deg[v] > 0;
    const VertexRenaming ren = BuildRenaming(keep);
    std::vector<Edge> edges;
    BuildCompactEdges(g, ren, &edges);  // deterministic parallel build
    const LpReduction lp =
        SolveLpReduction(static_cast<Vertex>(ren.kept.size()), edges);
    sol.rules.lp = lp.num_include + lp.num_exclude;
    for (Vertex c = 0; c < ren.kept.size(); ++c) {
      const Vertex v = ren.kept[c];
      if (lp.include[c]) {
        sol.in_set[v] = 1;
        alive[v] = 0;  // decided; drops out of the kernel
      } else if (lp.exclude[c]) {
        alive[v] = 0;
      }
    }
  }

  // Build the compact kernel instance for the main loop.
  std::vector<Vertex> kernel_to_orig;
  std::vector<Edge> kernel_edges;
  {
    obs::TraceSpan span(obs::Trace(), "nearlinear.kernel_build");
    // Recompute liveness-aware degrees after the prepasses.
    std::vector<uint8_t> keep(n, 0);
    for (Vertex v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      uint32_t d = 0;
      for (Vertex w : g.Neighbors(v)) {
        if (alive[w]) ++d;
      }
      if (d == 0) {
        sol.in_set[v] = 1;  // isolated survivor joins I
      } else {
        keep[v] = 1;
      }
    }
    VertexRenaming ren = BuildRenaming(keep);
    BuildCompactEdges(g, ren, &kernel_edges);  // deterministic parallel build
    kernel_to_orig = std::move(ren.kept);
  }
  const Graph kernel = Graph::FromEdges(
      static_cast<Vertex>(kernel_to_orig.size()), kernel_edges);

  std::vector<uint8_t> peeled_orig(n, 0);
  NearLinearCore core(kernel, std::move(kernel_to_orig), &sol, &peeled_orig,
                      options.compaction);
  core.Run(capture != nullptr, capture);

  // Deferred path decisions are recorded in input ids, so they replay
  // directly against the final membership flags.
  obs::TraceSpan finalize_span(obs::Trace(), "nearlinear.finalize");
  core.ReplayDeferred();
  ExtendToMaximal(g, sol.in_set);
  sol.RecountSize();
  sol.peeled = sol.rules.peels;
  for (Vertex v = 0; v < n; ++v) {
    if (peeled_orig[v] && !sol.in_set[v]) ++sol.residual_peeled;
  }
  sol.provably_maximum = (sol.residual_peeled == 0);
  return sol;
}

MisSolution RunNearLinearPerComponent(const Graph& g,
                                      const PerComponentOptions& opts,
                                      const NearLinearOptions& options) {
  const auto algo = [options](const Graph& sub) {
    return RunNearLinear(sub, nullptr, options);
  };
  return opts.parallel ? RunPerComponentParallel(g, algo)
                       : RunPerComponent(g, algo);
}

}  // namespace rpmis
