// NearLinear (Algorithm 5): Reducing-Peeling with the degree-two path
// reductions and the dominance reduction, applied incrementally via
// per-edge triangle counts (Lemma 5.2: u dominates v iff
// δ(u,v) = d(u) - 1).
//
// O(m·Δ) worst case, 4m + O(n) space (adjacency copy + triangle counts +
// reverse-edge index). Two prepasses shrink Δ and the instance before the
// main loop, as in §5:
//   1. one-pass dominance in decreasing-degree order, O(m·a(G));
//   2. the Nemhauser–Trotter LP reduction, O(m√n).
// Both are exact and both can be disabled for ablation.
#ifndef RPMIS_MIS_NEAR_LINEAR_H_
#define RPMIS_MIS_NEAR_LINEAR_H_

#include "graph/graph.h"
#include "mis/per_component.h"
#include "mis/solution.h"
#include "support/fast_set.h"

namespace rpmis {

struct NearLinearOptions {
  bool one_pass_dominance = true;
  bool lp_reduction = true;
  /// Mid-run alive-subgraph rebuilds of the main-loop kernel
  /// (mis/compaction.h). Output is byte-identical with compaction disabled
  /// or at any threshold.
  CompactionOptions compaction;
};

/// Computes a maximal independent set of g with NearLinear. If `capture`
/// is non-null it receives the kernel right before the first peel.
MisSolution RunNearLinear(const Graph& g, KernelSnapshot* capture = nullptr,
                          const NearLinearOptions& options = {});

/// Component-wise NearLinear: runs RunNearLinear (with `options`) on
/// every connected component independently (concurrently when
/// opts.parallel) and merges. Output is independent of the thread count.
MisSolution RunNearLinearPerComponent(const Graph& g,
                                      const PerComponentOptions& opts = {},
                                      const NearLinearOptions& options = {});

/// Reusable scratch for OnePassDominance: the degree-order buffers plus the
/// per-thread mark sets of the parallel screening pass. A caller that runs
/// the prepass repeatedly (the kernelizer, per-component sweeps) passes the
/// same object each time and pays the allocations once.
struct DominanceScratch {
  std::vector<Vertex> order;
  std::vector<uint32_t> bucket;
  std::vector<uint32_t> initial_deg;  // cached g.Degree(v)
  std::vector<uint8_t> screened;      // per-order-position screening result
  std::vector<FastSet> marks;         // marks[t] owned by screening task t
  FastSet dirty;                      // vertices whose 2-hop state changed
};

/// The standalone one-pass dominance prepass: processes vertices in
/// decreasing degree order and deletes every vertex dominated by a
/// (not-larger-degree) neighbour. `alive` and `deg` are updated in place;
/// vertices whose degree reaches zero are flagged in `in_set`. Returns the
/// number of deletions. Exposed for tests and the kernelizer.
///
/// Runs the screening phase on NumThreads() threads in blocks, then
/// finalizes each block serially in order; the result is byte-identical to
/// the serial pass at every thread count (see DESIGN.md).
uint64_t OnePassDominance(const Graph& g, std::vector<uint8_t>& alive,
                          std::vector<uint32_t>& deg,
                          std::vector<uint8_t>& in_set,
                          DominanceScratch& scratch);

/// Convenience overload with private scratch (allocates every call).
uint64_t OnePassDominance(const Graph& g, std::vector<uint8_t>& alive,
                          std::vector<uint32_t>& deg,
                          std::vector<uint8_t>& in_set);

}  // namespace rpmis

#endif  // RPMIS_MIS_NEAR_LINEAR_H_
