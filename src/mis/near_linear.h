// NearLinear (Algorithm 5): Reducing-Peeling with the degree-two path
// reductions and the dominance reduction, applied incrementally via
// per-edge triangle counts (Lemma 5.2: u dominates v iff
// δ(u,v) = d(u) - 1).
//
// O(m·Δ) worst case, 4m + O(n) space (adjacency copy + triangle counts +
// reverse-edge index). Two prepasses shrink Δ and the instance before the
// main loop, as in §5:
//   1. one-pass dominance in decreasing-degree order, O(m·a(G));
//   2. the Nemhauser–Trotter LP reduction, O(m√n).
// Both are exact and both can be disabled for ablation.
#ifndef RPMIS_MIS_NEAR_LINEAR_H_
#define RPMIS_MIS_NEAR_LINEAR_H_

#include "graph/graph.h"
#include "mis/per_component.h"
#include "mis/solution.h"

namespace rpmis {

struct NearLinearOptions {
  bool one_pass_dominance = true;
  bool lp_reduction = true;
};

/// Computes a maximal independent set of g with NearLinear. If `capture`
/// is non-null it receives the kernel right before the first peel.
MisSolution RunNearLinear(const Graph& g, KernelSnapshot* capture = nullptr,
                          const NearLinearOptions& options = {});

/// Component-wise NearLinear: runs RunNearLinear (with `options`) on
/// every connected component independently (concurrently when
/// opts.parallel) and merges. Output is independent of the thread count.
MisSolution RunNearLinearPerComponent(const Graph& g,
                                      const PerComponentOptions& opts = {},
                                      const NearLinearOptions& options = {});

/// The standalone one-pass dominance prepass: processes vertices in
/// decreasing degree order and deletes every vertex dominated by a
/// (not-larger-degree) neighbour. `alive` and `deg` are updated in place;
/// vertices whose degree reaches zero are flagged in `in_set`. Returns the
/// number of deletions. Exposed for tests and the kernelizer.
uint64_t OnePassDominance(const Graph& g, std::vector<uint8_t>& alive,
                          std::vector<uint32_t>& deg,
                          std::vector<uint8_t>& in_set);

}  // namespace rpmis

#endif  // RPMIS_MIS_NEAR_LINEAR_H_
