// I/O-efficient Reducing-Peeling (the paper's §8 future-work direction,
// in the semi-external model of Liu et al. [30]).
//
// Only O(n) vertex state (degrees, statuses) is kept in memory; the edge
// set is consumed through a rewindable stream, one sequential pass at a
// time. Each round:
//   1. one pass recomputes alive degrees and records, for every vertex,
//      one alive neighbour (enough to apply the degree-one reduction);
//   2. all currently degree-one vertices fire the degree-one reduction
//      (their unique neighbours die) — cascades continue in later rounds;
//   3. if nothing fired and edges remain, the maximum-degree vertex is
//      peeled (the inexact reduction).
// After the graph empties, the solution is extended to a maximal IS by a
// streaming Luby-style pass: candidates with no solution neighbour join
// unless a smaller-id candidate neighbour exists (deterministic, conflict
// free), repeated to fixpoint.
//
// The result matches BDOne's quality model (degree-one + peeling): valid,
// maximal, and it carries the Theorem 6.1 upper bound. Cost:
// O(passes * m) sequential edge I/O with O(n) memory.
#ifndef RPMIS_MIS_IO_EFFICIENT_H_
#define RPMIS_MIS_IO_EFFICIENT_H_

#include <string>

#include "graph/graph.h"
#include "mis/solution.h"

namespace rpmis {

/// A rewindable stream of undirected edges. Implementations must deliver
/// the same sequence on every pass.
class EdgeStream {
 public:
  virtual ~EdgeStream() = default;

  /// Restarts the stream from the first edge.
  virtual void Rewind() = 0;

  /// Fetches the next edge; returns false at end of stream.
  virtual bool Next(Edge* edge) = 0;
};

/// Streams the edges of an in-memory Graph (testing / small inputs).
class InMemoryEdgeStream final : public EdgeStream {
 public:
  explicit InMemoryEdgeStream(const Graph& g);

  void Rewind() override { cursor_ = 0; }
  bool Next(Edge* edge) override;

 private:
  std::vector<Edge> edges_;
  size_t cursor_ = 0;
};

/// Streams edges from a binary file of consecutive (u, v) Vertex pairs
/// (written by WriteEdgeStreamFile below). The file is re-read on every
/// pass; memory stays O(1).
class FileEdgeStream final : public EdgeStream {
 public:
  /// Throws std::runtime_error if the file cannot be opened.
  explicit FileEdgeStream(const std::string& path);
  ~FileEdgeStream() override;

  void Rewind() override;
  bool Next(Edge* edge) override;

 private:
  struct Impl;
  Impl* impl_;
};

/// Writes g's edges as the binary pair stream FileEdgeStream reads.
void WriteEdgeStreamFile(const Graph& g, const std::string& path);

struct IoEfficientResult {
  MisSolution solution;
  uint64_t reduction_passes = 0;   // sequential edge passes in phase 1
  uint64_t extension_passes = 0;   // passes of the maximality phase
};

/// Computes a maximal independent set of the n-vertex graph behind
/// `stream` with the streaming Reducing-Peeling algorithm above.
IoEfficientResult RunIoEfficientBDOne(Vertex n, EdgeStream& stream);

}  // namespace rpmis

#endif  // RPMIS_MIS_IO_EFFICIENT_H_
