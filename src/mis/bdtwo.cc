#include "mis/bdtwo.h"

#include <algorithm>
#include <numeric>

#include "ds/bucket_queue.h"
#include "graph/adjacency_graph.h"
#include "mis/compaction.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace rpmis {

namespace {

// A degree-two folding record: u was deleted, `merged` was contracted into
// `rep`. On unwind (reverse order): rep in I  =>  merged joins I too;
// otherwise u joins I (Lemma 2.2). All three are INPUT ids, so the records
// survive mid-run renamings untouched.
struct FoldRecord {
  Vertex u;
  Vertex merged;
  Vertex rep;
};

}  // namespace

MisSolution RunBDTwo(const Graph& g, const BDTwoOptions& options) {
  obs::TraceSpan algo_span(obs::Trace(), "bdtwo");
  const Vertex n = g.NumVertices();
  MisSolution sol;
  sol.in_set.assign(n, 0);
  uint64_t in_count = 0;  // running |I| for progress samples

  AdjacencyGraph dyn(g);
  // Current id -> input id (identity until the first compaction). Decisions
  // (in_set, peeled, folds) are always recorded in input ids.
  std::vector<Vertex> to_orig(n);
  std::iota(to_orig.begin(), to_orig.end(), Vertex{0});

  std::vector<uint8_t> peeled(n, 0);  // input-id space
  std::vector<Vertex> v1, v2;         // worklists with lazy staleness checks
  std::vector<FoldRecord> folds;
  std::vector<Vertex> touched;

  // Contraction can raise a degree up to n-1, so the bucket range is the
  // full [0, n-1] ("n bins", §3.2) and the queue is the eager doubly-linked
  // variant.
  BucketQueue queue(n, n == 0 ? 0 : n - 1);
  for (Vertex v = 0; v < n; ++v) {
    const uint32_t d = dyn.Degree(v);
    if (d == 0) {
      sol.in_set[v] = 1;
      ++in_count;
      ++sol.rules.degree_zero;
      continue;  // already decided; never enters the queue
    }
    queue.Insert(v, d);
    if (d == 1) {
      v1.push_back(v);
    } else if (d == 2) {
      v2.push_back(v);
    }
  }
  CompactionPolicy policy(options.compaction, n);

  // Re-synchronizes queue keys and worklists for vertices whose degree
  // changed, and finalizes vertices that dropped to degree zero.
  auto sync_touched = [&]() {
    for (Vertex x : touched) {
      if (!dyn.IsAlive(x) || !queue.Contains(x)) continue;
      const uint32_t d = dyn.Degree(x);
      if (d == 0) {
        queue.Remove(x);
        sol.in_set[to_orig[x]] = 1;
        ++in_count;
        continue;
      }
      if (queue.KeyOf(x) != d) queue.Update(x, d);
      if (d == 1) {
        v1.push_back(x);
      } else if (d == 2) {
        v2.push_back(x);
      }
    }
    touched.clear();
  };

  auto remove_vertex = [&](Vertex v) {
    if (queue.Contains(v)) queue.Remove(v);
    dyn.RemoveVertex(v, &touched);
    sync_touched();
  };

  // Rebuilds the dynamic graph, queue and worklists over the alive,
  // still-undecided subgraph. At the loop top the queue holds exactly the
  // vertices with alive && deg > 0 (deg-0 "husks" were removed by
  // sync_touched and degrees never resurrect), so queue.Size() is the
  // active count and every queue entry survives the renaming. List and
  // bucket order are preserved, so the run is byte-identical.
  auto compact = [&]() {
    obs::TraceSpan span(obs::Trace(), "bdtwo.compact");
    const Vertex cur_n = dyn.NumVertices();
    std::vector<uint8_t> keep(cur_n);
    for (Vertex x = 0; x < cur_n; ++x) {
      keep[x] = dyn.IsAlive(x) && dyn.Degree(x) > 0;
    }
    VertexRenaming ren = BuildRenaming(keep);
    const Vertex new_n = static_cast<Vertex>(ren.kept.size());
    RPMIS_DASSERT(new_n == queue.Size());
    ++sol.compaction.compactions;
    sol.compaction.vertices_scanned += cur_n;
    sol.compaction.slots_scanned += 2 * dyn.NumAliveEdges();
    sol.compaction.vertices_kept += new_n;
    sol.compaction.slots_kept += 2 * dyn.NumAliveEdges();
    dyn.Compact(new_n, ren.to_new);
    queue.Compact(new_n, ren.to_new, new_n == 0 ? 0 : new_n - 1);
    RemapWorklist(ren, &v1);
    RemapWorklist(ren, &v2);
    ComposeToOrig(ren, &to_orig);
    policy.NoteRebuild(new_n);
  };

  // Progress snapshot: O(1) here — the dynamic graph tracks its alive
  // edge count and the queue its size.
  auto sample_progress = [&](obs::ProgressSampler* ps) {
    obs::ProgressSample s;
    s.live_vertices = queue.Size();
    s.live_edges = dyn.NumAliveEdges();
    s.solution_size = in_count;
    // Crude in-flight bound: live, folded, and peeled-so-far vertices may
    // yet join I (DESIGN.md §8).
    s.upper_bound = in_count + queue.Size() + folds.size() + sol.rules.peels;
    s.label = "bdtwo.core";
    ps->Record(std::move(s));
  };

  bool peeled_yet = false;
  {
  obs::TraceSpan core_span(obs::Trace(), "bdtwo.core");
  while (true) {
    if (auto* ps = obs::Progress(); ps != nullptr && ps->Due()) {
      sample_progress(ps);
    }
    if (policy.ShouldCompact(queue.Size())) compact();
    if (!v1.empty()) {
      const Vertex u = v1.back();
      v1.pop_back();
      if (!dyn.IsAlive(u) || dyn.Degree(u) != 1) continue;
      Vertex nb = kInvalidVertex;
      dyn.ForEachNeighbor(u, [&](Vertex w) { nb = w; });
      RPMIS_DASSERT(nb != kInvalidVertex);
      remove_vertex(nb);
      ++sol.rules.degree_one;
      continue;
    }
    if (!v2.empty()) {
      const Vertex u = v2.back();
      v2.pop_back();
      if (!dyn.IsAlive(u) || dyn.Degree(u) != 2) continue;
      Vertex nbs[2];
      int k = 0;
      dyn.ForEachNeighbor(u, [&](Vertex w) { nbs[k++] = w; });
      RPMIS_DASSERT(k == 2);
      Vertex v = nbs[0], w = nbs[1];
      if (dyn.HasEdge(v, w)) {
        // Degree-two isolation: u joins I; drop both neighbours.
        remove_vertex(v);
        if (dyn.IsAlive(w)) remove_vertex(w);
        ++sol.rules.degree_two_isolation;
      } else {
        // Degree-two folding: contract {u, v, w}. Contract the smaller
        // neighbourhood into the larger (the Theorem 3.1 cost model).
        if (dyn.Degree(v) > dyn.Degree(w)) std::swap(v, w);
        remove_vertex(u);
        RPMIS_DASSERT(dyn.IsAlive(v) && dyn.IsAlive(w));
        if (queue.Contains(v)) queue.Remove(v);
        dyn.ContractInto(v, w, &touched);
        sync_touched();
        folds.push_back({to_orig[u], to_orig[v], to_orig[w]});
        ++sol.rules.degree_two_folding;
      }
      continue;
    }
    if (queue.Empty()) break;
    // Inexact reduction: peel the max-degree vertex (necessarily deg >= 3
    // here, since the worklists are drained).
    const Vertex u = queue.PopMax();
    RPMIS_DASSERT(dyn.IsAlive(u) && dyn.Degree(u) >= 3);
    if (!peeled_yet) {
      peeled_yet = true;
      if (auto* t = obs::Trace()) t->Instant("bdtwo.first_peel");
      for (Vertex x = 0; x < dyn.NumVertices(); ++x) {
        if (dyn.IsAlive(x) && dyn.Degree(x) > 0) ++sol.kernel_vertices;
      }
      sol.kernel_edges = dyn.NumAliveEdges();
    }
    peeled[to_orig[u]] = 1;
    ++sol.rules.peels;
    dyn.RemoveVertex(u, &touched);
    sync_touched();
  }
  }  // core_span

  // Backtrack the contraction operations (Line 6 of Algorithm 3).
  obs::TraceSpan finalize_span(obs::Trace(), "bdtwo.finalize");
  for (size_t i = folds.size(); i-- > 0;) {
    const FoldRecord& f = folds[i];
    if (sol.in_set[f.rep]) {
      sol.in_set[f.merged] = 1;  // supervertex chosen: v and w both join I
    } else {
      sol.in_set[f.u] = 1;  // supervertex rejected: u joins I
    }
  }

  ExtendToMaximal(g, sol.in_set);
  sol.RecountSize();
  sol.peeled = sol.rules.peels;
  for (Vertex x = 0; x < n; ++x) {
    if (peeled[x] && !sol.in_set[x]) ++sol.residual_peeled;
  }
  sol.provably_maximum = (sol.residual_peeled == 0);
  return sol;
}

MisSolution RunBDTwoPerComponent(const Graph& g, const PerComponentOptions& opts,
                                 const BDTwoOptions& options) {
  const auto algo = [options](const Graph& sub) {
    return RunBDTwo(sub, options);
  };
  return opts.parallel ? RunPerComponentParallel(g, algo)
                       : RunPerComponent(g, algo);
}

}  // namespace rpmis
