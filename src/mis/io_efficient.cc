#include "mis/io_efficient.h"

#include <cstdio>
#include <stdexcept>

namespace rpmis {

InMemoryEdgeStream::InMemoryEdgeStream(const Graph& g)
    : edges_(g.CollectEdges()) {}

bool InMemoryEdgeStream::Next(Edge* edge) {
  if (cursor_ >= edges_.size()) return false;
  *edge = edges_[cursor_++];
  return true;
}

struct FileEdgeStream::Impl {
  FILE* file = nullptr;
};

FileEdgeStream::FileEdgeStream(const std::string& path) : impl_(new Impl) {
  impl_->file = std::fopen(path.c_str(), "rb");
  if (impl_->file == nullptr) {
    delete impl_;
    throw std::runtime_error("rpmis::FileEdgeStream: cannot open " + path);
  }
}

FileEdgeStream::~FileEdgeStream() {
  if (impl_->file != nullptr) std::fclose(impl_->file);
  delete impl_;
}

void FileEdgeStream::Rewind() { std::rewind(impl_->file); }

bool FileEdgeStream::Next(Edge* edge) {
  Vertex pair[2];
  if (std::fread(pair, sizeof(Vertex), 2, impl_->file) != 2) return false;
  edge->first = pair[0];
  edge->second = pair[1];
  return true;
}

void WriteEdgeStreamFile(const Graph& g, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("rpmis::WriteEdgeStreamFile: cannot open " + path);
  }
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (Vertex w : g.Neighbors(v)) {
      if (v < w) {
        const Vertex pair[2] = {v, w};
        std::fwrite(pair, sizeof(Vertex), 2, f);
      }
    }
  }
  std::fclose(f);
}

namespace {

enum class Status : uint8_t {
  kAlive = 0,
  kDeleted = 1,  // excluded (neighbour of a taken vertex, or peeled)
  kInSet = 2,
};

}  // namespace

IoEfficientResult RunIoEfficientBDOne(Vertex n, EdgeStream& stream) {
  IoEfficientResult out;
  MisSolution& sol = out.solution;
  sol.in_set.assign(n, 0);

  std::vector<Status> status(n, Status::kAlive);
  std::vector<uint8_t> peeled(n, 0);
  std::vector<uint32_t> deg(n);
  std::vector<Vertex> any_neighbor(n);

  // ---- Phase 1: streaming Reducing-Peeling with the degree-one rule ----
  while (true) {
    // One pass: recompute alive degrees and one alive neighbour each.
    std::fill(deg.begin(), deg.end(), 0);
    std::fill(any_neighbor.begin(), any_neighbor.end(), kInvalidVertex);
    uint64_t alive_edges = 0;
    stream.Rewind();
    Edge e;
    while (stream.Next(&e)) {
      const auto [u, v] = e;
      if (status[u] != Status::kAlive || status[v] != Status::kAlive) continue;
      if (u == v) continue;
      ++deg[u];
      ++deg[v];
      any_neighbor[u] = v;
      any_neighbor[v] = u;
      ++alive_edges;
    }
    ++out.reduction_passes;

    // Isolated alive vertices join I.
    for (Vertex v = 0; v < n; ++v) {
      if (status[v] == Status::kAlive && deg[v] == 0) {
        status[v] = Status::kInSet;
        sol.in_set[v] = 1;
        ++sol.rules.degree_zero;
      }
    }
    if (alive_edges == 0) break;

    // Degree-one reductions: delete the unique neighbour of each pendant.
    // If two pendants point at each other (an isolated edge), the first
    // one processed deletes the other; the later entry is stale and skips.
    bool fired = false;
    for (Vertex v = 0; v < n; ++v) {
      if (status[v] != Status::kAlive || deg[v] != 1) continue;
      const Vertex nb = any_neighbor[v];
      if (status[nb] != Status::kAlive) continue;  // stale (cascade)
      status[nb] = Status::kDeleted;
      ++sol.rules.degree_one;
      fired = true;
    }
    if (fired) continue;

    // Inexact reduction: peel the maximum-degree alive vertex.
    Vertex top = kInvalidVertex;
    for (Vertex v = 0; v < n; ++v) {
      if (status[v] != Status::kAlive) continue;
      if (top == kInvalidVertex || deg[v] > deg[top]) top = v;
    }
    RPMIS_DASSERT(top != kInvalidVertex);
    status[top] = Status::kDeleted;
    peeled[top] = 1;
    ++sol.rules.peels;
  }

  // ---- Phase 2: streaming maximality extension (Luby-style) ----------
  // candidate = not in I and no I-neighbour; a candidate joins unless a
  // smaller-id candidate neighbour exists. Deterministic and conflict
  // free; repeats until no candidate remains.
  std::vector<uint8_t> blocked(n);   // has an I-neighbour
  std::vector<uint8_t> deferred(n);  // lost to a smaller-id candidate
  while (true) {
    std::fill(blocked.begin(), blocked.end(), 0);
    std::fill(deferred.begin(), deferred.end(), 0);
    stream.Rewind();
    Edge e;
    while (stream.Next(&e)) {
      const auto [u, v] = e;
      if (u == v) continue;
      if (sol.in_set[u]) blocked[v] = 1;
      if (sol.in_set[v]) blocked[u] = 1;
    }
    // Second pass: candidate-vs-candidate conflicts.
    stream.Rewind();
    while (stream.Next(&e)) {
      const auto [u, v] = e;
      if (u == v) continue;
      if (sol.in_set[u] || sol.in_set[v] || blocked[u] || blocked[v]) continue;
      // Both are candidates: the larger id defers this round.
      deferred[u > v ? u : v] = 1;
    }
    ++out.extension_passes;
    bool added = false;
    for (Vertex v = 0; v < n; ++v) {
      if (!sol.in_set[v] && !blocked[v] && !deferred[v]) {
        sol.in_set[v] = 1;
        added = true;
      }
    }
    if (!added) break;
  }

  sol.RecountSize();
  sol.peeled = sol.rules.peels;
  for (Vertex v = 0; v < n; ++v) {
    if (peeled[v] && !sol.in_set[v]) ++sol.residual_peeled;
  }
  sol.provably_maximum = (sol.residual_peeled == 0);
  return out;
}

}  // namespace rpmis
