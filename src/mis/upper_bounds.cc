#include "mis/upper_bounds.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "mis/lp_reduction.h"
#include "support/fast_set.h"

namespace rpmis {

uint64_t CliqueCoverBound(const Graph& g) {
  const Vertex n = g.NumVertices();
  if (n == 0) return 0;
  const CoreDecomposition cores = ComputeCores(g);
  // clique_of[v]: assignment; cliques stored as member lists.
  std::vector<std::vector<Vertex>> cliques;
  std::vector<uint32_t> clique_of(n, ~0u);
  FastSet mark(n);
  // Degeneracy order keeps candidate cliques small and local.
  for (Vertex v : cores.order) {
    mark.Clear();
    for (Vertex w : g.Neighbors(v)) mark.Insert(w);
    // Candidate cliques: those of already-placed neighbours.
    uint32_t chosen = ~0u;
    for (Vertex w : g.Neighbors(v)) {
      const uint32_t c = clique_of[w];
      if (c == ~0u) continue;
      bool all_adjacent = true;
      for (Vertex member : cliques[c]) {
        if (!mark.Contains(member)) {
          all_adjacent = false;
          break;
        }
      }
      if (all_adjacent) {
        chosen = c;
        break;
      }
    }
    if (chosen == ~0u) {
      chosen = static_cast<uint32_t>(cliques.size());
      cliques.emplace_back();
    }
    cliques[chosen].push_back(v);
    clique_of[v] = chosen;
  }
  return cliques.size();
}

uint64_t LpUpperBound(const Graph& g) {
  return SolveLpReduction(g).Bound(g.NumVertices());
}

uint64_t CycleCoverBound(const Graph& g) {
  const Vertex n = g.NumVertices();
  std::vector<uint8_t> used(n, 0);     // consumed by a harvested cycle
  std::vector<uint8_t> visited(n, 0);  // entered by the DFS forest
  std::vector<uint8_t> on_path(n, 0);
  std::vector<Vertex> parent(n, kInvalidVertex);
  uint64_t bound = 0;
  uint64_t covered = 0;

  // One DFS forest pass; each back edge to an on-path ancestor offers a
  // cycle, harvested greedily when all its vertices are still unused.
  std::vector<std::pair<Vertex, size_t>> stack;
  std::vector<Vertex> path;
  for (Vertex root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = 1;
    on_path[root] = 1;
    stack.assign(1, {root, 0});
    path.assign(1, root);
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      auto nb = g.Neighbors(v);
      if (idx == nb.size()) {
        on_path[v] = 0;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const Vertex w = nb[idx++];
      if (w == parent[v]) continue;
      if (on_path[w]) {
        // Candidate cycle: path suffix w .. v.
        size_t start = path.size();
        while (start > 0 && path[start - 1] != w) --start;
        RPMIS_DASSERT(start > 0);
        --start;  // index of w
        const size_t len = path.size() - start;
        bool all_unused = len >= 3;
        for (size_t i = start; i < path.size() && all_unused; ++i) {
          all_unused = !used[path[i]];
        }
        if (all_unused) {
          bound += len / 2;
          covered += len;
          for (size_t i = start; i < path.size(); ++i) used[path[i]] = 1;
        }
        continue;
      }
      if (visited[w]) continue;
      visited[w] = 1;
      on_path[w] = 1;
      parent[w] = v;
      stack.emplace_back(w, 0);
      path.push_back(w);
    }
  }
  return bound + (n - covered);
}

uint64_t BestExistingUpperBound(const Graph& g) {
  const uint64_t clique = CliqueCoverBound(g);
  const uint64_t lp = LpUpperBound(g);
  const uint64_t cycle = CycleCoverBound(g);
  return std::min({clique, lp, cycle});
}

}  // namespace rpmis
