// Component-wise solving (the decomposition Algorithm 1 implicitly
// enjoys: reductions and peeling never cross components).
//
// Running an algorithm per connected component is never worse, composes
// certificates (the merged solution is provably maximum iff every
// component's part is), and bounds add up. Useful when a graph has many
// mid-sized components (e.g. after filtering a larger network).
#ifndef RPMIS_MIS_PER_COMPONENT_H_
#define RPMIS_MIS_PER_COMPONENT_H_

#include <functional>

#include "graph/graph.h"
#include "mis/solution.h"

namespace rpmis {

/// Runs `algo` on each connected component of g independently and merges
/// the results (sizes, peel/residual counts and rule counters add;
/// provably_maximum is the conjunction).
MisSolution RunPerComponent(
    const Graph& g, const std::function<MisSolution(const Graph&)>& algo);

}  // namespace rpmis

#endif  // RPMIS_MIS_PER_COMPONENT_H_
