// Component-wise solving (the decomposition Algorithm 1 implicitly
// enjoys: reductions and peeling never cross components).
//
// Running an algorithm per connected component is never worse, composes
// certificates (the merged solution is provably maximum iff every
// component's part is), and bounds add up. Useful when a graph has many
// mid-sized components (e.g. after filtering a larger network).
//
// Extraction is O(n + m) TOTAL across all components: one shared
// old->local renaming array built once, and each component's CSR
// assembled directly from the parent graph (graph/algorithms.h,
// ComponentExtractor) — no per-component size-n scratch. The parallel
// runner schedules components largest-first over the support/parallel
// pool (RPMIS_THREADS-aware) and merges in component-id order, so its
// output is byte-identical to the serial runner at any thread count.
#ifndef RPMIS_MIS_PER_COMPONENT_H_
#define RPMIS_MIS_PER_COMPONENT_H_

#include <functional>

#include "graph/graph.h"
#include "mis/solution.h"

namespace rpmis {

/// Options for the Run*PerComponent solver entry points.
struct PerComponentOptions {
  /// Schedule components across the support/parallel pool. The algorithm
  /// must then be safe to invoke concurrently on distinct graphs.
  bool parallel = false;
};

/// Runs `algo` on each connected component of g independently and merges
/// the results (sizes, peel/residual counts and rule counters add;
/// provably_maximum is the conjunction). O(n + m) plus the algorithm's
/// own cost.
MisSolution RunPerComponent(
    const Graph& g, const std::function<MisSolution(const Graph&)>& algo);

/// Like RunPerComponent, but solves components concurrently on up to
/// NumThreads() threads. Components are claimed largest-first so a heavy
/// tail component starts early and short ones fill the remaining slots;
/// results are still merged serially in component-id order, making the
/// output byte-identical to RunPerComponent for a deterministic `algo`,
/// at any RPMIS_THREADS value. If `algo` throws for several components,
/// the exception of the lowest-numbered failing component propagates
/// (deterministic first-error, matching the ingest runner's contract).
/// `algo` is invoked concurrently and must not share mutable state across
/// calls.
MisSolution RunPerComponentParallel(
    const Graph& g, const std::function<MisSolution(const Graph&)>& algo);

}  // namespace rpmis

#endif  // RPMIS_MIS_PER_COMPONENT_H_
