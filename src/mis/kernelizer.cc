#include "mis/kernelizer.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "mis/lp_reduction.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "support/fast_set.h"
#include "support/parallel.h"

namespace rpmis {

Kernelizer::Kernelizer(const Graph& g, const KernelizerOptions& options)
    : input_(&g), options_(options), alive_(g.NumVertices(), 1),
      to_orig_(g.NumVertices()), alive_count_(g.NumVertices()),
      in_worklist_(g.NumVertices(), 0),
      policy_(options.compaction, g.NumVertices()) {
  std::iota(to_orig_.begin(), to_orig_.end(), Vertex{0});
  adj_.resize(g.NumVertices());
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    auto nb = g.Neighbors(v);
    adj_[v].assign(nb.begin(), nb.end());
    Touch(v);
  }
}

bool Kernelizer::HasEdge(Vertex u, Vertex v) const {
  const auto& small = Degree(u) <= Degree(v) ? adj_[u] : adj_[v];
  const Vertex target = Degree(u) <= Degree(v) ? v : u;
  return std::binary_search(small.begin(), small.end(), target);
}

void Kernelizer::Touch(Vertex v) {
  if (!Alive(v) || in_worklist_[v]) return;
  in_worklist_[v] = 1;
  worklist_.push_back(v);
}

void Kernelizer::TouchNeighborhood(Vertex v) {
  for (Vertex w : adj_[v]) Touch(w);
}

void Kernelizer::DetachFromNeighbors(Vertex v) {
  for (Vertex w : adj_[v]) {
    auto& list = adj_[w];
    auto it = std::lower_bound(list.begin(), list.end(), v);
    RPMIS_DASSERT(it != list.end() && *it == v);
    list.erase(it);
    Touch(w);
  }
}

void Kernelizer::ExcludeVertex(Vertex v) {
  RPMIS_DASSERT(Alive(v));
  TouchNeighborhood(v);
  DetachFromNeighbors(v);
  alive_[v] = 0;
  --alive_count_;
  adj_[v].clear();
  ops_.push_back({OpKind::kExclude, to_orig_[v], 0, 0});
}

void Kernelizer::IncludeVertex(Vertex v) {
  RPMIS_DASSERT(Alive(v));
  // Exclude the whole neighbourhood first, then take v.
  while (!adj_[v].empty()) ExcludeVertex(adj_[v].back());
  alive_[v] = 0;
  --alive_count_;
  ops_.push_back({OpKind::kInclude, to_orig_[v], 0, 0});
  ++alpha_offset_;
}

void Kernelizer::FoldDegreeTwo(Vertex u, Vertex v, Vertex w) {
  // alpha(G) = alpha(G / {u,v,w}) + 1; w becomes the supervertex.
  RPMIS_DASSERT(Degree(u) == 2 && !HasEdge(v, w));
  ops_.push_back({OpKind::kFold, to_orig_[u], to_orig_[v], to_orig_[w]});
  ++alpha_offset_;
  ++rules_.degree_two_folding;

  // Remove u.
  DetachFromNeighbors(u);
  alive_[u] = 0;
  --alive_count_;
  adj_[u].clear();

  // Merge v's adjacency into w's; re-point x's entries from v to w.
  std::vector<Vertex> merged;
  merged.reserve(adj_[v].size() + adj_[w].size());
  std::merge(adj_[v].begin(), adj_[v].end(), adj_[w].begin(), adj_[w].end(),
             std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  for (Vertex x : adj_[v]) {
    auto& list = adj_[x];
    auto it = std::lower_bound(list.begin(), list.end(), v);
    RPMIS_DASSERT(it != list.end() && *it == v);
    list.erase(it);
    auto wt = std::lower_bound(list.begin(), list.end(), w);
    if (wt == list.end() || *wt != w) list.insert(wt, w);
    Touch(x);
  }
  alive_[v] = 0;
  --alive_count_;
  adj_[v].clear();
  adj_[w] = std::move(merged);
  Touch(w);
  TouchNeighborhood(w);
}

void Kernelizer::ContractInto(Vertex a, Vertex b) {
  RPMIS_DASSERT(Alive(a) && Alive(b) && a != b);
  RPMIS_DASSERT(!HasEdge(a, b));
  std::vector<Vertex> merged;
  merged.reserve(adj_[a].size() + adj_[b].size());
  std::merge(adj_[a].begin(), adj_[a].end(), adj_[b].begin(), adj_[b].end(),
             std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  for (Vertex x : adj_[b]) {
    auto& list = adj_[x];
    auto it = std::lower_bound(list.begin(), list.end(), b);
    RPMIS_DASSERT(it != list.end() && *it == b);
    list.erase(it);
    auto at = std::lower_bound(list.begin(), list.end(), a);
    if (at == list.end() || *at != a) list.insert(at, a);
    Touch(x);
  }
  alive_[b] = 0;
  --alive_count_;
  adj_[b].clear();
  adj_[a] = std::move(merged);
  Touch(a);
  TouchNeighborhood(a);
}

void Kernelizer::FoldTwins(Vertex u, Vertex v) {
  // Twins u, v (non-adjacent, N(u) = N(v) = {n1, n2, n3}, no edge inside):
  // alpha(G) = alpha(G / {n1,n2,n3} \ {u,v}) + 2.
  RPMIS_DASSERT(Degree(u) == 3 && adj_[u] == adj_[v]);
  const Vertex n1 = adj_[u][0];
  const Vertex n2 = adj_[u][1];
  const Vertex n3 = adj_[u][2];
  ops_.push_back({OpKind::kTwinFoldMembers, to_orig_[n2], to_orig_[n3], to_orig_[n1]});
  ops_.push_back({OpKind::kTwinFoldPair, to_orig_[u], to_orig_[v], to_orig_[n1]});
  alpha_offset_ += 2;
  rules_.twin += 2;

  DetachFromNeighbors(u);
  alive_[u] = 0;
  --alive_count_;
  adj_[u].clear();
  DetachFromNeighbors(v);
  alive_[v] = 0;
  --alive_count_;
  adj_[v].clear();
  // n1..n3 are pairwise non-adjacent (no inner edge) and stay so during
  // the contractions, which only import NEIGHBOURS of the merged vertex.
  ContractInto(n1, n2);
  ContractInto(n1, n3);
}

bool Kernelizer::TryDegreeRules(Vertex v) {
  const uint32_t d = Degree(v);
  if (d == 0) {
    IncludeVertex(v);
    ++rules_.degree_zero;
    return true;
  }
  if (options_.degree_one && d == 1) {
    // Some maximum IS takes v: drop its neighbour, then take v.
    ExcludeVertex(adj_[v][0]);
    IncludeVertex(v);  // v is isolated now
    ++rules_.degree_one;
    return true;
  }
  if (options_.degree_two && d == 2) {
    const Vertex a = adj_[v][0];
    const Vertex b = adj_[v][1];
    if (HasEdge(a, b)) {
      ExcludeVertex(a);
      ExcludeVertex(b);
      IncludeVertex(v);
      ++rules_.degree_two_isolation;
    } else {
      FoldDegreeTwo(v, a, b);
    }
    return true;
  }
  return false;
}

bool Kernelizer::TryDominance(Vertex u) {
  // Is u dominated by some neighbour v (N(v) \ {u} subset of N(u))?
  thread_local FastSet mark;
  if (mark.Universe() < alive_.size()) mark.Resize(alive_.size());
  mark.Clear();
  for (Vertex x : adj_[u]) mark.Insert(x);
  for (Vertex v : adj_[u]) {
    if (Degree(v) > Degree(u)) continue;
    bool dominates = true;
    for (Vertex x : adj_[v]) {
      if (x != u && !mark.Contains(x)) {
        dominates = false;
        break;
      }
    }
    if (dominates) {
      ExcludeVertex(u);
      ++rules_.dominance;
      return true;
    }
  }
  return false;
}

bool Kernelizer::TryUnconfined(Vertex v) {
  // Xiao–Nagamochi confinement test (simplified, as in [1]): grow S from
  // {v}; any extender u (|N(u) ∩ S| = 1) with no outside neighbourhood
  // proves v unconfined; a unique outside neighbour joins S.
  thread_local FastSet in_s, in_ns;
  if (in_s.Universe() < alive_.size()) {
    in_s.Resize(alive_.size());
    in_ns.Resize(alive_.size());
  }
  in_s.Clear();
  in_ns.Clear();
  std::vector<Vertex> s_closed{v};  // S ∪ N(S) members for scanning
  in_s.Insert(v);
  in_ns.Insert(v);
  for (Vertex w : adj_[v]) {
    in_ns.Insert(w);
    s_closed.push_back(w);
  }

  for (int guard = 0; guard < 32; ++guard) {  // bounded growth
    Vertex best_extra = kInvalidVertex;
    bool found_null_extender = false;
    // Scan candidate extenders: neighbours of S.
    for (size_t i = 0; i < s_closed.size() && !found_null_extender; ++i) {
      const Vertex u = s_closed[i];
      if (in_s.Contains(u)) continue;
      // u must see S exactly once.
      uint32_t s_hits = 0;
      for (Vertex x : adj_[u]) {
        if (in_s.Contains(x)) ++s_hits;
      }
      if (s_hits != 1) continue;
      // Outside neighbourhood N(u) \ N[S].
      Vertex extra = kInvalidVertex;
      uint32_t extra_count = 0;
      for (Vertex x : adj_[u]) {
        if (!in_ns.Contains(x)) {
          extra = x;
          if (++extra_count > 1) break;
        }
      }
      if (extra_count == 0) {
        found_null_extender = true;
      } else if (extra_count == 1 && best_extra == kInvalidVertex) {
        best_extra = extra;
      }
    }
    if (found_null_extender) {
      ExcludeVertex(v);
      ++rules_.unconfined;
      return true;
    }
    if (best_extra == kInvalidVertex) return false;  // confined
    // Grow S by the unique outside neighbour.
    in_s.Insert(best_extra);
    in_ns.Insert(best_extra);
    if (!in_ns.Contains(best_extra)) s_closed.push_back(best_extra);
    s_closed.push_back(best_extra);
    for (Vertex w : adj_[best_extra]) {
      if (!in_ns.Contains(w)) {
        in_ns.Insert(w);
        s_closed.push_back(w);
      }
    }
  }
  return false;
}

bool Kernelizer::RunTwinPass() {
  // Partial twin rule: u, v non-adjacent, N(u) == N(v) with |N| == 3 and
  // at least one edge inside N(u): take u and v, drop N(u).
  std::map<std::vector<Vertex>, Vertex> by_neighborhood;
  bool changed = false;
  for (Vertex v = 0; v < alive_.size(); ++v) {
    if (!Alive(v) || Degree(v) != 3) continue;
    auto [it, inserted] = by_neighborhood.emplace(adj_[v], v);
    if (inserted) continue;
    const Vertex u = it->second;
    if (u == kInvalidVertex || !Alive(u) || adj_[u] != adj_[v]) {
      it->second = v;
      continue;
    }
    // Twins found; u, v are non-adjacent (v is not in N(v) = N(u)).
    const std::vector<Vertex> nbrs = adj_[v];
    const bool inner_edge = HasEdge(nbrs[0], nbrs[1]) ||
                            HasEdge(nbrs[0], nbrs[2]) ||
                            HasEdge(nbrs[1], nbrs[2]);
    if (inner_edge) {
      // An edge inside N(u) means at most one of N(u) can be in any IS,
      // while {u, v} contributes two: take both.
      for (Vertex x : nbrs) {
        if (Alive(x)) ExcludeVertex(x);
      }
      RPMIS_DASSERT(Degree(v) == 0 && Degree(u) == 0);
      IncludeVertex(v);
      IncludeVertex(u);
      rules_.twin += 2;
    } else {
      FoldTwins(u, v);
    }
    it->second = kInvalidVertex;  // consumed; later matches re-pair
    changed = true;
  }
  return changed;
}

bool Kernelizer::RunLpPass() {
  const VertexRenaming ren = BuildRenaming(alive_);
  const std::vector<Vertex>& ids = ren.kept;
  std::vector<Edge> edges;
  BuildCompactEdges(adj_, ren, &edges);
  const LpReduction lp = SolveLpReduction(static_cast<Vertex>(ids.size()), edges);
  if (lp.num_include == 0 && lp.num_exclude == 0) return false;
  rules_.lp += lp.num_include + lp.num_exclude;
  // Excluding all x=0 vertices isolates the x=1 vertices, which then join
  // I through the degree-0 rule; do it directly for clarity.
  for (Vertex c = 0; c < ids.size(); ++c) {
    if (lp.exclude[c] && Alive(ids[c])) ExcludeVertex(ids[c]);
  }
  for (Vertex c = 0; c < ids.size(); ++c) {
    if (lp.include[c] && Alive(ids[c])) {
      RPMIS_DASSERT(Degree(ids[c]) == 0);
      IncludeVertex(ids[c]);
    }
  }
  return true;
}

void Kernelizer::ProcessWorklist() {
  while (!worklist_.empty()) {
    // CompactState drops worklist entries of dead vertices, so the list
    // checked non-empty above may be empty afterwards.
    if (policy_.ShouldCompact(alive_count_)) CompactState();
    if (worklist_.empty()) break;
    const Vertex v = worklist_.back();
    worklist_.pop_back();
    in_worklist_[v] = 0;
    if (!Alive(v)) continue;
    if (TryDegreeRules(v)) continue;
    if (options_.dominance && TryDominance(v)) continue;
    if (options_.unconfined && TryUnconfined(v)) continue;
  }
}

void Kernelizer::CompactState() {
  obs::TraceSpan span(obs::Trace(), "kernelizer.compact");
  const Vertex cur_n = static_cast<Vertex>(alive_.size());
  VertexRenaming ren = BuildRenaming(alive_);
  const Vertex new_n = static_cast<Vertex>(ren.kept.size());
  RPMIS_DASSERT(new_n == alive_count_);
  ++compaction_.compactions;
  compaction_.vertices_scanned += cur_n;
  compaction_.vertices_kept += new_n;

  // Alive adjacency lists reference only alive vertices (edges are removed
  // eagerly), so every slot survives; renaming a sorted list keeps it
  // sorted because the renaming is monotone. Lists are moved, not copied.
  std::vector<std::vector<Vertex>> new_adj(new_n);
  ParallelChunks(0, new_n, 1024, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      std::vector<Vertex>& list = new_adj[i];
      list = std::move(adj_[ren.kept[i]]);
      for (Vertex& w : list) {
        w = ren.to_new[w];
        RPMIS_DASSERT(w != kInvalidVertex);
      }
    }
  });
  uint64_t slots = 0;
  for (const auto& list : new_adj) slots += list.size();
  compaction_.slots_scanned += slots;
  compaction_.slots_kept += slots;
  adj_ = std::move(new_adj);
  alive_.assign(new_n, 1);

  // Pending worklist entries of dead vertices would be skipped by the
  // Alive() check anyway; drop them and rebuild the membership bitmap.
  RemapWorklist(ren, &worklist_);
  in_worklist_.assign(new_n, 0);
  for (Vertex v : worklist_) in_worklist_[v] = 1;

  ComposeToOrig(ren, &to_orig_);
  policy_.NoteRebuild(new_n);
}

void Kernelizer::Run() {
  RPMIS_ASSERT(!ran_);
  ran_ = true;
  obs::TraceSpan run_span(obs::Trace(), "kernelizer");
  while (true) {
    {
      obs::TraceSpan span(obs::Trace(), "kernelizer.worklist");
      ProcessWorklist();
    }
    bool changed = false;
    if (options_.twin) {
      obs::TraceSpan span(obs::Trace(), "kernelizer.twin");
      changed = RunTwinPass() || changed;
    }
    ProcessWorklist();
    if (options_.lp) {
      obs::TraceSpan span(obs::Trace(), "kernelizer.lp");
      changed = RunLpPass() || changed;
    }
    ProcessWorklist();
    if (!changed) break;
  }
  // Materialize the kernel. Current ids map to input ids through to_orig_;
  // the composed renamings are monotone, so kernel ids assigned in current
  // order coincide with input order and the kernel is independent of how
  // many compactions fired.
  const Vertex cur_n = static_cast<Vertex>(alive_.size());
  orig_to_kernel_.assign(input_->NumVertices(), kInvalidVertex);
  kernel_to_orig_.clear();
  std::vector<Vertex> cur_to_kernel(cur_n, kInvalidVertex);
  for (Vertex v = 0; v < cur_n; ++v) {
    if (Alive(v)) {
      const Vertex k = static_cast<Vertex>(kernel_to_orig_.size());
      cur_to_kernel[v] = k;
      orig_to_kernel_[to_orig_[v]] = k;
      kernel_to_orig_.push_back(to_orig_[v]);
    }
  }
  std::vector<Edge> edges;
  for (Vertex v = 0; v < cur_n; ++v) {
    if (!Alive(v)) continue;
    for (Vertex w : adj_[v]) {
      if (v < w) edges.emplace_back(cur_to_kernel[v], cur_to_kernel[w]);
    }
  }
  kernel_ = Graph::FromEdges(static_cast<Vertex>(kernel_to_orig_.size()), edges);
}

std::vector<uint8_t> Kernelizer::Lift(const std::vector<uint8_t>& kernel_in_set) const {
  RPMIS_ASSERT(ran_);
  RPMIS_ASSERT(kernel_in_set.size() == kernel_.NumVertices());
  std::vector<uint8_t> out(input_->NumVertices(), 0);
  for (Vertex k = 0; k < kernel_.NumVertices(); ++k) {
    if (kernel_in_set[k]) out[kernel_to_orig_[k]] = 1;
  }
  for (size_t i = ops_.size(); i-- > 0;) {
    const Op& op = ops_[i];
    switch (op.kind) {
      case OpKind::kInclude:
        out[op.a] = 1;
        break;
      case OpKind::kExclude:
        break;
      case OpKind::kFold:
        // Fold (u; merged=b, rep=c): if the supervertex is in I, both
        // original endpoints are; otherwise the middle vertex u is.
        if (out[op.c]) {
          out[op.b] = 1;
        } else {
          out[op.a] = 1;
        }
        break;
      case OpKind::kTwinFoldPair:
        // Replayed before kTwinFoldMembers (it was pushed later): if the
        // neighbourhood supervertex was NOT taken, the twins are.
        if (!out[op.c]) {
          out[op.a] = 1;
          out[op.b] = 1;
        }
        break;
      case OpKind::kTwinFoldMembers:
        if (out[op.c]) {
          out[op.a] = 1;
          out[op.b] = 1;
        }
        break;
    }
  }
  return out;
}

void Kernelizer::ExportTrace(ReductionTrace* trace) const {
  RPMIS_ASSERT(ran_ && trace != nullptr);
  trace->Clear();
  trace->Reserve(ops_.size());
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kInclude:
        trace->Append(ReductionRule::kInclude, op.a);
        break;
      case OpKind::kExclude:
        trace->Append(ReductionRule::kExclude, op.a);
        break;
      case OpKind::kFold:
        trace->Append(ReductionRule::kFold, op.a, op.b, op.c);
        break;
      case OpKind::kTwinFoldPair:
        trace->Append(ReductionRule::kTwinFoldPair, op.a, op.b, op.c);
        break;
      case OpKind::kTwinFoldMembers:
        trace->Append(ReductionRule::kTwinFoldMembers, op.a, op.b, op.c);
        break;
    }
  }
}

}  // namespace rpmis
