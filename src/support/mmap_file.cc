#include "support/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <stdexcept>
#include <utility>

namespace rpmis {

namespace {

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error("rpmis::mmap: " + what);
}

std::string ReadFdToString(int fd, const std::string& path) {
  std::string out;
  char buf[1 << 18];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      Fail("read failed for " + path + ": " + std::strerror(errno));
    }
    if (got == 0) return out;
    out.append(buf, static_cast<size_t>(got));
  }
}

}  // namespace

MmapFile MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) Fail("cannot open " + path + ": " + std::strerror(errno));

  MmapFile out;
  struct stat st{};
  const bool regular = ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode);
  if (regular && st.st_size > 0) {
    void* mapping = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                           MAP_PRIVATE, fd, 0);
    if (mapping != MAP_FAILED) {
      ::madvise(mapping, static_cast<size_t>(st.st_size), MADV_SEQUENTIAL);
      out.data_ = static_cast<const char*>(mapping);
      out.size_ = static_cast<size_t>(st.st_size);
      out.mapped_ = true;
      ::close(fd);
      return out;
    }
  }

  // Fallback: empty regular files (mmap of length 0 is invalid), pipes,
  // and filesystems that refuse mmap all land here.
  try {
    out.fallback_ = ReadFdToString(fd, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  out.data_ = out.fallback_.data();
  out.size_ = out.fallback_.size();
  out.mapped_ = false;
  return out;
}

MmapFile::~MmapFile() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  fallback_ = std::move(other.fallback_);
  mapped_ = other.mapped_;
  size_ = other.size_;
  data_ = mapped_ ? other.data_ : fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

std::string ReadStreamToString(std::istream& in) {
  if (in.fail() && !in.eof()) Fail("input stream is in a failed state");
  std::string out;
  char buf[1 << 18];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    out.append(buf, static_cast<size_t>(in.gcount()));
  }
  return out;
}

}  // namespace rpmis
