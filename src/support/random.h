// Deterministic, fast pseudo-random number generation.
//
// All randomized components of the library (graph generators, local-search
// perturbation, tie breaking) take an explicit seed so that every
// experiment in the benchmark harness is exactly reproducible. We use
// xoshiro256** seeded through SplitMix64, the standard recipe; it is much
// faster than std::mt19937_64 and has no measurable bias for our use.
#ifndef RPMIS_SUPPORT_RANDOM_H_
#define RPMIS_SUPPORT_RANDOM_H_

#include <cstdint>

#include "support/assert.h"

namespace rpmis {

/// SplitMix64 step; used to expand a single seed into xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(&sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  uint64_t NextBounded(uint64_t bound) {
    RPMIS_ASSERT(bound > 0);
    // Lemire's nearly-divisionless method with a rejection loop.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace rpmis

#endif  // RPMIS_SUPPORT_RANDOM_H_
