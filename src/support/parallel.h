// Minimal std::thread fan-out used by the ingest fast path and the
// parallel CSR build.
//
// There is deliberately no persistent thread pool: the helpers here wrap
// coarse, hundreds-of-milliseconds tasks (parsing a multi-megabyte file,
// sorting millions of adjacency slices), so the cost of spawning a handful
// of threads per call is noise, and the library stays free of global
// mutable state. Thread count comes from the RPMIS_THREADS environment
// variable when set, so benchmark runs and the serial-vs-parallel
// equivalence tests can pin it without code changes.
#ifndef RPMIS_SUPPORT_PARALLEL_H_
#define RPMIS_SUPPORT_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace rpmis {

/// Worker thread count for the parallel helpers: RPMIS_THREADS when set to
/// a positive integer (clamped to [1, 256]; garbage values are ignored),
/// otherwise std::thread::hardware_concurrency() (minimum 1). Re-read on
/// every call so tests can flip the environment between invocations.
size_t NumThreads();

/// Runs task(0) .. task(num_tasks - 1) on up to NumThreads() threads
/// (including the calling thread). Tasks are claimed dynamically, so
/// uneven task sizes balance. Blocks until every task finished. If tasks
/// throw, all tasks still run to completion (or throw themselves) and the
/// exception of the lowest-indexed failing task is rethrown, making error
/// reporting deterministic regardless of scheduling.
void RunParallel(size_t num_tasks, const std::function<void(size_t)>& task);

/// Splits [begin, end) into contiguous chunks of at least `min_grain`
/// items (at most NumThreads() chunks) and runs body(chunk_begin,
/// chunk_end) for each via RunParallel. Runs body inline when the range
/// fits a single chunk. `body` must tolerate concurrent invocations on
/// disjoint ranges.
void ParallelChunks(size_t begin, size_t end, size_t min_grain,
                    const std::function<void(size_t, size_t)>& body);

}  // namespace rpmis

#endif  // RPMIS_SUPPORT_PARALLEL_H_
