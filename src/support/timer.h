// Wall-clock timing used by the benchmark harness and local search budgets.
#ifndef RPMIS_SUPPORT_TIMER_H_
#define RPMIS_SUPPORT_TIMER_H_

#include <chrono>

namespace rpmis {

/// Monotonic wall-clock timer with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rpmis

#endif  // RPMIS_SUPPORT_TIMER_H_
