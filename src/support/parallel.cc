#include "support/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

namespace rpmis {

size_t NumThreads() {
  if (const char* env = std::getenv("RPMIS_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return parsed > 256 ? 256 : static_cast<size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void RunParallel(size_t num_tasks, const std::function<void(size_t)>& task) {
  if (num_tasks == 0) return;
  const size_t workers = std::min(NumThreads(), num_tasks);
  if (workers <= 1) {
    for (size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }

  std::atomic<size_t> next{0};
  std::vector<std::exception_ptr> errors(num_tasks);
  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) return;
      try {
        task(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t t = 0; t + 1 < workers; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& t : threads) t.join();

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void ParallelChunks(size_t begin, size_t end, size_t min_grain,
                    const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  const size_t total = end - begin;
  if (min_grain == 0) min_grain = 1;
  size_t chunks = std::min(NumThreads(), total / min_grain);
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  const size_t grain = (total + chunks - 1) / chunks;
  chunks = (total + grain - 1) / grain;
  RunParallel(chunks, [&](size_t c) {
    const size_t b = begin + c * grain;
    const size_t e = b + grain < end ? b + grain : end;
    body(b, e);
  });
}

}  // namespace rpmis
