// Read-only file mapping plus a chunked stream reader: the two ways bytes
// enter the ingest fast path.
//
// MmapFile maps regular files so the from_chars parsers in graph/io can
// scan the kernel page cache directly — no read() copies, no line-by-line
// stream overhead. When mmap is unavailable (non-regular files, exotic
// filesystems) it transparently falls back to reading the file into an
// owned buffer, so callers always get a contiguous [data, data+size)
// range. ReadStreamToString is the equivalent for std::istream inputs the
// caller cannot name by path (string streams, pipes): it slurps the
// remaining stream in large chunks into one buffer.
#ifndef RPMIS_SUPPORT_MMAP_FILE_H_
#define RPMIS_SUPPORT_MMAP_FILE_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

namespace rpmis {

/// Immutable view of a whole file, mmap-backed when possible.
class MmapFile {
 public:
  /// Maps (or, failing that, reads) `path`. Throws std::runtime_error when
  /// the file cannot be opened or read.
  static MmapFile Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const { return {data_, size_}; }

  /// True when the contents are a kernel mapping rather than an owned copy
  /// (informational; the read API is identical either way).
  bool is_mapped() const { return mapped_; }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::string fallback_;  // owns the bytes when !mapped_
};

/// Reads everything remaining on `in` into one string using large chunked
/// reads (no per-line scanning). Throws std::runtime_error if the stream
/// is in a failed state before reaching EOF.
std::string ReadStreamToString(std::istream& in);

}  // namespace rpmis

#endif  // RPMIS_SUPPORT_MMAP_FILE_H_
