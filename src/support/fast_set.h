// Timestamped membership set with O(1) clear.
//
// Reduction rules repeatedly need "mark the neighbourhood of u, then probe
// membership" (dominance checks, neighbourhood intersections, two-hop
// scans). Clearing a std::vector<bool> between probes would be O(n); the
// classic timestamp trick makes Clear() a single increment. The library
// uses this structure pervasively, so it lives in support/.
#ifndef RPMIS_SUPPORT_FAST_SET_H_
#define RPMIS_SUPPORT_FAST_SET_H_

#include <cstdint>
#include <vector>

#include "support/assert.h"

namespace rpmis {

/// Set over the universe [0, n) with O(1) Clear().
class FastSet {
 public:
  FastSet() = default;
  explicit FastSet(size_t n) : stamp_(n, 0), current_(1) {}

  void Resize(size_t n) {
    stamp_.assign(n, 0);
    current_ = 1;
  }

  /// Grows the universe to at least n, keeping current membership. O(1)
  /// amortized per added slot (unlike Resize, which clears).
  void EnsureUniverse(size_t n) {
    if (n > stamp_.size()) stamp_.resize(n, 0);
  }

  size_t Universe() const { return stamp_.size(); }

  void Clear() {
    ++current_;
    if (current_ == 0) {  // wrapped; reset stamps (practically unreachable)
      std::fill(stamp_.begin(), stamp_.end(), 0);
      current_ = 1;
    }
  }

  void Insert(uint32_t x) {
    RPMIS_DASSERT(x < stamp_.size());
    stamp_[x] = current_;
  }

  void Erase(uint32_t x) {
    RPMIS_DASSERT(x < stamp_.size());
    stamp_[x] = 0;
  }

  bool Contains(uint32_t x) const {
    RPMIS_DASSERT(x < stamp_.size());
    return stamp_[x] == current_;
  }

 private:
  std::vector<uint64_t> stamp_;
  uint64_t current_ = 1;
};

}  // namespace rpmis

#endif  // RPMIS_SUPPORT_FAST_SET_H_
