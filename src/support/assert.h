// Checked assertions for rpmis.
//
// RPMIS_ASSERT is active in all build types (unlike <cassert>): graph
// algorithms in this library maintain intricate incremental invariants
// (degree counters, triangle counts, bucket positions) and silent
// corruption is far more expensive than the branch. The macro compiles to
// a single predictable branch; hot inner loops that have been profiled may
// use RPMIS_DASSERT, which is compiled out in release builds.
#ifndef RPMIS_SUPPORT_ASSERT_H_
#define RPMIS_SUPPORT_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace rpmis {

[[noreturn]] inline void AssertFail(const char* expr, const char* file,
                                    int line, const char* msg) {
  std::fprintf(stderr, "rpmis assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace rpmis

#define RPMIS_ASSERT(expr)                                        \
  do {                                                            \
    if (!(expr)) ::rpmis::AssertFail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define RPMIS_ASSERT_MSG(expr, msg)                            \
  do {                                                         \
    if (!(expr)) ::rpmis::AssertFail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifndef NDEBUG
#define RPMIS_DASSERT(expr) RPMIS_ASSERT(expr)
#else
#define RPMIS_DASSERT(expr) \
  do {                      \
  } while (0)
#endif

#endif  // RPMIS_SUPPORT_ASSERT_H_
