#include "baselines/du.h"

#include "ds/bucket_queue.h"

namespace rpmis {

MisSolution RunDU(const Graph& g) {
  const Vertex n = g.NumVertices();
  MisSolution sol;
  sol.in_set.assign(n, 0);

  std::vector<uint32_t> deg(n);
  for (Vertex v = 0; v < n; ++v) deg[v] = g.Degree(v);
  std::vector<uint8_t> alive(n, 1);
  BucketQueue queue = BucketQueue::FromKeys(deg, g.MaxDegree());

  while (!queue.Empty()) {
    const Vertex v = queue.PopMin();
    // Take v; remove N[v]; two-hop degrees drop.
    sol.in_set[v] = 1;
    alive[v] = 0;
    for (Vertex w : g.Neighbors(v)) {
      if (!alive[w]) continue;
      alive[w] = 0;
      queue.Remove(w);
      for (Vertex x : g.Neighbors(w)) {
        if (alive[x] && queue.Contains(x)) {
          queue.Update(x, queue.KeyOf(x) - 1);
        }
      }
    }
  }
  sol.RecountSize();
  sol.provably_maximum = false;
  return sol;
}

}  // namespace rpmis
