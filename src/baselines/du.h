// DU [30]: dynamic-updating min-degree greedy.
//
// Like Greedy, but the minimum-degree vertex is selected adaptively in the
// REMAINING graph: taking a vertex removes its closed neighbourhood and
// updates the degrees of the two-hop neighbourhood. O(n + m) with the
// bucket structure. This is also the paper's "alternative inexact
// reduction" strawman (§3.1): its worklist-free form decides low-degree
// vertices greedily instead of peeling high-degree ones.
#ifndef RPMIS_BASELINES_DU_H_
#define RPMIS_BASELINES_DU_H_

#include "graph/graph.h"
#include "mis/solution.h"

namespace rpmis {

/// Computes a maximal independent set with dynamic min-degree updating.
MisSolution RunDU(const Graph& g);

}  // namespace rpmis

#endif  // RPMIS_BASELINES_DU_H_
