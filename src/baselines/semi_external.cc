#include "baselines/semi_external.h"

#include "baselines/greedy.h"
#include "support/fast_set.h"

namespace rpmis {

namespace {

// Greedily selects a pairwise non-adjacent subset of `candidates`;
// `picked_mark` is a scratch set cleared by the caller.
std::vector<Vertex> GreedyIndependentSubset(const Graph& g,
                                            const std::vector<Vertex>& candidates,
                                            FastSet& picked_mark) {
  std::vector<Vertex> picked;
  for (Vertex c : candidates) {
    bool blocked = false;
    for (Vertex w : g.Neighbors(c)) {
      if (picked_mark.Contains(w)) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      picked.push_back(c);
      picked_mark.Insert(c);
    }
  }
  return picked;
}

}  // namespace

MisSolution RunSemiE(const Graph& g, const SemiEOptions& options) {
  const Vertex n = g.NumVertices();
  MisSolution sol = RunGreedy(g);

  // tight[v] = number of solution neighbours of v (meaningful for v not
  // in the solution).
  std::vector<uint32_t> tight(n, 0);
  for (Vertex v = 0; v < n; ++v) {
    if (!sol.in_set[v]) continue;
    for (Vertex w : g.Neighbors(v)) ++tight[w];
  }

  auto remove_from_solution = [&](Vertex u) {
    sol.in_set[u] = 0;
    for (Vertex w : g.Neighbors(u)) --tight[w];
  };
  auto add_to_solution = [&](Vertex u) {
    sol.in_set[u] = 1;
    for (Vertex w : g.Neighbors(u)) ++tight[w];
  };

  FastSet picked_mark(n);
  std::vector<Vertex> candidates;

  for (uint32_t round = 0; round < options.max_rounds; ++round) {
    bool improved = false;

    // one-k swaps: u out, its exclusively-1-tight neighbours in.
    for (Vertex u = 0; u < n; ++u) {
      if (!sol.in_set[u]) continue;
      candidates.clear();
      for (Vertex w : g.Neighbors(u)) {
        if (!sol.in_set[w] && tight[w] == 1) candidates.push_back(w);
      }
      if (candidates.size() < 2) continue;
      picked_mark.Clear();
      const std::vector<Vertex> picked =
          GreedyIndependentSubset(g, candidates, picked_mark);
      if (picked.size() < 2) continue;
      remove_from_solution(u);
      for (Vertex w : picked) add_to_solution(w);
      improved = true;
    }

    // two-k swaps: a 2-tight pivot exposes the pair {u1, u2}.
    if (options.two_k_swaps) {
      for (Vertex pivot = 0; pivot < n; ++pivot) {
        if (sol.in_set[pivot] || tight[pivot] != 2) continue;
        Vertex u1 = kInvalidVertex, u2 = kInvalidVertex;
        for (Vertex w : g.Neighbors(pivot)) {
          if (!sol.in_set[w]) continue;
          (u1 == kInvalidVertex ? u1 : u2) = w;
        }
        RPMIS_DASSERT(u1 != kInvalidVertex && u2 != kInvalidVertex);
        // Candidates: non-solution vertices around u1/u2 whose solution
        // neighbours are confined to {u1, u2}.
        candidates.clear();
        picked_mark.Clear();
        auto consider = [&](Vertex w) {
          if (sol.in_set[w] || tight[w] > 2 || picked_mark.Contains(w)) return;
          for (Vertex x : g.Neighbors(w)) {
            if (sol.in_set[x] && x != u1 && x != u2) return;
          }
          picked_mark.Insert(w);  // dedup across the two neighbourhoods
          candidates.push_back(w);
        };
        for (Vertex w : g.Neighbors(u1)) consider(w);
        for (Vertex w : g.Neighbors(u2)) consider(w);
        if (candidates.size() < 3) continue;
        picked_mark.Clear();
        const std::vector<Vertex> picked =
            GreedyIndependentSubset(g, candidates, picked_mark);
        if (picked.size() < 3) continue;
        remove_from_solution(u1);
        remove_from_solution(u2);
        for (Vertex w : picked) add_to_solution(w);
        improved = true;
      }
    }
    if (!improved) break;
  }

  ExtendToMaximal(g, sol.in_set);
  sol.RecountSize();
  sol.provably_maximum = false;
  return sol;
}

}  // namespace rpmis
