#include "baselines/greedy.h"

#include <numeric>

namespace rpmis {

MisSolution RunGreedy(const Graph& g) {
  const Vertex n = g.NumVertices();
  MisSolution sol;
  sol.in_set.assign(n, 0);

  // Counting sort by static degree.
  const uint32_t max_deg = g.MaxDegree();
  std::vector<uint32_t> bucket(static_cast<size_t>(max_deg) + 2, 0);
  for (Vertex v = 0; v < n; ++v) ++bucket[g.Degree(v) + 1];
  for (size_t i = 1; i < bucket.size(); ++i) bucket[i] += bucket[i - 1];
  std::vector<Vertex> order(n);
  for (Vertex v = 0; v < n; ++v) order[bucket[g.Degree(v)]++] = v;

  std::vector<uint8_t> removed(n, 0);
  for (Vertex v : order) {
    if (removed[v]) continue;
    sol.in_set[v] = 1;
    for (Vertex w : g.Neighbors(v)) removed[w] = 1;
  }
  sol.RecountSize();
  // Greedy never certifies anything: every vertex was decided greedily.
  sol.provably_maximum = false;
  return sol;
}

}  // namespace rpmis
