// SemiE: the semi-external MIS algorithm of Liu et al. [30], in-memory.
//
// The paper evaluates SemiE "with two-k swap; we store the entire graph in
// main memory to avoid I/Os" (§7), which is exactly this variant: a Greedy
// initial solution iteratively improved by
//   one-k swaps: drop one solution vertex u, insert k >= 2 non-solution
//                vertices whose only solution neighbour was u;
//   two-k swaps: drop two solution vertices {u1, u2} that share a 2-tight
//                neighbour, insert k >= 3 vertices whose solution
//                neighbours are within {u1, u2}.
// Swaps repeat round-robin until a fixpoint or the round cap.
#ifndef RPMIS_BASELINES_SEMI_EXTERNAL_H_
#define RPMIS_BASELINES_SEMI_EXTERNAL_H_

#include "graph/graph.h"
#include "mis/solution.h"

namespace rpmis {

struct SemiEOptions {
  uint32_t max_rounds = 5;   // swap sweeps over the vertex set
  bool two_k_swaps = true;   // the paper's "two-k swap" configuration
};

/// Computes a maximal independent set with the SemiE swap heuristic.
MisSolution RunSemiE(const Graph& g, const SemiEOptions& options = {});

}  // namespace rpmis

#endif  // RPMIS_BASELINES_SEMI_EXTERNAL_H_
