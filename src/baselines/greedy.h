// Greedy [30]: the classic static min-degree heuristic.
//
// Vertices are visited in increasing order of their degree IN THE INPUT
// GRAPH ("considers vertex degrees in a static way", §1); each unremoved
// vertex joins the independent set and knocks out its neighbours. O(n + m).
#ifndef RPMIS_BASELINES_GREEDY_H_
#define RPMIS_BASELINES_GREEDY_H_

#include "graph/graph.h"
#include "mis/solution.h"

namespace rpmis {

/// Computes a maximal independent set with the static greedy heuristic.
MisSolution RunGreedy(const Graph& g);

}  // namespace rpmis

#endif  // RPMIS_BASELINES_GREEDY_H_
