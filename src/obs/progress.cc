#include "obs/progress.h"

#include <algorithm>

namespace rpmis::obs {

ProgressSampler::ProgressSampler(uint64_t every, size_t max_samples)
    : every_(std::max<uint64_t>(1, every)), max_samples_(max_samples) {}

void ProgressSampler::Record(ProgressSample sample) {
  std::lock_guard<std::mutex> lock(mu_);
  // Stamp under the lock so the recorded series is time-ordered even when
  // several worker threads record concurrently.
  if (sample.seconds == 0.0) sample.seconds = Elapsed();
  if (sample.events == 0) sample.events = Events();
  if (samples_.size() >= max_samples_) {
    ++dropped_;
    return;
  }
  samples_.push_back(sample);
}

uint64_t ProgressSampler::DroppedSamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<ProgressSample> ProgressSampler::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

}  // namespace rpmis::obs
