// Minimal JSON plumbing for the observability layer: a streaming writer
// (trace files, JSONL run records) and a recursive-descent parser (the
// trace/record validators and the benches that re-read their own JSONL).
//
// The parser favours smallness over speed — it backs validators and
// tests, never a solver hot path. It accepts exactly RFC 8259 JSON with
// two deliberate limits: numbers are held as double, and input nesting is
// capped to keep recursion bounded on hostile files.
#ifndef RPMIS_OBS_JSON_H_
#define RPMIS_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rpmis::obs {

/// Appends `s` as a JSON string literal (with quotes) to `out`, escaping
/// quotes, backslashes, and control characters.
void AppendJsonString(std::string_view s, std::string* out);

/// Formats a double the way JSON expects (no inf/nan — those are clamped
/// to 0 with no diagnostic, callers should not produce them; integers in
/// the uint53 range print without a decimal point).
void AppendJsonNumber(double value, std::string* out);

/// A parsed JSON value. Objects keep key order in `object_keys` so
/// validators can report positions deterministically.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
  std::vector<std::string> object_keys;  // insertion order

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsNumber() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses `text` as one JSON document. Returns true on success; on
/// failure, `error` (if non-null) describes the first problem with a byte
/// offset. Trailing whitespace is allowed, trailing garbage is not.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

}  // namespace rpmis::obs

#endif  // RPMIS_OBS_JSON_H_
