// Progress sampler: a time series of solver state, recorded every K
// solver events plus at forced moments (new local-search incumbents).
//
// This is the one stream behind the Fig 10/15 convergence curves and any
// future local-search trajectory analysis: a solver calls Due() once per
// event (a reduction application, a peel, an ARW iteration) and, when it
// fires, records (wall seconds, live vertices, live edges, current
// solution size, current upper bound). Computing the snapshot may cost
// O(live) — that is why sampling is strided; the stride amortizes it to
// O(total work / K) extra.
//
// Hot-path contract: Due() is one relaxed fetch_add and a compare; the
// disabled path never reaches it (obs::Progress() is null).
#ifndef RPMIS_OBS_PROGRESS_H_
#define RPMIS_OBS_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/timer.h"

namespace rpmis::obs {

inline constexpr uint64_t kProgressFieldAbsent = ~0ULL;

/// One sample. Fields a solver cannot (cheaply) provide are left at
/// kProgressFieldAbsent and serialized as absent.
struct ProgressSample {
  double seconds = 0.0;     // since sampler construction
  uint64_t events = 0;      // solver events seen when the sample was taken
  uint64_t live_vertices = kProgressFieldAbsent;
  uint64_t live_edges = kProgressFieldAbsent;
  uint64_t solution_size = kProgressFieldAbsent;
  uint64_t upper_bound = kProgressFieldAbsent;
  std::string label;        // which solver/phase recorded it
};

class ProgressSampler {
 public:
  /// Records every `every`-th event (clamped to >= 1); `max_samples` caps
  /// the buffer (further records are dropped and counted).
  explicit ProgressSampler(uint64_t every = 8192,
                           size_t max_samples = 1'000'000);

  /// Counts one solver event; true when a strided sample is due.
  bool Due() {
    const uint64_t n = events_.fetch_add(1, std::memory_order_relaxed) + 1;
    return n % every_ == 0;
  }

  /// Seconds since construction (solvers stamp samples with this clock so
  /// every sample in a run shares one epoch).
  double Elapsed() const { return timer_.Seconds(); }

  uint64_t Events() const { return events_.load(std::memory_order_relaxed); }

  /// Appends a sample (thread-safe). `sample.seconds`/`events` of 0 are
  /// filled in from the sampler's own clock and event count.
  void Record(ProgressSample sample);

  uint64_t DroppedSamples() const;
  std::vector<ProgressSample> Samples() const;

 private:
  const uint64_t every_;
  const size_t max_samples_;
  Timer timer_;
  std::atomic<uint64_t> events_{0};
  mutable std::mutex mu_;
  std::vector<ProgressSample> samples_;
  uint64_t dropped_ = 0;
};

}  // namespace rpmis::obs

#endif  // RPMIS_OBS_PROGRESS_H_
