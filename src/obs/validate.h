// Validators for the observability output formats, shared by the
// obs_validate CLI (scripts/check_obs.sh) and the unit tests — so "the
// trace is well-formed" means the same thing in CI and in a test.
#ifndef RPMIS_OBS_VALIDATE_H_
#define RPMIS_OBS_VALIDATE_H_

#include <string>
#include <string_view>

namespace rpmis::obs {

struct ValidationResult {
  bool ok = false;
  std::string error;      // first problem found, empty when ok
  size_t num_events = 0;  // trace: events; records: lines
};

/// Validates a Chrome trace-event document:
///   * parses as one JSON object with a "traceEvents" array;
///   * every event has ph/pid/tid/ts; B and i events carry a non-empty
///     name;
///   * per-tid timestamps are non-decreasing in buffer order;
///   * per-tid B/E spans balance (every E closes a B on the same thread,
///     nothing left open at the end).
ValidationResult ValidateTraceJson(std::string_view json);

/// Validates a JSONL run-record stream: every non-blank line is a JSON
/// object carrying the self-description contract — schema, bench,
/// algorithm, seed, threads, and build flags.
ValidationResult ValidateRunRecords(std::string_view jsonl);

}  // namespace rpmis::obs

#endif  // RPMIS_OBS_VALIDATE_H_
