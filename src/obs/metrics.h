// Metrics registry: named monotone counters and last-write gauges.
//
// This is the generic successor of the bespoke per-struct counter
// plumbing (RuleCounters, CompactionStats): solvers and harnesses write
// named values, sinks (FormatSolverStats, the JSONL run records) read one
// sorted snapshot instead of knowing every struct's fields. Names are
// dotted lowercase paths ("rules.degree_one", "compaction.slots_kept",
// "arw.iterations").
//
// Thread-safe; hot-path cost is one hash lookup under a mutex, so solver
// code publishes aggregates once per run (or per phase), never per
// vertex.
#ifndef RPMIS_OBS_METRICS_H_
#define RPMIS_OBS_METRICS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rpmis::obs {

class MetricsRegistry {
 public:
  /// Adds `delta` to counter `name` (creating it at zero).
  void Add(std::string_view name, uint64_t delta);

  /// Sets gauge `name` to `value` (last write wins).
  void Set(std::string_view name, double value);

  /// Counter value, or 0 when `name` is unknown or is a gauge.
  uint64_t Counter(std::string_view name) const;

  /// Gauge value, or `fallback` when `name` is unknown or is a counter.
  double Gauge(std::string_view name, double fallback = 0.0) const;

  bool Contains(std::string_view name) const;

  struct Entry {
    std::string name;
    bool is_counter = false;  // counters are exact uint64; gauges double
    uint64_t counter = 0;
    double gauge = 0.0;

    double AsDouble() const {
      return is_counter ? static_cast<double>(counter) : gauge;
    }
  };

  /// Name-sorted snapshot of every metric.
  std::vector<Entry> Snapshot() const;

  void Clear();

 private:
  struct Cell {
    bool is_counter = false;
    uint64_t counter = 0;
    double gauge = 0.0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Cell> cells_;
};

}  // namespace rpmis::obs

#endif  // RPMIS_OBS_METRICS_H_
