// Observability context: the single switchboard every solver hook reads.
//
// The library is silent by default. A harness (bench binary, mis_cli, a
// test) constructs sinks — a TraceSink, a MetricsRegistry, a
// ProgressSampler — and installs them with ScopedObservability; solver
// code consults the accessors below. The contract that keeps the solvers
// honest:
//
//   * Disabled cost is ONE relaxed atomic load + branch per hook
//     (`if (auto* t = obs::Trace()) ...`). No allocation, no locking, no
//     state the solver must maintain for observability's sake.
//   * Sinks only OBSERVE. No hook may influence solver control flow, so
//     solutions are byte-identical with observability on or off (enforced
//     by tests/obs_test.cc for all four algorithms).
//   * Compiling with RPMIS_NO_OBS pins every accessor to nullptr, letting
//     the optimizer delete the hooks entirely (the belt-and-braces bound
//     for the disabled path; see DESIGN.md §8 for the overhead model).
//
// Installation is scoped and nestable: a bench installs one context per
// measured run, and the previous context is restored on scope exit. The
// pointers are process-global. Install/uninstall from one thread while no
// solver runs; worker threads spawned inside a run see the installed
// sinks (the sinks themselves are thread-safe).
#ifndef RPMIS_OBS_OBS_H_
#define RPMIS_OBS_OBS_H_

#include <atomic>

namespace rpmis::obs {

class TraceSink;
class MetricsRegistry;
class ProgressSampler;

namespace internal {
extern std::atomic<TraceSink*> g_trace;
extern std::atomic<MetricsRegistry*> g_metrics;
extern std::atomic<ProgressSampler*> g_progress;
}  // namespace internal

#ifdef RPMIS_NO_OBS

inline TraceSink* Trace() { return nullptr; }
inline MetricsRegistry* Metrics() { return nullptr; }
inline ProgressSampler* Progress() { return nullptr; }

#else

/// Active trace sink, or nullptr when tracing is off.
inline TraceSink* Trace() {
  return internal::g_trace.load(std::memory_order_relaxed);
}

/// Active metrics registry, or nullptr when metrics are off.
inline MetricsRegistry* Metrics() {
  return internal::g_metrics.load(std::memory_order_relaxed);
}

/// Active progress sampler, or nullptr when sampling is off.
inline ProgressSampler* Progress() {
  return internal::g_progress.load(std::memory_order_relaxed);
}

#endif  // RPMIS_NO_OBS

/// Installs sinks for the current scope and restores the previous ones on
/// destruction. Null members leave that channel disabled. Under
/// RPMIS_NO_OBS installation is a no-op (the accessors stay null).
class ScopedObservability {
 public:
  ScopedObservability(TraceSink* trace, MetricsRegistry* metrics,
                      ProgressSampler* progress);
  ~ScopedObservability();

  ScopedObservability(const ScopedObservability&) = delete;
  ScopedObservability& operator=(const ScopedObservability&) = delete;

 private:
  TraceSink* prev_trace_;
  MetricsRegistry* prev_metrics_;
  ProgressSampler* prev_progress_;
};

}  // namespace rpmis::obs

#endif  // RPMIS_OBS_OBS_H_
