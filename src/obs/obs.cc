#include "obs/obs.h"

namespace rpmis::obs {

namespace internal {
std::atomic<TraceSink*> g_trace{nullptr};
std::atomic<MetricsRegistry*> g_metrics{nullptr};
std::atomic<ProgressSampler*> g_progress{nullptr};
}  // namespace internal

ScopedObservability::ScopedObservability(TraceSink* trace,
                                         MetricsRegistry* metrics,
                                         ProgressSampler* progress)
    : prev_trace_(internal::g_trace.load(std::memory_order_relaxed)),
      prev_metrics_(internal::g_metrics.load(std::memory_order_relaxed)),
      prev_progress_(internal::g_progress.load(std::memory_order_relaxed)) {
#ifdef RPMIS_NO_OBS
  (void)trace;
  (void)metrics;
  (void)progress;
#else
  internal::g_trace.store(trace, std::memory_order_relaxed);
  internal::g_metrics.store(metrics, std::memory_order_relaxed);
  internal::g_progress.store(progress, std::memory_order_relaxed);
#endif
}

ScopedObservability::~ScopedObservability() {
#ifndef RPMIS_NO_OBS
  internal::g_trace.store(prev_trace_, std::memory_order_relaxed);
  internal::g_metrics.store(prev_metrics_, std::memory_order_relaxed);
  internal::g_progress.store(prev_progress_, std::memory_order_relaxed);
#endif
}

}  // namespace rpmis::obs
