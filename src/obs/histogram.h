// Log-scaled latency histogram for high-frequency events.
//
// The dynamic-update engine decides thousands of updates per second; a
// per-update Metrics()->Add() would serialize every update on the
// registry mutex. Instead the owner records into this plain (non-atomic,
// single-writer) histogram — one clamp + increment per event — and
// publishes the bucket counts into a MetricsRegistry once per batch under
// the dotted-name convention:
//
//   <prefix>.count, <prefix>.sum_us, <prefix>.le_us.<edge>
//
// Buckets are powers of two in microseconds (…, le_us.1, le_us.2,
// le_us.4, …), cumulative-friendly without being cumulative: each bucket
// counts events with edge/2 < latency_us <= edge.
#ifndef RPMIS_OBS_HISTOGRAM_H_
#define RPMIS_OBS_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace rpmis::obs {

class MetricsRegistry;

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 48;  // 1us .. ~2^47us (~4.4 years)

  void Record(double seconds);

  uint64_t Count() const { return count_; }
  double SumSeconds() const { return sum_seconds_; }
  double MeanSeconds() const { return count_ == 0 ? 0.0 : sum_seconds_ / count_; }

  /// Upper bucket edge (in seconds) containing the q-quantile event,
  /// q in [0, 1]. A log-bucketed estimate: exact to within a factor 2.
  double QuantileSeconds(double q) const;

  /// Bucket count for the bucket with upper edge 2^i microseconds.
  uint64_t BucketCount(int i) const { return buckets_[i]; }

  /// Writes count/sum and every non-empty bucket into `metrics` as
  /// counters named "<prefix>.count", "<prefix>.sum_us",
  /// "<prefix>.le_us.<2^i>". Safe to call repeatedly only on a registry
  /// that is cleared between publishes (counters accumulate).
  void PublishTo(MetricsRegistry& metrics, std::string_view prefix) const;

  void Reset();

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_seconds_ = 0.0;
};

}  // namespace rpmis::obs

#endif  // RPMIS_OBS_HISTOGRAM_H_
