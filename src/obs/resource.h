// Resource probe: per-run CPU/memory/hardware-counter usage.
//
// Sources, in decreasing availability:
//   * getrusage(RUSAGE_SELF): utime/stime, minor/major page faults —
//     always present on Linux.
//   * /proc/self/status VmHWM: peak RSS. May be unreadable (hardened
//     containers); then `vm_hwm_kb` is marked absent, never silently 0.
//   * perf_event_open cycles / instructions / LLC misses: requires
//     kernel.perf_event_paranoid to permit self-profiling; gracefully
//     absent otherwise (`perf_available` = false), with no diagnostics on
//     the solver path.
//
// Usage: construct (opens perf fds), Start() at the measured region's
// beginning, Stop() at its end; Stop() returns deltas.
#ifndef RPMIS_OBS_RESOURCE_H_
#define RPMIS_OBS_RESOURCE_H_

#include <cstdint>

namespace rpmis::obs {

struct ResourceUsage {
  double utime_seconds = 0.0;
  double stime_seconds = 0.0;
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;

  bool vm_hwm_available = false;
  uint64_t vm_hwm_kb = 0;  // peak RSS at Stop() (absolute, not a delta)

  bool perf_available = false;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
};

class ResourceProbe {
 public:
  ResourceProbe();
  ~ResourceProbe();

  ResourceProbe(const ResourceProbe&) = delete;
  ResourceProbe& operator=(const ResourceProbe&) = delete;

  /// True when the hardware counters opened (perf fields will be real).
  bool PerfAvailable() const;

  /// (Re)arms the probe: snapshots rusage and resets/starts counters.
  void Start();

  /// Deltas since the last Start(). VmHWM is absolute (peaks don't
  /// subtract meaningfully across runs in one process).
  ResourceUsage Stop();

 private:
  static constexpr int kNumPerfEvents = 3;
  int perf_fd_[kNumPerfEvents];

  double start_utime_ = 0.0;
  double start_stime_ = 0.0;
  uint64_t start_minor_ = 0;
  uint64_t start_major_ = 0;
};

}  // namespace rpmis::obs

#endif  // RPMIS_OBS_RESOURCE_H_
