#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace rpmis::obs {

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(double value, std::string* out) {
  if (!std::isfinite(value)) value = 0.0;
  // Integers up to 2^53 round-trip exactly; print them without a point so
  // counters stay greppable.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    out->append(buf);
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing garbage after document");
    return true;
  }

 private:
  bool Fail(const char* msg) {
    if (error_ != nullptr) {
      *error_ = std::string(msg) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.substr(pos_, len) != word) return Fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Fail("truncated escape");
      const char e = text_[pos_ + 1];
      pos_ += 2;
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8-encode the code point (surrogate pairs are passed through
          // as two 3-byte sequences — good enough for validator use).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      pos_ = start;
      return Fail("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Fail("expected ':'");
        }
        ++pos_;
        SkipWs();
        JsonValue value;
        if (!ParseValue(&value, depth + 1)) return false;
        if (out->object.emplace(key, std::move(value)).second) {
          out->object_keys.push_back(key);
        }
        SkipWs();
        if (pos_ >= text_.size()) return Fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        JsonValue value;
        if (!ParseValue(&value, depth + 1)) return false;
        out->array.push_back(std::move(value));
        SkipWs();
        if (pos_ >= text_.size()) return Fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    return ParseNumber(out);
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  Parser parser(text, error);
  return parser.Parse(out);
}

}  // namespace rpmis::obs
