#include "obs/trace.h"

#include <atomic>
#include <cstdio>

#include "obs/json.h"

namespace rpmis::obs {

namespace {

// Small dense thread ids: the first thread to trace gets 0, the next 1, …
// Stable for the lifetime of the process, which keeps B/E pairs on one id
// (the "thread-consistent ids" the validator checks).
uint32_t CurrentTid() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

TraceSink::TraceSink(size_t max_events)
    : max_events_(max_events), epoch_(std::chrono::steady_clock::now()) {
  events_.reserve(1024);
}

void TraceSink::Push(const char* name, char ph) {
  const uint64_t ts = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  const uint32_t tid = CurrentTid();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{name, ts, tid, ph});
}

void TraceSink::Begin(const char* name) { Push(name, 'B'); }

void TraceSink::End() { Push(nullptr, 'E'); }

void TraceSink::Instant(const char* name) { Push(name, 'i'); }

size_t TraceSink::NumEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t TraceSink::DroppedEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string TraceSink::ToJson() const {
  std::vector<Event> events;
  uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    dropped = dropped_;
  }
  std::string out;
  out.reserve(64 + events.size() * 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"";
    out.push_back(e.ph);
    out += "\"";
    if (e.name != nullptr) {
      out += ",\"name\":";
      AppendJsonString(e.name, &out);
    }
    if (e.ph == 'i') out += ",\"s\":\"t\"";
    out += ",\"cat\":\"rpmis\",\"pid\":1,\"tid\":";
    AppendJsonNumber(static_cast<double>(e.tid), &out);
    out += ",\"ts\":";
    AppendJsonNumber(static_cast<double>(e.ts_us), &out);
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"droppedEvents\":";
  AppendJsonNumber(static_cast<double>(dropped), &out);
  out += "}";
  return out;
}

bool TraceSink::WriteFile(const std::string& path) const {
  const std::string json = ToJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (written != json.size()) std::fclose(f);
  return ok;
}

}  // namespace rpmis::obs
