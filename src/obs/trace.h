// Span tracer emitting Chrome trace-event JSON (the format Perfetto and
// chrome://tracing load natively).
//
// Spans are B/E ("duration begin/end") events tagged with a small stable
// thread id, so per-thread nesting renders as a flame graph. Timestamps
// are microseconds from the sink's construction on the steady clock —
// monotone by construction, which the validator (obs/validate.h) checks.
//
// Granularity contract: spans wrap PHASES (ingest, a prepass, the core
// loop, one compaction rebuild, one component solve, one ARW iteration),
// never per-vertex work — a trace of a big run stays in the tens of
// thousands of events. The sink additionally hard-caps the buffer and
// counts dropped events instead of growing without bound.
#ifndef RPMIS_OBS_TRACE_H_
#define RPMIS_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rpmis::obs {

class TraceSink {
 public:
  /// `max_events`: hard cap on buffered events; further Begin/End pairs
  /// are counted as dropped (the JSON reports the count) so a runaway
  /// caller degrades gracefully instead of exhausting memory.
  explicit TraceSink(size_t max_events = 4'000'000);

  /// Opens a span named `name` on the calling thread. `name` must outlive
  /// the sink (string literals in practice). Thread-safe.
  void Begin(const char* name);

  /// Closes the innermost open span on the calling thread. Thread-safe.
  void End();

  /// A zero-duration instant event (scope: thread). Thread-safe.
  void Instant(const char* name);

  size_t NumEvents() const;
  uint64_t DroppedEvents() const;

  /// The full document: {"traceEvents":[...], ...}.
  std::string ToJson() const;

  /// Writes ToJson() to `path`; false (with errno intact) on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  struct Event {
    const char* name;  // nullptr for E events
    uint64_t ts_us;
    uint32_t tid;
    char ph;  // 'B', 'E', 'i'
  };

  void Push(const char* name, char ph);

  const size_t max_events_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: opens on construction when `sink` is non-null, closes on
/// destruction. The usual call site is
///   obs::TraceSpan span(obs::Trace(), "nearlinear.core");
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, const char* name) : sink_(sink) {
    if (sink_ != nullptr) sink_->Begin(name);
  }
  ~TraceSpan() {
    if (sink_ != nullptr) sink_->End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSink* sink_;
};

}  // namespace rpmis::obs

#endif  // RPMIS_OBS_TRACE_H_
