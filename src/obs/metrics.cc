#include "obs/metrics.h"

#include <algorithm>

namespace rpmis::obs {

void MetricsRegistry::Add(std::string_view name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[std::string(name)];
  cell.is_counter = true;
  cell.counter += delta;
}

void MetricsRegistry::Set(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[std::string(name)];
  cell.is_counter = false;
  cell.gauge = value;
}

uint64_t MetricsRegistry::Counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cells_.find(std::string(name));
  if (it == cells_.end() || !it->second.is_counter) return 0;
  return it->second.counter;
}

double MetricsRegistry::Gauge(std::string_view name, double fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cells_.find(std::string(name));
  if (it == cells_.end() || it->second.is_counter) return fallback;
  return it->second.gauge;
}

bool MetricsRegistry::Contains(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.find(std::string(name)) != cells_.end();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Snapshot() const {
  std::vector<Entry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(cells_.size());
    for (const auto& [name, cell] : cells_) {
      out.push_back(Entry{name, cell.is_counter, cell.counter, cell.gauge});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.clear();
}

}  // namespace rpmis::obs
