#include "obs/resource.h"

#include <sys/resource.h>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "benchkit/run.h"

namespace rpmis::obs {

namespace {

double TimevalSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
}

#if defined(__linux__)
int OpenPerfCounter(uint64_t config) {
  perf_event_attr attr{};
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 1;  // count worker threads spawned inside the run too
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0));
}
#endif

}  // namespace

ResourceProbe::ResourceProbe() {
  for (int i = 0; i < kNumPerfEvents; ++i) perf_fd_[i] = -1;
#if defined(__linux__)
  // All three or none: a partial set would invite cross-run comparisons of
  // incommensurate counters.
  static constexpr uint64_t kConfigs[kNumPerfEvents] = {
      PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CACHE_MISSES};
  bool all_ok = true;
  for (int i = 0; i < kNumPerfEvents; ++i) {
    perf_fd_[i] = OpenPerfCounter(kConfigs[i]);
    if (perf_fd_[i] < 0) all_ok = false;
  }
  if (!all_ok) {
    for (int i = 0; i < kNumPerfEvents; ++i) {
      if (perf_fd_[i] >= 0) close(perf_fd_[i]);
      perf_fd_[i] = -1;
    }
  }
#endif
}

ResourceProbe::~ResourceProbe() {
#if defined(__linux__)
  for (int i = 0; i < kNumPerfEvents; ++i) {
    if (perf_fd_[i] >= 0) close(perf_fd_[i]);
  }
#endif
}

bool ResourceProbe::PerfAvailable() const { return perf_fd_[0] >= 0; }

void ResourceProbe::Start() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  start_utime_ = TimevalSeconds(ru.ru_utime);
  start_stime_ = TimevalSeconds(ru.ru_stime);
  start_minor_ = static_cast<uint64_t>(ru.ru_minflt);
  start_major_ = static_cast<uint64_t>(ru.ru_majflt);
#if defined(__linux__)
  for (int i = 0; i < kNumPerfEvents; ++i) {
    if (perf_fd_[i] < 0) continue;
    ioctl(perf_fd_[i], PERF_EVENT_IOC_RESET, 0);
    ioctl(perf_fd_[i], PERF_EVENT_IOC_ENABLE, 0);
  }
#endif
}

ResourceUsage ResourceProbe::Stop() {
  ResourceUsage out;
#if defined(__linux__)
  uint64_t values[kNumPerfEvents] = {0, 0, 0};
  bool read_ok = PerfAvailable();
  for (int i = 0; i < kNumPerfEvents && read_ok; ++i) {
    ioctl(perf_fd_[i], PERF_EVENT_IOC_DISABLE, 0);
    if (read(perf_fd_[i], &values[i], sizeof(values[i])) !=
        static_cast<ssize_t>(sizeof(values[i]))) {
      read_ok = false;
    }
  }
  if (read_ok) {
    out.perf_available = true;
    out.cycles = values[0];
    out.instructions = values[1];
    out.llc_misses = values[2];
  }
#endif
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  out.utime_seconds = TimevalSeconds(ru.ru_utime) - start_utime_;
  out.stime_seconds = TimevalSeconds(ru.ru_stime) - start_stime_;
  out.minor_faults = static_cast<uint64_t>(ru.ru_minflt) - start_minor_;
  out.major_faults = static_cast<uint64_t>(ru.ru_majflt) - start_major_;
  if (const auto hwm = TryPeakRssKb()) {
    out.vm_hwm_available = true;
    out.vm_hwm_kb = *hwm;
  }
  return out;
}

}  // namespace rpmis::obs
