#include "obs/validate.h"

#include <map>
#include <vector>

#include "obs/json.h"

namespace rpmis::obs {

namespace {

ValidationResult Fail(std::string error) {
  ValidationResult r;
  r.ok = false;
  r.error = std::move(error);
  return r;
}

}  // namespace

ValidationResult ValidateTraceJson(std::string_view json) {
  JsonValue doc;
  std::string err;
  if (!ParseJson(json, &doc, &err)) return Fail("invalid JSON: " + err);
  if (!doc.IsObject()) return Fail("top level is not an object");
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->IsArray()) {
    return Fail("missing traceEvents array");
  }

  // Per-tid open-span depth and last timestamp.
  std::map<int64_t, int64_t> depth;
  std::map<int64_t, double> last_ts;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = " (event " + std::to_string(i) + ")";
    if (!e.IsObject()) return Fail("event is not an object" + at);
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || !ph->IsString() || ph->string_value.size() != 1) {
      return Fail("missing/malformed ph" + at);
    }
    const char kind = ph->string_value[0];
    if (kind != 'B' && kind != 'E' && kind != 'i' && kind != 'X' &&
        kind != 'M' && kind != 'C') {
      return Fail(std::string("unsupported ph '") + kind + "'" + at);
    }
    const JsonValue* tid = e.Find("tid");
    const JsonValue* pid = e.Find("pid");
    const JsonValue* ts = e.Find("ts");
    if (tid == nullptr || !tid->IsNumber()) return Fail("missing tid" + at);
    if (pid == nullptr || !pid->IsNumber()) return Fail("missing pid" + at);
    if (ts == nullptr || !ts->IsNumber()) return Fail("missing ts" + at);
    if (ts->number_value < 0) return Fail("negative ts" + at);
    if (kind == 'B' || kind == 'i') {
      const JsonValue* name = e.Find("name");
      if (name == nullptr || !name->IsString() || name->string_value.empty()) {
        return Fail(std::string("ph ") + kind + " without a name" + at);
      }
    }
    const int64_t t = static_cast<int64_t>(tid->number_value);
    const auto it = last_ts.find(t);
    if (it != last_ts.end() && ts->number_value < it->second) {
      return Fail("timestamps not monotone on tid " + std::to_string(t) + at);
    }
    last_ts[t] = ts->number_value;
    if (kind == 'B') {
      ++depth[t];
    } else if (kind == 'E') {
      if (--depth[t] < 0) {
        return Fail("E without matching B on tid " + std::to_string(t) + at);
      }
    }
  }
  for (const auto& [t, d] : depth) {
    if (d != 0) {
      return Fail("unbalanced spans on tid " + std::to_string(t) + ": " +
                  std::to_string(d) + " left open");
    }
  }

  ValidationResult r;
  r.ok = true;
  r.num_events = events->array.size();
  return r;
}

ValidationResult ValidateRunRecords(std::string_view jsonl) {
  size_t line_no = 0;
  size_t records = 0;
  size_t pos = 0;
  while (pos <= jsonl.size()) {
    const size_t nl = jsonl.find('\n', pos);
    const std::string_view line =
        jsonl.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? jsonl.size() + 1 : nl + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;

    const std::string at = " (line " + std::to_string(line_no) + ")";
    JsonValue doc;
    std::string err;
    if (!ParseJson(line, &doc, &err)) {
      return Fail("invalid JSON: " + err + at);
    }
    if (!doc.IsObject()) return Fail("record is not an object" + at);
    const JsonValue* schema = doc.Find("schema");
    if (schema == nullptr || !schema->IsString() ||
        schema->string_value.rfind("rpmis.run", 0) != 0) {
      return Fail("missing/foreign schema field" + at);
    }
    for (const char* key : {"bench", "algorithm", "build_flags"}) {
      const JsonValue* v = doc.Find(key);
      if (v == nullptr || !v->IsString() || v->string_value.empty()) {
        return Fail(std::string("missing ") + key + at);
      }
    }
    const JsonValue* seed = doc.Find("seed");
    if (seed == nullptr || !seed->IsNumber()) return Fail("missing seed" + at);
    const JsonValue* threads = doc.Find("threads");
    if (threads == nullptr || !threads->IsNumber() ||
        threads->number_value < 1) {
      return Fail("missing/invalid threads" + at);
    }
    const JsonValue* samples = doc.Find("samples");
    if (samples != nullptr) {
      if (!samples->IsArray()) return Fail("samples is not an array" + at);
      double prev = -1.0;
      for (const JsonValue& s : samples->array) {
        const JsonValue* sec = s.Find("seconds");
        if (!s.IsObject() || sec == nullptr || !sec->IsNumber()) {
          return Fail("malformed progress sample" + at);
        }
        if (sec->number_value < prev) {
          return Fail("progress samples not time-ordered" + at);
        }
        prev = sec->number_value;
      }
    }
    ++records;
  }
  if (records == 0) return Fail("no records found");
  ValidationResult r;
  r.ok = true;
  r.num_events = records;
  return r;
}

}  // namespace rpmis::obs
