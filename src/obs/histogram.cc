#include "obs/histogram.h"

#include <cmath>
#include <string>

#include "obs/metrics.h"

namespace rpmis::obs {

namespace {

// Bucket index for a latency: smallest i with latency_us <= 2^i.
int BucketIndex(double seconds) {
  const double us = seconds * 1e6;
  if (!(us > 1.0)) return 0;  // <= 1us (and NaN/negative) land in bucket 0
  const int i = static_cast<int>(std::ceil(std::log2(us)));
  return i >= LatencyHistogram::kBuckets ? LatencyHistogram::kBuckets - 1 : i;
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  ++buckets_[BucketIndex(seconds)];
  ++count_;
  sum_seconds_ += seconds;
}

double LatencyHistogram::QuantileSeconds(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) return std::ldexp(1.0, i) * 1e-6;
  }
  return std::ldexp(1.0, kBuckets - 1) * 1e-6;
}

void LatencyHistogram::PublishTo(MetricsRegistry& metrics,
                                 std::string_view prefix) const {
  const std::string base(prefix);
  metrics.Add(base + ".count", count_);
  metrics.Add(base + ".sum_us",
              static_cast<uint64_t>(sum_seconds_ * 1e6 + 0.5));
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    metrics.Add(base + ".le_us." + std::to_string(1ULL << i), buckets_[i]);
  }
}

void LatencyHistogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_seconds_ = 0.0;
}

}  // namespace rpmis::obs
