#include "benchkit/stats.h"

#include <sstream>

#include "benchkit/table.h"

namespace rpmis {

namespace {

void AddRule(std::ostringstream& out, const char* name, uint64_t value) {
  if (value == 0) return;
  out << "  " << name << ": " << FormatCount(value) << "\n";
}

}  // namespace

std::string FormatSolverStats(const MisSolution& sol) {
  std::ostringstream out;
  out << "solution size: " << FormatCount(sol.size) << "\n";
  out << "peeled: " << FormatCount(sol.peeled)
      << "  residual: " << FormatCount(sol.residual_peeled)
      << "  upper bound: " << FormatCount(sol.UpperBound())
      << (sol.provably_maximum ? "  (provably maximum)" : "") << "\n";
  out << "kernel: " << FormatCount(sol.kernel_vertices) << " vertices, "
      << FormatCount(sol.kernel_edges) << " edges\n";
  out << "reductions (" << FormatCount(sol.rules.TotalExact()) << " exact):\n";
  AddRule(out, "degree-zero", sol.rules.degree_zero);
  AddRule(out, "degree-one", sol.rules.degree_one);
  AddRule(out, "degree-two isolation", sol.rules.degree_two_isolation);
  AddRule(out, "degree-two folding", sol.rules.degree_two_folding);
  AddRule(out, "degree-two path", sol.rules.degree_two_path);
  AddRule(out, "dominance", sol.rules.dominance);
  AddRule(out, "one-pass dominance", sol.rules.one_pass_dominance);
  AddRule(out, "lp", sol.rules.lp);
  AddRule(out, "twin", sol.rules.twin);
  AddRule(out, "unconfined", sol.rules.unconfined);
  AddRule(out, "peels (inexact)", sol.rules.peels);
  const CompactionStats& c = sol.compaction;
  out << "compaction: " << FormatCount(c.compactions) << " rebuilds";
  if (c.compactions > 0) {
    out << "; scanned " << FormatCount(c.vertices_scanned) << " vertices / "
        << FormatCount(c.slots_scanned) << " slots; kept "
        << FormatCount(c.vertices_kept) << " vertices / "
        << FormatCount(c.slots_kept) << " slots";
  }
  out << "\n";
  return out.str();
}

void PublishSolutionMetrics(const MisSolution& sol,
                            obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->Set("solution.size", static_cast<double>(sol.size));
  metrics->Set("solution.upper_bound", static_cast<double>(sol.UpperBound()));
  metrics->Set("solution.provably_maximum", sol.provably_maximum ? 1.0 : 0.0);
  metrics->Set("solution.peeled", static_cast<double>(sol.peeled));
  metrics->Set("solution.residual_peeled",
               static_cast<double>(sol.residual_peeled));
  metrics->Set("kernel.vertices", static_cast<double>(sol.kernel_vertices));
  metrics->Set("kernel.edges", static_cast<double>(sol.kernel_edges));

  const RuleCounters& r = sol.rules;
  metrics->Add("rules.degree_zero", r.degree_zero);
  metrics->Add("rules.degree_one", r.degree_one);
  metrics->Add("rules.degree_two_isolation", r.degree_two_isolation);
  metrics->Add("rules.degree_two_folding", r.degree_two_folding);
  metrics->Add("rules.degree_two_path", r.degree_two_path);
  metrics->Add("rules.dominance", r.dominance);
  metrics->Add("rules.one_pass_dominance", r.one_pass_dominance);
  metrics->Add("rules.lp", r.lp);
  metrics->Add("rules.twin", r.twin);
  metrics->Add("rules.unconfined", r.unconfined);
  metrics->Add("rules.peels", r.peels);
  metrics->Add("rules.total_exact", r.TotalExact());

  const CompactionStats& c = sol.compaction;
  metrics->Add("compaction.rebuilds", c.compactions);
  metrics->Add("compaction.vertices_scanned", c.vertices_scanned);
  metrics->Add("compaction.slots_scanned", c.slots_scanned);
  metrics->Add("compaction.vertices_kept", c.vertices_kept);
  metrics->Add("compaction.slots_kept", c.slots_kept);
}

std::string FormatDynamicStats(const DynamicStats& stats) {
  std::ostringstream out;
  const uint64_t updates = stats.insert_edges + stats.delete_edges +
                           stats.insert_vertices + stats.delete_vertices;
  out << "updates: " << FormatCount(updates) << " ("
      << FormatCount(stats.insert_edges) << " ae, "
      << FormatCount(stats.delete_edges) << " de, "
      << FormatCount(stats.insert_vertices) << " av, "
      << FormatCount(stats.delete_vertices) << " dv; "
      << FormatCount(stats.noops) << " no-ops)\n";
  const obs::LatencyHistogram& h = stats.latency;
  out << "latency: mean " << h.MeanSeconds() * 1e6 << "us, p50 "
      << h.QuantileSeconds(0.5) * 1e6 << "us, p99 "
      << h.QuantileSeconds(0.99) * 1e6 << "us\n";
  out << "cones: " << FormatCount(stats.cone_vertices)
      << " freed vertices total, max " << FormatCount(stats.max_cone)
      << "; includes " << FormatCount(stats.included_by_reduction)
      << " by reduction + " << FormatCount(stats.included_greedy)
      << " greedy; " << FormatCount(stats.evictions) << " evictions\n";
  out << "fallbacks: " << FormatCount(stats.component_fallbacks)
      << " component re-solves, " << FormatCount(stats.full_resolves)
      << " full re-solves\n";
  return out.str();
}

}  // namespace rpmis
