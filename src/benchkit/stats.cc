#include "benchkit/stats.h"

#include <sstream>

#include "benchkit/table.h"

namespace rpmis {

namespace {

void AddRule(std::ostringstream& out, const char* name, uint64_t value) {
  if (value == 0) return;
  out << "  " << name << ": " << FormatCount(value) << "\n";
}

}  // namespace

std::string FormatSolverStats(const MisSolution& sol) {
  std::ostringstream out;
  out << "solution size: " << FormatCount(sol.size) << "\n";
  out << "peeled: " << FormatCount(sol.peeled)
      << "  residual: " << FormatCount(sol.residual_peeled)
      << "  upper bound: " << FormatCount(sol.UpperBound())
      << (sol.provably_maximum ? "  (provably maximum)" : "") << "\n";
  out << "kernel: " << FormatCount(sol.kernel_vertices) << " vertices, "
      << FormatCount(sol.kernel_edges) << " edges\n";
  out << "reductions (" << FormatCount(sol.rules.TotalExact()) << " exact):\n";
  AddRule(out, "degree-zero", sol.rules.degree_zero);
  AddRule(out, "degree-one", sol.rules.degree_one);
  AddRule(out, "degree-two isolation", sol.rules.degree_two_isolation);
  AddRule(out, "degree-two folding", sol.rules.degree_two_folding);
  AddRule(out, "degree-two path", sol.rules.degree_two_path);
  AddRule(out, "dominance", sol.rules.dominance);
  AddRule(out, "one-pass dominance", sol.rules.one_pass_dominance);
  AddRule(out, "lp", sol.rules.lp);
  AddRule(out, "twin", sol.rules.twin);
  AddRule(out, "unconfined", sol.rules.unconfined);
  AddRule(out, "peels (inexact)", sol.rules.peels);
  const CompactionStats& c = sol.compaction;
  out << "compaction: " << FormatCount(c.compactions) << " rebuilds";
  if (c.compactions > 0) {
    out << "; scanned " << FormatCount(c.vertices_scanned) << " vertices / "
        << FormatCount(c.slots_scanned) << " slots; kept "
        << FormatCount(c.vertices_kept) << " vertices / "
        << FormatCount(c.slots_kept) << " slots";
  }
  out << "\n";
  return out.str();
}

}  // namespace rpmis
