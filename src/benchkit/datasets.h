// The benchmark dataset suite: deterministic synthetic stand-ins for the
// 20 real graphs of Table 2 (see DESIGN.md §4 for the substitution
// rationale). Each dataset keeps the original's NAME, its easy/hard
// classification (§7.1), and a generator matched to its family:
// Chung–Lu power-law for social/collaboration networks, R-MAT for web
// crawls. Scales are reduced so the whole harness runs in minutes.
#ifndef RPMIS_BENCHKIT_DATASETS_H_
#define RPMIS_BENCHKIT_DATASETS_H_

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace rpmis {

struct DatasetSpec {
  std::string name;      // the paper's graph name
  bool hard;             // hard instance (Table 4, Figures 10/15)
  Vertex paper_n;        // the real graph's size, for reference columns
  uint64_t paper_m;
  std::function<Graph()> make;  // deterministic generator
};

/// All 20 datasets in the paper's Table 2 order.
const std::vector<DatasetSpec>& AllDatasets();

/// The 12 easy instances (VCSolver-feasible) in order.
std::vector<DatasetSpec> EasyDatasets();

/// The 8 hard instances in order.
std::vector<DatasetSpec> HardDatasets();

/// Lookup by name; aborts on unknown names.
const DatasetSpec& DatasetByName(const std::string& name);

/// Materializes a dataset, transparently caching the built graph in the
/// RPMI binary format under the directory named by the
/// RPMIS_DATASET_CACHE environment variable (created on demand). With the
/// variable unset the generator runs every time, exactly like calling
/// spec.make(). Cache entries are keyed by dataset name; generators are
/// deterministic, so deleting `<dir>/<name>.rpmi` is the only
/// invalidation ever needed. Corrupt cache files are regenerated, and
/// cache write failures fall back to the uncached path silently.
Graph LoadDataset(const DatasetSpec& spec);

}  // namespace rpmis

#endif  // RPMIS_BENCHKIT_DATASETS_H_
