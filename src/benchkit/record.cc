#include "benchkit/record.h"

#include <cstdio>

#include "obs/json.h"
#include "support/parallel.h"

namespace rpmis {

namespace {

void AppendField(const char* key, std::string* out, bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  obs::AppendJsonString(key, out);
  out->push_back(':');
}

void AppendSample(const obs::ProgressSample& s, std::string* out) {
  out->push_back('{');
  bool first = true;
  AppendField("seconds", out, &first);
  obs::AppendJsonNumber(s.seconds, out);
  AppendField("events", out, &first);
  obs::AppendJsonNumber(static_cast<double>(s.events), out);
  const auto maybe = [&](const char* key, uint64_t v) {
    if (v == obs::kProgressFieldAbsent) return;
    AppendField(key, out, &first);
    obs::AppendJsonNumber(static_cast<double>(v), out);
  };
  maybe("live_vertices", s.live_vertices);
  maybe("live_edges", s.live_edges);
  maybe("solution_size", s.solution_size);
  maybe("upper_bound", s.upper_bound);
  if (!s.label.empty()) {
    AppendField("label", out, &first);
    obs::AppendJsonString(s.label, out);
  }
  out->push_back('}');
}

}  // namespace

const char* BuildFlagsString() {
  return
#ifdef RPMIS_BUILD_FLAGS
      RPMIS_BUILD_FLAGS
#elif defined(NDEBUG)
      "release"
#else
      "debug"
#endif
#ifdef RPMIS_NO_OBS
      " RPMIS_NO_OBS"
#endif
      ;
}

RunRecord MakeRunRecord(std::string bench, std::string algorithm,
                        std::string dataset, uint64_t seed) {
  RunRecord r;
  r.bench = std::move(bench);
  r.algorithm = std::move(algorithm);
  r.dataset = std::move(dataset);
  r.seed = seed;
  r.threads = NumThreads();
  return r;
}

std::string FormatRunRecord(const RunRecord& record) {
  std::string out;
  out.reserve(256 + record.samples.size() * 96);
  out.push_back('{');
  bool first = true;
  AppendField("schema", &out, &first);
  obs::AppendJsonString("rpmis.run/1", &out);
  AppendField("bench", &out, &first);
  obs::AppendJsonString(record.bench, &out);
  AppendField("algorithm", &out, &first);
  obs::AppendJsonString(record.algorithm, &out);
  if (!record.dataset.empty()) {
    AppendField("dataset", &out, &first);
    obs::AppendJsonString(record.dataset, &out);
  }
  AppendField("seed", &out, &first);
  obs::AppendJsonNumber(static_cast<double>(record.seed), &out);
  AppendField("threads", &out, &first);
  obs::AppendJsonNumber(static_cast<double>(record.threads), &out);
  AppendField("build_flags", &out, &first);
  obs::AppendJsonString(BuildFlagsString(), &out);
  if (!record.args.empty()) {
    AppendField("args", &out, &first);
    out.push_back('[');
    for (size_t i = 0; i < record.args.size(); ++i) {
      if (i > 0) out.push_back(',');
      obs::AppendJsonString(record.args[i], &out);
    }
    out.push_back(']');
  }
  for (const auto& [name, value] : record.numbers) {
    AppendField(name.c_str(), &out, &first);
    obs::AppendJsonNumber(value, &out);
  }
  for (const auto& [name, value] : record.strings) {
    AppendField(name.c_str(), &out, &first);
    obs::AppendJsonString(value, &out);
  }
  if (!record.metrics.empty()) {
    AppendField("metrics", &out, &first);
    out.push_back('{');
    bool mfirst = true;
    for (const auto& entry : record.metrics) {
      AppendField(entry.name.c_str(), &out, &mfirst);
      obs::AppendJsonNumber(entry.AsDouble(), &out);
    }
    out.push_back('}');
  }
  if (!record.samples.empty()) {
    AppendField("samples", &out, &first);
    out.push_back('[');
    for (size_t i = 0; i < record.samples.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendSample(record.samples[i], &out);
    }
    out.push_back(']');
  }
  if (record.resource.has_value()) {
    const obs::ResourceUsage& r = *record.resource;
    AppendField("resource", &out, &first);
    out.push_back('{');
    bool rfirst = true;
    AppendField("utime_seconds", &out, &rfirst);
    obs::AppendJsonNumber(r.utime_seconds, &out);
    AppendField("stime_seconds", &out, &rfirst);
    obs::AppendJsonNumber(r.stime_seconds, &out);
    AppendField("minor_faults", &out, &rfirst);
    obs::AppendJsonNumber(static_cast<double>(r.minor_faults), &out);
    AppendField("major_faults", &out, &rfirst);
    obs::AppendJsonNumber(static_cast<double>(r.major_faults), &out);
    if (r.vm_hwm_available) {
      AppendField("vm_hwm_kb", &out, &rfirst);
      obs::AppendJsonNumber(static_cast<double>(r.vm_hwm_kb), &out);
    }
    if (r.perf_available) {
      AppendField("cycles", &out, &rfirst);
      obs::AppendJsonNumber(static_cast<double>(r.cycles), &out);
      AppendField("instructions", &out, &rfirst);
      obs::AppendJsonNumber(static_cast<double>(r.instructions), &out);
      AppendField("llc_misses", &out, &rfirst);
      obs::AppendJsonNumber(static_cast<double>(r.llc_misses), &out);
    }
    out.push_back('}');
  }
  out.push_back('}');
  return out;
}

RunRecordWriter::RunRecordWriter(std::string path) : path_(std::move(path)) {}

RunRecordWriter::~RunRecordWriter() {
  if (file_ != nullptr && file_ != stdout) {
    std::fclose(static_cast<FILE*>(file_));
  }
}

void RunRecordWriter::Write(const RunRecord& record) {
  if (!ok_) return;
  if (file_ == nullptr) {
    if (path_ == "-") {
      file_ = stdout;
    } else {
      file_ = std::fopen(path_.c_str(), "a");
      if (file_ == nullptr) {
        std::fprintf(stderr, "rpmis: cannot open run-record file %s\n",
                     path_.c_str());
        ok_ = false;
        return;
      }
    }
  }
  const std::string line = FormatRunRecord(record) + "\n";
  FILE* f = static_cast<FILE*>(file_);
  if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) ok_ = false;
  std::fflush(f);
}

std::vector<obs::ProgressSample> ReadProgressSamples(
    const std::string& path, const std::string& algorithm) {
  std::vector<obs::ProgressSample> out;
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return out;
  std::string line;
  char buf[4096];
  auto flush_line = [&]() {
    if (line.empty()) return;
    obs::JsonValue doc;
    if (obs::ParseJson(line, &doc, nullptr) && doc.IsObject()) {
      const obs::JsonValue* algo = doc.Find("algorithm");
      const bool match = algorithm.empty() ||
                         (algo != nullptr && algo->IsString() &&
                          algo->string_value == algorithm);
      const obs::JsonValue* samples = doc.Find("samples");
      if (match && samples != nullptr && samples->IsArray()) {
        for (const obs::JsonValue& s : samples->array) {
          if (!s.IsObject()) continue;
          obs::ProgressSample sample;
          const auto num = [&](const char* key, uint64_t absent) {
            const obs::JsonValue* v = s.Find(key);
            return v != nullptr && v->IsNumber()
                       ? static_cast<uint64_t>(v->number_value)
                       : absent;
          };
          if (const obs::JsonValue* sec = s.Find("seconds");
              sec != nullptr && sec->IsNumber()) {
            sample.seconds = sec->number_value;
          }
          sample.events = num("events", 0);
          sample.live_vertices =
              num("live_vertices", obs::kProgressFieldAbsent);
          sample.live_edges = num("live_edges", obs::kProgressFieldAbsent);
          sample.solution_size =
              num("solution_size", obs::kProgressFieldAbsent);
          sample.upper_bound = num("upper_bound", obs::kProgressFieldAbsent);
          if (const obs::JsonValue* label = s.Find("label");
              label != nullptr && label->IsString()) {
            sample.label = label->string_value;
          }
          out.push_back(std::move(sample));
        }
      }
    }
    line.clear();
  };
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      flush_line();
    }
  }
  flush_line();
  std::fclose(f);
  return out;
}

}  // namespace rpmis
