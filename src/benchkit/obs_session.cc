#include "benchkit/obs_session.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "benchkit/stats.h"

namespace rpmis {

namespace {

constexpr uint64_t kDefaultProgressEvery = 8192;

/// "--progress" or "--progress=K" -> stride; anything else -> 0.
uint64_t ParseProgressFlag(std::string_view arg) {
  if (arg == "--progress") return kDefaultProgressEvery;
  constexpr std::string_view kPrefix = "--progress=";
  if (arg.rfind(kPrefix, 0) != 0) return 0;
  uint64_t every = 0;
  for (char c : arg.substr(kPrefix.size())) {
    if (c < '0' || c > '9') return kDefaultProgressEvery;
    every = every * 10 + static_cast<uint64_t>(c - '0');
  }
  return every == 0 ? kDefaultProgressEvery : every;
}

std::string_view FlagValue(std::string_view arg, std::string_view prefix) {
  if (arg.rfind(prefix, 0) != 0) return {};
  return arg.substr(prefix.size());
}

}  // namespace

bool IsObsFlag(std::string_view arg) {
  return arg.rfind("--trace=", 0) == 0 || arg.rfind("--metrics=", 0) == 0 ||
         arg == "--progress" || arg.rfind("--progress=", 0) == 0 ||
         arg.rfind("--records=", 0) == 0;
}

ObsSession::ObsSession(std::string bench, int argc, char** argv)
    : bench_(std::move(bench)) {
  std::string metrics_path;
  std::string records_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    args_.emplace_back(arg);
    if (const auto v = FlagValue(arg, "--trace="); !v.empty()) {
      trace_path_ = std::string(v);
    } else if (const auto m = FlagValue(arg, "--metrics="); !m.empty()) {
      metrics_path = std::string(m);
    } else if (const auto r = FlagValue(arg, "--records="); !r.empty()) {
      records_path = std::string(r);
    } else if (const uint64_t every = ParseProgressFlag(arg); every != 0) {
      progress_every_ = every;
    }
  }
  if (!trace_path_.empty()) {
    trace_ = std::make_unique<obs::TraceSink>();
    session_scope_ = std::make_unique<obs::ScopedObservability>(
        trace_.get(), nullptr, nullptr);
  }
  if (!records_path.empty()) {
    records_ = std::make_unique<RunRecordWriter>(records_path);
  }
  if (!metrics_path.empty()) {
    metrics_out_ = std::make_unique<RunRecordWriter>(metrics_path);
  }
  metrics_on_ = records_ != nullptr || metrics_out_ != nullptr;
}

ObsSession::~ObsSession() {
  if (trace_ != nullptr && !trace_->WriteFile(trace_path_)) {
    std::fprintf(stderr, "rpmis: cannot write trace file %s: %s\n",
                 trace_path_.c_str(), std::strerror(errno));
  }
}

void ObsSession::CommitRun(const RunRecord& record) {
  if (records_ != nullptr) records_->Write(record);
  if (metrics_out_ != nullptr) {
    // The metrics channel gets the same self-describing envelope but only
    // the registry snapshot — a compact stream for counter diffing.
    RunRecord trimmed;
    trimmed.bench = record.bench;
    trimmed.algorithm = record.algorithm;
    trimmed.dataset = record.dataset;
    trimmed.seed = record.seed;
    trimmed.threads = record.threads;
    trimmed.metrics = record.metrics;
    metrics_out_->Write(trimmed);
  }
}

ObsSession::Run::Run(ObsSession* session, std::string algorithm,
                     std::string dataset, uint64_t seed, bool force_progress)
    : session_(session),
      sampler_(session->progress_enabled() ? session->progress_every()
                                           : kDefaultProgressEvery),
      scoped_(session->trace(),
              session->metrics_enabled() ? &metrics_ : nullptr,
              session->progress_enabled() || force_progress ? &sampler_
                                                            : nullptr),
      record_(MakeRunRecord(session->bench_, std::move(algorithm),
                            std::move(dataset), seed)) {
  record_.args = session->args_;
  probe_.Start();
}

ObsSession::Run::~Run() { Commit(); }

void ObsSession::Run::NoteSolution(const MisSolution& sol) {
  PublishSolutionMetrics(sol, &metrics_);
  record_.AddNumber("solution.size", static_cast<double>(sol.size));
  record_.AddNumber("solution.upper_bound",
                    static_cast<double>(sol.UpperBound()));
}

void ObsSession::Run::Commit() {
  if (committed_) return;
  committed_ = true;
  record_.resource = probe_.Stop();
  record_.metrics = metrics_.Snapshot();
  record_.samples = sampler_.Samples();
  if (const uint64_t dropped = sampler_.DroppedSamples(); dropped > 0) {
    record_.AddNumber("progress.dropped_samples",
                      static_cast<double>(dropped));
  }
  session_->CommitRun(record_);
}

}  // namespace rpmis
