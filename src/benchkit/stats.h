// Human-readable per-run counter reports (mis_cli --stats, benches).
#ifndef RPMIS_BENCHKIT_STATS_H_
#define RPMIS_BENCHKIT_STATS_H_

#include <string>

#include "mis/solution.h"

namespace rpmis {

/// Multi-line report of a solution's instrumentation: reduction-rule
/// application counts, peeling/kernel figures, and the compaction
/// counters (events, vertices/edge-slots scanned and kept). Zero-valued
/// rule counters are omitted so small runs stay readable.
std::string FormatSolverStats(const MisSolution& sol);

}  // namespace rpmis

#endif  // RPMIS_BENCHKIT_STATS_H_
