// Human-readable per-run counter reports (mis_cli --stats, benches).
#ifndef RPMIS_BENCHKIT_STATS_H_
#define RPMIS_BENCHKIT_STATS_H_

#include <string>

#include "dynamic/engine.h"
#include "mis/solution.h"
#include "obs/metrics.h"

namespace rpmis {

/// Multi-line report of a solution's instrumentation: reduction-rule
/// application counts, peeling/kernel figures, and the compaction
/// counters (events, vertices/edge-slots scanned and kept). Zero-valued
/// rule counters are omitted so small runs stay readable.
std::string FormatSolverStats(const MisSolution& sol);

/// Publishes a solution's instrumentation — rule counters, peel/kernel
/// figures, and the CompactionStats block — into `metrics` under the
/// dotted-name convention ("rules.degree_one", "compaction.rebuilds",
/// "solution.size"). This is the registry-side twin of
/// FormatSolverStats: run records carry the snapshot instead of knowing
/// the structs' fields. Counters Add (accumulate over repeated runs);
/// per-solution scalars are gauges (last run wins).
void PublishSolutionMetrics(const MisSolution& sol,
                            obs::MetricsRegistry* metrics);

/// Multi-line report of a dynamic-update run: update mix, per-update
/// latency (mean/p50/p99 from the engine's histogram), cone sizes, and
/// how often each fallback tier fired.
std::string FormatDynamicStats(const DynamicStats& stats);

}  // namespace rpmis

#endif  // RPMIS_BENCHKIT_STATS_H_
