// Harness-side observability session: one object per bench binary (or
// mis_cli invocation) that owns the sinks, parses the shared flag
// vocabulary, and turns every measured run into a JSONL run record.
//
// Flags (same spelling everywhere):
//   --trace=FILE     Chrome trace-event JSON, one file for the whole
//                    process (spans from every run, Perfetto-loadable).
//   --metrics=FILE   per-run metrics snapshots as JSONL.
//   --progress[=K]   progress sampling every K solver events (default
//                    8192); samples land in the run records.
//   --records=FILE   self-describing JSONL run records ("-" = stdout).
//
// Usage:
//   ObsSession obs("bench_fig10", argc, argv);
//   for (each measured run) {
//     auto run = obs.Start("nearlinear", dataset, seed);
//     ... solve (hooks see the installed sinks) ...
//     run.NoteSeconds(t); run.NoteSolution(sol);
//   }  // destructor commits the record
//
// With no obs flag given, Start() still installs a metrics registry only
// when a sink needs it — the solver-side cost stays one null check per
// hook, and no files are written.
#ifndef RPMIS_BENCHKIT_OBS_SESSION_H_
#define RPMIS_BENCHKIT_OBS_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "benchkit/record.h"
#include "mis/solution.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace rpmis {

/// True for arguments the ObsSession consumes (--trace=, --metrics=,
/// --progress[...], --records=). Binaries with strict argv parsing skip
/// these.
bool IsObsFlag(std::string_view arg);

class ObsSession {
 public:
  /// Scans argv for the obs flags; does not modify argv. `bench` names
  /// the producing binary in every record.
  ObsSession(std::string bench, int argc, char** argv);
  /// Writes the trace file (when tracing) and closes the sinks.
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool tracing() const { return trace_ != nullptr; }
  bool progress_enabled() const { return progress_every_ != 0; }
  bool recording() const { return records_ != nullptr; }
  bool metrics_enabled() const { return metrics_on_; }
  uint64_t progress_every() const { return progress_every_; }
  obs::TraceSink* trace() { return trace_.get(); }

  /// One measured run: installs the session's sinks (plus a fresh
  /// metrics registry and progress sampler) for its lifetime, runs the
  /// resource probe, and commits one run record on destruction.
  class Run {
   public:
    Run(ObsSession* session, std::string algorithm, std::string dataset,
        uint64_t seed, bool force_progress);
    ~Run();

    Run(const Run&) = delete;
    Run& operator=(const Run&) = delete;

    RunRecord& record() { return record_; }
    obs::MetricsRegistry& metrics() { return metrics_; }
    obs::ProgressSampler& sampler() { return sampler_; }

    /// Records the run's headline wall time ("time.wall_seconds").
    void NoteSeconds(double seconds) {
      record_.AddNumber("time.wall_seconds", seconds);
    }

    /// Publishes the solution's counters into the run's registry and
    /// records the headline size figures.
    void NoteSolution(const MisSolution& sol);

    /// Snapshots sinks + resource probe and writes the record. Runs at
    /// most once; the destructor calls it if the caller did not.
    void Commit();

   private:
    ObsSession* session_;
    obs::MetricsRegistry metrics_;
    obs::ProgressSampler sampler_;
    obs::ResourceProbe probe_;
    obs::ScopedObservability scoped_;
    RunRecord record_;
    bool committed_ = false;
  };

  /// Starts a measured run. `force_progress` enables sampling for this
  /// run even without --progress (convergence benches always sample).
  Run Start(std::string algorithm, std::string dataset, uint64_t seed,
            bool force_progress = false) {
    return Run(this, std::move(algorithm), std::move(dataset), seed,
               force_progress);
  }

 private:
  friend class Run;
  void CommitRun(const RunRecord& record);

  std::string bench_;
  std::vector<std::string> args_;
  std::unique_ptr<obs::TraceSink> trace_;
  // Session-level install of the trace sink alone, so spans outside any
  // measured run (graph ingest, setup) land in the trace too. Runs nest
  // their own full install on top.
  std::unique_ptr<obs::ScopedObservability> session_scope_;
  std::unique_ptr<RunRecordWriter> records_;
  std::unique_ptr<RunRecordWriter> metrics_out_;
  std::string trace_path_;
  uint64_t progress_every_ = 0;  // 0 = sampling off
  bool metrics_on_ = false;
};

}  // namespace rpmis

#endif  // RPMIS_BENCHKIT_OBS_SESSION_H_
