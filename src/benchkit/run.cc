#include "benchkit/run.h"

#include <malloc.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/timer.h"

namespace rpmis {

namespace {

uint64_t ReadStatusKb(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t value = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      std::sscanf(line + key_len, ": %llu", reinterpret_cast<unsigned long long*>(&value));
      break;
    }
  }
  std::fclose(f);
  return value;
}

}  // namespace

uint64_t PeakRssKb() { return ReadStatusKb("VmHWM"); }
uint64_t CurrentRssKb() { return ReadStatusKb("VmRSS"); }

ChildMeasurement MeasureInChild(const std::function<void(uint64_t[4])>& body) {
  ChildMeasurement out;
  // Return freed arena pages to the kernel first; otherwise the child's
  // allocations reuse already-mapped heap left over from building the
  // input graph and VmHWM never grows (the measurement floors out).
  malloc_trim(0);

  // Degraded path when fork/pipe is unavailable: measure in-process (RSS
  // delta may be polluted by the parent's history). The contract must
  // match the forked path: ok = true only for a run that completed
  // normally, and a failed run (here: body throwing — the analogue of a
  // crashed child) yields a default result, never a partially-filled
  // payload. `body` therefore writes into a local report that is only
  // surfaced on success.
  auto measure_in_process = [&]() -> ChildMeasurement {
    ChildMeasurement report;
    const uint64_t before = PeakRssKb();
    Timer t;
    try {
      body(report.payload);
    } catch (...) {
      return ChildMeasurement{};
    }
    report.seconds = t.Seconds();
    report.peak_rss_delta_kb = PeakRssKb() - before;
    report.ok = true;
    return report;
  };

  // Test hook (and escape hatch for fork-hostile environments): force the
  // in-process fallback so its behaviour is exercisable deterministically.
  if (const char* env = std::getenv("RPMIS_MEASURE_IN_PROCESS")) {
    if (env[0] != '\0' && env[0] != '0') return measure_in_process();
  }

  int pipe_fd[2];
  if (pipe(pipe_fd) != 0) return measure_in_process();
  const pid_t pid = fork();
  if (pid < 0) {
    close(pipe_fd[0]);
    close(pipe_fd[1]);
    return measure_in_process();
  }
  if (pid == 0) {
    // Child: run and report the full struct (retrying interrupted or
    // short writes; the report is well under PIPE_BUF, so in practice
    // this is one atomic write).
    close(pipe_fd[0]);
    ChildMeasurement report;
    const uint64_t before = PeakRssKb();
    Timer t;
    body(report.payload);
    report.seconds = t.Seconds();
    report.peak_rss_delta_kb = PeakRssKb() - before;
    report.ok = true;
    const char* src = reinterpret_cast<const char*>(&report);
    size_t left = sizeof(report);
    while (left > 0) {
      const ssize_t written = write(pipe_fd[1], src, left);
      if (written < 0) {
        if (errno == EINTR) continue;
        break;
      }
      src += written;
      left -= static_cast<size_t>(written);
    }
    close(pipe_fd[1]);
    _exit(0);
  }

  // Parent: collect the whole report, tolerating EINTR and short reads.
  close(pipe_fd[1]);
  char* dst = reinterpret_cast<char*>(&out);
  size_t got = 0;
  while (got < sizeof(out)) {
    const ssize_t r = read(pipe_fd[0], dst + got, sizeof(out) - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) break;  // child died before reporting
    got += static_cast<size_t>(r);
  }
  close(pipe_fd[0]);

  // Reap unconditionally — a failed read must not leak a zombie — and
  // only trust the payload when the child also exited cleanly (a child
  // killed by a signal or exiting nonzero yields ok = false).
  int status = 0;
  pid_t reaped;
  do {
    reaped = waitpid(pid, &status, 0);
  } while (reaped < 0 && errno == EINTR);
  const bool exited_clean =
      reaped == pid && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (got != sizeof(out) || !exited_clean || !out.ok) {
    out = ChildMeasurement{};  // never surface a partially-filled payload
  }
  return out;
}

double MeasureSeconds(const std::function<void()>& body) {
  Timer t;
  body();
  return t.Seconds();
}

}  // namespace rpmis
