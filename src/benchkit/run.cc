#include "benchkit/run.h"

#include <malloc.h>
#include <sys/resource.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/timer.h"

namespace rpmis {

namespace {

// Reads "<key>: <value> kB" from /proc/self/status (or the
// RPMIS_PROC_STATUS_PATH override). nullopt when the file is unreadable
// or the key is missing/unparseable — callers decide whether that is a
// hard error, a logged warning, or an absent record field.
std::optional<uint64_t> TryReadStatusKb(const char* key) {
  const char* path = "/proc/self/status";
  if (const char* env = std::getenv("RPMIS_PROC_STATUS_PATH")) {
    if (env[0] != '\0') path = env;
  }
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) return std::nullopt;
  char line[256];
  std::optional<uint64_t> value;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long parsed = 0;
      if (std::sscanf(line + key_len + 1, " %llu", &parsed) == 1) {
        value = parsed;
      }
      break;
    }
  }
  std::fclose(f);
  return value;
}

// One warning per process, not one per call: the harness polls RSS in
// loops and a hardened container would otherwise flood stderr.
void WarnRssUnavailableOnce() {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "rpmis: /proc/self/status is unreadable or lacks VmHWM/VmRSS; "
                 "RSS figures degrade to 0 (records mark them absent)\n");
  }
}

double TimevalSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
}

// Fills the rusage-derived fields of `report` as deltas from `before`.
void FillRusageDelta(const rusage& before, ChildMeasurement* report) {
  rusage after{};
  getrusage(RUSAGE_SELF, &after);
  report->utime_seconds =
      TimevalSeconds(after.ru_utime) - TimevalSeconds(before.ru_utime);
  report->stime_seconds =
      TimevalSeconds(after.ru_stime) - TimevalSeconds(before.ru_stime);
  report->minor_faults =
      static_cast<uint64_t>(after.ru_minflt - before.ru_minflt);
  report->major_faults =
      static_cast<uint64_t>(after.ru_majflt - before.ru_majflt);
}

}  // namespace

std::optional<uint64_t> TryPeakRssKb() { return TryReadStatusKb("VmHWM"); }
std::optional<uint64_t> TryCurrentRssKb() { return TryReadStatusKb("VmRSS"); }

uint64_t PeakRssKb() {
  const auto v = TryPeakRssKb();
  if (!v.has_value()) WarnRssUnavailableOnce();
  return v.value_or(0);
}

uint64_t CurrentRssKb() {
  const auto v = TryCurrentRssKb();
  if (!v.has_value()) WarnRssUnavailableOnce();
  return v.value_or(0);
}

ChildMeasurement MeasureInChild(const std::function<void(uint64_t[4])>& body) {
  ChildMeasurement out;
  // Return freed arena pages to the kernel first; otherwise the child's
  // allocations reuse already-mapped heap left over from building the
  // input graph and VmHWM never grows (the measurement floors out).
  malloc_trim(0);

  // Degraded path when fork/pipe is unavailable: measure in-process (RSS
  // delta may be polluted by the parent's history). The contract must
  // match the forked path: ok = true only for a run that completed
  // normally, and a failed run (here: body throwing — the analogue of a
  // crashed child) yields a default result, never a partially-filled
  // payload. `body` therefore writes into a local report that is only
  // surfaced on success.
  auto measure_in_process = [&]() -> ChildMeasurement {
    ChildMeasurement report;
    const std::optional<uint64_t> before = TryPeakRssKb();
    rusage ru_before{};
    getrusage(RUSAGE_SELF, &ru_before);
    Timer t;
    try {
      body(report.payload);
    } catch (...) {
      return ChildMeasurement{};
    }
    report.seconds = t.Seconds();
    FillRusageDelta(ru_before, &report);
    const std::optional<uint64_t> after = TryPeakRssKb();
    if (before.has_value() && after.has_value()) {
      report.rss_available = true;
      report.peak_rss_delta_kb = *after - *before;
    } else {
      WarnRssUnavailableOnce();
    }
    report.ok = true;
    return report;
  };

  // Test hook (and escape hatch for fork-hostile environments): force the
  // in-process fallback so its behaviour is exercisable deterministically.
  if (const char* env = std::getenv("RPMIS_MEASURE_IN_PROCESS")) {
    if (env[0] != '\0' && env[0] != '0') return measure_in_process();
  }

  int pipe_fd[2];
  if (pipe(pipe_fd) != 0) return measure_in_process();
  const pid_t pid = fork();
  if (pid < 0) {
    close(pipe_fd[0]);
    close(pipe_fd[1]);
    return measure_in_process();
  }
  if (pid == 0) {
    // Child: run and report the full struct (retrying interrupted or
    // short writes; the report is well under PIPE_BUF, so in practice
    // this is one atomic write).
    close(pipe_fd[0]);
    ChildMeasurement report;
    const std::optional<uint64_t> before = TryPeakRssKb();
    rusage ru_before{};
    getrusage(RUSAGE_SELF, &ru_before);
    Timer t;
    body(report.payload);
    report.seconds = t.Seconds();
    FillRusageDelta(ru_before, &report);
    const std::optional<uint64_t> after = TryPeakRssKb();
    if (before.has_value() && after.has_value()) {
      report.rss_available = true;
      report.peak_rss_delta_kb = *after - *before;
    }
    report.ok = true;
    const char* src = reinterpret_cast<const char*>(&report);
    size_t left = sizeof(report);
    while (left > 0) {
      const ssize_t written = write(pipe_fd[1], src, left);
      if (written < 0) {
        if (errno == EINTR) continue;
        break;
      }
      src += written;
      left -= static_cast<size_t>(written);
    }
    close(pipe_fd[1]);
    _exit(0);
  }

  // Parent: collect the whole report, tolerating EINTR and short reads.
  close(pipe_fd[1]);
  char* dst = reinterpret_cast<char*>(&out);
  size_t got = 0;
  while (got < sizeof(out)) {
    const ssize_t r = read(pipe_fd[0], dst + got, sizeof(out) - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) break;  // child died before reporting
    got += static_cast<size_t>(r);
  }
  close(pipe_fd[0]);

  // Reap unconditionally — a failed read must not leak a zombie — and
  // only trust the payload when the child also exited cleanly (a child
  // killed by a signal or exiting nonzero yields ok = false).
  int status = 0;
  pid_t reaped;
  do {
    reaped = waitpid(pid, &status, 0);
  } while (reaped < 0 && errno == EINTR);
  const bool exited_clean =
      reaped == pid && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (got != sizeof(out) || !exited_clean || !out.ok) {
    out = ChildMeasurement{};  // never surface a partially-filled payload
  }
  if (out.ok && !out.rss_available) WarnRssUnavailableOnce();
  return out;
}

double MeasureSeconds(const std::function<void()>& body) {
  Timer t;
  body();
  return t.Seconds();
}

}  // namespace rpmis
