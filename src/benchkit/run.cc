#include "benchkit/run.h"

#include <malloc.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "support/timer.h"

namespace rpmis {

namespace {

uint64_t ReadStatusKb(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t value = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      std::sscanf(line + key_len, ": %llu", reinterpret_cast<unsigned long long*>(&value));
      break;
    }
  }
  std::fclose(f);
  return value;
}

}  // namespace

uint64_t PeakRssKb() { return ReadStatusKb("VmHWM"); }
uint64_t CurrentRssKb() { return ReadStatusKb("VmRSS"); }

ChildMeasurement MeasureInChild(const std::function<void(uint64_t[4])>& body) {
  ChildMeasurement out;
  // Return freed arena pages to the kernel first; otherwise the child's
  // allocations reuse already-mapped heap left over from building the
  // input graph and VmHWM never grows (the measurement floors out).
  malloc_trim(0);
  int pipe_fd[2];
  if (pipe(pipe_fd) != 0) {
    // Degraded path: measure in-process (RSS delta may be polluted).
    const uint64_t before = PeakRssKb();
    Timer t;
    body(out.payload);
    out.seconds = t.Seconds();
    out.peak_rss_delta_kb = PeakRssKb() - before;
    out.ok = true;
    return out;
  }
  const pid_t pid = fork();
  if (pid == 0) {
    // Child: run and report.
    close(pipe_fd[0]);
    ChildMeasurement report;
    const uint64_t before = PeakRssKb();
    Timer t;
    body(report.payload);
    report.seconds = t.Seconds();
    report.peak_rss_delta_kb = PeakRssKb() - before;
    report.ok = true;
    ssize_t written = write(pipe_fd[1], &report, sizeof(report));
    (void)written;
    close(pipe_fd[1]);
    _exit(0);
  }
  close(pipe_fd[1]);
  if (pid > 0) {
    const ssize_t got = read(pipe_fd[0], &out, sizeof(out));
    if (got != static_cast<ssize_t>(sizeof(out))) out.ok = false;
    int status = 0;
    waitpid(pid, &status, 0);
  }
  close(pipe_fd[0]);
  return out;
}

double MeasureSeconds(const std::function<void()>& body) {
  Timer t;
  body();
  return t.Seconds();
}

}  // namespace rpmis
