// Measurement helpers for the experiment harness.
//
// Memory (the paper uses memusage(1)) is measured by forking: the child
// runs the workload and reports its own peak RSS (VmHWM) delta through a
// pipe, so concurrent measurements never contaminate each other. Up to
// four uint64 payload values can be returned alongside time and memory
// (e.g. solution size, peel count).
#ifndef RPMIS_BENCHKIT_RUN_H_
#define RPMIS_BENCHKIT_RUN_H_

#include <cstdint>
#include <functional>
#include <optional>

namespace rpmis {

/// Current process peak resident set size (VmHWM) in KiB, or nullopt when
/// /proc/self/status is unreadable or has no parseable VmHWM line (e.g. a
/// hardened container). The status path can be overridden with the
/// RPMIS_PROC_STATUS_PATH environment variable (the test hook for the
/// unavailable path; re-read on every call).
std::optional<uint64_t> TryPeakRssKb();

/// Current process resident set size (VmRSS) in KiB; nullopt as above.
std::optional<uint64_t> TryCurrentRssKb();

/// TryPeakRssKb() with a 0 fallback for display-only call sites. The
/// first failing call logs one warning to stderr; run records must use
/// the Try* form and mark the field absent instead of recording 0.
uint64_t PeakRssKb();

/// TryCurrentRssKb() with the same 0-fallback/log-once contract.
uint64_t CurrentRssKb();

struct ChildMeasurement {
  double seconds = 0.0;
  uint64_t peak_rss_delta_kb = 0;  // child VmHWM growth during the run
  /// True when VmHWM was readable in the child; when false,
  /// peak_rss_delta_kb is meaningless (record sinks mark it absent).
  bool rss_available = false;
  /// Child CPU time and paging activity over the run (getrusage deltas;
  /// RUSAGE_SELF in the child, so the parent's history never pollutes it).
  double utime_seconds = 0.0;
  double stime_seconds = 0.0;
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
  uint64_t payload[4] = {0, 0, 0, 0};
  bool ok = false;
};

/// Forks, runs `body` in the child (which may fill `payload`), and
/// returns wall time, peak-RSS growth and rusage (CPU time, page faults)
/// attributable to the run. Falls back to in-process measurement when
/// fork/pipe is unavailable (or when the RPMIS_MEASURE_IN_PROCESS
/// environment variable is set non-zero — the test hook for that path).
/// Both paths share one contract: a failed run — child crash, signal,
/// nonzero exit, or `body` throwing in the fallback — yields ok = false
/// with a zeroed payload (never partial data), and any forked child is
/// reaped in every branch.
ChildMeasurement MeasureInChild(const std::function<void(uint64_t payload[4])>& body);

/// In-process wall-time measurement.
double MeasureSeconds(const std::function<void()>& body);

}  // namespace rpmis

#endif  // RPMIS_BENCHKIT_RUN_H_
