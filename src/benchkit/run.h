// Measurement helpers for the experiment harness.
//
// Memory (the paper uses memusage(1)) is measured by forking: the child
// runs the workload and reports its own peak RSS (VmHWM) delta through a
// pipe, so concurrent measurements never contaminate each other. Up to
// four uint64 payload values can be returned alongside time and memory
// (e.g. solution size, peel count).
#ifndef RPMIS_BENCHKIT_RUN_H_
#define RPMIS_BENCHKIT_RUN_H_

#include <cstdint>
#include <functional>

namespace rpmis {

/// Current process peak resident set size (VmHWM), in KiB.
uint64_t PeakRssKb();

/// Current process resident set size (VmRSS), in KiB.
uint64_t CurrentRssKb();

struct ChildMeasurement {
  double seconds = 0.0;
  uint64_t peak_rss_delta_kb = 0;  // child VmHWM growth during the run
  uint64_t payload[4] = {0, 0, 0, 0};
  bool ok = false;
};

/// Forks, runs `body` in the child (which may fill `payload`), and
/// returns wall time + peak-RSS growth attributable to the run. Falls
/// back to in-process measurement when fork/pipe is unavailable (or when
/// the RPMIS_MEASURE_IN_PROCESS environment variable is set non-zero —
/// the test hook for that path). Both paths share one contract: a failed
/// run — child crash, signal, nonzero exit, or `body` throwing in the
/// fallback — yields ok = false with a zeroed payload (never partial
/// data), and any forked child is reaped in every branch.
ChildMeasurement MeasureInChild(const std::function<void(uint64_t payload[4])>& body);

/// In-process wall-time measurement.
double MeasureSeconds(const std::function<void()>& body);

}  // namespace rpmis

#endif  // RPMIS_BENCHKIT_RUN_H_
