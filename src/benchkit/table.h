// Aligned ASCII table output for the experiment harness, matching the
// row/column layouts of the paper's tables.
#ifndef RPMIS_BENCHKIT_TABLE_H_
#define RPMIS_BENCHKIT_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rpmis {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Prints with column alignment and a header separator.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// 1234567 -> "1,234,567".
std::string FormatCount(uint64_t value);

/// Seconds with adaptive precision ("1.23s", "45ms").
std::string FormatSeconds(double seconds);

/// Kilobytes -> human-readable ("12.3MB").
std::string FormatKb(uint64_t kb);

/// Fixed-precision double.
std::string FormatDouble(double value, int precision);

/// "99.998%"-style accuracy (ratio in [0,1]).
std::string FormatPercent(double ratio, int precision = 3);

}  // namespace rpmis

#endif  // RPMIS_BENCHKIT_TABLE_H_
