#include "benchkit/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/assert.h"

namespace rpmis {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  RPMIS_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      // Left-align the first column (names), right-align numbers.
      if (c == 0) {
        out << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        out << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
    }
    out << " |\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "-|") << std::string(width[c] + 1, '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatCount(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  const size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out += ',';
    out += digits[i];
  }
  return out;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 0.001) {
    std::snprintf(buf, sizeof(buf), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

std::string FormatKb(uint64_t kb) {
  char buf[32];
  if (kb < 1024) {
    std::snprintf(buf, sizeof(buf), "%lluKB", static_cast<unsigned long long>(kb));
  } else if (kb < 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", kb / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGB", kb / (1024.0 * 1024.0));
  }
  return buf;
}

std::string FormatDouble(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatPercent(double ratio, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
  return buf;
}

}  // namespace rpmis
