// Self-describing JSONL run records: one line per measured run, the
// machine-readable twin of every human table the harness prints.
//
// Every record embeds the reproducibility envelope — schema version,
// bench binary, algorithm, dataset, seed, resolved RPMIS_THREADS, build
// flags — plus whatever the run produced: scalar numbers, the metrics
// registry snapshot, progress samples, and the resource probe's figures.
// Consumers parse lines independently (append-friendly, crash-tolerant);
// obs/validate.h checks the envelope, EXPERIMENTS.md documents how the
// convergence figures regenerate from the samples alone.
#ifndef RPMIS_BENCHKIT_RECORD_H_
#define RPMIS_BENCHKIT_RECORD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/resource.h"

namespace rpmis {

struct RunRecord {
  std::string bench;      // producing binary ("bench_fig10", "mis_cli")
  std::string algorithm;  // "nearlinear", "arw-lt", ...
  std::string dataset;    // dataset/instance name; may be empty
  uint64_t seed = 0;
  size_t threads = 1;             // resolved RPMIS_THREADS at run time
  std::vector<std::string> args;  // the binary's argv tail, verbatim

  /// Scalar results (seconds, solution size, speedups...). Names follow
  /// the metrics convention ("time.wall_seconds", "solution.size").
  std::vector<std::pair<std::string, double>> numbers;
  std::vector<std::pair<std::string, std::string>> strings;

  /// Counter/gauge snapshot (obs::MetricsRegistry::Snapshot()).
  std::vector<obs::MetricsRegistry::Entry> metrics;

  /// Progress samples (obs::ProgressSampler::Samples()).
  std::vector<obs::ProgressSample> samples;

  std::optional<obs::ResourceUsage> resource;

  void AddNumber(std::string name, double value) {
    numbers.emplace_back(std::move(name), value);
  }
  void AddString(std::string name, std::string value) {
    strings.emplace_back(std::move(name), std::move(value));
  }
};

/// Prefills the reproducibility envelope: threads from RPMIS_THREADS (via
/// NumThreads()), seed as given. Build flags are compiled in.
RunRecord MakeRunRecord(std::string bench, std::string algorithm,
                        std::string dataset, uint64_t seed);

/// The compiled-in build description embedded in every record
/// (build type, compiler, observability compile state).
const char* BuildFlagsString();

/// Serializes `record` as one JSON object (no trailing newline).
std::string FormatRunRecord(const RunRecord& record);

/// Appends records to a JSONL file. Opens lazily on first Write; a path
/// of "-" streams to stdout. Write failures are sticky and reported via
/// ok().
class RunRecordWriter {
 public:
  explicit RunRecordWriter(std::string path);
  ~RunRecordWriter();

  RunRecordWriter(const RunRecordWriter&) = delete;
  RunRecordWriter& operator=(const RunRecordWriter&) = delete;

  void Write(const RunRecord& record);
  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  void* file_ = nullptr;  // FILE*; void* keeps <cstdio> out of the header
  bool ok_ = true;
};

/// Reads progress samples back from a JSONL record file: the
/// "samples" arrays of every record whose "algorithm" matches (or all
/// records when `algorithm` is empty), in file order. This is the parse
/// half of the convergence-from-JSONL recipe.
std::vector<obs::ProgressSample> ReadProgressSamples(
    const std::string& path, const std::string& algorithm = "");

}  // namespace rpmis

#endif  // RPMIS_BENCHKIT_RECORD_H_
