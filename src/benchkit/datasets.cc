#include "benchkit/datasets.h"

#include <cstdlib>
#include <filesystem>

#include "graph/generators.h"
#include "graph/io.h"
#include "support/assert.h"

namespace rpmis {

namespace {

// Shorthand builders. Seeds are fixed so every bench run sees identical
// graphs.
std::function<Graph()> Cl(Vertex n, double beta, double avg, uint64_t seed) {
  return [=] { return ChungLuPowerLaw(n, beta, avg, seed); };
}
[[maybe_unused]] std::function<Graph()> Rm(uint32_t scale, uint64_t m, uint64_t seed) {
  return [=] { return RMat(scale, m, 0.57, 0.19, 0.19, seed); };
}
// Variants with a planted clustered core (the structure that keeps real
// web/social graphs from kernelizing to nothing; DESIGN.md §4). Easy
// instances get tiny cores the exact solver still cracks; hard instances
// get cores of tens of thousands of vertices.
std::function<Graph()> ClCore(Vertex n, double beta, double avg, Vertex core,
                              uint64_t seed) {
  return [=] { return PowerLawWithCore(n, beta, avg, core, 6.0, seed); };
}
std::function<Graph()> RmCore(uint32_t scale, uint64_t m, Vertex core,
                              uint64_t seed) {
  return [=] { return RMatWithCore(scale, m, core, 6.0, seed); };
}

std::vector<DatasetSpec> MakeAll() {
  std::vector<DatasetSpec> d;
  // ---- easy instances (the 12 rows of Table 3) -------------------------
  d.push_back({"GrQc", false, 5242, 14484, Cl(5242, 2.3, 5.5, 101)});
  d.push_back({"CondMat", false, 23133, 93439, Cl(23133, 2.3, 8.1, 102)});
  d.push_back({"AstroPh", false, 18772, 198050, Cl(18772, 2.0, 21.1, 103)});
  d.push_back({"Email", false, 265214, 364481, Cl(120000, 1.9, 2.8, 104)});
  d.push_back({"Epinions", false, 75879, 405740, Cl(75879, 2.0, 10.7, 105)});
  d.push_back({"dblp", false, 933258, 3353618, Cl(150000, 2.3, 7.2, 106)});
  d.push_back({"wiki-Talk", false, 2394385, 4659565, Cl(200000, 1.9, 3.9, 107)});
  d.push_back({"BerkStan", false, 685230, 6649470, RmCore(16, 640000, 260, 108)});
  d.push_back({"as-Skitter", false, 1696415, 11095398, ClCore(120000, 2.1, 13.1, 220, 109)});
  d.push_back({"in-2004", false, 1382870, 13591473, RmCore(16, 650000, 180, 110)});
  d.push_back({"LiveJ", false, 4847571, 42851237, ClCore(150000, 2.2, 17.7, 150, 111)});
  d.push_back({"hollywood", false, 1985306, 114492816, Cl(60000, 1.9, 40.0, 112)});
  // ---- hard instances (the 8 rows of Table 4) --------------------------
  d.push_back({"cnr-2000", true, 325557, 2738969, RmCore(17, 1100000, 15000, 201)});
  d.push_back({"eu-2005", true, 862664, 16138468, RmCore(17, 2400000, 20000, 202)});
  d.push_back({"soc-pokec", true, 1632803, 22301964, ClCore(200000, 2.0, 27.3, 30000, 203)});
  d.push_back({"indochina", true, 7414768, 150984819, RmCore(18, 5300000, 30000, 204)});
  d.push_back({"uk-2002", true, 18484117, 261787258, RmCore(18, 3700000, 35000, 205)});
  d.push_back({"uk-2005", true, 39454746, 783027125, RmCore(18, 5200000, 40000, 206)});
  d.push_back({"webbase", true, 115657290, 854809761, RmCore(19, 3900000, 45000, 207)});
  d.push_back({"it-2004", true, 41290682, 1027474947, RmCore(18, 6500000, 50000, 208)});
  return d;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec> kAll = MakeAll();
  return kAll;
}

std::vector<DatasetSpec> EasyDatasets() {
  std::vector<DatasetSpec> out;
  for (const auto& d : AllDatasets()) {
    if (!d.hard) out.push_back(d);
  }
  return out;
}

std::vector<DatasetSpec> HardDatasets() {
  std::vector<DatasetSpec> out;
  for (const auto& d : AllDatasets()) {
    if (d.hard) out.push_back(d);
  }
  return out;
}

Graph LoadDataset(const DatasetSpec& spec) {
  const char* dir = std::getenv("RPMIS_DATASET_CACHE");
  if (dir == nullptr || *dir == '\0') return spec.make();

  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string cache = std::string(dir) + "/" + spec.name + ".rpmi";
  if (fs::exists(cache, ec)) {
    try {
      return ReadBinaryFile(cache);
    } catch (const std::exception&) {
      // Corrupt or stale-format cache entry: regenerate it below.
    }
  }

  Graph g = spec.make();
  // Write-to-temp + rename so concurrent bench processes never read a
  // half-written cache; any failure just means no cache this run.
  const std::string tmp = cache + ".tmp";
  try {
    WriteBinaryFile(g, tmp);
    fs::rename(tmp, cache, ec);
    if (ec) fs::remove(tmp, ec);
  } catch (const std::exception&) {
    fs::remove(tmp, ec);
  }
  return g;
}

const DatasetSpec& DatasetByName(const std::string& name) {
  for (const auto& d : AllDatasets()) {
    if (d.name == name) return d;
  }
  RPMIS_ASSERT_MSG(false, "unknown dataset");
  __builtin_unreachable();
}

}  // namespace rpmis
