// The update vocabulary of the dynamic-maintenance subsystem, plus the
// text stream format and a valid-by-construction random stream generator.
//
// A stream is a sequence of graph mutations applied in order:
//
//   ae U V        insert the undirected edge (U, V)
//   de U V        delete the edge (U, V)
//   av [N1 N2..]  insert a new vertex adjacent to the listed existing
//                 vertices; it receives the next unused id (the engine's
//                 NumVertices() at application time)
//   dv U          delete vertex U and all incident edges
//
// Lines starting with '#' (and blank lines) are comments. Vertex ids are
// decimal; `av` assigns ids implicitly so a stream composes with any
// starting graph of known size. mis_cli --updates=FILE consumes this
// format; WriteUpdateStream emits it.
#ifndef RPMIS_DYNAMIC_UPDATE_H_
#define RPMIS_DYNAMIC_UPDATE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace rpmis {

enum class UpdateKind : uint8_t {
  kInsertEdge,
  kDeleteEdge,
  kInsertVertex,
  kDeleteVertex,
};

struct GraphUpdate {
  UpdateKind kind = UpdateKind::kInsertEdge;
  Vertex u = kInvalidVertex;           // first endpoint / deleted vertex
  Vertex v = kInvalidVertex;           // second endpoint (edge updates)
  std::vector<Vertex> neighbors;       // kInsertVertex only

  static GraphUpdate InsertEdge(Vertex a, Vertex b) {
    return {UpdateKind::kInsertEdge, a, b, {}};
  }
  static GraphUpdate DeleteEdge(Vertex a, Vertex b) {
    return {UpdateKind::kDeleteEdge, a, b, {}};
  }
  static GraphUpdate InsertVertex(std::vector<Vertex> nbs) {
    return {UpdateKind::kInsertVertex, kInvalidVertex, kInvalidVertex,
            std::move(nbs)};
  }
  static GraphUpdate DeleteVertex(Vertex a) {
    return {UpdateKind::kDeleteVertex, a, kInvalidVertex, {}};
  }
};

/// Parses an update stream; throws std::runtime_error (with a line
/// number) on malformed input. Ids are validated at application time, not
/// here — a stream is not tied to one graph.
std::vector<GraphUpdate> ParseUpdateStream(std::istream& in);

/// ParseUpdateStream over a file; throws std::runtime_error if the file
/// cannot be read.
std::vector<GraphUpdate> LoadUpdateStream(const std::string& path);

/// One update in the stream syntax (no trailing newline).
std::string FormatUpdate(const GraphUpdate& update);

void WriteUpdateStream(std::ostream& out,
                       const std::vector<GraphUpdate>& updates);

/// Knobs for RandomUpdateStream. Weights are relative; an operation whose
/// precondition cannot be met (no deletable edge left, say) falls through
/// to another kind, so the realized mix can differ on tiny graphs.
struct StreamOptions {
  double insert_edge_weight = 1.0;
  double delete_edge_weight = 1.0;
  double insert_vertex_weight = 0.3;
  double delete_vertex_weight = 0.3;
  uint32_t max_new_vertex_degree = 5;
};

/// Generates `count` random updates that are valid-by-construction when
/// applied in order to `g`: inserted edges are absent at insertion time,
/// deleted edges/vertices exist, and new-vertex neighbours are alive.
/// Deterministic in `seed`.
std::vector<GraphUpdate> RandomUpdateStream(const Graph& g, size_t count,
                                            uint64_t seed,
                                            const StreamOptions& options = {});

}  // namespace rpmis

#endif  // RPMIS_DYNAMIC_UPDATE_H_
