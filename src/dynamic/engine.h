// Dynamic-update engine: maintains a near-maximum independent set under
// edge/vertex insertions and deletions (ISSUE 5 tentpole; DESIGN.md §9).
//
// The engine wraps a LinearTime solve of the starting graph and keeps its
// solution repaired instead of re-solving from scratch per update. The
// solve's reduction provenance is kept in two projections:
//
//   * a vertex-granular view of the dependency DAG: for every vertex the
//     count of selected (IN) neighbours, `in_count`. A vertex is OUT
//     exactly because of its IN neighbours; removing one of those
//     decrements the count, and a count hitting zero means every reason
//     for the exclusion is gone — the vertex becomes *free* and joins the
//     repair frontier. The cone of an update is precisely the set of
//     vertices whose exclusion reasons it invalidated.
//   * a per-vertex peeled/exact flag from the ReductionTrace, steering
//     which endpoint is evicted when an inserted edge lands inside the
//     set (prefer undoing a peel decision over an exact reduction).
//
// Repair re-runs the reducing-peeling worklist locally on the free cone
// (degree-zero/one includes, degree-two isolation, then min-free-degree
// greedy). Repair only ever *includes* vertices, so the cone shrinks
// monotonically and the work per update is O(cone · deg). When a cone
// exceeds the policy budget the engine falls back to a scoped re-solve of
// the touched connected component; a maintained upper bound U on α(G_t)
// (Theorem 6.1 at the last full solve, +1 per α-increasing update) gates
// quality drift and forces a full re-solve when the set falls too far
// behind U.
#ifndef RPMIS_DYNAMIC_ENGINE_H_
#define RPMIS_DYNAMIC_ENGINE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dynamic/update.h"
#include "graph/adjacency_graph.h"
#include "graph/graph.h"
#include "obs/histogram.h"
#include "support/fast_set.h"

namespace rpmis::obs {
class MetricsRegistry;
}  // namespace rpmis::obs

namespace rpmis {

/// Repair/fallback thresholds. The cone budget is geometric in the alive
/// vertex count (like CompactionPolicy): local repair handles cones up to
/// max(min_cone, cone_fraction * n_alive), larger cones re-solve the
/// touched component. The quality gate forces a full re-solve when
/// (U - size) exceeds the gap at the last full solve by more than
/// max(min_slack, max_gap * U).
struct DynamicPolicy {
  uint32_t min_cone = 512;
  double cone_fraction = 0.02;
  double max_gap = 0.005;
  uint32_t min_slack = 4;
  /// Solve full re-solves with RunLinearTimePerComponent(parallel). The
  /// maintained set is identical either way; provenance becomes coarse
  /// (no peel flags), slightly changing later eviction tie-breaks.
  bool parallel_resolve = false;
  /// Track per-vertex peeled/exact provenance from reduction traces.
  bool record_provenance = true;
};

/// Aggregate counters over the engine's lifetime.
struct DynamicStats {
  uint64_t insert_edges = 0;
  uint64_t delete_edges = 0;
  uint64_t insert_vertices = 0;
  uint64_t delete_vertices = 0;
  uint64_t noops = 0;  // duplicate inserts, deletes of absent edges/vertices

  uint64_t cone_vertices = 0;  // total frontier vertices across updates
  uint64_t max_cone = 0;
  uint64_t included_by_reduction = 0;  // repair includes via exact local rules
  uint64_t included_greedy = 0;        // repair includes via min-degree greedy
  uint64_t evictions = 0;              // set members evicted by edge inserts

  uint64_t component_fallbacks = 0;
  uint64_t full_resolves = 0;  // quality-gate + ForceResolve re-solves

  obs::LatencyHistogram latency;  // per-update apply latency
};

/// What one Apply did.
struct UpdateOutcome {
  uint32_t cone = 0;        // free vertices the update invalidated
  int64_t size_delta = 0;   // change of the maintained set size
  bool component_fallback = false;
  bool full_resolve = false;
};

/// See the file comment. Vertex ids are stable for the engine's lifetime:
/// the universe only grows (InsertVertex appends, DeleteVertex leaves a
/// dead id behind) and dead ids can come back through InsertEdge/
/// InsertVertex endpoints, which revive them.
class DynamicMisEngine {
 public:
  /// Solves `g` with (serial) LinearTime and adopts the solution. O(m).
  explicit DynamicMisEngine(const Graph& g, const DynamicPolicy& policy = {});

  /// Applies one update and repairs the set. Throws std::out_of_range for
  /// ids outside the current universe and std::invalid_argument for
  /// self-loops; inserting a present edge, deleting an absent edge, or
  /// deleting a dead vertex is a counted no-op.
  UpdateOutcome Apply(const GraphUpdate& update);

  /// Applies a stream in order (one obs trace span around the batch).
  void ApplyUpdates(std::span<const GraphUpdate> updates);

  /// Discards the maintained solution and re-solves the current graph
  /// from scratch, re-tightening the quality gate.
  void ForceResolve();

  Vertex NumVertices() const { return adj_.NumVertices(); }
  Vertex NumAliveVertices() const { return adj_.NumAliveVertices(); }
  uint64_t NumAliveEdges() const { return adj_.NumAliveEdges(); }
  bool Exists(Vertex v) const { return v < NumVertices() && adj_.IsAlive(v); }

  bool InSet(Vertex v) const { return in_set_[v] != 0; }
  const std::vector<uint8_t>& Selector() const { return in_set_; }
  uint64_t Size() const { return size_; }

  /// Maintained upper bound on α of the current graph (alive part).
  uint64_t UpperBound() const { return upper_; }

  /// CSR snapshot of the current graph over the full universe [0, n);
  /// dead vertices appear isolated.
  Graph CurrentGraph() const;

  /// Full O(n + m) audit of every engine invariant (membership implies
  /// alive, in_count correctness, independence, maximality, size/upper
  /// consistency). Returns false and describes the first violation.
  bool CheckInvariants(std::string* why = nullptr) const;

  const DynamicStats& stats() const { return stats_; }

  /// Writes the dynamic.* counters and the update-latency histogram into
  /// `metrics` (dotted-name convention, see obs/metrics.h).
  void PublishMetrics(obs::MetricsRegistry& metrics) const;

 private:
  void ApplyInsertEdge(Vertex u, Vertex v, UpdateOutcome& out);
  void ApplyDeleteEdge(Vertex u, Vertex v, UpdateOutcome& out);
  void ApplyInsertVertex(std::span<const Vertex> neighbors, UpdateOutcome& out);
  void ApplyDeleteVertex(Vertex v, UpdateOutcome& out);

  // Picks which endpoint of a newly-inserted in-set edge to evict:
  // peel-provenance first, then higher degree, then higher id.
  Vertex ChooseEviction(Vertex u, Vertex v) const;

  // in_set_[v] := 1 plus in_count bookkeeping. v must be alive, free.
  void Include(Vertex v);
  // in_set_[v] := 0; neighbours whose in_count hits zero join frontier_.
  void Evict(Vertex v);

  bool IsFree(Vertex v) const {
    return adj_.IsAlive(v) && in_set_[v] == 0 && in_count_[v] == 0;
  }

  // Drains frontier_: local reducing-peeling when the cone fits the
  // budget, component re-solve otherwise, then the quality gate.
  void Repair(UpdateOutcome& out);
  void RepairLocally(std::vector<Vertex>& free);
  void ResolveComponent(std::span<const Vertex> seeds);

  // Re-solve of the current graph; adopts solution, provenance, U.
  void Resolve();

  void GrowUniverse();  // sizes per-vertex arrays to adj_.NumVertices()
  void RebuildInCounts();

  DynamicPolicy policy_;
  AdjacencyGraph adj_;

  std::vector<uint8_t> in_set_;
  std::vector<uint32_t> in_count_;  // selected-neighbour counts
  std::vector<uint8_t> peeled_;     // provenance: decided by a peel
  uint64_t size_ = 0;

  uint64_t upper_ = 0;     // maintained bound: α(alive graph) <= upper_
  uint64_t base_gap_ = 0;  // upper_ - size_ right after the last Resolve

  std::vector<Vertex> frontier_;  // free vertices awaiting repair
  FastSet seen_;                  // frontier dedup / BFS marks
  std::vector<Vertex> sub_id_;    // universe -> component-local id

  DynamicStats stats_;
};

}  // namespace rpmis

#endif  // RPMIS_DYNAMIC_ENGINE_H_
