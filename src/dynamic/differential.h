// Differential testing harness for the dynamic-update engine.
//
// Replays an update stream through a DynamicMisEngine and, in lockstep,
// through an independent mirror graph (hash-set adjacency — sharing no
// code with AdjacencyGraph). At every checked step it
//
//   1. audits the engine's internal invariants,
//   2. cross-checks the engine's graph snapshot against the mirror,
//   3. verifies the maintained set is independent and maximal on the
//      mirror's alive-induced subgraph (mis/verify.h), and
//   4. solves that subgraph from scratch with LinearTime and checks the
//      maintained size stays within `min_ratio` of the scratch size.
//
// This is the acceptance harness of ISSUE 5: over random 1k-update
// streams the maintained set must be a valid MIS within 1% of
// from-scratch at every step. tests/dynamic_differential_test.cc drives
// it; scripts/check_dynamic.sh re-runs it at RPMIS_THREADS=8.
#ifndef RPMIS_DYNAMIC_DIFFERENTIAL_H_
#define RPMIS_DYNAMIC_DIFFERENTIAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dynamic/engine.h"
#include "dynamic/update.h"
#include "graph/graph.h"

namespace rpmis {

struct DifferentialOptions {
  /// Run the (expensive) checks every k-th update; the final state is
  /// always checked.
  uint32_t check_every = 1;
  /// Minimum engine_size / scratch_size at every checked step.
  double min_ratio = 0.99;
  /// Absolute slack on the ratio check: a step only counts as a ratio
  /// failure when scratch - engine > abs_slack AND the ratio is below
  /// min_ratio. On tiny graphs a single-vertex difference (often a pure
  /// tie-break artifact between the full-universe and renumbered solves)
  /// dwarfs any percentage bound; acceptance streams keep this at 0.
  uint64_t abs_slack = 0;
  /// Cross-check the engine's CurrentGraph() edges against the mirror.
  bool check_graph = true;
  DynamicPolicy policy;
};

struct DifferentialReport {
  uint64_t updates_applied = 0;
  uint64_t steps_checked = 0;
  uint64_t invariant_failures = 0;
  uint64_t graph_mismatches = 0;
  uint64_t validity_failures = 0;  // not independent or not maximal
  uint64_t ratio_failures = 0;
  double worst_ratio = 1.0;
  /// First failure in human terms (empty when ok()).
  std::string first_failure;

  bool ok() const {
    return invariant_failures == 0 && graph_mismatches == 0 &&
           validity_failures == 0 && ratio_failures == 0;
  }
  std::string Summary() const;
};

/// Replays `updates` on `g0` and cross-checks as described above.
DifferentialReport RunDifferentialStream(const Graph& g0,
                                         std::span<const GraphUpdate> updates,
                                         const DifferentialOptions& options = {});

}  // namespace rpmis

#endif  // RPMIS_DYNAMIC_DIFFERENTIAL_H_
