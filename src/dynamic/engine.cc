#include "dynamic/engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "mis/linear_time.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "support/timer.h"

namespace rpmis {

namespace {

[[noreturn]] void ThrowBadVertex(Vertex v, Vertex n) {
  throw std::out_of_range("dynamic update names vertex " + std::to_string(v) +
                          " outside the universe [0, " + std::to_string(n) +
                          ")");
}

}  // namespace

DynamicMisEngine::DynamicMisEngine(const Graph& g, const DynamicPolicy& policy)
    : policy_(policy), adj_(g) {
  ReductionTrace trace;
  LinearTimeOptions opt;
  if (policy_.record_provenance) opt.trace = &trace;
  const MisSolution sol = RunLinearTime(g, nullptr, opt);

  in_set_ = sol.in_set;
  size_ = sol.size;
  upper_ = sol.UpperBound();
  base_gap_ = sol.residual_peeled;
  peeled_ = policy_.record_provenance ? trace.PeeledMask(g.NumVertices())
                                      : std::vector<uint8_t>(g.NumVertices(), 0);
  in_count_.assign(g.NumVertices(), 0);
  seen_.Resize(g.NumVertices());
  sub_id_.assign(g.NumVertices(), kInvalidVertex);
  RebuildInCounts();
}

UpdateOutcome DynamicMisEngine::Apply(const GraphUpdate& update) {
  Timer timer;
  UpdateOutcome out;
  const int64_t size_before = static_cast<int64_t>(size_);
  switch (update.kind) {
    case UpdateKind::kInsertEdge:
      ApplyInsertEdge(update.u, update.v, out);
      break;
    case UpdateKind::kDeleteEdge:
      ApplyDeleteEdge(update.u, update.v, out);
      break;
    case UpdateKind::kInsertVertex:
      ApplyInsertVertex(update.neighbors, out);
      break;
    case UpdateKind::kDeleteVertex:
      ApplyDeleteVertex(update.u, out);
      break;
  }
  Repair(out);
  out.size_delta = static_cast<int64_t>(size_) - size_before;
  stats_.latency.Record(timer.Seconds());
  return out;
}

void DynamicMisEngine::ApplyUpdates(std::span<const GraphUpdate> updates) {
  obs::TraceSpan span(obs::Trace(), "dynamic.apply_updates");
  for (const GraphUpdate& u : updates) Apply(u);
}

void DynamicMisEngine::ApplyInsertEdge(Vertex u, Vertex v, UpdateOutcome& out) {
  const Vertex n = NumVertices();
  if (u >= n) ThrowBadVertex(u, n);
  if (v >= n) ThrowBadVertex(v, n);
  if (u == v) {
    throw std::invalid_argument("dynamic InsertEdge: self-loop at vertex " +
                                std::to_string(u));
  }
  ++stats_.insert_edges;
  const bool u_was_dead = !adj_.IsAlive(u);
  const bool v_was_dead = !adj_.IsAlive(v);
  if (!adj_.InsertEdge(u, v)) {  // revives dead endpoints either way
    ++stats_.noops;
    return;
  }
  if (in_set_[u]) ++in_count_[v];
  if (in_set_[v]) ++in_count_[u];
  if (in_set_[u] && in_set_[v]) {
    const Vertex evictee = ChooseEviction(u, v);
    ++stats_.evictions;
    Evict(evictee);
  }
  // A revived endpoint re-enters as an isolated-plus-one-edge vertex with
  // no exclusion reasons unless the new edge supplies one.
  if (u_was_dead && IsFree(u)) frontier_.push_back(u);
  if (v_was_dead && IsFree(v)) frontier_.push_back(v);
  (void)out;
}

void DynamicMisEngine::ApplyDeleteEdge(Vertex u, Vertex v, UpdateOutcome& out) {
  const Vertex n = NumVertices();
  if (u >= n) ThrowBadVertex(u, n);
  if (v >= n) ThrowBadVertex(v, n);
  ++stats_.delete_edges;
  if (u == v || !adj_.RemoveEdge(u, v)) {
    ++stats_.noops;
    return;
  }
  // Removing an edge can raise α by at most one.
  ++upper_;
  if (in_set_[u]) {
    if (--in_count_[v] == 0) frontier_.push_back(v);
  }
  if (in_set_[v]) {
    if (--in_count_[u] == 0) frontier_.push_back(u);
  }
  (void)out;
}

void DynamicMisEngine::ApplyInsertVertex(std::span<const Vertex> neighbors,
                                         UpdateOutcome& out) {
  const Vertex n = NumVertices();
  for (Vertex w : neighbors) {
    if (w >= n) ThrowBadVertex(w, n);
  }
  ++stats_.insert_vertices;
  const Vertex id = adj_.AddVertex();
  GrowUniverse();
  for (Vertex w : neighbors) {
    const bool w_was_dead = !adj_.IsAlive(w);
    if (!adj_.InsertEdge(id, w)) continue;  // duplicate neighbour entry
    if (in_set_[w]) ++in_count_[id];
    if (w_was_dead && IsFree(w)) frontier_.push_back(w);
  }
  ++upper_;  // one more vertex can raise α by at most one
  if (IsFree(id)) frontier_.push_back(id);
  (void)out;
}

void DynamicMisEngine::ApplyDeleteVertex(Vertex v, UpdateOutcome& out) {
  const Vertex n = NumVertices();
  if (v >= n) ThrowBadVertex(v, n);
  ++stats_.delete_vertices;
  if (!adj_.IsAlive(v)) {
    ++stats_.noops;
    return;
  }
  // Deleting a set member frees the neighbours it was blocking (not
  // counted as an eviction — that counter is for insert-edge conflicts).
  if (in_set_[v]) Evict(v);
  adj_.RemoveVertex(v, nullptr);
  in_count_[v] = 0;  // dead vertices keep no exclusion state
  // α(G - v) <= α(G): upper_ stays valid.
  (void)out;
}

Vertex DynamicMisEngine::ChooseEviction(Vertex u, Vertex v) const {
  if (peeled_[u] != peeled_[v]) return peeled_[u] ? u : v;
  const uint32_t du = adj_.Degree(u);
  const uint32_t dv = adj_.Degree(v);
  if (du != dv) return du > dv ? u : v;
  return u > v ? u : v;
}

void DynamicMisEngine::Include(Vertex v) {
  RPMIS_DASSERT(IsFree(v));
  in_set_[v] = 1;
  ++size_;
  adj_.ForEachNeighbor(v, [&](Vertex w) { ++in_count_[w]; });
}

void DynamicMisEngine::Evict(Vertex v) {
  RPMIS_DASSERT(in_set_[v] != 0);
  in_set_[v] = 0;
  --size_;
  adj_.ForEachNeighbor(v, [&](Vertex w) {
    if (--in_count_[w] == 0 && in_set_[w] == 0) frontier_.push_back(w);
  });
}

void DynamicMisEngine::Repair(UpdateOutcome& out) {
  if (frontier_.empty()) {
    // Still check the drift gate: evictions shrink the set with an empty
    // cone when the evictee's neighbours all have other IN neighbours.
    const uint64_t slack = std::max<uint64_t>(
        policy_.min_slack,
        static_cast<uint64_t>(policy_.max_gap * static_cast<double>(upper_)));
    if (upper_ - size_ > base_gap_ + slack) {
      Resolve();
      out.full_resolve = true;
      ++stats_.full_resolves;
    }
    return;
  }

  // Dedup the frontier and drop entries repaired or re-blocked since they
  // were queued.
  std::vector<Vertex> free;
  seen_.Clear();
  for (Vertex v : frontier_) {
    if (!seen_.Contains(v) && IsFree(v)) {
      seen_.Insert(v);
      free.push_back(v);
    }
  }
  frontier_.clear();

  out.cone = static_cast<uint32_t>(free.size());
  stats_.cone_vertices += free.size();
  stats_.max_cone = std::max<uint64_t>(stats_.max_cone, free.size());

  if (!free.empty()) {
    const uint64_t budget = std::max<uint64_t>(
        policy_.min_cone,
        static_cast<uint64_t>(policy_.cone_fraction *
                              static_cast<double>(adj_.NumAliveVertices())));
    if (free.size() > budget) {
      if (auto* t = obs::Trace()) t->Instant("dynamic.component_fallback");
      ResolveComponent(free);
      out.component_fallback = true;
      ++stats_.component_fallbacks;
    } else {
      RepairLocally(free);
    }
  }

  const uint64_t slack = std::max<uint64_t>(
      policy_.min_slack,
      static_cast<uint64_t>(policy_.max_gap * static_cast<double>(upper_)));
  if (upper_ - size_ > base_gap_ + slack) {
    Resolve();
    out.full_resolve = true;
    ++stats_.full_resolves;
  }
}

void DynamicMisEngine::RepairLocally(std::vector<Vertex>& free) {
  // Local reducing-peeling over the free cone. Only free vertices are
  // undecided; including one blocks its free neighbours, so the cone only
  // shrinks and free-degrees only decrease. Exact local rules first
  // (degree zero/one and the degree-two isolation case of Lemma 4.1),
  // min-free-degree greedy when no exact rule applies.
  const auto free_degree = [&](Vertex v) {
    uint32_t fd = 0;
    adj_.ForEachNeighbor(v, [&](Vertex w) { fd += IsFree(w) ? 1 : 0; });
    return fd;
  };

  while (true) {
    bool progress = false;
    size_t kept = 0;
    for (size_t i = 0; i < free.size(); ++i) {
      const Vertex v = free[i];
      if (!IsFree(v)) continue;  // blocked by an earlier include
      const uint32_t fd = free_degree(v);
      bool include = fd <= 1;
      if (!include && fd == 2) {
        // Isolation: v's two free neighbours are adjacent (triangle), so
        // taking v is never worse than taking either of them.
        Vertex a = kInvalidVertex, b = kInvalidVertex;
        adj_.ForEachNeighbor(v, [&](Vertex w) {
          if (!IsFree(w)) return;
          (a == kInvalidVertex ? a : b) = w;
        });
        include = adj_.HasEdge(a, b);
      }
      if (include) {
        Include(v);
        ++stats_.included_by_reduction;
        progress = true;
      } else {
        free[kept++] = v;
      }
    }
    free.resize(kept);
    if (free.empty()) return;
    if (progress) continue;

    // No exact rule fired anywhere: greedily include the min-free-degree
    // vertex (lowest id on ties — deterministic).
    Vertex best = free[0];
    uint32_t best_fd = free_degree(best);
    for (size_t i = 1; i < free.size(); ++i) {
      const uint32_t fd = free_degree(free[i]);
      if (fd < best_fd || (fd == best_fd && free[i] < best)) {
        best = free[i];
        best_fd = fd;
      }
    }
    Include(best);
    ++stats_.included_greedy;
  }
}

void DynamicMisEngine::ResolveComponent(std::span<const Vertex> seeds) {
  obs::TraceSpan span(obs::Trace(), "dynamic.resolve_component");
  // Closure of the seeds' connected components; no edge leaves the
  // collected set, so membership changes inside it cannot unbalance
  // in_counts outside it.
  seen_.Clear();
  std::vector<Vertex> comp;
  for (Vertex s : seeds) {
    if (seen_.Contains(s)) continue;
    seen_.Insert(s);
    comp.push_back(s);
  }
  for (size_t head = 0; head < comp.size(); ++head) {
    adj_.ForEachNeighbor(comp[head], [&](Vertex w) {
      if (!seen_.Contains(w)) {
        seen_.Insert(w);
        comp.push_back(w);
      }
    });
  }

  for (size_t i = 0; i < comp.size(); ++i) {
    sub_id_[comp[i]] = static_cast<Vertex>(i);
  }
  std::vector<Edge> edges;
  for (Vertex v : comp) {
    adj_.ForEachNeighbor(v, [&](Vertex w) {
      if (v < w) edges.emplace_back(sub_id_[v], sub_id_[w]);
    });
  }
  const Graph sub =
      Graph::FromEdges(static_cast<Vertex>(comp.size()), edges);

  ReductionTrace trace;
  LinearTimeOptions opt;
  if (policy_.record_provenance) opt.trace = &trace;
  const MisSolution sol = RunLinearTime(sub, nullptr, opt);

  const std::vector<uint8_t> sub_peeled =
      policy_.record_provenance ? trace.PeeledMask(sub.NumVertices())
                                : std::vector<uint8_t>(sub.NumVertices(), 0);
  for (Vertex v : comp) {
    const Vertex s = sub_id_[v];
    if (in_set_[v]) --size_;
    in_set_[v] = sol.in_set[s];
    if (in_set_[v]) ++size_;
    peeled_[v] = sub_peeled[s];
  }
  for (Vertex v : comp) {
    uint32_t count = 0;
    adj_.ForEachNeighbor(v, [&](Vertex w) { count += in_set_[w] ? 1 : 0; });
    in_count_[v] = count;
  }
  for (Vertex v : comp) sub_id_[v] = kInvalidVertex;
}

void DynamicMisEngine::ForceResolve() {
  Resolve();
  ++stats_.full_resolves;
}

void DynamicMisEngine::Resolve() {
  obs::TraceSpan span(obs::Trace(), "dynamic.full_resolve");
  const Graph g = CurrentGraph();

  MisSolution sol;
  std::vector<uint8_t> peeled;
  if (policy_.parallel_resolve) {
    // Parallel component solves cannot share one trace; provenance goes
    // coarse (everything "exact"), which only shifts eviction tie-breaks.
    sol = RunLinearTimePerComponent(g, {.parallel = true});
    peeled.assign(g.NumVertices(), 0);
  } else {
    ReductionTrace trace;
    LinearTimeOptions opt;
    if (policy_.record_provenance) opt.trace = &trace;
    sol = RunLinearTime(g, nullptr, opt);
    peeled = policy_.record_provenance
                 ? trace.PeeledMask(g.NumVertices())
                 : std::vector<uint8_t>(g.NumVertices(), 0);
  }

  // Dead ids appear isolated in the snapshot, so the solver includes each
  // of them (degree-zero rule) and they inflate both size and the bound
  // by exactly the dead count. Mask them back out.
  uint64_t dead = 0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    if (!adj_.IsAlive(v)) {
      sol.in_set[v] = 0;
      ++dead;
    }
  }
  in_set_ = std::move(sol.in_set);
  peeled_ = std::move(peeled);
  size_ = sol.size - dead;
  upper_ = sol.size + sol.residual_peeled - dead;
  base_gap_ = upper_ - size_;
  frontier_.clear();
  RebuildInCounts();
}

Graph DynamicMisEngine::CurrentGraph() const {
  return Graph::FromEdges(NumVertices(), adj_.CollectAliveEdges());
}

void DynamicMisEngine::GrowUniverse() {
  const Vertex n = adj_.NumVertices();
  if (in_set_.size() >= n) return;
  in_set_.resize(n, 0);
  in_count_.resize(n, 0);
  peeled_.resize(n, 0);
  seen_.EnsureUniverse(n);
  sub_id_.resize(n, kInvalidVertex);
}

void DynamicMisEngine::RebuildInCounts() {
  std::fill(in_count_.begin(), in_count_.end(), 0);
  for (Vertex v = 0; v < NumVertices(); ++v) {
    if (!in_set_[v]) continue;
    adj_.ForEachNeighbor(v, [&](Vertex w) { ++in_count_[w]; });
  }
}

bool DynamicMisEngine::CheckInvariants(std::string* why) const {
  const auto fail = [&](const std::string& what) {
    if (why != nullptr) *why = what;
    return false;
  };
  const Vertex n = NumVertices();
  if (in_set_.size() != n || in_count_.size() != n || peeled_.size() != n) {
    return fail("per-vertex array sizes disagree with the universe");
  }
  uint64_t counted = 0;
  for (Vertex v = 0; v < n; ++v) {
    const bool alive = adj_.IsAlive(v);
    if (in_set_[v]) {
      ++counted;
      if (!alive) {
        return fail("dead vertex " + std::to_string(v) + " is in the set");
      }
    }
    uint32_t expect = 0;
    bool conflict = false;
    adj_.ForEachNeighbor(v, [&](Vertex w) {
      expect += in_set_[w] ? 1 : 0;
      conflict |= (in_set_[v] && in_set_[w]);
    });
    if (conflict) {
      return fail("vertex " + std::to_string(v) +
                  " and a neighbour are both selected");
    }
    if (in_count_[v] != expect) {
      return fail("in_count[" + std::to_string(v) + "] is " +
                  std::to_string(in_count_[v]) + ", expected " +
                  std::to_string(expect));
    }
    if (alive && !in_set_[v] && expect == 0) {
      return fail("vertex " + std::to_string(v) +
                  " is free (not maximal) outside a repair");
    }
  }
  if (counted != size_) {
    return fail("size_ is " + std::to_string(size_) + " but " +
                std::to_string(counted) + " vertices are selected");
  }
  if (upper_ < size_) {
    return fail("maintained upper bound " + std::to_string(upper_) +
                " is below the set size " + std::to_string(size_));
  }
  return true;
}

void DynamicMisEngine::PublishMetrics(obs::MetricsRegistry& metrics) const {
  metrics.Add("dynamic.updates.insert_edge", stats_.insert_edges);
  metrics.Add("dynamic.updates.delete_edge", stats_.delete_edges);
  metrics.Add("dynamic.updates.insert_vertex", stats_.insert_vertices);
  metrics.Add("dynamic.updates.delete_vertex", stats_.delete_vertices);
  metrics.Add("dynamic.updates.noop", stats_.noops);
  metrics.Add("dynamic.cone.vertices", stats_.cone_vertices);
  metrics.Add("dynamic.cone.max", stats_.max_cone);
  metrics.Add("dynamic.repair.included_by_reduction",
              stats_.included_by_reduction);
  metrics.Add("dynamic.repair.included_greedy", stats_.included_greedy);
  metrics.Add("dynamic.repair.evictions", stats_.evictions);
  metrics.Add("dynamic.fallback.component", stats_.component_fallbacks);
  metrics.Add("dynamic.fallback.full_resolve", stats_.full_resolves);
  metrics.Set("dynamic.set.size", static_cast<double>(size_));
  metrics.Set("dynamic.set.upper_bound", static_cast<double>(upper_));
  stats_.latency.PublishTo(metrics, "dynamic.update_latency");
}

}  // namespace rpmis
