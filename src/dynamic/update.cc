#include "dynamic/update.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "support/random.h"

namespace rpmis {

namespace {

[[noreturn]] void Fail(size_t line, const std::string& what) {
  throw std::runtime_error("update stream line " + std::to_string(line) + ": " +
                           what);
}

Vertex ParseVertex(const std::string& token, size_t line) {
  if (token.empty() || token.find_first_not_of("0123456789") != std::string::npos) {
    Fail(line, "expected a vertex id, got '" + token + "'");
  }
  unsigned long long value = 0;
  try {
    value = std::stoull(token);
  } catch (const std::exception&) {
    Fail(line, "vertex id out of range: '" + token + "'");
  }
  if (value >= kInvalidVertex) {
    Fail(line, "vertex id out of range: '" + token + "'");
  }
  return static_cast<Vertex>(value);
}

uint64_t EdgeKey(Vertex a, Vertex b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

std::vector<GraphUpdate> ParseUpdateStream(std::istream& in) {
  std::vector<GraphUpdate> updates;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string op;
    if (!(tokens >> op) || op[0] == '#') continue;
    std::string a, b, extra;
    if (op == "ae" || op == "de") {
      if (!(tokens >> a >> b)) Fail(line_no, op + " needs two vertex ids");
      if (tokens >> extra) Fail(line_no, "trailing tokens after " + op);
      const Vertex u = ParseVertex(a, line_no);
      const Vertex v = ParseVertex(b, line_no);
      if (u == v) Fail(line_no, "self-loop (" + a + ", " + b + ")");
      updates.push_back(op == "ae" ? GraphUpdate::InsertEdge(u, v)
                                   : GraphUpdate::DeleteEdge(u, v));
    } else if (op == "av") {
      std::vector<Vertex> nbs;
      while (tokens >> a) nbs.push_back(ParseVertex(a, line_no));
      updates.push_back(GraphUpdate::InsertVertex(std::move(nbs)));
    } else if (op == "dv") {
      if (!(tokens >> a)) Fail(line_no, "dv needs a vertex id");
      if (tokens >> extra) Fail(line_no, "trailing tokens after dv");
      updates.push_back(GraphUpdate::DeleteVertex(ParseVertex(a, line_no)));
    } else {
      Fail(line_no, "unknown operation '" + op + "'");
    }
  }
  return updates;
}

std::vector<GraphUpdate> LoadUpdateStream(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open update stream: " + path);
  return ParseUpdateStream(in);
}

std::string FormatUpdate(const GraphUpdate& update) {
  switch (update.kind) {
    case UpdateKind::kInsertEdge:
      return "ae " + std::to_string(update.u) + " " + std::to_string(update.v);
    case UpdateKind::kDeleteEdge:
      return "de " + std::to_string(update.u) + " " + std::to_string(update.v);
    case UpdateKind::kInsertVertex: {
      std::string out = "av";
      for (Vertex w : update.neighbors) {
        out += ' ';
        out += std::to_string(w);
      }
      return out;
    }
    case UpdateKind::kDeleteVertex:
      return "dv " + std::to_string(update.u);
  }
  return {};
}

void WriteUpdateStream(std::ostream& out,
                       const std::vector<GraphUpdate>& updates) {
  for (const GraphUpdate& u : updates) out << FormatUpdate(u) << "\n";
}

std::vector<GraphUpdate> RandomUpdateStream(const Graph& g, size_t count,
                                            uint64_t seed,
                                            const StreamOptions& options) {
  Rng rng(seed);

  // Evolving mirror of the stream's effect: alive vertices (swap-remove
  // pool), adjacency sets, a key set for O(1) edge-existence checks, and
  // an edge vector for O(1) uniform edge sampling. Deletions leave stale
  // entries in the vector; sampling purges them lazily by re-checking the
  // key set (which IS kept exact, including across vertex deletions).
  std::vector<Vertex> alive_pool;
  std::vector<std::unordered_set<Vertex>> adj(g.NumVertices());
  alive_pool.reserve(g.NumVertices());
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    alive_pool.push_back(v);
    const auto nbs = g.Neighbors(v);
    adj[v].insert(nbs.begin(), nbs.end());
  }
  std::vector<Edge> edges = g.CollectEdges();
  std::unordered_set<uint64_t> edge_set;
  edge_set.reserve(edges.size() * 2);
  for (const Edge& e : edges) edge_set.insert(EdgeKey(e.first, e.second));

  const double total_weight =
      options.insert_edge_weight + options.delete_edge_weight +
      options.insert_vertex_weight + options.delete_vertex_weight;

  const auto sample_alive = [&]() {
    return alive_pool[rng.NextBounded(alive_pool.size())];
  };

  std::vector<GraphUpdate> updates;
  updates.reserve(count);
  while (updates.size() < count) {
    double pick = rng.NextDouble() * total_weight;
    UpdateKind kind;
    if ((pick -= options.insert_edge_weight) < 0) {
      kind = UpdateKind::kInsertEdge;
    } else if ((pick -= options.delete_edge_weight) < 0) {
      kind = UpdateKind::kDeleteEdge;
    } else if ((pick -= options.insert_vertex_weight) < 0) {
      kind = UpdateKind::kInsertVertex;
    } else {
      kind = UpdateKind::kDeleteVertex;
    }

    switch (kind) {
      case UpdateKind::kInsertEdge: {
        if (alive_pool.size() < 2) break;
        bool placed = false;
        for (int attempt = 0; attempt < 32 && !placed; ++attempt) {
          const Vertex a = sample_alive();
          const Vertex b = sample_alive();
          if (a == b || edge_set.count(EdgeKey(a, b)) != 0) continue;
          edge_set.insert(EdgeKey(a, b));
          adj[a].insert(b);
          adj[b].insert(a);
          edges.emplace_back(a, b);
          updates.push_back(GraphUpdate::InsertEdge(a, b));
          placed = true;
        }
        break;
      }
      case UpdateKind::kDeleteEdge: {
        bool removed = false;
        while (!edges.empty() && !removed) {
          const size_t i = rng.NextBounded(edges.size());
          const Edge e = edges[i];
          edges[i] = edges.back();
          edges.pop_back();
          const auto it = edge_set.find(EdgeKey(e.first, e.second));
          if (it == edge_set.end()) continue;  // stale (deleted earlier)
          edge_set.erase(it);
          adj[e.first].erase(e.second);
          adj[e.second].erase(e.first);
          updates.push_back(GraphUpdate::DeleteEdge(e.first, e.second));
          removed = true;
        }
        break;
      }
      case UpdateKind::kInsertVertex: {
        std::vector<Vertex> nbs;
        if (!alive_pool.empty() && options.max_new_vertex_degree > 0) {
          const uint32_t want = static_cast<uint32_t>(
              rng.NextBounded(options.max_new_vertex_degree + 1));
          for (uint32_t i = 0; i < want; ++i) {
            const Vertex w = sample_alive();
            bool dup = false;
            for (Vertex x : nbs) dup |= (x == w);
            if (!dup) nbs.push_back(w);
          }
        }
        const Vertex id = static_cast<Vertex>(adj.size());
        adj.emplace_back();
        alive_pool.push_back(id);
        for (Vertex w : nbs) {
          edge_set.insert(EdgeKey(id, w));
          adj[id].insert(w);
          adj[w].insert(id);
          edges.emplace_back(id, w);
        }
        updates.push_back(GraphUpdate::InsertVertex(std::move(nbs)));
        break;
      }
      case UpdateKind::kDeleteVertex: {
        if (alive_pool.size() <= 2) break;
        const size_t i = rng.NextBounded(alive_pool.size());
        const Vertex v = alive_pool[i];
        alive_pool[i] = alive_pool.back();
        alive_pool.pop_back();
        // Keep the key set exact so stale `edges` entries stay detectable
        // even if an endpoint is later revived (ids are never reused, but
        // revival through a later insert would otherwise resurrect them).
        for (Vertex w : adj[v]) {
          adj[w].erase(v);
          edge_set.erase(EdgeKey(v, w));
        }
        adj[v].clear();
        updates.push_back(GraphUpdate::DeleteVertex(v));
        break;
      }
    }
  }
  return updates;
}

}  // namespace rpmis
