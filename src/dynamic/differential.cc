#include "dynamic/differential.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "mis/linear_time.h"
#include "mis/verify.h"

namespace rpmis {

namespace {

// Independent model of the evolving graph, mirroring the engine's update
// semantics (insertions revive dead endpoints; av assigns the next id).
class MirrorGraph {
 public:
  explicit MirrorGraph(const Graph& g)
      : adj_(g.NumVertices()), alive_(g.NumVertices(), 1) {
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      for (Vertex w : g.Neighbors(v)) adj_[v].insert(w);
    }
  }

  void Apply(const GraphUpdate& update) {
    switch (update.kind) {
      case UpdateKind::kInsertEdge:
        alive_[update.u] = alive_[update.v] = 1;
        adj_[update.u].insert(update.v);
        adj_[update.v].insert(update.u);
        break;
      case UpdateKind::kDeleteEdge:
        if (alive_[update.u] && alive_[update.v]) {
          adj_[update.u].erase(update.v);
          adj_[update.v].erase(update.u);
        }
        break;
      case UpdateKind::kInsertVertex: {
        const Vertex id = static_cast<Vertex>(adj_.size());
        adj_.emplace_back();
        alive_.push_back(1);
        for (Vertex w : update.neighbors) {
          alive_[w] = 1;
          adj_[id].insert(w);
          adj_[w].insert(id);
        }
        break;
      }
      case UpdateKind::kDeleteVertex:
        if (alive_[update.u]) {
          alive_[update.u] = 0;
          for (Vertex w : adj_[update.u]) adj_[w].erase(update.u);
          adj_[update.u].clear();
        }
        break;
    }
  }

  Vertex NumVertices() const { return static_cast<Vertex>(adj_.size()); }
  bool IsAlive(Vertex v) const { return alive_[v] != 0; }

  std::vector<Vertex> AliveVertices() const {
    std::vector<Vertex> out;
    for (Vertex v = 0; v < NumVertices(); ++v) {
      if (alive_[v]) out.push_back(v);
    }
    return out;
  }

  std::vector<Edge> CollectEdges() const {
    std::vector<Edge> out;
    for (Vertex v = 0; v < NumVertices(); ++v) {
      for (Vertex w : adj_[v]) {
        if (v < w) out.emplace_back(v, w);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::vector<std::unordered_set<Vertex>> adj_;
  std::vector<uint8_t> alive_;
};

}  // namespace

std::string DifferentialReport::Summary() const {
  std::ostringstream out;
  out << (ok() ? "OK" : "FAIL") << ": " << updates_applied << " updates, "
      << steps_checked << " checked, worst ratio " << worst_ratio;
  if (invariant_failures != 0) out << ", " << invariant_failures << " invariant";
  if (graph_mismatches != 0) out << ", " << graph_mismatches << " graph";
  if (validity_failures != 0) out << ", " << validity_failures << " validity";
  if (ratio_failures != 0) out << ", " << ratio_failures << " ratio";
  if (!first_failure.empty()) out << " | first: " << first_failure;
  return out.str();
}

DifferentialReport RunDifferentialStream(const Graph& g0,
                                         std::span<const GraphUpdate> updates,
                                         const DifferentialOptions& options) {
  DynamicMisEngine engine(g0, options.policy);
  MirrorGraph mirror(g0);
  DifferentialReport report;

  const auto note = [&](uint64_t& counter, const std::string& what) {
    ++counter;
    if (report.first_failure.empty()) {
      report.first_failure =
          "after update " + std::to_string(report.updates_applied) + ": " + what;
    }
  };

  const auto check = [&]() {
    ++report.steps_checked;

    std::string why;
    if (!engine.CheckInvariants(&why)) {
      note(report.invariant_failures, "invariants: " + why);
    }
    if (options.check_graph) {
      if (engine.CurrentGraph().CollectEdges() != mirror.CollectEdges()) {
        note(report.graph_mismatches, "engine/mirror edge sets differ");
      }
    }

    // Validity and quality on the mirror's alive-induced subgraph (dead
    // ids would otherwise look addable to the maximality check).
    const std::vector<Vertex> alive = mirror.AliveVertices();
    const Graph full =
        Graph::FromEdges(mirror.NumVertices(), mirror.CollectEdges());
    const Graph sub = full.InducedSubgraph(alive);
    std::vector<uint8_t> selector(sub.NumVertices(), 0);
    for (size_t i = 0; i < alive.size(); ++i) {
      selector[i] = engine.InSet(alive[i]) ? 1 : 0;
    }
    if (!VerifyMis(sub, selector, &why)) {
      note(report.validity_failures, why);
    }

    const MisSolution scratch = RunLinearTime(sub);
    const double ratio =
        scratch.size == 0
            ? 1.0
            : static_cast<double>(engine.Size()) / static_cast<double>(scratch.size);
    report.worst_ratio = std::min(report.worst_ratio, ratio);
    const uint64_t gap =
        scratch.size > engine.Size() ? scratch.size - engine.Size() : 0;
    if (ratio < options.min_ratio && gap > options.abs_slack) {
      note(report.ratio_failures,
           "size " + std::to_string(engine.Size()) + " vs scratch " +
               std::to_string(scratch.size) + " (ratio " +
               std::to_string(ratio) + ")");
    }
    if (engine.UpperBound() < scratch.size) {
      note(report.invariant_failures,
           "maintained upper bound " + std::to_string(engine.UpperBound()) +
               " below scratch size " + std::to_string(scratch.size));
    }
  };

  const uint32_t every = std::max<uint32_t>(1, options.check_every);
  for (size_t i = 0; i < updates.size(); ++i) {
    engine.Apply(updates[i]);
    mirror.Apply(updates[i]);
    ++report.updates_applied;
    if ((i + 1) % every == 0 || i + 1 == updates.size()) check();
  }
  if (updates.empty()) check();
  return report;
}

}  // namespace rpmis
