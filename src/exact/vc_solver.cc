#include "exact/vc_solver.h"

#include <algorithm>

#include "baselines/greedy.h"
#include "graph/algorithms.h"
#include "mis/kernelizer.h"
#include "mis/near_linear.h"
#include "mis/upper_bounds.h"
#include "mis/verify.h"
#include "support/timer.h"

namespace rpmis {

namespace {

class BranchAndReduce {
 public:
  explicit BranchAndReduce(const VcSolverOptions& options)
      : limit_(options.time_limit_seconds),
        use_rp_bound_(options.use_reducing_peeling_bound) {}

  // Returns a maximum IS of g, or a best-effort IS if the budget expired.
  std::vector<uint8_t> Solve(const Graph& g) {
    ++nodes_;
    if (timer_.Seconds() > limit_) timed_out_ = true;
    if (timed_out_) return RunGreedy(g).in_set;
    if (g.NumEdges() == 0) return std::vector<uint8_t>(g.NumVertices(), 1);

    // Reduce.
    Kernelizer kern(g);
    kern.Run();
    const Graph& kernel = kern.Kernel();
    if (kernel.NumVertices() == 0) {
      return kern.Lift({});
    }

    // Decompose into connected components.
    const ComponentInfo cc = ConnectedComponents(kernel);
    std::vector<uint8_t> kernel_solution(kernel.NumVertices(), 0);
    if (cc.num_components > 1) {
      for (Vertex c = 0; c < cc.num_components; ++c) {
        std::vector<Vertex> members(
            cc.members.begin() + cc.offsets[c],
            cc.members.begin() + cc.offsets[c + 1]);
        std::vector<Vertex> old_to_new;
        const Graph sub = kernel.InducedSubgraph(members, &old_to_new);
        const std::vector<uint8_t> sub_solution = Branch(sub);
        for (Vertex m : members) {
          if (sub_solution[old_to_new[m]]) kernel_solution[m] = 1;
        }
      }
    } else {
      kernel_solution = Branch(kernel);
    }
    return kern.Lift(kernel_solution);
  }

  uint64_t Nodes() const { return nodes_; }
  bool TimedOut() const { return timed_out_; }

 private:
  // Branch on a kernel that is connected and irreducible.
  std::vector<uint8_t> Branch(const Graph& g) {
    if (timer_.Seconds() > limit_) timed_out_ = true;
    if (timed_out_) return RunGreedy(g).in_set;
    if (g.NumEdges() == 0) return std::vector<uint8_t>(g.NumVertices(), 1);

    // Maximum-degree branching vertex.
    Vertex pivot = 0;
    for (Vertex v = 1; v < g.NumVertices(); ++v) {
      if (g.Degree(v) > g.Degree(pivot)) pivot = v;
    }

    // Branch A: include pivot => recurse on G \ N[pivot].
    std::vector<Vertex> keep_in;
    std::vector<uint8_t> drop(g.NumVertices(), 0);
    drop[pivot] = 1;
    for (Vertex w : g.Neighbors(pivot)) drop[w] = 1;
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      if (!drop[v]) keep_in.push_back(v);
    }
    std::vector<Vertex> map_in;
    const Graph g_in = g.InducedSubgraph(keep_in, &map_in);
    const std::vector<uint8_t> sol_in = Solve(g_in);
    uint64_t size_in = 1;
    for (uint8_t f : sol_in) size_in += f;

    // Branch B: exclude pivot => recurse on G \ pivot, but only if its
    // clique-cover bound can beat branch A.
    std::vector<Vertex> keep_out;
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      if (v != pivot) keep_out.push_back(v);
    }
    std::vector<Vertex> map_out;
    const Graph g_out = g.InducedSubgraph(keep_out, &map_out);

    std::vector<uint8_t> best(g.NumVertices(), 0);
    best[pivot] = 1;
    for (Vertex v : keep_in) {
      if (sol_in[map_in[v]]) best[v] = 1;
    }
    uint64_t best_size = size_in;

    uint64_t bound_out = timed_out_ ? 0 : CliqueCoverBound(g_out);
    if (use_rp_bound_ && bound_out > best_size) {
      // §6: NearLinear's |I| + |R| bound is free and often tighter; its
      // solution is also a strong incumbent for this subproblem.
      MisSolution nl = RunNearLinear(g_out);
      bound_out = std::min(bound_out, nl.UpperBound());
      if (nl.size > best_size) {
        best_size = nl.size;
        std::fill(best.begin(), best.end(), 0);
        for (Vertex v : keep_out) {
          if (nl.in_set[map_out[v]]) best[v] = 1;
        }
      }
    }
    if (!timed_out_ && bound_out > best_size) {
      const std::vector<uint8_t> sol_out = Solve(g_out);
      uint64_t size_out = 0;
      for (uint8_t f : sol_out) size_out += f;
      if (size_out > best_size) {
        best_size = size_out;
        std::fill(best.begin(), best.end(), 0);
        for (Vertex v : keep_out) {
          if (sol_out[map_out[v]]) best[v] = 1;
        }
      }
    }
    return best;
  }

  Timer timer_;
  double limit_;
  bool use_rp_bound_ = false;
  bool timed_out_ = false;
  uint64_t nodes_ = 0;
};

}  // namespace

VcSolverResult SolveExactMis(const Graph& g, const VcSolverOptions& options) {
  Timer timer;
  VcSolverResult result;

  // Top-level kernel statistics (reported in Figure 8 / Eval-III).
  {
    Kernelizer kern(g);
    kern.Run();
    result.kernel_vertices = kern.Kernel().NumVertices();
    result.kernel_edges = kern.Kernel().NumEdges();
  }

  BranchAndReduce solver(options);
  result.in_set = solver.Solve(g);
  RPMIS_ASSERT(IsIndependentSet(g, result.in_set));
  ExtendToMaximal(g, result.in_set);
  for (uint8_t f : result.in_set) result.size += f;
  result.branch_nodes = solver.Nodes();
  result.proven_optimal = !solver.TimedOut();
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace rpmis
