#include "exact/brute_force.h"

#include <bit>

namespace rpmis {

namespace {

struct MaskSolver {
  std::vector<uint64_t> nbr;  // closed-neighbourhood-free adjacency masks

  // Returns (alpha, chosen-mask) for the induced subgraph on `mask`.
  std::pair<uint32_t, uint64_t> Solve(uint64_t mask) {
    if (mask == 0) return {0, 0};
    // Take any degree-<=1 vertex greedily: always optimal.
    uint64_t rest = mask;
    while (rest != 0) {
      const int v = std::countr_zero(rest);
      rest &= rest - 1;
      const uint64_t nb = nbr[v] & mask;
      if (std::popcount(nb) <= 1) {
        auto [a, chosen] = Solve(mask & ~nb & ~(1ULL << v));
        return {a + 1, chosen | (1ULL << v)};
      }
    }
    // Branch on a maximum-degree vertex.
    int best = -1;
    int best_deg = -1;
    rest = mask;
    while (rest != 0) {
      const int v = std::countr_zero(rest);
      rest &= rest - 1;
      const int d = std::popcount(nbr[v] & mask);
      if (d > best_deg) {
        best_deg = d;
        best = v;
      }
    }
    auto [a_out, c_out] = Solve(mask & ~(1ULL << best));
    auto [a_in, c_in] = Solve(mask & ~nbr[best] & ~(1ULL << best));
    if (a_in + 1 > a_out) return {a_in + 1, c_in | (1ULL << best)};
    return {a_out, c_out};
  }
};

MaskSolver MakeSolver(const Graph& g) {
  RPMIS_ASSERT_MSG(g.NumVertices() <= 64, "brute force limited to 64 vertices");
  MaskSolver s;
  s.nbr.assign(g.NumVertices(), 0);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (Vertex w : g.Neighbors(v)) s.nbr[v] |= 1ULL << w;
  }
  return s;
}

}  // namespace

uint64_t BruteForceAlpha(const Graph& g) {
  MaskSolver s = MakeSolver(g);
  const uint64_t all =
      g.NumVertices() == 64 ? ~0ULL : (1ULL << g.NumVertices()) - 1;
  return s.Solve(all).first;
}

std::vector<uint8_t> BruteForceMis(const Graph& g) {
  MaskSolver s = MakeSolver(g);
  const uint64_t all =
      g.NumVertices() == 64 ? ~0ULL : (1ULL << g.NumVertices()) - 1;
  const uint64_t chosen = s.Solve(all).second;
  std::vector<uint8_t> out(g.NumVertices(), 0);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    if ((chosen >> v) & 1) out[v] = 1;
  }
  return out;
}

}  // namespace rpmis
