// Exponential reference solver for small graphs (tests and ground truth).
//
// Branches on a highest-degree vertex with the classic include/exclude
// recursion over 64-bit vertex masks; degree-<=1 vertices are taken
// greedily, which is optimal. Intended for n <= 64 and test-sized inputs.
#ifndef RPMIS_EXACT_BRUTE_FORCE_H_
#define RPMIS_EXACT_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace rpmis {

/// Exact independence number of g (requires g.NumVertices() <= 64).
uint64_t BruteForceAlpha(const Graph& g);

/// An exact maximum independent set of g (requires n <= 64).
std::vector<uint8_t> BruteForceMis(const Graph& g);

}  // namespace rpmis

#endif  // RPMIS_EXACT_BRUTE_FORCE_H_
