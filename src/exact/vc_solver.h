// Branch-and-reduce exact MIS solver (Akiba–Iwata [1] substitute,
// "VCSolver" in the paper's experiments).
//
// Each node: kernelize with the full rule set (mis/kernelizer.h), split
// into connected components, prune with the greedy clique-cover bound,
// then branch on a maximum-degree vertex (include / exclude). A wall-clock
// budget makes runs terminate on hard instances: on expiry the solver
// completes the open subproblems greedily and reports
// proven_optimal = false.
#ifndef RPMIS_EXACT_VC_SOLVER_H_
#define RPMIS_EXACT_VC_SOLVER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace rpmis {

struct VcSolverOptions {
  double time_limit_seconds = 30.0;
  /// §6 extension: additionally prune subproblems with NearLinear's free
  /// Theorem 6.1 bound (|I| + |R|), which the paper reports to be tighter
  /// than the classic clique-cover/LP/cycle-cover bounds. NearLinear's
  /// solution also warm-starts the incumbent for the subproblem.
  bool use_reducing_peeling_bound = false;
};

struct VcSolverResult {
  std::vector<uint8_t> in_set;   // best independent set found
  uint64_t size = 0;
  bool proven_optimal = false;   // true iff search completed in budget
  uint64_t branch_nodes = 0;
  uint64_t kernel_vertices = 0;  // top-level kernel size
  uint64_t kernel_edges = 0;
  double seconds = 0.0;
};

/// Computes a maximum independent set of g (exact if within budget).
VcSolverResult SolveExactMis(const Graph& g, const VcSolverOptions& options = {});

}  // namespace rpmis

#endif  // RPMIS_EXACT_VC_SOLVER_H_
