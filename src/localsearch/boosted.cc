#include "localsearch/boosted.h"

#include "mis/linear_time.h"
#include "mis/near_linear.h"
#include "mis/verify.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "support/timer.h"

namespace rpmis {

BoostedResult RunBoostedArw(const Graph& g, BoostKind kind,
                            const BoostedOptions& options) {
  obs::TraceSpan algo_span(
      obs::Trace(), kind == BoostKind::kLinearTime ? "arw-lt" : "arw-nl");
  Timer timer;
  BoostedResult out;
  KernelSnapshot snap;
  {
    obs::TraceSpan span(obs::Trace(), "boosted.kernelize");
    if (kind == BoostKind::kLinearTime) {
      LinearTimeOptions lt;
      lt.compaction = options.compaction;
      out.base = RunLinearTime(g, &snap, lt);
    } else {
      NearLinearOptions nl;
      nl.compaction = options.compaction;
      out.base = RunNearLinear(g, &snap, nl);
    }
  }
  RPMIS_ASSERT(snap.captured);
  const Graph& kernel = snap.kernel;
  out.kernel_vertices = kernel.NumVertices();
  out.kernel_edges = kernel.NumEdges();

  // Initial kernel solution: the base algorithm's final answer restricted
  // to kernel vertices. The base answer respects rewired kernel edges by
  // construction, so this restriction is an independent set of K.
  std::vector<uint8_t> initial(kernel.NumVertices(), 0);
  for (Vertex k = 0; k < kernel.NumVertices(); ++k) {
    if (out.base.in_set[snap.kernel_to_orig[k]]) initial[k] = 1;
  }
  RPMIS_ASSERT_MSG(IsIndependentSet(kernel, initial),
                   "base solution must restrict to a kernel IS");

  // Lifts a kernel solution to the full graph: pre-kernel inclusions,
  // kernel choices, deferred degree-two-path decisions (LIFO), then the
  // maximality pass that also re-admits compatible peeled vertices.
  auto lift = [&](const std::vector<uint8_t>& kernel_set) {
    std::vector<uint8_t> full(g.NumVertices(), 0);
    for (Vertex v : snap.included) full[v] = 1;
    for (Vertex k = 0; k < kernel.NumVertices(); ++k) {
      if (kernel_set[k]) full[snap.kernel_to_orig[k]] = 1;
    }
    ReplayDeferredStack(snap.deferred_stack, full);
    ExtendToMaximal(g, full);
    return full;
  };

  // Incumbents carry LIFTED sizes, so the convergence curve (and its
  // regeneration from progress-sample JSONL) sees the figures the bench
  // reports, not the kernel-level sizes the inner ARW samples.
  auto note_incumbent = [&](uint64_t size) {
    out.history.push_back({timer.Seconds(), size});
    if (auto* ps = obs::Progress()) {
      obs::ProgressSample s;
      s.solution_size = size;
      s.label = "boosted";
      ps->Record(std::move(s));
    }
  };

  ArwOptions arw;
  arw.time_limit_seconds = options.time_limit_seconds;
  arw.seed = options.seed;
  arw.on_improvement = [&](double, const std::vector<uint8_t>& kernel_set) {
    obs::TraceSpan span(obs::Trace(), "boosted.lift");
    std::vector<uint8_t> full = lift(kernel_set);
    uint64_t size = 0;
    for (uint8_t f : full) size += f;
    if (size > out.size) {
      out.size = size;
      out.in_set = std::move(full);
      note_incumbent(size);
    }
  };
  RunArw(kernel, std::move(initial), arw);

  if (out.in_set.empty()) {
    out.in_set = out.base.in_set;
    out.size = out.base.size;
    note_incumbent(out.size);
  }
  RPMIS_ASSERT(IsMaximalIndependentSet(g, out.in_set));
  return out;
}

}  // namespace rpmis
