#include "localsearch/arw.h"

#include <algorithm>

#include "mis/verify.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "support/assert.h"
#include "support/fast_set.h"
#include "support/random.h"
#include "support/timer.h"

namespace rpmis {

namespace {

class ArwState {
 public:
  ArwState(const Graph& g, std::vector<uint8_t> initial,
           std::vector<uint8_t> excluded, uint64_t seed)
      : g_(g),
        n_(g.NumVertices()),
        excluded_(std::move(excluded)),
        in_set_(std::move(initial)),
        tight_(n_, 0),
        out_since_(n_, 0),
        mark_(n_),
        scratch_(n_),
        rng_(seed) {
    RPMIS_ASSERT(in_set_.size() == n_);
    RPMIS_ASSERT_MSG(IsIndependentSet(g, in_set_), "ARW needs a valid start");
    if (excluded_.empty()) excluded_.assign(n_, 0);
    RPMIS_ASSERT(excluded_.size() == n_);
    for (Vertex v = 0; v < n_; ++v) {
      if (!in_set_[v]) continue;
      ++size_;
      for (Vertex w : g.Neighbors(v)) ++tight_[w];
    }
  }

  uint64_t Size() const { return size_; }
  const std::vector<uint8_t>& InSet() const { return in_set_; }

  void LoadSolution(const std::vector<uint8_t>& solution) {
    std::fill(tight_.begin(), tight_.end(), 0);
    in_set_ = solution;
    size_ = 0;
    for (Vertex v = 0; v < n_; ++v) {
      if (!in_set_[v]) continue;
      ++size_;
      for (Vertex w : g_.Neighbors(v)) ++tight_[w];
    }
  }

  void Insert(Vertex v) {
    RPMIS_DASSERT(!in_set_[v] && tight_[v] == 0);
    in_set_[v] = 1;
    ++size_;
    for (Vertex w : g_.Neighbors(v)) ++tight_[w];
  }

  void Remove(Vertex v) {
    RPMIS_DASSERT(in_set_[v]);
    in_set_[v] = 0;
    --size_;
    out_since_[v] = ++clock_;
    for (Vertex w : g_.Neighbors(v)) --tight_[w];
  }

  /// Forces v into the solution, evicting its solution neighbours first.
  void ForceInsert(Vertex v) {
    if (in_set_[v]) return;
    for (Vertex w : g_.Neighbors(v)) {
      if (in_set_[w]) Remove(w);
    }
    Insert(v);
  }

  /// Inserts every free (tightness-0) non-excluded vertex.
  uint64_t InsertFreeVertices() {
    uint64_t added = 0;
    for (Vertex v = 0; v < n_; ++v) {
      if (!in_set_[v] && tight_[v] == 0 && !excluded_[v]) {
        Insert(v);
        ++added;
      }
    }
    return added;
  }

  /// Tries one (1,2)-swap around solution vertex x. Returns true if the
  /// solution grew. A valid swap needs two NON-adjacent 1-tight
  /// neighbours of x (their unique solution neighbour is necessarily x).
  bool TryOneTwoSwap(Vertex x) {
    RPMIS_DASSERT(in_set_[x]);
    candidates_.clear();
    for (Vertex w : g_.Neighbors(x)) {
      if (!in_set_[w] && tight_[w] == 1 && !excluded_[w]) candidates_.push_back(w);
    }
    if (candidates_.size() < 2) return false;
    // Look for a non-adjacent pair by marking each candidate's
    // neighbourhood; total cost O(sum of candidate degrees).
    mark_.Clear();
    for (Vertex c : candidates_) mark_.Insert(c);
    for (Vertex u : candidates_) {
      // Count candidate neighbours of u; if fewer than the other
      // candidates, some candidate is non-adjacent to u.
      size_t adjacent = 0;
      for (Vertex w : g_.Neighbors(u)) {
        if (mark_.Contains(w)) ++adjacent;
      }
      if (adjacent + 1 < candidates_.size()) {
        // Find the concrete partner.
        scratch_.Clear();
        for (Vertex w : g_.Neighbors(u)) scratch_.Insert(w);
        for (Vertex w : candidates_) {
          if (w != u && !scratch_.Contains(w)) {
            Remove(x);
            Insert(u);
            Insert(w);
            return true;
          }
        }
        RPMIS_ASSERT_MSG(false, "counted partner must exist");
      }
    }
    return false;
  }

  /// Exhausts free insertions and (1,2)-swaps starting from the seeds left
  /// in worklist_ by Perturb (empty => all solution vertices). Drains
  /// worklist_ and returns the size gain. The worklist is a member so the
  /// hot loop reuses its capacity across the millions of iterations a time
  /// budget allows instead of reallocating per round.
  uint64_t LocalSearch() {
    const uint64_t before = size_;
    InsertFreeVertices();
    if (worklist_.empty()) {
      for (Vertex v = 0; v < n_; ++v) {
        if (in_set_[v]) worklist_.push_back(v);
      }
    }
    while (!worklist_.empty()) {
      const Vertex x = worklist_.back();
      worklist_.pop_back();
      if (!in_set_[x]) continue;
      if (TryOneTwoSwap(x)) {
        InsertFreeVertices();
        // The swap changed tightness around x's former neighbourhood;
        // re-examine nearby solution vertices.
        for (Vertex w : g_.Neighbors(x)) {
          if (in_set_[w]) worklist_.push_back(w);
          for (Vertex y : g_.Neighbors(w)) {
            if (in_set_[y]) worklist_.push_back(y);
          }
        }
      }
    }
    return size_ - before;
  }

  /// The ARW perturbation: force f vertices in, oldest-outside first among
  /// random probes; f = i+1 with probability 2^-i.
  /// Seeds the subsequent LocalSearch() through worklist_.
  void Perturb() {
    uint32_t f = 1;
    while (rng_.NextBool(0.5)) ++f;
    worklist_.clear();
    for (uint32_t i = 0; i < f; ++i) {
      // Probe a few random non-solution vertices, keep the one outside
      // the solution the longest (smallest out_since).
      Vertex best = kInvalidVertex;
      for (int probe = 0; probe < 4; ++probe) {
        const Vertex v = static_cast<Vertex>(rng_.NextBounded(n_));
        if (in_set_[v] || excluded_[v]) continue;
        if (best == kInvalidVertex || out_since_[v] < out_since_[best]) best = v;
      }
      if (best == kInvalidVertex) continue;
      ForceInsert(best);
      worklist_.push_back(best);
      for (Vertex w : g_.Neighbors(best)) {
        if (in_set_[w]) worklist_.push_back(w);
      }
    }
  }

 private:
  const Graph& g_;
  Vertex n_;
  std::vector<uint8_t> excluded_;
  std::vector<uint8_t> in_set_;
  uint64_t size_ = 0;
  std::vector<uint32_t> tight_;
  std::vector<uint64_t> out_since_;
  uint64_t clock_ = 0;
  FastSet mark_;
  FastSet scratch_;
  std::vector<Vertex> candidates_;
  std::vector<Vertex> worklist_;  // LocalSearch seeds/frontier, reused
  Rng rng_;
};

}  // namespace

ArwResult RunArw(const Graph& g, std::vector<uint8_t> initial,
                 const ArwOptions& options) {
  obs::TraceSpan algo_span(obs::Trace(), "arw");
  Timer timer;
  ArwResult result;
  if (g.NumVertices() == 0) {
    result.in_set.clear();
    return result;
  }
  ArwState state(g, std::move(initial), options.excluded, options.seed);

  auto record_best = [&]() {
    result.in_set = state.InSet();
    result.size = state.Size();
    const double t = timer.Seconds();
    result.history.push_back({t, result.size});
    if (auto* tr = obs::Trace()) tr->Instant("arw.improve");
    if (auto* ps = obs::Progress()) {
      // Every incumbent is a forced sample: the convergence curves need
      // each improvement, not just the strided ticks.
      obs::ProgressSample s;
      s.solution_size = result.size;
      s.label = "arw";
      ps->Record(std::move(s));
    }
    if (options.on_improvement) options.on_improvement(t, result.in_set);
  };

  // First point: one full local-search pass over the initial solution.
  state.LocalSearch();
  record_best();

  while (timer.Seconds() < options.time_limit_seconds &&
         result.iterations < options.max_iterations) {
    ++result.iterations;
    if (auto* ps = obs::Progress(); ps != nullptr && ps->Due()) {
      // Strided tick between improvements (plateau visibility).
      obs::ProgressSample s;
      s.solution_size = result.size;
      s.label = "arw.tick";
      ps->Record(std::move(s));
    }
    state.Perturb();
    state.LocalSearch();
    if (state.Size() > result.size) {
      record_best();
    } else if (state.Size() < result.size) {
      // Strictly worse after the search: roll back to the incumbent.
      state.LoadSolution(result.in_set);
    }
    // Equal size: keep walking the plateau.
  }
  return result;
}

}  // namespace rpmis
