// ARW: the Andrade–Resende–Werneck iterated local search (§A.5, [2]).
//
// State is a solution plus a per-vertex tightness (number of solution
// neighbours). Each iteration is
//   perturbation : force f random non-solution vertices into the solution
//                  (P(f = i+1) = 2^-i), evicting their solution
//                  neighbours; candidates are drawn with priority for
//                  vertices that have been outside the solution longest;
//   local search : exhaust (1,2)-swaps — remove one solution vertex x and
//                  insert two non-adjacent 1-tight neighbours of x — plus
//                  free-vertex insertions (tightness 0).
// The incumbent is kept; a worse post-search solution is rolled back.
#ifndef RPMIS_LOCALSEARCH_ARW_H_
#define RPMIS_LOCALSEARCH_ARW_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"

namespace rpmis {

/// One point of a convergence trace: a new best size found at a time.
struct ConvergencePoint {
  double seconds = 0.0;
  uint64_t size = 0;
};

struct ArwOptions {
  double time_limit_seconds = 1.0;
  uint64_t max_iterations = ~0ULL;  // perturbation rounds
  uint64_t seed = 12345;
  /// Vertices the search must not insert (OnlineMIS's "cutting" of the
  /// top-degree vertices [19]). Empty = no restriction. Excluded vertices
  /// may still appear in the INITIAL solution and are never evicted for
  /// being excluded; they are only barred from (re)insertion.
  std::vector<uint8_t> excluded;
  /// Invoked on every new incumbent with (elapsed seconds, solution).
  /// Useful for boosted variants that lift kernel solutions to the full
  /// graph before recording the trace.
  std::function<void(double, const std::vector<uint8_t>&)> on_improvement;
};

struct ArwResult {
  std::vector<uint8_t> in_set;  // best solution found
  uint64_t size = 0;
  uint64_t iterations = 0;
  std::vector<ConvergencePoint> history;  // local trace (solution sizes)
};

/// Improves `initial` (any independent set of g; may be empty) by iterated
/// local search until the time or iteration budget runs out.
ArwResult RunArw(const Graph& g, std::vector<uint8_t> initial,
                 const ArwOptions& options = {});

}  // namespace rpmis

#endif  // RPMIS_LOCALSEARCH_ARW_H_
