// ReduMIS substitute (Lamm et al. [28]).
//
// The original is an evolutionary algorithm whose combine operator needs a
// multilevel graph partitioner; per DESIGN.md §4 this library substitutes
// its two load-bearing ingredients: (1) FULL kernelization with the
// Akiba–Iwata rule set (mis/kernelizer.h) — the expensive step the paper's
// Eval-III measures — and (2) a diversified multi-start perturbed local
// search on the kernel, keeping the best lifted solution. It plays
// ReduMIS's role in the convergence plots: slow to produce its first
// solution, strong once it does, memory-hungry on large inputs.
#ifndef RPMIS_LOCALSEARCH_REDUMIS_H_
#define RPMIS_LOCALSEARCH_REDUMIS_H_

#include "graph/graph.h"
#include "localsearch/arw.h"

namespace rpmis {

struct ReduMisOptions {
  double time_limit_seconds = 2.0;
  uint64_t seed = 4242;
  uint32_t population = 4;  // independent restarts blended round-robin
};

/// Runs the ReduMIS substitute; the trace reports full-graph sizes.
ArwResult RunReduMis(const Graph& g, const ReduMisOptions& options = {});

}  // namespace rpmis

#endif  // RPMIS_LOCALSEARCH_REDUMIS_H_
