#include "localsearch/online_mis.h"

#include <algorithm>

#include "baselines/du.h"
#include "mis/solution.h"
#include "mis/verify.h"

namespace rpmis {

ArwResult RunOnlineMis(const Graph& g, const OnlineMisOptions& options) {
  const Vertex n = g.NumVertices();

  // Quick SINGLE pass of degree-one + degree-two isolation (not to
  // fixpoint — that is the point of OnlineMIS's "online" design).
  std::vector<uint8_t> alive(n, 1);
  std::vector<uint32_t> deg(n);
  std::vector<uint8_t> fixed_in(n, 0);
  for (Vertex v = 0; v < n; ++v) deg[v] = g.Degree(v);
  auto remove_vertex = [&](Vertex v) {
    alive[v] = 0;
    for (Vertex w : g.Neighbors(v)) {
      if (alive[w] && deg[w] > 0) --deg[w];
    }
  };
  for (Vertex v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    if (deg[v] == 0) {
      fixed_in[v] = 1;
      continue;
    }
    if (deg[v] == 1) {
      // Take v, drop its surviving neighbour.
      for (Vertex w : g.Neighbors(v)) {
        if (alive[w]) {
          remove_vertex(w);
          break;
        }
      }
      fixed_in[v] = 1;
      alive[v] = 0;
      continue;
    }
    if (deg[v] == 2) {
      Vertex a = kInvalidVertex, b = kInvalidVertex;
      for (Vertex w : g.Neighbors(v)) {
        if (!alive[w]) continue;
        (a == kInvalidVertex ? a : b) = w;
      }
      if (b != kInvalidVertex && g.HasEdge(a, b)) {
        remove_vertex(a);
        remove_vertex(b);
        fixed_in[v] = 1;
        alive[v] = 0;
      }
    }
  }

  // DU on the remaining graph for the initial solution.
  std::vector<Vertex> rest;
  std::vector<Vertex> old_to_new;
  for (Vertex v = 0; v < n; ++v) {
    if (alive[v]) rest.push_back(v);
  }
  Graph sub = g.InducedSubgraph(rest, &old_to_new);
  MisSolution du = RunDU(sub);

  std::vector<uint8_t> initial = fixed_in;
  for (Vertex v : rest) {
    if (du.in_set[old_to_new[v]]) initial[v] = 1;
  }
  // Conflicts cannot arise: fixed_in vertices have no surviving
  // neighbours, but be defensive about the invariant anyway.
  RPMIS_ASSERT(IsIndependentSet(g, initial));

  // OnlineMIS's "online cutting": the top ~1% degree vertices are barred
  // from (re)insertion during the search — they are almost never in a
  // maximum IS and skipping them accelerates the swaps [19]. A final
  // uncut free-insert pass readmits any that turn out compatible.
  std::vector<uint8_t> excluded(n, 0);
  if (n >= 100) {
    std::vector<uint32_t> degrees(n);
    for (Vertex v = 0; v < n; ++v) degrees[v] = g.Degree(v);
    std::vector<uint32_t> sorted = degrees;
    std::nth_element(sorted.begin(), sorted.end() - n / 100, sorted.end());
    const uint32_t threshold = sorted[n - n / 100];
    for (Vertex v = 0; v < n; ++v) {
      if (degrees[v] > threshold) excluded[v] = 1;
    }
  }

  ArwOptions arw;
  arw.time_limit_seconds = options.time_limit_seconds;
  arw.seed = options.seed;
  arw.excluded = std::move(excluded);
  ArwResult result = RunArw(g, std::move(initial), arw);
  // Final pass over the full graph: admit any compatible cut vertex.
  ExtendToMaximal(g, result.in_set);
  result.size = 0;
  for (uint8_t f : result.in_set) result.size += f;
  return result;
}

}  // namespace rpmis
