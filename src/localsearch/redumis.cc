#include "localsearch/redumis.h"

#include "baselines/du.h"
#include "mis/kernelizer.h"
#include "mis/solution.h"
#include "mis/verify.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "support/timer.h"

namespace rpmis {

ArwResult RunReduMis(const Graph& g, const ReduMisOptions& options) {
  Timer timer;
  ArwResult out;

  // Phase 1: full kernelization (the expensive step).
  Kernelizer kern(g);
  kern.Run();
  const Graph& kernel = kern.Kernel();

  auto lift_and_score = [&](const std::vector<uint8_t>& kernel_set) {
    std::vector<uint8_t> lifted = kern.Lift(kernel_set);
    ExtendToMaximal(g, lifted);
    uint64_t size = 0;
    for (uint8_t f : lifted) size += f;
    return std::make_pair(size, std::move(lifted));
  };

  // Phase 2: population of perturbed local searches on the kernel,
  // time-sliced; the incumbent is lifted whenever it improves.
  std::vector<uint8_t> seed_solution(kernel.NumVertices(), 0);
  {
    MisSolution du = RunDU(kernel);
    seed_solution = du.in_set;
  }
  uint64_t best_kernel_size = 0;
  std::vector<uint8_t> best_kernel_set = seed_solution;

  // Lifted incumbents, forced into the progress stream so the printed
  // curve can be regenerated from the JSONL samples alone.
  auto note_incumbent = [&](uint64_t size) {
    out.history.push_back({timer.Seconds(), size});
    if (auto* ps = obs::Progress()) {
      obs::ProgressSample s;
      s.solution_size = size;
      s.label = "redumis";
      ps->Record(std::move(s));
    }
  };

  const double budget = options.time_limit_seconds;
  uint32_t member = 0;
  while (true) {
    const double left = budget - timer.Seconds();
    if (left <= 0) break;
    ArwOptions arw;
    arw.time_limit_seconds =
        std::min(left, budget / std::max(1u, options.population));
    arw.seed = options.seed + member;
    ArwResult r = RunArw(kernel, seed_solution, arw);
    if (r.size > best_kernel_size || out.history.empty()) {
      best_kernel_size = r.size;
      best_kernel_set = r.in_set;
      auto [size, lifted] = lift_and_score(best_kernel_set);
      if (size > out.size || out.history.empty()) {
        out.size = size;
        out.in_set = std::move(lifted);
        note_incumbent(out.size);
      }
      // Elitist restart: future members start from the incumbent.
      seed_solution = best_kernel_set;
    }
    out.iterations += r.iterations;
    ++member;
    if (kernel.NumVertices() == 0) break;  // solved by kernelization alone
  }
  if (out.in_set.empty()) {
    auto [size, lifted] = lift_and_score(best_kernel_set);
    out.size = size;
    out.in_set = std::move(lifted);
    note_incumbent(out.size);
  }
  RPMIS_ASSERT(IsMaximalIndependentSet(g, out.in_set));
  return out;
}

}  // namespace rpmis
