// ARW-LT and ARW-NL (§6): iterated local search boosted by
// Reducing-Peeling kernelization.
//
// Let K be the kernel obtained immediately before the first peel of
// LinearTime / NearLinear, and I(K) the algorithm's final solution
// restricted to K. ARW runs on K starting from I(K); every incumbent is
// lifted back to the input graph (fixed pre-kernel decisions + kernel
// solution + deferred path-stack replay + maximality pass) and that FULL
// size is what the convergence trace reports.
#ifndef RPMIS_LOCALSEARCH_BOOSTED_H_
#define RPMIS_LOCALSEARCH_BOOSTED_H_

#include "graph/graph.h"
#include "localsearch/arw.h"
#include "mis/compaction.h"
#include "mis/solution.h"

namespace rpmis {

enum class BoostKind {
  kLinearTime,  // ARW-LT
  kNearLinear,  // ARW-NL
};

struct BoostedOptions {
  double time_limit_seconds = 1.0;
  uint64_t seed = 31337;
  // Forwarded to the underlying kernelizing run; the kernel snapshot ARW
  // iterates on is then extracted from the compacted working graph, so the
  // local search never touches dead slots of the original graph.
  CompactionOptions compaction;
};

struct BoostedResult {
  MisSolution base;                       // the kernelizer's own solution
  std::vector<uint8_t> in_set;            // best lifted solution
  uint64_t size = 0;
  std::vector<ConvergencePoint> history;  // full-graph sizes over time
  uint64_t kernel_vertices = 0;
  uint64_t kernel_edges = 0;
};

/// Runs ARW boosted by the selected Reducing-Peeling algorithm.
BoostedResult RunBoostedArw(const Graph& g, BoostKind kind,
                            const BoostedOptions& options = {});

}  // namespace rpmis

#endif  // RPMIS_LOCALSEARCH_BOOSTED_H_
