// OnlineMIS (Dahlum et al. [19]): local search accelerated by cheap
// single-pass reductions.
//
// Per §6 of the paper: "OnlineMIS applies only the degree-one reduction
// and degree-two isolation ... computes the initial solution by first
// performing a quick single pass of the degree-one reduction and
// degree-two isolation, and then invoking DU on the remaining graph."
// The subsequent iterated local search runs on the (full) graph, with the
// reduced vertices' decisions kept; the original's online cutting of the
// top-degree vertices is approximated by seeding the search with the
// high-degree vertices excluded (they re-enter only through swaps).
#ifndef RPMIS_LOCALSEARCH_ONLINE_MIS_H_
#define RPMIS_LOCALSEARCH_ONLINE_MIS_H_

#include "graph/graph.h"
#include "localsearch/arw.h"

namespace rpmis {

struct OnlineMisOptions {
  double time_limit_seconds = 1.0;
  uint64_t seed = 777;
};

/// Runs OnlineMIS and returns its local-search trace and best solution.
ArwResult RunOnlineMis(const Graph& g, const OnlineMisOptions& options = {});

}  // namespace rpmis

#endif  // RPMIS_LOCALSEARCH_ONLINE_MIS_H_
