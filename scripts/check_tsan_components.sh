#!/bin/sh
# ThreadSanitizer gate for the component-parallel solve path: builds a
# dedicated tree with RPMIS_SANITIZE=thread and runs the suites that
# exercise cross-thread code (the parallel component scheduler, the
# parallel CSR build, the parallel dominance/compaction prepasses, and the
# benchkit measurement plumbing) with RPMIS_THREADS=8 so the scheduler
# genuinely runs multi-threaded under the race detector. Companion to
# scripts/check_sanitize.sh (ASan/UBSan over the full suite).
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="build-tsan"

cmake -B "$BUILD_DIR" -S . -DRPMIS_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j
RPMIS_THREADS=8 ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -j "$(nproc)" -R 'PerComponent|Parallel|Graph|ComponentExtractor|ConnectedComponents|Run|Dominance|Compaction'
