#!/bin/sh
# Configures a dedicated build tree with AddressSanitizer + UBSan enabled
# (the RPMIS_SANITIZE CMake option) and runs the full ctest suite in it.
# The raw-buffer parsers and the threaded CSR build are the code these
# checks exist for. Override the sanitizer list with, e.g.:
#   RPMIS_SANITIZE=thread scripts/check_sanitize.sh
# For a focused TSan pass over the component-parallel solve path with
# RPMIS_THREADS pinned to 8, use scripts/check_tsan_components.sh.
set -eu

cd "$(dirname "$0")/.."
SANITIZE="${RPMIS_SANITIZE:-address,undefined}"
BUILD_DIR="build-sanitize"

cmake -B "$BUILD_DIR" -S . -DRPMIS_SANITIZE="$SANITIZE" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
