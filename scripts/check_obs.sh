#!/bin/sh
# End-to-end observability gate (runs in ctest tier-1 as `check_obs`):
#
#   1. Run an instrumented bench (bench_micro_compaction --fast) with
#      every sink enabled: --trace, --metrics, --progress, --records.
#   2. Validate the trace JSON and the JSONL records with the obs_validate
#      CLI (same validators as the unit tests). Any validation failure or
#      missing/empty output file is fatal.
#   3. Warn-only overhead smoke: re-run without any obs flag and compare
#      wall time. The disabled path is one null-pointer branch per hook,
#      so a large gap here means an accidental always-on cost. Timing on
#      shared CI boxes is noisy, so this only prints a warning; the
#      authoritative overhead numbers live in EXPERIMENTS.md.
#
# No Python, no jq: the validators are the repo's own C++.
#
# Usage: check_obs.sh BENCH_BINARY OBS_VALIDATE_BINARY
set -eu

if [ "$#" -ne 2 ]; then
    echo "usage: $0 BENCH_BINARY OBS_VALIDATE_BINARY" >&2
    exit 2
fi
BENCH="$1"
VALIDATE="$2"

TMPDIR_OBS="$(mktemp -d "${TMPDIR:-/tmp}/rpmis_check_obs.XXXXXX")"
trap 'rm -rf "$TMPDIR_OBS"' EXIT INT TERM

TRACE="$TMPDIR_OBS/trace.json"
METRICS="$TMPDIR_OBS/metrics.txt"
RECORDS="$TMPDIR_OBS/records.jsonl"

# Portable millisecond clock: EPOCHREALTIME where the shell has it, else
# date +%s%N (GNU coreutils, present on the CI image).
now_ms() {
    date +%s%N | sed -e 's/......$//'
}

echo "== instrumented run =="
T0="$(now_ms)"
"$BENCH" --fast --trace="$TRACE" --metrics="$METRICS" \
    --progress=1024 --records="$RECORDS"
T1="$(now_ms)"
INSTRUMENTED_MS=$((T1 - T0))

for f in "$TRACE" "$METRICS" "$RECORDS"; do
    if [ ! -s "$f" ]; then
        echo "check_obs: FAIL: expected output file is missing or empty: $f" >&2
        exit 1
    fi
done

echo "== validate =="
"$VALIDATE" trace "$TRACE"
"$VALIDATE" records "$RECORDS"

# The records must carry the reproducibility envelope the validator
# checks plus progress samples from the forced --progress run.
if ! grep -q '"samples":\[{' "$RECORDS"; then
    echo "check_obs: FAIL: no progress samples in $RECORDS despite --progress" >&2
    exit 1
fi

echo "== disabled-path smoke (warn-only) =="
T0="$(now_ms)"
"$BENCH" --fast > /dev/null
T1="$(now_ms)"
PLAIN_MS=$((T1 - T0))

echo "instrumented: ${INSTRUMENTED_MS}ms, plain: ${PLAIN_MS}ms"
if [ "$PLAIN_MS" -gt 0 ] && \
   [ $((INSTRUMENTED_MS * 100)) -gt $((PLAIN_MS * 125)) ]; then
    echo "check_obs: WARNING: instrumented run >25% slower than plain;" \
         "fine on a noisy box, investigate if it reproduces" >&2
fi

echo "check_obs: OK"
