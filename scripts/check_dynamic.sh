#!/bin/sh
# Multi-threaded gate for the dynamic-update engine: re-runs the dynamic
# test binaries with RPMIS_THREADS=8 so the parallel_resolve path (full
# re-solves through RunLinearTimePerComponent) genuinely runs on the
# multi-threaded scheduler. The single-threaded runs happen in the normal
# ctest pass; ASan/UBSan coverage comes from scripts/check_sanitize.sh,
# which builds and runs the full suite — these binaries included — under
# RPMIS_SANITIZE=address.
#
# Usage: check_dynamic.sh <test-binary> [<test-binary>...]
set -eu

[ "$#" -ge 1 ] || {
  echo "usage: $0 <test-binary> [<test-binary>...]" >&2
  exit 2
}

for bin in "$@"; do
  echo "== RPMIS_THREADS=8 $bin"
  RPMIS_THREADS=8 "$bin"
done
