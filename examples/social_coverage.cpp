// Social network coverage (paper §1, application [32]): pick a set of
// accounts such that no two are friends (so the message reaches disjoint
// audiences) while covering as much of the network as possible within one
// hop. A MAXIMAL independent set covers every vertex within one hop by
// definition; a near-MAXIMUM one maximizes the number of chosen seeds.
//
// This example compares the greedy baseline against NearLinear on a
// synthetic social network and reports one-hop coverage.
#include <iostream>

#include "baselines/greedy.h"
#include "graph/generators.h"
#include "mis/near_linear.h"
#include "mis/verify.h"

using namespace rpmis;

namespace {

// Every vertex is covered (seed or neighbour of a seed) for a maximal IS;
// this recomputes it as a sanity check and counts multiply-covered ones.
void ReportCoverage(const Graph& g, const std::vector<uint8_t>& seeds,
                    const char* name) {
  uint64_t chosen = 0, covered = 0, overlap = 0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    if (seeds[v]) ++chosen;
    uint32_t hits = seeds[v] ? 1 : 0;
    for (Vertex w : g.Neighbors(v)) hits += seeds[w];
    if (hits > 0) ++covered;
    if (hits > 1) ++overlap;
  }
  std::cout << name << ": seeds = " << chosen << ", one-hop coverage = "
            << covered << "/" << g.NumVertices()
            << ", redundantly covered = " << overlap << "\n";
}

}  // namespace

int main() {
  // A social-network-shaped graph: power-law degrees, average degree ~8.
  Graph g = ChungLuPowerLaw(/*n=*/200000, /*beta=*/2.2, /*avg_degree=*/8.0,
                            /*seed=*/7);
  std::cout << "social network: n = " << g.NumVertices()
            << ", m = " << g.NumEdges() << "\n\n";

  MisSolution greedy = RunGreedy(g);
  ReportCoverage(g, greedy.in_set, "Greedy    ");

  MisSolution nl = RunNearLinear(g);
  ReportCoverage(g, nl.in_set, "NearLinear");

  std::cout << "\nNearLinear reaches " << nl.size - greedy.size
            << " more mutually-unconnected seeds"
            << (nl.provably_maximum ? " and certifies the count is optimal."
                                    : ".")
            << "\n";
  return 0;
}
