// Network monitoring via minimum vertex cover (paper §2 duality).
//
// To observe every link of a network, monitors must be placed so that
// each edge has a monitored endpoint — a vertex cover. Since
// C is a minimum vertex cover iff V \ C is a maximum independent set, a
// near-maximum IS from Reducing-Peeling yields a near-minimum monitor
// placement for free. This example compares the monitor counts obtained
// through the different algorithms on a router-topology-shaped graph.
#include <iostream>

#include "baselines/du.h"
#include "baselines/greedy.h"
#include "graph/generators.h"
#include "mis/bdone.h"
#include "mis/near_linear.h"
#include "mis/verify.h"

using namespace rpmis;

int main() {
  // Router topologies look like preferential-attachment graphs.
  Graph g = BarabasiAlbert(/*n=*/50000, /*edges_per_vertex=*/2, /*seed=*/99);
  std::cout << "network: n = " << g.NumVertices() << ", links = "
            << g.NumEdges() << "\n\n";

  struct Entry {
    const char* name;
    MisSolution sol;
  };
  Entry entries[] = {
      {"Greedy", RunGreedy(g)},
      {"DU", RunDU(g)},
      {"BDOne", RunBDOne(g)},
      {"NearLinear", RunNearLinear(g)},
  };
  for (const Entry& e : entries) {
    const std::vector<uint8_t> cover = Complement(e.sol.in_set);
    uint64_t monitors = 0;
    for (uint8_t f : cover) monitors += f;
    std::cout << e.name << ": " << monitors << " monitors (valid cover: "
              << std::boolalpha << IsVertexCover(g, cover) << ")\n";
  }
  std::cout << "\nEvery link is observed in all four placements; the "
               "Reducing-Peeling ones simply need fewer monitors.\n";
  return 0;
}
