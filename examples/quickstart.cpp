// Quickstart: compute a near-maximum independent set of a graph.
//
// Demonstrates the core public API end to end:
//   1. build a graph (from edges here; see graph/io.h for file formats),
//   2. run the Reducing-Peeling algorithms,
//   3. read sizes, certificates (Theorem 6.1) and the upper bound,
//   4. verify the result independently.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "graph/generators.h"
#include "graph/graph.h"
#include "mis/bdone.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"
#include "mis/verify.h"

using namespace rpmis;

int main() {
  // A 100k-vertex power-law graph, the regime the paper targets: many
  // low-degree vertices (reducible) plus a heavy hub tail (peelable).
  Graph g = ChungLuPowerLaw(/*n=*/100000, /*beta=*/2.1, /*avg_degree=*/4.0,
                            /*seed=*/42);
  std::cout << "graph: n = " << g.NumVertices() << ", m = " << g.NumEdges()
            << ", max degree = " << g.MaxDegree() << "\n\n";

  // LinearTime: O(m), the paper's recommended default.
  MisSolution lt = RunLinearTime(g);
  std::cout << "LinearTime  |I| = " << lt.size
            << "  (peels = " << lt.rules.peels
            << ", upper bound = " << lt.UpperBound() << ")\n";

  // NearLinear: a little more work, near-maximum results; often certifies
  // optimality outright on power-law inputs.
  MisSolution nl = RunNearLinear(g);
  std::cout << "NearLinear  |I| = " << nl.size
            << "  (upper bound = " << nl.UpperBound() << ")\n";
  if (nl.provably_maximum) {
    std::cout << "NearLinear CERTIFIES this is a maximum independent set:\n"
              << "no vertex was ever peeled without rejoining the solution,\n"
              << "so alpha(G) <= |I| + |R| = " << nl.UpperBound()
              << " = |I| (Theorem 6.1).\n";
  }

  // Solutions are plain vertex selectors; validate them yourself:
  std::cout << "\nindependent: " << std::boolalpha
            << IsIndependentSet(g, nl.in_set)
            << ", maximal: " << IsMaximalIndependentSet(g, nl.in_set) << "\n";

  // MIS and minimum vertex cover are complements (paper §2).
  std::cout << "vertex cover of size " << (g.NumVertices() - nl.size)
            << " obtained for free: " << IsVertexCover(g, Complement(nl.in_set))
            << "\n";
  return 0;
}
