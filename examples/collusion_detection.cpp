// Collusion detection in voting pools (paper §1, application [3]).
//
// Voters score items; a pair of voters whose scores agree suspiciously
// often is joined by a "possible collusion" edge. A maximum independent
// set of the conflict graph is the largest set of voters that is pairwise
// collusion-free — the trustworthy quorum. This example synthesizes a
// pool with planted colluding rings, builds the conflict graph, and
// extracts the quorum with LinearTime; the planted colluders should be
// (almost) entirely excluded.
#include <iostream>

#include "graph/graph.h"
#include "mis/linear_time.h"
#include "support/random.h"

using namespace rpmis;

int main() {
  Rng rng(2024);
  const Vertex honest = 3000;
  const Vertex ring_count = 30;
  const Vertex ring_size = 8;
  const Vertex n = honest + ring_count * ring_size;

  // Conflict edges: honest voters rarely coincide (background noise);
  // members of the same colluding ring almost always do.
  GraphBuilder builder(n);
  // Background noise: ~1 accidental agreement per voter.
  for (Vertex e = 0; e < n; ++e) {
    const Vertex a = static_cast<Vertex>(rng.NextBounded(n));
    const Vertex b = static_cast<Vertex>(rng.NextBounded(n));
    if (a != b) builder.AddEdge(a, b);
  }
  // Rings: dense agreement among members (90% of pairs flagged).
  std::vector<uint8_t> colluder(n, 0);
  for (Vertex r = 0; r < ring_count; ++r) {
    const Vertex base = honest + r * ring_size;
    for (Vertex i = 0; i < ring_size; ++i) {
      colluder[base + i] = 1;
      for (Vertex j = i + 1; j < ring_size; ++j) {
        if (rng.NextBool(0.9)) builder.AddEdge(base + i, base + j);
      }
    }
  }
  Graph conflict = builder.Build();
  std::cout << "voters: " << n << " (" << ring_count * ring_size
            << " planted colluders), conflict edges: " << conflict.NumEdges()
            << "\n";

  MisSolution quorum = RunLinearTime(conflict);
  uint64_t colluders_admitted = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (quorum.in_set[v] && colluder[v]) ++colluders_admitted;
  }
  std::cout << "collusion-free quorum: " << quorum.size << " voters\n";
  std::cout << "planted colluders admitted: " << colluders_admitted
            << " of " << ring_count * ring_size
            << " (rings are near-cliques, so only one or two members per "
               "ring can ever slip into an independent set)\n";
  std::cout << "upper bound on any quorum: " << quorum.UpperBound() << "\n";
  return 0;
}
