// rpmis command-line tool: compute an independent set (or vertex cover)
// of a graph file with any algorithm in the library.
//
// Usage:
//   mis_cli <file> [--format=edgelist|dimacs|metis]
//           [--algo=greedy|du|semie|bdone|bdtwo|lineartime|nearlinear|
//                   arw-lt|arw-nl|exact]
//           [--time=SECONDS] [--cover] [--out=solution.txt] [--per-component]
//           [--stats] [--no-compaction] [--compaction-threshold=F]
//           [--verify] [--updates=FILE]
//           [--trace=FILE] [--metrics=FILE] [--progress[=K]] [--records=FILE]
//
// The solution file lists one selected vertex id per line (original file
// ids are not preserved for edge lists with sparse ids; the tool reports
// the dense remapping convention).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "baselines/du.h"
#include "baselines/greedy.h"
#include "baselines/semi_external.h"
#include "benchkit/obs_session.h"
#include "benchkit/stats.h"
#include "dynamic/engine.h"
#include "dynamic/update.h"
#include "exact/vc_solver.h"
#include "graph/io.h"
#include "localsearch/boosted.h"
#include "mis/bdone.h"
#include "mis/bdtwo.h"
#include "mis/linear_time.h"
#include "mis/near_linear.h"
#include "mis/verify.h"
#include "support/timer.h"

using namespace rpmis;

namespace {

std::string OptionValue(int argc, char** argv, const std::string& key,
                        const std::string& fallback) {
  const std::string prefix = key + "=";
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool HasOption(int argc, char** argv, const char* flag) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int Usage() {
  std::cerr
      << "usage: mis_cli <file> [--format=auto|edgelist|dimacs|metis|binary]\n"
         "               [--algo=greedy|du|semie|bdone|bdtwo|lineartime|\n"
         "                       nearlinear|arw-lt|arw-nl|exact]\n"
         "               [--time=SECONDS] [--cover] [--out=FILE] [--no-cache]\n"
         "               [--per-component]   (bdone/bdtwo/lineartime/nearlinear:\n"
         "                solve connected components independently, in parallel\n"
         "                across RPMIS_THREADS workers)\n"
         "               [--stats]           (print per-run reduction/compaction\n"
         "                counters; bdone/bdtwo/lineartime/nearlinear only)\n"
         "               [--no-compaction] [--compaction-threshold=F]\n"
         "                (mid-run alive-subgraph rebuilds; F in (0,1], rebuild\n"
         "                when active < F * last build, default 0.5; the\n"
         "                solution is identical either way)\n"
         "               [--verify]          (re-check the output set is\n"
         "                independent and maximal, with a reason on failure)\n"
         "               [--updates=FILE]    (dynamic mode: solve with\n"
         "                lineartime, then maintain the set through the update\n"
         "                stream in FILE — `ae U V`, `de U V`, `av [N..]`,\n"
         "                `dv U`, '#' comments; ignores --algo)\n"
         "               [--trace=FILE]      (Chrome trace-event JSON of solver\n"
         "                phases; load in Perfetto or chrome://tracing)\n"
         "               [--metrics=FILE]    (counter/gauge snapshot as JSONL)\n"
         "               [--progress[=K]]    (sample solver progress every K\n"
         "                events, default 8192; lands in --records output)\n"
         "               [--records=FILE]    (self-describing JSONL run record;\n"
         "                \"-\" streams to stdout)\n";
  return 2;
}

// Writes the selected vertex ids (one per line) to --out or stdout.
int EmitSolution(const std::string& out_path, const std::vector<uint8_t>& in_set) {
  std::ostream* out = &std::cout;
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out = &file;
  }
  for (Vertex v = 0; v < in_set.size(); ++v) {
    if (in_set[v]) *out << v << "\n";
  }
  return 0;
}

// --updates mode: LinearTime-solve the loaded graph, maintain the set
// through the stream, verify against the final alive-induced graph, and
// emit the final set over the engine's (grown) universe.
int RunDynamicMode(ObsSession& obs, const Graph& g, const std::string& path,
                   const std::string& updates_path, const std::string& out_path,
                   bool want_stats, bool want_verify) {
  std::vector<GraphUpdate> updates;
  try {
    updates = LoadUpdateStream(updates_path);
  } catch (const std::exception& e) {
    std::cerr << "update stream error: " << e.what() << "\n";
    return 1;
  }

  ObsSession::Run run = obs.Start("dynamic", path, /*seed=*/0);
  Timer timer;
  DynamicMisEngine engine(g);
  const double solve_seconds = timer.Seconds();
  timer.Restart();
  try {
    engine.ApplyUpdates(updates);
  } catch (const std::exception& e) {
    std::cerr << "update stream error: " << e.what() << "\n";
    return 1;
  }
  const double apply_seconds = timer.Seconds();

  // The maintained set must be a valid MIS of the alive-induced current
  // graph (dead ids are isolated in the full-universe snapshot and would
  // confuse the maximality check).
  std::vector<Vertex> alive;
  for (Vertex v = 0; v < engine.NumVertices(); ++v) {
    if (engine.Exists(v)) alive.push_back(v);
  }
  const Graph sub = engine.CurrentGraph().InducedSubgraph(alive);
  std::vector<uint8_t> selector(sub.NumVertices(), 0);
  for (size_t i = 0; i < alive.size(); ++i) {
    selector[i] = engine.InSet(alive[i]) ? 1 : 0;
  }
  std::string why;
  if (!VerifyMis(sub, selector, &why)) {
    std::cerr << "internal error: maintained set invalid: " << why << "\n";
    return 1;
  }
  if (want_verify) {
    std::cerr << "verified: independent and maximal on the final graph ("
              << alive.size() << " alive vertices)\n";
  }

  std::cerr << "dynamic independent set: " << engine.Size() << " vertices (<= "
            << engine.UpperBound() << ") after " << updates.size()
            << " updates; solve " << solve_seconds << "s, apply "
            << apply_seconds << "s\n";
  if (want_stats) std::cerr << FormatDynamicStats(engine.stats());

  engine.PublishMetrics(run.metrics());
  run.NoteSeconds(solve_seconds + apply_seconds);
  run.record().AddNumber("graph.vertices", static_cast<double>(g.NumVertices()));
  run.record().AddNumber("graph.edges", static_cast<double>(g.NumEdges()));
  run.record().AddNumber("updates.count", static_cast<double>(updates.size()));
  run.record().AddNumber("updates.apply_seconds", apply_seconds);
  run.record().AddNumber("solution.final_size",
                         static_cast<double>(engine.Size()));
  run.Commit();
  return EmitSolution(out_path, engine.Selector());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string path = argv[1];
  const std::string format = OptionValue(argc, argv, "--format", "auto");
  const std::string algo = OptionValue(argc, argv, "--algo", "nearlinear");
  const double budget = std::stod(OptionValue(argc, argv, "--time", "5"));
  const std::string out_path = OptionValue(argc, argv, "--out", "");
  const bool want_cover = HasOption(argc, argv, "--cover");
  const bool per_component = HasOption(argc, argv, "--per-component");
  const bool want_stats = HasOption(argc, argv, "--stats");
  const PerComponentOptions cc_opts{.parallel = true};
  CompactionOptions compaction;
  compaction.enabled = !HasOption(argc, argv, "--no-compaction");
  compaction.threshold =
      std::stod(OptionValue(argc, argv, "--compaction-threshold", "0.5"));
  if (!(compaction.threshold > 0.0 && compaction.threshold <= 1.0)) {
    std::cerr << "--compaction-threshold must be in (0, 1]\n";
    return 2;
  }

  // Owns the observability sinks (--trace/--metrics/--progress/--records)
  // for the whole invocation; the trace also covers the graph load below.
  ObsSession obs("mis_cli", argc, argv);

  Graph g;
  try {
    LoadOptions opts;
    opts.use_cache = !HasOption(argc, argv, "--no-cache");
    if (format == "auto") {
      opts.format = GraphFormat::kAuto;
    } else if (format == "edgelist") {
      opts.format = GraphFormat::kEdgeList;
    } else if (format == "dimacs") {
      opts.format = GraphFormat::kDimacs;
    } else if (format == "metis") {
      opts.format = GraphFormat::kMetis;
    } else if (format == "binary") {
      opts.format = GraphFormat::kBinary;
    } else {
      return Usage();
    }
    g = LoadGraphFile(path, opts);
  } catch (const std::exception& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "loaded: n = " << g.NumVertices() << ", m = " << g.NumEdges()
            << "\n";

  const std::string updates_path = OptionValue(argc, argv, "--updates", "");
  const bool want_verify = HasOption(argc, argv, "--verify");
  if (!updates_path.empty()) {
    if (want_cover) {
      std::cerr << "--updates does not combine with --cover\n";
      return 2;
    }
    return RunDynamicMode(obs, g, path, updates_path, out_path, want_stats,
                          want_verify);
  }

  ObsSession::Run run = obs.Start(algo, path, /*seed=*/0);
  Timer timer;
  std::vector<uint8_t> in_set;
  std::string certificate;
  std::string stats_report;
  const auto take = [&](MisSolution sol) {
    if (want_stats) stats_report = FormatSolverStats(sol);
    run.NoteSolution(sol);
    in_set = std::move(sol.in_set);
  };
  if (algo == "greedy") {
    in_set = RunGreedy(g).in_set;
  } else if (algo == "du") {
    in_set = RunDU(g).in_set;
  } else if (algo == "semie") {
    in_set = RunSemiE(g).in_set;
  } else if (algo == "bdone") {
    BDOneOptions opt{.compaction = compaction};
    take(per_component ? RunBDOnePerComponent(g, cc_opts, opt)
                       : RunBDOne(g, nullptr, opt));
  } else if (algo == "bdtwo") {
    BDTwoOptions opt{.compaction = compaction};
    take(per_component ? RunBDTwoPerComponent(g, cc_opts, opt)
                       : RunBDTwo(g, opt));
  } else if (algo == "lineartime") {
    LinearTimeOptions opt{.compaction = compaction};
    take(per_component ? RunLinearTimePerComponent(g, cc_opts, opt)
                       : RunLinearTime(g, nullptr, opt));
  } else if (algo == "nearlinear") {
    NearLinearOptions opt;
    opt.compaction = compaction;
    MisSolution sol = per_component
                          ? RunNearLinearPerComponent(g, cc_opts, opt)
                          : RunNearLinear(g, nullptr, opt);
    if (sol.provably_maximum) certificate = "certified maximum (Theorem 6.1)";
    take(std::move(sol));
  } else if (algo == "arw-lt" || algo == "arw-nl") {
    BoostedOptions opt;
    opt.time_limit_seconds = budget;
    BoostedResult r = RunBoostedArw(
        g, algo == "arw-lt" ? BoostKind::kLinearTime : BoostKind::kNearLinear,
        opt);
    in_set = std::move(r.in_set);
  } else if (algo == "exact") {
    VcSolverOptions opt;
    opt.time_limit_seconds = budget;
    VcSolverResult r = SolveExactMis(g, opt);
    certificate = r.proven_optimal ? "proven optimal" : "time limit hit";
    in_set = std::move(r.in_set);
  } else {
    return Usage();
  }
  const double seconds = timer.Seconds();

  std::string why;
  if (!VerifyMis(g, in_set, &why)) {
    std::cerr << "internal error: invalid solution: " << why << "\n";
    return 1;
  }
  if (want_verify) {
    std::cerr << "verified: independent and maximal (" << g.NumVertices()
              << " vertices)\n";
  }
  uint64_t size = 0;
  for (uint8_t f : in_set) size += f;
  run.NoteSeconds(seconds);
  run.record().AddNumber("graph.vertices", static_cast<double>(g.NumVertices()));
  run.record().AddNumber("graph.edges", static_cast<double>(g.NumEdges()));
  run.record().AddNumber("solution.final_size", static_cast<double>(size));
  if (!certificate.empty()) run.record().AddString("certificate", certificate);
  run.Commit();
  if (want_cover) {
    in_set = Complement(in_set);
    size = g.NumVertices() - size;
  }
  std::cerr << algo << (want_cover ? " vertex cover" : " independent set")
            << ": " << size << " vertices in " << seconds << "s";
  if (!certificate.empty()) std::cerr << " [" << certificate << "]";
  std::cerr << "\n";
  if (want_stats) {
    if (stats_report.empty()) {
      std::cerr << "(--stats: no counters for --algo=" << algo << ")\n";
    } else {
      std::cerr << stats_report;
    }
  }

  return EmitSolution(out_path, in_set);
}
