// graph_gen: generate the library's synthetic graphs to files, so the
// datasets behind EXPERIMENTS.md can be inspected or fed to other tools.
//
// Usage:
//   graph_gen suite <output-dir> [--format=edgelist|dimacs|metis|binary]
//       writes all 20 benchmark datasets (Table 2 suite)
//   graph_gen powerlaw <n> <beta> <avg-degree> <seed> <file>
//   graph_gen gnm <n> <m> <seed> <file>
//   graph_gen rmat <scale> <m> <seed> <file>
#include <fstream>
#include <iostream>
#include <string>

#include "benchkit/datasets.h"
#include "graph/generators.h"
#include "graph/io.h"

using namespace rpmis;

namespace {

void WriteAs(const Graph& g, const std::string& path, const std::string& fmt) {
  std::ofstream out(path, fmt == "binary" ? std::ios::binary : std::ios::out);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  if (fmt == "edgelist") {
    WriteEdgeList(g, out);
  } else if (fmt == "dimacs") {
    WriteDimacs(g, out);
  } else if (fmt == "metis") {
    WriteMetis(g, out);
  } else if (fmt == "binary") {
    WriteBinary(g, out);
  } else {
    std::cerr << "unknown format " << fmt << "\n";
    std::exit(2);
  }
  std::cerr << "wrote " << path << " (n=" << g.NumVertices()
            << ", m=" << g.NumEdges() << ")\n";
}

std::string Extension(const std::string& fmt) {
  if (fmt == "dimacs") return ".dimacs";
  if (fmt == "metis") return ".metis";
  if (fmt == "binary") return ".rpmi";
  return ".txt";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: graph_gen suite <dir> [--format=...] |\n"
                 "       graph_gen powerlaw <n> <beta> <avg> <seed> <file> |\n"
                 "       graph_gen gnm <n> <m> <seed> <file> |\n"
                 "       graph_gen rmat <scale> <m> <seed> <file>\n";
    return 2;
  }
  const std::string mode = argv[1];
  std::string fmt = "edgelist";
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--format=", 0) == 0) fmt = a.substr(9);
  }

  if (mode == "suite") {
    const std::string dir = argv[2];
    for (const auto& spec : AllDatasets()) {
      WriteAs(spec.make(), dir + "/" + spec.name + Extension(fmt), fmt);
    }
    return 0;
  }
  if (mode == "powerlaw" && argc >= 7) {
    WriteAs(ChungLuPowerLaw(std::stoul(argv[2]), std::stod(argv[3]),
                            std::stod(argv[4]), std::stoull(argv[5])),
            argv[6], fmt);
    return 0;
  }
  if (mode == "gnm" && argc >= 6) {
    WriteAs(ErdosRenyiGnm(std::stoul(argv[2]), std::stoull(argv[3]),
                          std::stoull(argv[4])),
            argv[5], fmt);
    return 0;
  }
  if (mode == "rmat" && argc >= 6) {
    WriteAs(RMat(std::stoul(argv[2]), std::stoull(argv[3]), 0.57, 0.19, 0.19,
                 std::stoull(argv[4])),
            argv[5], fmt);
    return 0;
  }
  std::cerr << "bad arguments\n";
  return 2;
}
